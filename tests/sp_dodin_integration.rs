//! Series-parallel machinery integration: recognition, exact SP
//! evaluation, Dodin duplication statistics, and interaction with the
//! DAG substrate across crates.

use stochdag::prelude::*;
use stochdag::sp::{dodin_evaluate, reduce, ReduceConfig, ReduceError};

#[test]
fn sp_recognition_across_families() {
    // Chains, fork-joins and out-trees are series-parallel; factorization
    // DAGs and diamond meshes are not.
    assert!(is_series_parallel(&chain_dag(10, &[1.0])));
    assert!(is_series_parallel(&fork_join_dag(4, 3, 1.0)));
    let t = KernelTimings::unit();
    assert!(!is_series_parallel(&cholesky_dag(4, &t)));
    assert!(!is_series_parallel(&lu_dag(4, &t)));
    assert!(!is_series_parallel(&qr_dag(4, &t)));
    assert!(!is_series_parallel(&diamond_mesh_dag(3, 3, (1.0, 1.0), 0)));
}

#[test]
fn exact_sp_equals_exhaustive_on_fork_join() {
    let dag = fork_join_dag(3, 2, 1.0);
    let model = FailureModel::new(0.08);
    let sp = exact_sp_expected_makespan(
        &dag,
        |i| two_state(dag.weight(i), model.psuccess_of_weight(dag.weight(i))),
        usize::MAX,
    )
    .expect("fork-join is SP");
    let exact = exact_expected_makespan_two_state(&dag, &model);
    assert!(
        (sp.mean() - exact).abs() < 1e-9,
        "SP evaluation {} vs exhaustive {exact}",
        sp.mean()
    );
}

#[test]
fn dodin_duplication_counts_reflect_distance_from_sp() {
    // More joins ⇒ more duplications. Track across Cholesky sizes.
    let t = KernelTimings::unit();
    let model = FailureModel::new(0.01);
    let mut prev = 0usize;
    for k in [2usize, 3, 4, 5] {
        let dag = cholesky_dag(k, &t);
        let out = DodinEstimator::new().run(&dag, &model);
        assert!(
            out.duplications >= prev,
            "k={k}: duplications {} decreased from {prev}",
            out.duplications
        );
        prev = out.duplications;
    }
    assert!(prev > 0, "cholesky k=5 requires duplications");
}

#[test]
fn reduction_engine_errors_are_reported() {
    let dag = cholesky_dag(4, &KernelTimings::unit());
    let mut net = stochdag::sp::ArcNetwork::from_task_dag(&dag, |_| DiscreteDist::point(1.0));
    let cfg = ReduceConfig {
        allow_duplication: false,
        ..Default::default()
    };
    assert!(matches!(
        reduce(&mut net, &cfg),
        Err(ReduceError::NotSeriesParallel)
    ));
}

#[test]
fn dodin_distribution_bounds_support() {
    let dag = lu_dag(6, &KernelTimings::paper_default());
    let model = FailureModel::from_pfail_for_dag(0.01, &dag);
    let out = dodin_evaluate(
        &dag,
        |i| two_state(dag.weight(i), model.psuccess_of_weight(dag.weight(i))),
        &ReduceConfig {
            max_atoms: 32,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(out.dist.len() <= 32);
    // The approximate makespan distribution must cover d(G).
    assert!(out.dist.max_value() >= longest_path_length(&dag) - 1e-9);
    assert!((out.dist.total_prob() - 1.0).abs() < 1e-9);
}

#[test]
fn forward_surrogate_is_deterministic_and_capped() {
    let dag = qr_dag(8, &KernelTimings::paper_default());
    let model = FailureModel::from_pfail_for_dag(0.001, &dag);
    let d1 = DodinEstimator::scalable()
        .with_max_atoms(64)
        .makespan_dist(&dag, &model);
    let d2 = DodinEstimator::scalable()
        .with_max_atoms(64)
        .makespan_dist(&dag, &model);
    assert_eq!(d1.atoms().len(), d2.atoms().len());
    assert_eq!(d1.mean(), d2.mean());
    assert!(d1.len() <= 64);
}

#[test]
fn zero_weight_virtual_tasks_flow_through() {
    // Zero-weight fork/join nodes (the classical PERT dummy tasks) must
    // not break any reduction path.
    let mut g = Dag::new();
    let fork = g.add_node(0.0);
    let a = g.add_node(1.0);
    let b = g.add_node(2.0);
    let join = g.add_node(0.0);
    g.add_edge(fork, a);
    g.add_edge(fork, b);
    g.add_edge(a, join);
    g.add_edge(b, join);
    let model = FailureModel::new(0.2);
    let exact = exact_expected_makespan_two_state(&g, &model);
    let dodin = DodinEstimator::new()
        .with_max_atoms(usize::MAX)
        .expected_makespan(&g, &model);
    assert!(
        (dodin - exact).abs() < 1e-9,
        "SP graph with dummies: dodin {dodin} vs exact {exact}"
    );
}
