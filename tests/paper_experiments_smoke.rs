//! End-to-end smoke of the paper's evaluation protocol at reduced trial
//! counts: the qualitative claims of Figures 4–12 and Table I must hold.

use stochdag::prelude::*;

/// Run one (class, pfail, k) cell and return relative errors
/// (first_order, sculli, dodin) vs Monte Carlo.
fn cell(class: FactorizationClass, pfail: f64, k: usize, trials: usize) -> (f64, f64, f64) {
    let dag = class.generate(k, &KernelTimings::paper_default());
    let model = FailureModel::from_pfail_for_dag(pfail, &dag);
    let mc = MonteCarloEstimator::new(trials)
        .with_seed(0)
        .run(&dag, &model);
    let fo = FirstOrderEstimator::fast().expected_makespan(&dag, &model);
    let sc = SculliEstimator.expected_makespan(&dag, &model);
    let dd = DodinEstimator::scalable().expected_makespan(&dag, &model);
    (
        (fo - mc.mean) / mc.mean,
        (sc - mc.mean) / mc.mean,
        (dd - mc.mean) / mc.mean,
    )
}

#[test]
fn figure5_shape_cholesky_pfail_001() {
    // Paper Fig. 5 (Cholesky, pfail = 0.001): FirstOrder error at least
    // an order of magnitude below Normal and Dodin for k >= 8.
    for k in [8, 12] {
        let (fo, sc, dd) = cell(FactorizationClass::Cholesky, 0.001, k, 120_000);
        assert!(
            fo.abs() * 10.0 < sc.abs(),
            "k={k}: first-order {fo:.2e} not >=10x better than Normal {sc:.2e}"
        );
        assert!(
            fo.abs() * 10.0 < dd.abs(),
            "k={k}: first-order {fo:.2e} not >=10x better than Dodin {dd:.2e}"
        );
    }
}

#[test]
fn figure8_shape_lu_pfail_001() {
    let (fo, sc, dd) = cell(FactorizationClass::Lu, 0.001, 10, 120_000);
    assert!(fo.abs() < 2e-3, "first-order error {fo:.2e} too large");
    assert!(
        sc.abs() > fo.abs(),
        "Normal should be worse than first order"
    );
    assert!(
        dd.abs() > fo.abs(),
        "Dodin should be worse than first order"
    );
}

#[test]
fn figure11_shape_qr_pfail_001() {
    let (fo, sc, dd) = cell(FactorizationClass::Qr, 0.001, 10, 120_000);
    assert!(fo.abs() < 2e-3);
    assert!(sc.abs() > fo.abs());
    assert!(dd.abs() > fo.abs());
}

#[test]
fn dodin_error_grows_with_graph_size() {
    // The paper's explanation for Dodin's poor accuracy: factorization
    // DAGs are far from series-parallel, and more so as k grows.
    let (_, _, d4) = cell(FactorizationClass::Cholesky, 0.001, 4, 120_000);
    let (_, _, d12) = cell(FactorizationClass::Cholesky, 0.001, 12, 120_000);
    assert!(
        d12.abs() > d4.abs(),
        "Dodin error should grow with k: {d4:.2e} -> {d12:.2e}"
    );
}

#[test]
fn high_failure_rate_closes_the_gap() {
    // Paper Figs. 4/7/10 (pfail = 0.01): FirstOrder no longer dominates
    // by orders of magnitude; it stays within ~1 order of Normal.
    let (fo, sc, _) = cell(FactorizationClass::Cholesky, 0.01, 12, 120_000);
    assert!(
        fo.abs() < sc.abs() * 10.0,
        "first-order {fo:.2e} should be within 10x of Normal {sc:.2e} at pfail=0.01"
    );
}

#[test]
fn table1_protocol_reduced() {
    // Table I at reduced scale (k = 10 instead of 20, fewer trials):
    // error ordering FirstOrder < Normal < Dodin and the runtime
    // ordering FirstOrder fastest.
    let dag = lu_dag(10, &KernelTimings::paper_default());
    let model = FailureModel::from_pfail_for_dag(0.0001, &dag);
    let mc = MonteCarloEstimator::new(200_000)
        .with_seed(0)
        .estimate(&dag, &model);
    let fo = FirstOrderEstimator::fast().estimate(&dag, &model);
    let cov = CovarianceNormalEstimator.estimate(&dag, &model);
    let dd = DodinEstimator::scalable().estimate(&dag, &model);
    let (e_fo, e_cov, e_dd) = (
        fo.relative_error(mc.value).abs(),
        cov.relative_error(mc.value).abs(),
        dd.relative_error(mc.value).abs(),
    );
    // Allow the MC noise floor: first-order's true error at this pfail
    // is ~1e-6, far below the sampling noise.
    let noise = 3.0 * mc.std_error.unwrap_or(0.0) / mc.value;
    assert!(
        e_fo <= e_cov + noise,
        "first-order {e_fo:.2e} vs normal {e_cov:.2e}"
    );
    assert!(e_cov < e_dd, "normal {e_cov:.2e} vs dodin {e_dd:.2e}");
    assert!(
        fo.elapsed < mc.elapsed,
        "first order faster than Monte Carlo"
    );
}

#[test]
fn lambda_calibration_matches_paper_narrative() {
    // Paper Section V-C: ā = 0.15 s with pfail = 0.01 gives λ ≈ 0.067
    // and MTBF ≈ 14.9 s. Our calibrated weight table yields ā ≈ 0.15 s
    // averaged across the fifteen evaluation DAGs.
    let t = KernelTimings::paper_default();
    let mut total_w = 0.0;
    let mut total_n = 0usize;
    for class in FactorizationClass::ALL {
        for k in [4, 6, 8, 10, 12] {
            let dag = class.generate(k, &t);
            total_w += dag.total_weight();
            total_n += dag.node_count();
        }
    }
    let abar = total_w / total_n as f64;
    assert!((abar - 0.15).abs() < 0.01, "calibrated mean weight {abar}");
    let lambda = lambda_for_failure_probability(0.01, abar);
    assert!((lambda - 0.067).abs() < 0.005, "lambda {lambda}");
}
