//! Scheduling stack integration on the paper's workloads.

use stochdag::prelude::*;

#[test]
fn list_schedules_are_feasible_on_all_workloads() {
    let t = KernelTimings::paper_default();
    let model = FailureModel::failure_free();
    for class in FactorizationClass::ALL {
        let dag = class.generate(6, &t);
        for procs in [1usize, 4, 16] {
            for policy in Priority::ALL {
                let s = list_schedule(&dag, procs, &model, policy);
                assert!(
                    s.validate(&dag).is_ok(),
                    "{} P={procs} {}: {:?}",
                    class.name(),
                    policy.name(),
                    s.validate(&dag)
                );
                assert!(s.makespan() + 1e-9 >= longest_path_length(&dag));
                assert!(s.makespan() <= dag.total_weight() + 1e-9);
            }
        }
    }
}

#[test]
fn simulation_reduces_to_schedule_without_failures() {
    let dag = lu_dag(5, &KernelTimings::paper_default());
    let model = FailureModel::failure_free();
    for procs in [2usize, 8] {
        let s = list_schedule(&dag, procs, &model, Priority::BottomLevel);
        let out = simulate_execution(
            &dag,
            &model,
            &SimConfig::identical(procs, Priority::BottomLevel, 0),
        );
        assert_eq!(out.failures, 0);
        assert!(
            (out.makespan() - s.makespan()).abs() < 1e-9,
            "P={procs}: sim {} vs static {}",
            out.makespan(),
            s.makespan()
        );
    }
}

#[test]
fn expected_makespan_lower_bounds_realized_mean() {
    // With unlimited processors, E(G) (first order) lower-bounds the
    // mean simulated makespan on finitely many processors.
    let dag = cholesky_dag(6, &KernelTimings::paper_default());
    let model = FailureModel::from_pfail_for_dag(0.01, &dag);
    let e_g = first_order_expected_makespan_fast(&dag, &model);
    let cmp = compare_policies(&dag, &model, 8, &[Priority::BottomLevel], 400, 5);
    let realized = cmp.stats[0].mean_makespan;
    assert!(
        realized + 3.0 * cmp.stats[0].std_error >= e_g,
        "realized {realized} below unlimited-processor bound {e_g}"
    );
}

#[test]
fn unlimited_processors_match_monte_carlo_expectation() {
    // With P >= |V| the simulated mean must approach the expected
    // makespan of the DAG itself (same geometric model as MC).
    let dag = cholesky_dag(4, &KernelTimings::paper_default());
    let model = FailureModel::from_pfail_for_dag(0.02, &dag);
    let mc = MonteCarloEstimator::new(200_000)
        .with_seed(2)
        .run(&dag, &model);
    let cmp = compare_policies(
        &dag,
        &model,
        dag.node_count(),
        &[Priority::BottomLevel],
        4000,
        11,
    );
    let sim = cmp.stats[0].mean_makespan;
    let tol = 4.0 * (cmp.stats[0].std_error + mc.std_error);
    assert!(
        (sim - mc.mean).abs() < tol,
        "sim mean {sim} vs MC {} (tol {tol})",
        mc.mean
    );
}

#[test]
fn heft_feasible_and_beats_slowest_processor() {
    let dag = qr_dag(5, &KernelTimings::paper_default());
    let speeds = [2.0, 1.0, 0.5];
    let h = heft_schedule(&dag, &speeds, None);
    assert!(h.schedule.validate(&dag).is_ok());
    // Better than running everything on the slowest processor.
    assert!(h.schedule.makespan() < dag.total_weight() / 0.5);
    // Rank ordering is topological.
    let mut seen = vec![false; dag.node_count()];
    for v in &h.order {
        for p in dag.preds(*v) {
            assert!(seen[p.index()], "HEFT order violates precedence");
        }
        seen[v.index()] = true;
    }
}

#[test]
fn failure_aware_policies_never_catastrophically_worse() {
    // The first-order-informed policies must stay within 5% of classical
    // CP scheduling on the paper workloads (they usually tie or win;
    // this guards against regressions making them pathological).
    let dag = lu_dag(8, &KernelTimings::paper_default());
    let model = FailureModel::from_pfail_for_dag(0.02, &dag);
    let cmp = compare_policies(
        &dag,
        &model,
        8,
        &[
            Priority::BottomLevel,
            Priority::ExpectedBottomLevel,
            Priority::FirstOrderCriticality,
        ],
        600,
        77,
    );
    let base = cmp.stats[0].mean_makespan;
    for s in &cmp.stats[1..] {
        assert!(
            s.mean_makespan <= base * 1.05,
            "{} mean {} vs CP {base}",
            s.policy.name(),
            s.mean_makespan
        );
    }
}
