//! Cross-validation of all estimators on shared inputs: every method
//! must agree with Monte Carlo within its documented accuracy class, on
//! every paper workload family.

use stochdag::prelude::*;

fn workloads() -> Vec<(String, Dag)> {
    let t = KernelTimings::paper_default();
    let mut v = Vec::new();
    for class in FactorizationClass::ALL {
        for k in [4usize, 6] {
            v.push((format!("{}-k{k}", class.name()), class.generate(k, &t)));
        }
    }
    v
}

#[test]
fn all_estimators_track_monte_carlo_at_pfail_001() {
    for (name, dag) in workloads() {
        let model = FailureModel::from_pfail_for_dag(0.001, &dag);
        let mc = MonteCarloEstimator::new(150_000)
            .with_seed(21)
            .run(&dag, &model);
        let cases: Vec<(&str, f64, f64)> = vec![
            // (estimator, value, allowed relative error)
            (
                "first-order",
                FirstOrderEstimator::fast().expected_makespan(&dag, &model),
                2e-3,
            ),
            (
                "second-order",
                SecondOrderEstimator.expected_makespan(&dag, &model),
                2e-3,
            ),
            (
                "sculli",
                SculliEstimator.expected_makespan(&dag, &model),
                5e-2,
            ),
            (
                "corlca",
                CorLcaEstimator.expected_makespan(&dag, &model),
                5e-2,
            ),
            (
                "normal-cov",
                CovarianceNormalEstimator.expected_makespan(&dag, &model),
                5e-2,
            ),
            (
                "dodin-fwd",
                DodinEstimator::scalable().expected_makespan(&dag, &model),
                1e-1,
            ),
        ];
        for (est, value, tol) in cases {
            let rel = ((value - mc.mean) / mc.mean).abs();
            assert!(
                rel < tol,
                "{name}/{est}: value {value} vs MC {} (rel {rel} > {tol})",
                mc.mean
            );
        }
    }
}

#[test]
fn estimator_ordering_at_low_failure_rates() {
    // The paper's headline: at pfail <= 0.001 FirstOrder is strictly
    // more accurate than the Normal-family and Dodin baselines.
    for (name, dag) in workloads() {
        let model = FailureModel::from_pfail_for_dag(0.001, &dag);
        let mc = MonteCarloEstimator::new(300_000)
            .with_seed(33)
            .run(&dag, &model);
        let first = (FirstOrderEstimator::fast().expected_makespan(&dag, &model) - mc.mean).abs();
        let sculli = (SculliEstimator.expected_makespan(&dag, &model) - mc.mean).abs();
        let dodin = (DodinEstimator::scalable().expected_makespan(&dag, &model) - mc.mean).abs();
        let noise = 3.0 * mc.std_error;
        assert!(
            first <= sculli + noise,
            "{name}: first-order ({first:.2e}) worse than Sculli ({sculli:.2e})"
        );
        assert!(
            first <= dodin + noise,
            "{name}: first-order ({first:.2e}) worse than Dodin ({dodin:.2e})"
        );
    }
}

#[test]
fn monte_carlo_two_state_vs_exact_small() {
    // The sampler itself is validated against the exhaustive oracle.
    let dag = cholesky_dag(3, &KernelTimings::unit());
    assert!(dag.node_count() <= 12);
    let model = FailureModel::new(0.05);
    let exact = exact_expected_makespan_two_state(&dag, &model);
    let mc = MonteCarloEstimator::new(400_000)
        .with_seed(8)
        .with_sampling(SamplingModel::TwoState)
        .run(&dag, &model);
    assert!(
        (mc.mean - exact).abs() < 4.0 * mc.std_error,
        "MC {} vs exact {exact} (se {})",
        mc.mean,
        mc.std_error
    );
}

#[test]
fn estimates_monotone_in_failure_rate() {
    let dag = lu_dag(5, &KernelTimings::paper_default());
    let estimators: Vec<Box<dyn Estimator>> = vec![
        Box::new(FirstOrderEstimator::fast()),
        Box::new(SculliEstimator),
        Box::new(CorLcaEstimator),
        Box::new(CovarianceNormalEstimator),
        Box::new(DodinEstimator::scalable()),
    ];
    for est in estimators {
        let mut prev = 0.0;
        for pfail in [0.0001, 0.001, 0.01, 0.05] {
            let model = FailureModel::from_pfail_for_dag(pfail, &dag);
            let v = est.expected_makespan(&dag, &model);
            assert!(
                v >= prev - 1e-9,
                "{}: estimate not monotone in pfail ({prev} -> {v})",
                est.name()
            );
            prev = v;
        }
    }
}

#[test]
fn dodin_faithful_and_surrogate_stay_close_on_paper_workloads() {
    // The documented substitution (DESIGN.md §3): the scalable forward
    // surrogate tracks the faithful duplication engine.
    let t = KernelTimings::paper_default();
    for class in FactorizationClass::ALL {
        let dag = class.generate(4, &t);
        let model = FailureModel::from_pfail_for_dag(0.01, &dag);
        let faithful = DodinEstimator::new().expected_makespan(&dag, &model);
        let surrogate = DodinEstimator::scalable().expected_makespan(&dag, &model);
        let rel = ((faithful - surrogate) / faithful).abs();
        // The two differ by a few percent at pfail = 0.01 — well below
        // their common ~5-10% bias vs Monte Carlo on these non-SP DAGs.
        assert!(
            rel < 0.05,
            "{}: faithful {faithful} vs surrogate {surrogate} (rel {rel})",
            class.name()
        );
    }
}
