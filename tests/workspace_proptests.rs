//! Workspace-level property tests: invariants that span crates.

use proptest::prelude::*;
use stochdag::prelude::*;

/// Random small DAG via forward edges (acyclic by construction).
fn arb_dag() -> impl Strategy<Value = Dag> {
    (2usize..=8).prop_flat_map(|n| {
        let weights = proptest::collection::vec(0.01f64..5.0, n);
        let bits = proptest::collection::vec(any::<bool>(), n * (n - 1) / 2);
        (weights, bits).prop_map(move |(ws, bits)| {
            let mut g = Dag::new();
            let ids: Vec<NodeId> = ws.iter().map(|&w| g.add_node(w)).collect();
            let mut b = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if bits[b] {
                        g.add_edge(ids[i], ids[j]);
                    }
                    b += 1;
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn first_order_fast_equals_naive(g in arb_dag(), lambda in 0.0f64..0.2) {
        let m = FailureModel::new(lambda);
        let fast = first_order_expected_makespan_fast(&g, &m);
        let naive = first_order_expected_makespan_naive(&g, &m);
        prop_assert!((fast - naive).abs() < 1e-9 * (1.0 + fast.abs()));
    }

    #[test]
    fn estimators_bounded_by_model_extremes(g in arb_dag(), lambda in 0.0f64..0.1) {
        // Any sane estimate lies in [d(G), 2·Σa/(min p)] — we use the
        // loose upper bound 3·Σa which covers the 2-state and the
        // truncated-geometric models at these rates.
        let m = FailureModel::new(lambda);
        let lo = longest_path_length(&g) - 1e-9;
        let hi = 3.0 * g.total_weight() + 1e-9;
        let values = [
            first_order_expected_makespan_fast(&g, &m),
            second_order_expected_makespan(&g, &m),
            SculliEstimator.expected_makespan(&g, &m),
            CorLcaEstimator.expected_makespan(&g, &m),
            CovarianceNormalEstimator.expected_makespan(&g, &m),
            DodinEstimator::scalable().expected_makespan(&g, &m),
        ];
        for v in values {
            prop_assert!(v >= lo && v <= hi, "estimate {v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn exact_oracle_vs_first_order_error_is_second_order(g in arb_dag()) {
        // |E1 − exact| must shrink by ≥2.5x when λ halves from 0.02.
        let e_big = {
            let m = FailureModel::new(0.02);
            (first_order_expected_makespan_fast(&g, &m)
                - exact_expected_makespan_two_state(&g, &m)).abs()
        };
        let e_small = {
            let m = FailureModel::new(0.01);
            (first_order_expected_makespan_fast(&g, &m)
                - exact_expected_makespan_two_state(&g, &m)).abs()
        };
        if e_small > 1e-12 {
            prop_assert!(e_big / e_small > 2.5,
                "error ratio {} not quadratic", e_big / e_small);
        }
    }

    #[test]
    fn monte_carlo_reproducible_across_parallelism(g in arb_dag(), lambda in 0.0f64..0.3, seed in 0u64..1000) {
        let m = FailureModel::new(lambda);
        let par = MonteCarloEstimator::new(2_000).with_seed(seed).run(&g, &m);
        let seq = MonteCarloEstimator::new(2_000).with_seed(seed).sequential().run(&g, &m);
        prop_assert_eq!(par.mean, seq.mean);
        prop_assert_eq!(par.max, seq.max);
    }

    #[test]
    fn sp_exact_matches_exhaustive_when_sp(g in arb_dag(), lambda in 0.001f64..0.2) {
        let m = FailureModel::new(lambda);
        if let Some(dist) = exact_sp_expected_makespan(
            &g,
            |i| two_state(g.weight(i), m.psuccess_of_weight(g.weight(i))),
            usize::MAX,
        ) {
            let exact = exact_expected_makespan_two_state(&g, &m);
            prop_assert!((dist.mean() - exact).abs() < 1e-9,
                "SP {} vs exhaustive {exact}", dist.mean());
        }
    }

    #[test]
    fn schedules_feasible_on_random_dags(g in arb_dag(), procs in 1usize..5) {
        let m = FailureModel::new(0.05);
        for policy in [Priority::BottomLevel, Priority::ExpectedBottomLevel, Priority::Weight] {
            let s = list_schedule(&g, procs, &m, policy);
            prop_assert!(s.validate(&g).is_ok(), "{:?}", s.validate(&g));
        }
        let out = simulate_execution(&g, &m, &SimConfig::identical(procs, Priority::BottomLevel, 1));
        prop_assert!(out.schedule.validate(&g).is_ok());
        prop_assert!(out.makespan() + 1e-9 >= longest_path_length(&g));
    }

    #[test]
    fn dodin_forward_upper_bounds_failure_free(g in arb_dag(), lambda in 0.0f64..0.2) {
        let m = FailureModel::new(lambda);
        let d = DodinEstimator::scalable().expected_makespan(&g, &m);
        prop_assert!(d + 1e-9 >= longest_path_length(&g));
    }
}
