//! Prepared/legacy parity: for every estimator in the registry,
//! binding a preparation once and evaluating many models through it
//! must return **bit-identical** values to the one-shot
//! `estimate(dag, model)` shim evaluated fresh per model. This pins
//! down the refactoring hazards of the two-phase API: stale scratch
//! buffers leaking across models, reseeding not fully resetting a
//! statistical estimator, and shared precomputations (levels, all-pairs
//! tables, dominant paths, frozen views) drifting from their
//! recomputed-per-call counterparts.

use proptest::prelude::*;
use stochdag::prelude::*;

/// Random small DAG via forward edges (acyclic by construction). Small
/// enough for the exhaustive oracle and the Dodin duplication engine.
fn arb_dag() -> impl Strategy<Value = Dag> {
    (2usize..=10).prop_flat_map(|n| {
        let weights = proptest::collection::vec(0.01f64..5.0, n);
        let bits = proptest::collection::vec(any::<bool>(), n * (n - 1) / 2);
        (weights, bits).prop_map(move |(ws, bits)| {
            let mut g = Dag::new();
            let ids: Vec<NodeId> = ws.iter().map(|&w| g.add_node(w)).collect();
            let mut b = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if bits[b] {
                        g.add_edge(ids[i], ids[j]);
                    }
                    b += 1;
                }
            }
            g
        })
    })
}

/// Concrete spec per registered base name: bounded work for the
/// statistical/path estimators so 64 proptest cases stay fast.
fn spec_of(base: &str) -> stochdag::core::EstimatorSpec {
    let s = match base {
        "mc" => "mc:400".into(),
        "spelde" => "spelde:4".into(),
        "dodin" | "dodin-dup" => format!("{base}:32"),
        other => other.to_string(),
    };
    s.parse().expect("registered estimators parse")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prepared_equals_one_shot_for_every_registered_estimator(
        g in arb_dag(),
        lambda in 0.001f64..0.15,
        seed in 0u64..(1 << 20),
    ) {
        let registry = EstimatorRegistry::standard();
        // Several models per preparation, evaluated through ONE prepared
        // handle in sequence — including λ = 0 in the middle so buffer
        // reuse across degenerate cases is exercised too.
        let models = [
            FailureModel::new(lambda),
            FailureModel::failure_free(),
            FailureModel::new(lambda * 0.37),
        ];
        let prepared = PreparedDag::new(g.clone());
        for base in registry.names().collect::<Vec<_>>() {
            let spec = spec_of(base);
            let est = registry.build(&spec, seed).unwrap();
            let mut prep = est.prepare(&prepared);
            for (k, model) in models.iter().enumerate() {
                // Per-cell seeds, as the sweep engine derives them.
                let cell_seed = seed ^ ((k as u64) << 21);
                prep.reseed(cell_seed);
                let shared = prep.expected_makespan_for(model);
                let one_shot = registry
                    .build(&spec, cell_seed)
                    .unwrap()
                    .expected_makespan(&g, model);
                prop_assert_eq!(
                    shared.to_bits(),
                    one_shot.to_bits(),
                    "estimator {} model #{}: prepared {} vs one-shot {}",
                    spec, k, shared, one_shot
                );
            }
        }
    }

    #[test]
    fn estimate_grid_equals_sequential_estimate_for(
        g in arb_dag(),
        lambda in 0.001f64..0.2,
    ) {
        let models = vec![
            FailureModel::new(lambda),
            FailureModel::new(lambda / 2.0),
            FailureModel::failure_free(),
        ];
        let prepared = PreparedDag::new(g);
        let est = FirstOrderEstimator::fast();
        let grid = est.prepare(&prepared).estimate_grid(&models);
        let mut seq = est.prepare(&prepared);
        prop_assert_eq!(grid.len(), models.len());
        for (e, m) in grid.iter().zip(models.iter()) {
            prop_assert_eq!(e.value.to_bits(), seq.expected_makespan_for(m).to_bits());
            prop_assert_eq!(&e.name, "FirstOrder");
        }
    }
}
