//! Deterministic resume: a sweep whose sink output is damaged or lost
//! can be re-run against the same cache and must (a) recompute nothing
//! and (b) regenerate byte-identical output files.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use stochdag::prelude::*;
use stochdag_engine::{Campaign, DagSpec, EstimatorSpec};

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("stochdag_resume_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn campaign() -> SweepSpec {
    SweepSpec {
        name: "resume".into(),
        seed: 7,
        pfails: vec![0.01, 0.001],
        lambdas: vec![],
        estimators: vec![
            EstimatorSpec::FirstOrder,
            EstimatorSpec::CorLca,
            EstimatorSpec::Mc { trials: 800 },
        ],
        reference_trials: 2_000,
        reference_sampling: stochdag::core::SamplingModel::Geometric,
        jobs: None,
        scenarios: vec![],
        dags: vec![
            DagSpec::Factorization {
                class: FactorizationClass::Cholesky,
                ks: vec![2, 3],
            },
            DagSpec::Factorization {
                class: FactorizationClass::Lu,
                ks: vec![2, 3],
            },
        ],
    }
}

fn run_into(spec: &SweepSpec, cache: &Arc<ResultCache>, csv_path: &Path) -> SweepOutcome {
    Campaign::builder(spec.clone())
        .cache(cache.clone())
        .sink(CsvSink::create(csv_path).unwrap())
        .sink(JsonlSink::create(csv_path.with_extension("jsonl")).unwrap())
        .build()
        .unwrap()
        .run()
        .unwrap()
}

#[test]
fn resume_from_cache_regenerates_identical_output() {
    let dir = scratch("main");
    let cache = Arc::new(ResultCache::on_disk(dir.join("cache")));
    let csv_path = dir.join("resume.csv");
    let spec = campaign();

    // First run: everything computed fresh.
    let first = run_into(&spec, &cache, &csv_path);
    assert_eq!(first.cells, 4 * 2 * 3, "4 DAGs x 2 pfails x 3 estimators");
    assert_eq!(first.references, 8);
    assert!(!first.fully_cached());
    let original_csv = std::fs::read(&csv_path).unwrap();
    let original_jsonl = std::fs::read(csv_path.with_extension("jsonl")).unwrap();
    assert!(original_csv.len() > 100);

    // Damage the sink output: truncate the CSV to half and delete the
    // JSONL entirely.
    std::fs::write(&csv_path, &original_csv[..original_csv.len() / 2]).unwrap();
    std::fs::remove_file(csv_path.with_extension("jsonl")).unwrap();

    // Second run with the same spec + cache: 100% hits, identical bytes.
    let second = run_into(&spec, &cache, &csv_path);
    assert!(
        second.fully_cached(),
        "resume must not recompute: {} misses",
        second.cache_misses
    );
    assert_eq!(
        second.cache_hits,
        first.cells + first.references,
        "every cell and reference served from cache"
    );
    assert_eq!(second.rows, first.rows);
    assert_eq!(
        std::fs::read(&csv_path).unwrap(),
        original_csv,
        "regenerated CSV is byte-identical"
    );
    assert_eq!(
        std::fs::read(csv_path.with_extension("jsonl")).unwrap(),
        original_jsonl,
        "regenerated JSONL is byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_survives_process_style_reload() {
    // Fresh ResultCache instances over the same directory model
    // separate processes: the second instance starts with an empty
    // memory tier and must resume purely from disk.
    let dir = scratch("reload");
    let csv_path = dir.join("resume.csv");
    let spec = campaign();
    let first = run_into(
        &spec,
        &Arc::new(ResultCache::on_disk(dir.join("cache"))),
        &csv_path,
    );
    let bytes = std::fs::read(&csv_path).unwrap();

    let second = run_into(
        &spec,
        &Arc::new(ResultCache::on_disk(dir.join("cache"))),
        &csv_path,
    );
    assert!(second.fully_cached(), "disk tier alone must satisfy resume");
    assert_eq!(second.rows, first.rows);
    assert_eq!(std::fs::read(&csv_path).unwrap(), bytes);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spec_change_invalidates_only_new_cells() {
    let dir = scratch("partial");
    let cache = Arc::new(ResultCache::on_disk(dir.join("cache")));
    let csv_path = dir.join("resume.csv");
    let spec = campaign();
    let first = run_into(&spec, &cache, &csv_path);

    // Adding an estimator reuses every existing cell and reference.
    let mut extended = spec.clone();
    extended.estimators.push(EstimatorSpec::Sculli);
    let second = run_into(&extended, &cache, &csv_path);
    assert_eq!(second.cells, first.cells + 8, "one new column of cells");
    assert_eq!(
        second.cache_misses, 8,
        "only the new estimator's cells computed"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
