//! The core correctness claim of the paper: the first-order
//! approximation is exact up to `O(λ²)`.
//!
//! Validated against the exhaustive 2-state oracle (no sampling noise)
//! on small DAGs: the error must shrink quadratically in λ, while a
//! deliberately broken "zeroth-order" estimate (d(G)) shrinks only
//! linearly.

use stochdag::prelude::*;

fn small_dags() -> Vec<(&'static str, Dag)> {
    let mut v = Vec::new();
    v.push(("chain", chain_dag(6, &[0.5, 1.0, 1.5])));
    v.push(("fork-join", fork_join_dag(3, 2, 1.0)));
    let mut n = Dag::new();
    let a = n.add_node(1.0);
    let b = n.add_node(2.0);
    let c = n.add_node(1.5);
    let d = n.add_node(0.5);
    n.add_edge(a, c);
    n.add_edge(a, d);
    n.add_edge(b, d);
    v.push(("n-graph", n));
    v.push(("cholesky-k3", cholesky_dag(3, &KernelTimings::unit())));
    v.push(("mesh-3x3", diamond_mesh_dag(3, 3, (0.5, 1.5), 7)));
    v
}

/// Exact 2-state expectation, but with first-order 2-state probabilities
/// (`P(fail) = λa` instead of `1 − e^{−λa}`), so the only remaining
/// discrepancy vs the first-order formula is the multi-failure terms.
fn exact_two_state(dag: &Dag, lambda: f64) -> f64 {
    exact_expected_makespan_two_state(dag, &FailureModel::new(lambda))
}

#[test]
fn error_scales_quadratically_in_lambda() {
    for (name, dag) in small_dags() {
        let lambdas = [0.04, 0.02, 0.01, 0.005];
        let mut errors = Vec::new();
        for &lam in &lambdas {
            let exact = exact_two_state(&dag, lam);
            let first = first_order_expected_makespan_fast(&dag, &FailureModel::new(lam));
            errors.push((first - exact).abs());
        }
        // Each halving of λ must cut the error by ~4 (allow 2.5x to
        // absorb higher-order terms at the larger rates).
        for w in errors.windows(2) {
            if w[1] > 1e-13 {
                let ratio = w[0] / w[1];
                assert!(
                    ratio > 2.5,
                    "{name}: error sequence {errors:?} not quadratic (ratio {ratio})"
                );
            }
        }
    }
}

#[test]
fn first_order_beats_failure_free_baseline() {
    for (name, dag) in small_dags() {
        let lam = 0.02;
        let exact = exact_two_state(&dag, lam);
        let first = first_order_expected_makespan_fast(&dag, &FailureModel::new(lam));
        let zeroth = longest_path_length(&dag);
        assert!(
            (first - exact).abs() < (zeroth - exact).abs(),
            "{name}: first order must improve on d(G)"
        );
    }
}

#[test]
fn second_order_beats_first_order_against_exact_geometric_mc() {
    // Against the geometric ground truth (the paper's model), the
    // second-order expansion must be at least as accurate as the
    // first-order one at a moderately high failure rate.
    for (name, dag) in small_dags() {
        let lam = 0.03;
        let model = FailureModel::new(lam);
        let mc = MonteCarloEstimator::new(800_000)
            .with_seed(3)
            .run(&dag, &model);
        let e1 = first_order_expected_makespan_fast(&dag, &model);
        let e2 = second_order_expected_makespan(&dag, &model);
        let err1 = (e1 - mc.mean).abs();
        let err2 = (e2 - mc.mean).abs();
        assert!(
            err2 <= err1 + 3.0 * mc.std_error,
            "{name}: second order ({err2:.2e}) worse than first ({err1:.2e})"
        );
    }
}

#[test]
fn naive_and_fast_agree_on_all_families() {
    for (name, dag) in small_dags() {
        for lam in [0.0, 0.001, 0.05, 0.3] {
            let m = FailureModel::new(lam);
            let fast = first_order_expected_makespan_fast(&dag, &m);
            let naive = first_order_expected_makespan_naive(&dag, &m);
            assert!(
                (fast - naive).abs() < 1e-10 * (1.0 + fast.abs()),
                "{name} λ={lam}: fast {fast} vs naive {naive}"
            );
        }
    }
}

#[test]
fn expected_makespan_at_least_failure_free() {
    for (name, dag) in small_dags() {
        let d = longest_path_length(&dag);
        for lam in [0.001, 0.01, 0.1] {
            let e = first_order_expected_makespan_fast(&dag, &FailureModel::new(lam));
            assert!(e >= d - 1e-12, "{name}: E(G) = {e} below d(G) = {d}");
        }
    }
}
