//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so this shim provides a
//! value-model serialization framework under the `serde` name:
//! [`Serialize`] renders a type into a [`Value`] tree, [`Deserialize`]
//! rebuilds the type from one, and the [`json`] module converts trees
//! to/from JSON text. No derive macros — implementations are written by
//! hand against the value model, which keeps them explicit and small.

use std::collections::BTreeMap;
use std::fmt;

/// A self-describing value tree (the JSON data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Absent/null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Number (stored as f64; integers round-trip exactly to 2^53).
    Num(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Arr(Vec<Value>),
    /// Key→value map, sorted by key for deterministic output.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Required object member.
    pub fn require(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error::new(format!("missing field {key:?}")))
    }

    /// As f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// As u64, if an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// As str, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As array slice, if an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Error with the given description.
    pub fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Render `Self` into a [`Value`] tree.
pub trait Serialize {
    /// Serialize into the value model.
    fn serialize(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from the value model.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| Error::new(format!("expected number, got {v:?}")))
            }
        }
    )*};
}

impl_float!(f64, f32);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_f64()
                    .ok_or_else(|| Error::new(format!("expected integer, got {v:?}")))?;
                // Exact conversion only: reject fractions, non-finite
                // values, and anything outside the target range —
                // a silently truncated spec field would run (and cache)
                // a different campaign than the user wrote.
                if !n.is_finite() || n.fract() != 0.0 {
                    return Err(Error::new(format!("expected integer, got {n}")));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(Error::new(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_int!(u64, u32, usize, i64, i32);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::new(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::new(format!("expected string, got {v:?}")))
    }
}

impl Serialize for &str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_arr()
            .ok_or_else(|| Error::new(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl Serialize for std::time::Duration {
    fn serialize(&self) -> Value {
        Value::Num(self.as_secs_f64())
    }
}

impl Deserialize for std::time::Duration {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let secs = f64::deserialize(v)?;
        if !(secs.is_finite() && secs >= 0.0) {
            return Err(Error::new(format!("bad duration {secs}")));
        }
        Ok(std::time::Duration::from_secs_f64(secs))
    }
}

/// JSON text encoding of the value model.
pub mod json {
    use super::{Deserialize, Error, Serialize, Value};
    use std::collections::BTreeMap;
    use std::fmt::Write as _;

    /// Serialize any [`Serialize`] type to compact JSON.
    pub fn to_string<T: Serialize>(t: &T) -> String {
        let mut out = String::new();
        write_value(&t.serialize(), &mut out);
        out
    }

    /// Deserialize any [`Deserialize`] type from JSON text.
    pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
        T::deserialize(&parse(s)?)
    }

    /// Render a [`Value`] as compact JSON.
    pub fn write_value(v: &Value, out: &mut String) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_number(*n, out),
            Value::Str(s) => write_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_value(item, out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, val)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    write_value(val, out);
                }
                out.push('}');
            }
        }
    }

    fn write_number(n: f64, out: &mut String) {
        if !n.is_finite() {
            // JSON has no non-finite numbers; null round-trips to an
            // error on read, which is the honest outcome.
            out.push_str("null");
        } else if n == n.trunc() && n.abs() < 2f64.powi(53) {
            write!(out, "{}", n as i64).expect("write to String");
        } else {
            // Shortest round-trip formatting of f64.
            write!(out, "{n:?}").expect("write to String");
        }
    }

    fn write_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    write!(out, "\\u{:04x}", c as u32).expect("write to String")
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Parse JSON text into a [`Value`].
    pub fn parse(s: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::new(format!(
                "trailing input at byte {} of JSON document",
                p.pos
            )));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
            {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn eat(&mut self, b: u8) -> Result<(), Error> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(Error::new(format!(
                    "expected {:?} at byte {}",
                    b as char, self.pos
                )))
            }
        }

        fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(v)
            } else {
                Err(Error::new(format!("bad literal at byte {}", self.pos)))
            }
        }

        fn value(&mut self) -> Result<Value, Error> {
            match self.peek() {
                Some(b'n') => self.literal("null", Value::Null),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'"') => self.string().map(Value::Str),
                Some(b'[') => self.array(),
                Some(b'{') => self.object(),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                other => Err(Error::new(format!(
                    "unexpected {:?} at byte {}",
                    other.map(|b| b as char),
                    self.pos
                ))),
            }
        }

        fn array(&mut self) -> Result<Value, Error> {
            self.eat(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                }
            }
        }

        fn object(&mut self) -> Result<Value, Error> {
            self.eat(b'{')?;
            let mut map = BTreeMap::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.eat(b':')?;
                self.skip_ws();
                let val = self.value()?;
                map.insert(key, val);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                }
            }
        }

        fn string(&mut self) -> Result<String, Error> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(Error::new("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let esc = self.peek().ok_or_else(|| Error::new("bad escape"))?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| Error::new("bad \\u escape"))?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex)
                                        .map_err(|_| Error::new("bad \\u escape"))?,
                                    16,
                                )
                                .map_err(|_| Error::new("bad \\u escape"))?;
                                self.pos += 4;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::new("bad \\u code point"))?,
                                );
                            }
                            other => {
                                return Err(Error::new(format!(
                                    "unknown escape \\{}",
                                    other as char
                                )))
                            }
                        }
                    }
                    Some(_) => {
                        // Consume one UTF-8 character.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| Error::new("invalid UTF-8"))?;
                        let c = rest.chars().next().expect("non-empty");
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, Error> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| {
                b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
            }) {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| Error::new("invalid number"))?;
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| Error::new(format!("bad number {text:?}")))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trip_value() {
            let v = Value::obj([
                ("name", Value::Str("First\"Order".into())),
                ("value", Value::Num(123.456789012345)),
                ("trials", Value::Num(300000.0)),
                ("flags", Value::Arr(vec![Value::Bool(true), Value::Null])),
            ]);
            let text = {
                let mut s = String::new();
                write_value(&v, &mut s);
                s
            };
            assert_eq!(parse(&text).unwrap(), v);
        }

        #[test]
        fn numbers_round_trip_exactly() {
            for n in [0.0, 1.5, -2.25, 1e-12, 123456789.0, 0.1 + 0.2] {
                let text = to_string(&n);
                let back: f64 = from_str(&text).unwrap();
                assert_eq!(back, n, "{text}");
            }
        }

        #[test]
        fn rejects_garbage() {
            assert!(parse("{").is_err());
            assert!(parse("[1,]").is_err());
            assert!(parse("nul").is_err());
            assert!(parse("1 2").is_err());
        }

        #[test]
        fn escapes_round_trip() {
            let s = "line1\nline2\t\"quoted\" \\ done".to_string();
            let text = to_string(&s);
            let back: String = from_str(&text).unwrap();
            assert_eq!(back, s);
        }
    }
}
