//! Offline stand-in for `rayon`.
//!
//! Provides the parallel-iterator surface the workspace uses —
//! `into_par_iter` on integer ranges and slices/vectors, `map`,
//! `map_init`, `collect`, `reduce`, `for_each` — executed on scoped
//! `std::thread` workers that pull fixed-size chunks from a shared
//! atomic counter (dynamic scheduling, so uneven work items
//! load-balance like rayon's work stealing).
//!
//! Results are always assembled **in input order** and chunk partials
//! are combined sequentially in chunk order, so `collect` and `reduce`
//! are deterministic regardless of thread interleaving — the property
//! the Monte-Carlo and scheduling statistics rely on.
//!
//! [`ThreadPoolBuilder`] mirrors rayon's global pool configuration as a
//! process-wide worker cap (the `--jobs` knob of the sweep engine);
//! because results are order-deterministic, changing the cap never
//! changes any computed value.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Global worker-count cap set by [`ThreadPoolBuilder::build_global`];
/// `0` means "no cap" (use all hardware parallelism).
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Error type of [`ThreadPoolBuilder::build_global`], mirroring
/// `rayon::ThreadPoolBuildError`. The shim never actually fails, but
/// callers written against real rayon expect a `Result`.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("global thread pool configuration failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for the global worker configuration, mirroring
/// `rayon::ThreadPoolBuilder`.
///
/// Divergence from upstream: the shim has no persistent pool, only a
/// worker cap consulted when each parallel job spawns its scoped
/// threads, so repeated [`ThreadPoolBuilder::build_global`] calls
/// *reconfigure* the cap instead of erroring. The sweep engine relies
/// on that to apply a per-campaign `--jobs` knob.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Builder with the default configuration (no cap).
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Cap the number of worker threads; `0` restores "use all cores".
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Install the configuration globally.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        MAX_THREADS.store(self.num_threads, Ordering::SeqCst);
        Ok(())
    }
}

/// The raw global worker cap (`0` = uncapped) — a shim extension with
/// no upstream rayon equivalent, letting callers that reconfigure the
/// cap temporarily (the sweep engine's per-campaign `--jobs`) save and
/// restore the previous value.
pub fn current_thread_cap() -> usize {
    MAX_THREADS.load(Ordering::SeqCst)
}

/// Number of threads a saturating parallel job would use right now,
/// mirroring `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    match MAX_THREADS.load(Ordering::SeqCst) {
        0 => hw,
        cap => hw.min(cap),
    }
}

/// Number of worker threads for a job of `len` items.
fn worker_count(len: usize) -> usize {
    current_num_threads().min(len.max(1))
}

/// Run `produce(chunk_range)` over dynamic chunks of `0..len` on a
/// scoped thread pool; returns the per-chunk outputs in chunk order.
fn run_chunks<T, F>(len: usize, produce: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let workers = worker_count(len);
    if workers <= 1 {
        return vec![produce(0..len)];
    }
    // ~4 chunks per worker balances stealing granularity vs overhead.
    let chunk_size = len.div_ceil(workers * 4).max(1);
    let n_chunks = len.div_ceil(chunk_size);
    let next = AtomicUsize::new(0);
    let out: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n_chunks));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                let lo = c * chunk_size;
                let hi = (lo + chunk_size).min(len);
                let part = produce(lo..hi);
                out.lock().expect("worker panicked").push((c, part));
            });
        }
    });
    let mut parts = out.into_inner().expect("worker panicked");
    parts.sort_by_key(|&(c, _)| c);
    parts.into_iter().map(|(_, t)| t).collect()
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// The iterator type.
    type Iter;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a reference).
    type Item: Send;
    /// The iterator type.
    type Iter;
    /// Convert.
    fn par_iter(&'a self) -> Self::Iter;
}

// ---------------------------------------------------------------------
// Sources: anything with O(1) indexed access.
// ---------------------------------------------------------------------

/// An indexable parallel source.
pub trait ParSource: Sync {
    /// Item type.
    type Item: Send;
    /// Number of items.
    fn len(&self) -> usize;
    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Item at position `i`.
    fn get(&self, i: usize) -> Self::Item;
}

/// Parallel iterator over an indexed source.
pub struct ParIter<S> {
    source: S,
}

macro_rules! impl_range_source {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = ParIter<Range<$t>>;
            fn into_par_iter(self) -> Self::Iter {
                ParIter { source: self }
            }
        }
        impl ParSource for Range<$t> {
            type Item = $t;
            fn len(&self) -> usize {
                (self.end.saturating_sub(self.start)) as usize
            }
            fn get(&self, i: usize) -> $t {
                self.start + i as $t
            }
        }
    )*};
}

impl_range_source!(u64, u32, usize);

impl<T: Send + Sync + Clone> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<Vec<T>>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter { source: self }
    }
}

impl<T: Send + Sync + Clone> ParSource for Vec<T> {
    type Item = T;
    fn len(&self) -> usize {
        Vec::len(self)
    }
    fn get(&self, i: usize) -> T {
        self[i].clone()
    }
}

/// Borrowing source over a slice.
pub struct SliceSource<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<SliceSource<'a, T>>;
    fn par_iter(&'a self) -> Self::Iter {
        ParIter {
            source: SliceSource { items: self },
        }
    }
}

impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<SliceSource<'a, T>>;
    fn par_iter(&'a self) -> Self::Iter {
        ParIter {
            source: SliceSource { items: self },
        }
    }
}

impl<'a, T: Sync + Send> ParSource for SliceSource<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.items.len()
    }
    fn get(&self, i: usize) -> &'a T {
        &self.items[i]
    }
}

// ---------------------------------------------------------------------
// Adapters.
// ---------------------------------------------------------------------

/// `map` adapter.
pub struct ParMap<S, F> {
    source: S,
    f: F,
}

/// `map_init` adapter (per-chunk scratch state).
pub struct ParMapInit<S, I, F> {
    source: S,
    init: I,
    f: F,
}

impl<S: ParSource> ParIter<S> {
    /// Map each item through `f`.
    pub fn map<T, F>(self, f: F) -> ParMap<S, F>
    where
        T: Send,
        F: Fn(S::Item) -> T + Sync,
    {
        ParMap {
            source: self.source,
            f,
        }
    }

    /// Map with a per-worker scratch value created by `init`.
    pub fn map_init<St, T, I, F>(self, init: I, f: F) -> ParMapInit<S, I, F>
    where
        T: Send,
        I: Fn() -> St + Sync,
        F: Fn(&mut St, S::Item) -> T + Sync,
    {
        ParMapInit {
            source: self.source,
            init,
            f,
        }
    }

    /// Run `f` on every item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(S::Item) + Sync,
    {
        let source = &self.source;
        run_chunks(source.len(), |range| {
            for i in range {
                f(source.get(i));
            }
        });
    }

    /// Collect items in input order.
    pub fn collect<C: FromOrderedParallel<S::Item>>(self) -> C {
        let source = &self.source;
        let parts = run_chunks(source.len(), |range| {
            range.map(|i| source.get(i)).collect::<Vec<_>>()
        });
        C::from_ordered_chunks(parts)
    }
}

impl<S, T, F> ParMap<S, F>
where
    S: ParSource,
    T: Send,
    F: Fn(S::Item) -> T + Sync,
{
    /// Collect mapped items in input order.
    pub fn collect<C: FromOrderedParallel<T>>(self) -> C {
        let (source, f) = (&self.source, &self.f);
        let parts = run_chunks(source.len(), |range| {
            range.map(|i| f(source.get(i))).collect::<Vec<_>>()
        });
        C::from_ordered_chunks(parts)
    }

    /// Reduce mapped items with `op` starting from `identity`.
    ///
    /// Chunk partials are combined sequentially in chunk order, so the
    /// result is deterministic for a fixed machine.
    pub fn reduce<Id, Op>(self, identity: Id, op: Op) -> T
    where
        Id: Fn() -> T + Sync,
        Op: Fn(T, T) -> T + Sync,
    {
        let (source, f) = (&self.source, &self.f);
        let parts = run_chunks(source.len(), |range| {
            let mut acc = identity();
            for i in range {
                acc = op(acc, f(source.get(i)));
            }
            acc
        });
        parts.into_iter().fold(identity(), &op)
    }

    /// Sum mapped items (chunk partials combined in order).
    pub fn sum<Out>(self) -> Out
    where
        T: Into<Out>,
        Out: std::iter::Sum<T> + std::iter::Sum<Out> + Send,
    {
        let (source, f) = (&self.source, &self.f);
        let parts = run_chunks(source.len(), |range| {
            range.map(|i| f(source.get(i))).sum::<Out>()
        });
        parts.into_iter().sum()
    }
}

impl<S, St, T, I, F> ParMapInit<S, I, F>
where
    S: ParSource,
    T: Send,
    I: Fn() -> St + Sync,
    F: Fn(&mut St, S::Item) -> T + Sync,
{
    /// Collect mapped items in input order.
    pub fn collect<C: FromOrderedParallel<T>>(self) -> C {
        let (source, init, f) = (&self.source, &self.init, &self.f);
        let parts = run_chunks(source.len(), |range| {
            let mut state = init();
            range
                .map(|i| f(&mut state, source.get(i)))
                .collect::<Vec<_>>()
        });
        C::from_ordered_chunks(parts)
    }
}

/// Collections assemblable from ordered chunk outputs.
pub trait FromOrderedParallel<T> {
    /// Build from chunk vectors, already in input order.
    fn from_ordered_chunks(chunks: Vec<Vec<T>>) -> Self;
}

impl<T> FromOrderedParallel<T> for Vec<T> {
    fn from_ordered_chunks(chunks: Vec<Vec<T>>) -> Vec<T> {
        let total = chunks.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for c in chunks {
            out.extend(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_order() {
        let v: Vec<u64> = (0..10_000u64).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 10_000);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, 2 * i as u64);
        }
    }

    #[test]
    fn reduce_matches_sequential() {
        let par = (0..1_000u64)
            .into_par_iter()
            .map(|i| (i as f64, 1.0))
            .reduce(|| (0.0, 0.0), |a, b| (a.0 + b.0, a.1 + b.1));
        assert_eq!(par.1, 1000.0);
        assert_eq!(par.0, (0..1000).sum::<u64>() as f64);
    }

    #[test]
    fn map_init_reuses_state_safely() {
        let v: Vec<usize> = (0..5_000u64)
            .into_par_iter()
            .map_init(Vec::<u8>::new, |scratch, i| {
                scratch.clear();
                scratch.extend_from_slice(&i.to_le_bytes());
                scratch.len()
            })
            .collect();
        assert!(v.iter().all(|&l| l == 8));
    }

    #[test]
    fn par_iter_over_slice() {
        let data = vec![1.0f64, 2.0, 3.0];
        let doubled: Vec<f64> = data.par_iter().map(|&x| x * 2.0).collect();
        assert_eq!(doubled, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || -> Vec<u64> { (0..2_000u64).into_par_iter().map(|i| i % 7).collect() };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_input() {
        let v: Vec<u64> = (0..0u64).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn global_thread_cap_applies_and_clears() {
        // Runs alongside other tests in this binary; the cap only
        // changes how many workers spawn, never the (deterministic)
        // results, so briefly capping is safe.
        crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build_global()
            .unwrap();
        assert_eq!(crate::current_num_threads(), 1);
        let v: Vec<u64> = (0..100u64).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(v[99], 100);
        crate::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        assert!(crate::current_num_threads() >= 1);
    }
}
