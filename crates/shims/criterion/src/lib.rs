//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark-definition surface the workspace's benches
//! use (`criterion_group!`, `criterion_main!`, groups, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`, `black_box`) with a
//! simple warmup + fixed-sample timing loop printing median wall time.
//! No statistics, plots, or baselines — just enough to keep `cargo
//! bench` meaningful offline.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark label, mirroring `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id from a function name plus parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput annotation (recorded, echoed in output).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: usize,
    last: Vec<Duration>,
}

impl Bencher {
    /// Run `f` repeatedly, timing each call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One untimed warmup call.
        black_box(f());
        self.last.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.last.push(t0.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.last.is_empty() {
            return Duration::ZERO;
        }
        self.last.sort();
        self.last[self.last.len() / 2]
    }
}

/// Top-level benchmark context.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 3 }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Top-level single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, None, f);
        self
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, 10);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Benchmark a closure against an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples,
        last: Vec::new(),
    };
    f(&mut b);
    let med = b.median();
    append_json_record(label, samples, med);
    match throughput {
        Some(Throughput::Elements(n)) if med > Duration::ZERO => {
            let rate = n as f64 / med.as_secs_f64();
            println!("bench {label:<50} {med:>12?} ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if med > Duration::ZERO => {
            let rate = n as f64 / med.as_secs_f64() / 1e6;
            println!("bench {label:<50} {med:>12?} ({rate:.1} MB/s)");
        }
        _ => println!("bench {label:<50} {med:>12?}"),
    }
}

/// Machine-readable results hook: when `CRITERION_JSON` names a file,
/// every finished benchmark appends one JSON line
/// `{"label":…,"median_ns":…,"samples":…}` to it. Harnesses (like the
/// workspace's `bench-report` binary) collect these into a trajectory
/// artifact; without the variable benches behave exactly as before.
fn append_json_record(label: &str, samples: usize, median: Duration) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let mut escaped = String::with_capacity(label.len());
    for c in label.chars() {
        match c {
            '"' | '\\' => {
                escaped.push('\\');
                escaped.push(c);
            }
            c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
            c => escaped.push(c),
        }
    }
    let line = format!(
        "{{\"label\":\"{escaped}\",\"median_ns\":{},\"samples\":{samples}}}\n",
        median.as_nanos()
    );
    use std::io::Write as _;
    let _ = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
}

/// Define a group-runner function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.throughput(Throughput::Elements(64));
        g.bench_with_input(BenchmarkId::from_parameter(64), &64u64, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u64>())
        });
        g.bench_function("plain", |b| b.iter(|| black_box(21) * 2));
        g.finish();
    }

    #[test]
    fn harness_runs() {
        criterion_group!(benches, sample_bench);
        benches();
    }

    #[test]
    fn json_label_escaping_is_valid() {
        // The JSONL hook writes labels verbatim inside quotes; quotes,
        // backslashes, and control characters must be escaped or the
        // record is unparseable downstream.
        let path =
            std::env::temp_dir().join(format!("criterion-json-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("CRITERION_JSON", &path);
        run_one("group/we\"ird\\label", 2, None, |b| b.iter(|| black_box(1)));
        std::env::remove_var("CRITERION_JSON");
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(text.contains(r#""label":"group/we\"ird\\label""#), "{text}");
        assert!(text.contains("\"samples\":2"), "{text}");
        assert!(text.trim_end().ends_with('}'), "{text}");
    }
}
