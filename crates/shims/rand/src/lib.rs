//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so this shim provides
//! the exact API surface the workspace uses — `StdRng::seed_from_u64`,
//! `Rng::gen`, `Rng::gen_range`, `Rng::gen_bool` — backed by
//! xoshiro256++ (Blackman–Vigna) seeded through SplitMix64. Streams are
//! deterministic per seed, which is the only property the workspace
//! relies on (bit-reproducible Monte Carlo given a seed); the values
//! differ from upstream `rand`'s ChaCha-based `StdRng`.

/// RNG construction from seeds.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step; used to expand seeds and decorrelate streams.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of `T` from its standard distribution
    /// (`f64` ⇒ uniform in `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` for floats and integers).
    ///
    /// The element type is a separate generic parameter (as in upstream
    /// `rand`) so it can be inferred from how the result is used.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        f64::sample(self) < p
    }
}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`], yielding elements of `T`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < span/2^64 — negligible for the spans
                // this workspace draws (tens to thousands).
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i32, i64);

/// Namespaced RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is invalid for xoshiro; splitmix64 never
            // produces four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&y));
            let z = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&z));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.25).abs() < 0.01, "freq {freq}");
    }
}
