//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and the `proptest!` macro
//! surface this workspace uses: range strategies, tuple strategies,
//! `collection::vec`, `any::<bool>()`, `prop_map`, `prop_flat_map`,
//! `prop_assert!`/`prop_assert_eq!`, and `ProptestConfig::with_cases`.
//!
//! Differences from upstream: cases are generated from a fixed seed
//! derived from the test name (fully deterministic), and failing cases
//! are reported but **not shrunk**.

use rand::rngs::StdRng;
use rand::Rng;
// Re-exported so the `proptest!` macro can name it via `$crate` from
// crates that do not themselves depend on the rand shim.
pub use rand::SeedableRng;

/// Test-case generation settings.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// RNG handed to strategies.
pub type TestRng = StdRng;

/// FNV-1a of a test name — the per-property seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A value generator (no shrinking).
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Generate a value, then a dependent strategy from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(*self.start()..(*self.end() + 1 as $t))
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Strategy yielding a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// The strategy type for `Self`.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for all `bool` values.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Size parameter: a fixed length or a range of lengths.
    pub trait SizeRange {
        /// Draw a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(*self.start()..*self.end() + 1)
        }
    }

    /// Strategy producing vectors of `element` values.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Vector of values from `element` with the given length spec.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a `proptest!` body; failures abort the current case
/// with a description instead of panicking the harness directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                left,
                right
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a),
                stringify!($b),
                left
            ));
        }
    }};
}

/// Define property tests. Supports the forms this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0usize..10, v in arb_thing()) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng: $crate::TestRng = <$crate::TestRng as $crate::SeedableRng>::seed_from_u64(
                $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    Ok(())
                })();
                if let Err(message) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        message
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, Vec<bool>)> {
        (1usize..=5).prop_flat_map(|n| (crate::Just(n), crate::collection::vec(any::<bool>(), n)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..=9, y in -1.5f64..2.5) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((-1.5..2.5).contains(&y), "y = {y}");
        }

        #[test]
        fn flat_map_links_length(p in arb_pair()) {
            prop_assert_eq!(p.0, p.1.len());
        }
    }
}
