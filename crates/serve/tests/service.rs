//! End-to-end service tests: a real `Server` on an ephemeral loopback
//! port, driven by real `ServeClient`s over TCP.
//!
//! The acceptance criterion for the service is exercised here: two
//! concurrent clients submitting the same 18-cell campaign must both
//! complete, the second served (near-)entirely from the shared memory
//! cache tier, and both producing CSV/JSONL byte-identical to a
//! direct in-process `Campaign::run` over the same cache.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use stochdag_engine::{
    Campaign, CsvSink, JsonlSink, ProgressMode, ResultCache, ResultSink, SweepOutcome, SweepSpec,
};
use stochdag_serve::{
    CampaignState, ServeClient, ServeConfig, Server, ShutdownMode, ShutdownReport,
};

/// 18 cells: 3 cholesky sizes × 3 estimators × 2 pfails.
fn spec_18(name: &str) -> SweepSpec {
    SweepSpec::from_str_auto(&format!(
        r#"
        name = "{name}"
        seed = 7
        pfails = [0.01, 0.05]
        estimators = ["first-order", "sculli", "corlca"]
        reference_trials = 2000
        [[dags]]
        kind = "cholesky"
        ks = [2, 3, 4]
        "#
    ))
    .unwrap()
}

/// A campaign slow enough (Monte-Carlo heavy, several scenarios) to
/// still be running when a test cancels or queues behind it.
fn slow_spec(name: &str) -> SweepSpec {
    SweepSpec::from_str_auto(&format!(
        r#"
        name = "{name}"
        seed = 11
        pfails = [0.01, 0.02, 0.03, 0.04]
        estimators = ["first-order"]
        reference_trials = 4000000
        [[dags]]
        kind = "cholesky"
        ks = [4, 5]
        "#
    ))
    .unwrap()
}

/// Like [`slow_spec`] but only 2 cells, for quota-constrained tests.
fn slow_small_spec(name: &str) -> SweepSpec {
    SweepSpec::from_str_auto(&format!(
        r#"
        name = "{name}"
        seed = 11
        pfails = [0.01, 0.02]
        estimators = ["first-order"]
        reference_trials = 4000000
        [[dags]]
        kind = "cholesky"
        ks = [4]
        "#
    ))
    .unwrap()
}

fn start(config: ServeConfig) -> (String, thread::JoinHandle<ShutdownReport>) {
    let server = Server::bind(config).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let daemon = thread::spawn(move || server.run().unwrap());
    (addr, daemon)
}

fn wait_for_state(client: &ServeClient, id: u64, want: CampaignState) -> CampaignState {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let report = client.status(Some(id)).unwrap();
        let state = report.campaigns[0].state;
        if state == want || !state.is_active() {
            return state;
        }
        assert!(
            Instant::now() < deadline,
            "campaign {id} stuck in {:?} waiting for {:?}",
            state.as_str(),
            want.as_str()
        );
        thread::sleep(Duration::from_millis(20));
    }
}

/// Submit `spec` and stream it into CSV/JSONL files under `dir`;
/// returns the outcome and the two files' bytes.
fn run_via_service(
    client: &ServeClient,
    spec: &SweepSpec,
    dir: &std::path::Path,
) -> (SweepOutcome, Vec<u8>, Vec<u8>) {
    std::fs::create_dir_all(dir).unwrap();
    let ticket = client.submit(spec).unwrap();
    let csv_path = dir.join(format!("{}.csv", spec.name));
    let jsonl_path = dir.join(format!("{}.jsonl", spec.name));
    let mut csv = CsvSink::create(&csv_path).unwrap();
    let mut jsonl = JsonlSink::create(&jsonl_path).unwrap();
    let outcome = {
        let mut sinks: Vec<&mut dyn ResultSink> = vec![&mut csv, &mut jsonl];
        client
            .run_to_sinks(ticket.id, &mut sinks, ProgressMode::None)
            .unwrap()
    };
    (
        outcome,
        std::fs::read(&csv_path).unwrap(),
        std::fs::read(&jsonl_path).unwrap(),
    )
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("stochdag-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn two_concurrent_clients_share_the_cache_and_match_a_direct_run() {
    let dir = scratch("parity");
    let cache_dir = dir.join("cache");
    // One pool slot serializes the two campaigns, so whichever runs
    // second is served from what the first computed.
    let (addr, daemon) = start(ServeConfig {
        cache: Some(cache_dir.clone()),
        max_running: 1,
        ..ServeConfig::default()
    });

    let spec = spec_18("shared");
    let outputs: Vec<(SweepOutcome, Vec<u8>, Vec<u8>)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|c| {
                let addr = addr.clone();
                let spec = spec.clone();
                let out = dir.join(format!("client{c}"));
                scope.spawn(move || {
                    let client = ServeClient::connect_to(addr);
                    run_via_service(&client, &spec, &out)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (outcome, _, _) in &outputs {
        assert_eq!(outcome.cells, 18);
        assert_eq!(outcome.rows.len(), 18);
    }
    // Acceptance: the second campaign is ≥95% memory-tier hits. The
    // submission order is racy, so check the better of the two.
    let best_memory_hits = outputs
        .iter()
        .map(|(o, _, _)| o.cells_memory_hits)
        .max()
        .unwrap();
    assert!(
        best_memory_hits * 100 >= 18 * 95,
        "second campaign should be served from the shared memory tier, \
         best was {best_memory_hits}/18 cells"
    );

    // Both served outputs are byte-identical to a direct in-process
    // run over the same (on-disk) cache.
    let direct_out = dir.join("direct");
    std::fs::create_dir_all(&direct_out).unwrap();
    let direct = Campaign::builder(spec)
        .cache(Arc::new(ResultCache::on_disk(&cache_dir)))
        .sink(CsvSink::create(direct_out.join("shared.csv")).unwrap())
        .sink(JsonlSink::create(direct_out.join("shared.jsonl")).unwrap())
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(
        direct.fully_cached(),
        "the daemon computed every unit, the direct run must replay it"
    );
    let direct_csv = std::fs::read(direct_out.join("shared.csv")).unwrap();
    let direct_jsonl = std::fs::read(direct_out.join("shared.jsonl")).unwrap();
    for (c, (_, csv_bytes, jsonl_bytes)) in outputs.iter().enumerate() {
        assert_eq!(csv_bytes, &direct_csv, "client {c} csv differs from direct");
        assert_eq!(
            jsonl_bytes, &direct_jsonl,
            "client {c} jsonl differs from direct"
        );
    }

    let client = ServeClient::connect_to(&addr);
    let report = client.status(None).unwrap();
    assert_eq!(report.server.submissions, 2);
    assert_eq!(report.server.completed, 2);
    assert!(report.server.cache_hit_rate() >= 0.45);

    client.shutdown(ShutdownMode::Drain).unwrap();
    let report = daemon.join().unwrap();
    assert_eq!(report.server.completed, 2);
    assert!(report.unfinished.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn three_clients_with_overlapping_specs_compute_each_cell_once() {
    let (addr, daemon) = start(ServeConfig {
        max_running: 1,
        ..ServeConfig::default()
    });

    // Three 4-cell campaigns over pairwise-overlapping pfail sets:
    // 6 distinct cells total, 12 submitted.
    let spec_for = |name: &str, p1: f64, p2: f64| {
        SweepSpec::from_str_auto(&format!(
            r#"
            name = "{name}"
            seed = 7
            pfails = [{p1}, {p2}]
            estimators = ["first-order", "sculli"]
            reference_trials = 1000
            [[dags]]
            kind = "cholesky"
            ks = [3]
            "#
        ))
        .unwrap()
    };
    let specs = [
        spec_for("ov-a", 0.01, 0.02),
        spec_for("ov-b", 0.02, 0.03),
        spec_for("ov-c", 0.01, 0.03),
    ];

    let dir = scratch("overlap");
    let outcomes: Vec<SweepOutcome> = thread::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(c, spec)| {
                let addr = addr.clone();
                let out = dir.join(format!("client{c}"));
                scope.spawn(move || {
                    let client = ServeClient::connect_to(addr);
                    run_via_service(&client, spec, &out).0
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let computed: usize = outcomes.iter().map(|o| o.cells_computed).sum();
    let memory_hits: usize = outcomes.iter().map(|o| o.cells_memory_hits).sum();
    assert_eq!(
        computed, 6,
        "each of the 6 distinct cells is computed exactly once across campaigns"
    );
    assert_eq!(
        memory_hits, 6,
        "the other 6 submitted cells come from the shared memory tier"
    );

    let client = ServeClient::connect_to(&addr);
    client.shutdown(ShutdownMode::Drain).unwrap();
    daemon.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quota_and_admission_rejections_are_structured() {
    let (addr, daemon) = start(ServeConfig {
        max_running: 1,
        max_queued: 1,
        max_cells: Some(4),
        ..ServeConfig::default()
    });
    let client = ServeClient::connect_to(&addr);

    // Per-campaign quota: an 18-cell spec against a 4-cell budget.
    let err = client.submit(&spec_18("too-big")).unwrap_err();
    assert_eq!(err.kind, "quota");
    assert!(err.message.contains("18 cells"), "{err}");

    // Admission: occupy the single pool slot, fill the queue of one,
    // then overflow it. (The occupier must fit the 4-cell quota.)
    let running = client.submit(&slow_small_spec("occupier")).unwrap();
    assert!(
        running.cells <= 4,
        "stay under the quota: {}",
        running.cells
    );
    wait_for_state(&client, running.id, CampaignState::Running);
    let queued = client.submit(&spec_for_quota("queued-ok", 0.01)).unwrap();
    let err = client.submit(&spec_for_quota("bounced", 0.02)).unwrap_err();
    assert_eq!(err.kind, "admission");
    assert!(err.message.contains("queue is full"), "{err}");

    // Unblock and drain: cancel the occupier, let the queued one run.
    client.cancel(running.id).unwrap();
    assert_eq!(
        wait_for_state(&client, running.id, CampaignState::Cancelled),
        CampaignState::Cancelled
    );
    assert_eq!(
        wait_for_state(&client, queued.id, CampaignState::Done),
        CampaignState::Done
    );

    let report = client.status(None).unwrap();
    assert_eq!(report.server.quota_rejected, 1);
    assert_eq!(report.server.admission_rejected, 1);

    client.shutdown(ShutdownMode::Drain).unwrap();
    daemon.join().unwrap();
}

/// A 1-cell spec (quota-friendly) distinguished by its pfail.
fn spec_for_quota(name: &str, pfail: f64) -> SweepSpec {
    SweepSpec::from_str_auto(&format!(
        r#"
        name = "{name}"
        seed = 7
        pfails = [{pfail}]
        estimators = ["first-order"]
        reference_trials = 1000
        [[dags]]
        kind = "cholesky"
        ks = [2]
        "#
    ))
    .unwrap()
}

#[test]
fn cancel_stops_a_running_campaign_and_leaves_others_unaffected() {
    let (addr, daemon) = start(ServeConfig {
        max_running: 2,
        ..ServeConfig::default()
    });
    let client = ServeClient::connect_to(&addr);

    let slow = client.submit(&slow_spec("victim")).unwrap();
    wait_for_state(&client, slow.id, CampaignState::Running);
    let normal = client.submit(&spec_18("bystander")).unwrap();

    let ack = client.cancel(slow.id).unwrap();
    assert!(ack.contains("cancel requested"), "{ack}");
    assert_eq!(
        wait_for_state(&client, slow.id, CampaignState::Cancelled),
        CampaignState::Cancelled,
        "cooperative cancel must stop the campaign"
    );
    assert_eq!(
        wait_for_state(&client, normal.id, CampaignState::Done),
        CampaignState::Done,
        "the other campaign must be unaffected"
    );

    // The victim's event stream terminates with a structured
    // cancellation error (same shape as a failed sweep-worker),
    // decoded by the typed subscription iterator.
    let events: Vec<_> = client
        .events(slow.id)
        .unwrap()
        .collect::<Result<Vec<_>, _>>()
        .unwrap();
    match events.last() {
        Some(stochdag_engine::CampaignEvent::Error { kind, .. }) => {
            assert_eq!(kind.as_deref(), Some("cancelled"));
        }
        other => panic!("stream must end with a cancelled error event, got {other:?}"),
    }

    // Cancelling a finished campaign is an idempotent ack; an unknown
    // id is a structured error.
    let ack = client.cancel(slow.id).unwrap();
    assert!(ack.contains("already cancelled"), "{ack}");
    let err = client.cancel(9999).unwrap_err();
    assert_eq!(err.kind, "unknown-id");

    // The victim's status row carries the error.
    let report = client.status(Some(slow.id)).unwrap();
    assert_eq!(
        report.campaigns[0].error.as_deref(),
        Some("campaign cancelled")
    );
    assert!(report.campaigns[0].rows < report.campaigns[0].cells);

    client.shutdown(ShutdownMode::Now).unwrap();
    daemon.join().unwrap();
}

#[test]
fn resume_reruns_a_cancelled_campaign_cache_first() {
    let dir = scratch("resume");
    let (addr, daemon) = start(ServeConfig {
        max_running: 2,
        ..ServeConfig::default()
    });
    let client = ServeClient::connect_to(&addr);

    // Warm the shared cache with the full campaign.
    let spec = spec_18("warm");
    let (first, _, _) = run_via_service(&client, &spec, &dir.join("first"));
    assert_eq!(first.cells, 18);

    // Queue the same spec behind a slot-occupying slow campaign, then
    // cancel it while still queued.
    let occupier = client.submit(&slow_spec("occupier-a")).unwrap();
    let occupier2 = client.submit(&slow_spec("occupier-b")).unwrap();
    let queued = client.submit(&spec).unwrap();
    let ack = client.cancel(queued.id).unwrap();
    assert!(ack.contains("cancelled queued"), "{ack}");

    // Resuming while others are active must re-admit just this spec;
    // resuming an active or completed campaign is a state error.
    let resumed = client.resume(queued.id).unwrap();
    assert_ne!(resumed.id, queued.id);
    let err = client.resume(occupier.id).unwrap_err();
    assert_eq!(err.kind, "state");

    // Free a slot so the resumed campaign can run, then verify it was
    // served from the cache the original run warmed.
    client.cancel(occupier.id).unwrap();
    wait_for_state(&client, resumed.id, CampaignState::Done);
    let (outcome, _, _) = {
        let out = dir.join("resumed");
        std::fs::create_dir_all(&out).unwrap();
        let mut csv = CsvSink::create(out.join("resumed.csv")).unwrap();
        let mut sinks: Vec<&mut dyn ResultSink> = vec![&mut csv];
        let outcome = client
            .run_to_sinks(resumed.id, &mut sinks, ProgressMode::None)
            .unwrap();
        (outcome, (), ())
    };
    assert_eq!(outcome.cells, 18);
    assert_eq!(
        outcome.cells_memory_hits, 18,
        "a resumed campaign over a warm cache recomputes nothing"
    );
    let err = client.resume(resumed.id).unwrap_err();
    assert_eq!(err.kind, "state");

    client.cancel(occupier2.id).unwrap();
    client.shutdown(ShutdownMode::Now).unwrap();
    daemon.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_drain_cancels_the_queue_and_persists_a_resume_report() {
    let dir = scratch("shutdown");
    let report_path = dir.join("report.json");
    let (addr, daemon) = start(ServeConfig {
        max_running: 1,
        shutdown_report: Some(report_path.clone()),
        ..ServeConfig::default()
    });
    let client = ServeClient::connect_to(&addr);

    let done = client.submit(&spec_for_quota("finished", 0.01)).unwrap();
    wait_for_state(&client, done.id, CampaignState::Done);

    let running = client.submit(&slow_spec("draining")).unwrap();
    wait_for_state(&client, running.id, CampaignState::Running);
    let queued = client.submit(&spec_18("never-ran")).unwrap();

    // Drain: the queued campaign is cancelled, the running one is
    // interrupted only because we follow up with a cancel (keeping
    // the test fast); new submissions are refused.
    let ack = client.shutdown(ShutdownMode::Drain).unwrap();
    assert!(ack.contains("draining"), "{ack}");
    let err = client.submit(&spec_for_quota("late", 0.02)).unwrap_err();
    assert_eq!(err.kind, "admission");
    assert!(err.message.contains("shutting down"), "{err}");
    client.cancel(running.id).unwrap();

    let report = daemon.join().unwrap();
    assert_eq!(report.server.completed, 1);
    let unfinished: Vec<(u64, CampaignState)> =
        report.unfinished.iter().map(|u| (u.id, u.state)).collect();
    assert!(
        unfinished.contains(&(queued.id, CampaignState::Cancelled)),
        "queued campaign must be in the resume report: {unfinished:?}"
    );
    assert!(
        unfinished.contains(&(running.id, CampaignState::Cancelled)),
        "interrupted campaign must be in the resume report: {unfinished:?}"
    );
    // The persisted report parses back and carries the spec needed to
    // resume.
    let raw = std::fs::read_to_string(&report_path).unwrap();
    let parsed: ShutdownReport = serde::json::from_str(&raw).unwrap();
    let entry = parsed
        .unfinished
        .iter()
        .find(|u| u.id == queued.id)
        .unwrap();
    assert_eq!(entry.spec.name, "never-ran");
    assert_eq!(entry.cells, 18);
    let _ = std::fs::remove_dir_all(&dir);
}
