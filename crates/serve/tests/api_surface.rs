//! Public-API snapshot for the campaign service, the sibling of the
//! engine's `api_surface` test: `stochdag_serve`'s exported symbol
//! list is pinned so client-facing API breaks are deliberate, reviewed
//! changes. If this test fails, either restore the export or update
//! `EXPECTED` *and* the README's service documentation in the same
//! change.

/// Every name `stochdag_serve` re-exports at the crate root, sorted.
const EXPECTED: &[&str] = &[
    "BackendChoice",
    "CampaignState",
    "CampaignStatus",
    "EventStream",
    "Request",
    "Response",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeHandle",
    "Server",
    "ServerStatus",
    "ShutdownMode",
    "ShutdownReport",
    "StatusReport",
    "Submitted",
    "UnfinishedCampaign",
];

/// Extract the names re-exported by `pub use …;` items in lib.rs —
/// the same scanner as the engine's surface test.
fn exported_names(source: &str) -> Vec<String> {
    let joined: String = source
        .lines()
        .map(|l| l.split("//").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n");
    let mut names = Vec::new();
    let mut rest = joined.as_str();
    while let Some(start) = rest.find("pub use ") {
        rest = &rest[start + "pub use ".len()..];
        let end = rest.find(';').expect("pub use item is terminated");
        let item = &rest[..end];
        rest = &rest[end + 1..];
        let item = item.trim();
        assert!(!item.contains('*'), "glob re-exports hide the surface");
        if let Some(brace) = item.find('{') {
            let list = item[brace + 1..].trim_end_matches('}');
            for name in list.split(',') {
                let name = name.trim();
                if !name.is_empty() {
                    names.push(name.rsplit("::").next().unwrap().trim().to_string());
                }
            }
        } else {
            names.push(item.rsplit("::").next().unwrap().trim().to_string());
        }
    }
    names.sort();
    names.dedup();
    names
}

#[test]
fn exported_symbol_list_is_pinned() {
    let names = exported_names(include_str!("../src/lib.rs"));
    let expected: Vec<String> = {
        let mut v: Vec<String> = EXPECTED.iter().map(|s| s.to_string()).collect();
        v.sort();
        v
    };
    assert_eq!(
        names, expected,
        "the service's public re-export surface changed; if intentional, \
         update EXPECTED and the service docs together"
    );
}

#[test]
fn snapshot_names_actually_resolve() {
    // Compile-time cross-check that the snapshot is not stale: every
    // name above is imported here. (A name dropped from lib.rs fails
    // this `use`; a name added to lib.rs fails the comparison.)
    #[allow(unused_imports)]
    use stochdag_serve::{
        BackendChoice, CampaignState, CampaignStatus, EventStream, Request, Response, ServeClient,
        ServeConfig, ServeError, ServeHandle, Server, ServerStatus, ShutdownMode, ShutdownReport,
        StatusReport, Submitted, UnfinishedCampaign,
    };
}
