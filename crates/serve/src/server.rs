//! The resident campaign daemon.
//!
//! [`Server`] binds a loopback TCP listener, owns **one** shared
//! [`ResultCache`] and **one** bounded worker pool, and multiplexes
//! every submitted campaign onto them. Two clients sweeping
//! overlapping grids therefore share work: whichever campaign reaches
//! a cell first computes it, the other gets a memory-tier cache hit.
//!
//! Admission control is two-layered: a per-campaign cell quota
//! (`max_cells`) rejects over-budget specs outright, and a bounded
//! queue (`max_queued`) rejects submissions when the service is
//! saturated — both as structured [`Response::Error`]s, never by
//! blocking the client.
//!
//! The daemon never touches client files: each campaign's event
//! stream is buffered (and replayed to late `events` subscribers), and
//! clients materialise CSV/JSONL locally by feeding that stream
//! through [`merge_event_streams`](stochdag_engine::merge_event_streams)
//! — producing files byte-identical to an in-process
//! [`Campaign::run`] over the same cache.

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use serde::{Deserialize, Serialize, Value};
use stochdag_engine::{
    encode_event, Campaign, CampaignEvent, CampaignObserver, CancelToken, EngineError,
    MetricsSnapshot, MultiProcess, ResultCache, SharedFs, SweepSpec, Telemetry,
};

use crate::protocol::{
    decode_request, encode_response, BackendChoice, CampaignState, CampaignStatus, Request,
    Response, ServerStatus, ShutdownMode, StatusReport, Submitted,
};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address; use port 0 for an ephemeral port (read it back
    /// with [`Server::local_addr`]).
    pub addr: String,
    /// Directory for the shared on-disk cache tier; `None` keeps the
    /// shared cache purely in memory.
    pub cache: Option<PathBuf>,
    /// Worker pool size: campaigns executing concurrently.
    pub max_running: usize,
    /// Queue capacity; submissions beyond it are rejected with
    /// `kind = "admission"`.
    pub max_queued: usize,
    /// Per-campaign cell quota; bigger specs are rejected with
    /// `kind = "quota"`. `None` = unlimited.
    pub max_cells: Option<usize>,
    /// Where to persist the shutdown/resume report (JSON); `None`
    /// skips the file (the report is still returned by
    /// [`Server::run`]).
    pub shutdown_report: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            cache: None,
            max_running: 2,
            max_queued: 16,
            max_cells: None,
            shutdown_report: None,
        }
    }
}

/// One campaign that had not completed when the server shut down,
/// with its full spec so a later session can re-submit it (execution
/// is cache-first, so only unfinished cells are recomputed).
#[derive(Clone, Debug)]
pub struct UnfinishedCampaign {
    /// Server-assigned campaign id.
    pub id: u64,
    /// The spec's campaign name.
    pub name: String,
    /// Final lifecycle state at shutdown.
    pub state: CampaignState,
    /// Total estimator cells.
    pub cells: usize,
    /// Cells completed before shutdown.
    pub rows: usize,
    /// The campaign's spec, ready to re-submit.
    pub spec: SweepSpec,
}

/// What [`Server::run`] hands back (and persists to
/// [`ServeConfig::shutdown_report`]) after a clean shutdown.
#[derive(Clone, Debug)]
pub struct ShutdownReport {
    /// Final whole-server statistics.
    pub server: ServerStatus,
    /// Campaigns that did not complete, with their specs.
    pub unfinished: Vec<UnfinishedCampaign>,
}

impl Serialize for UnfinishedCampaign {
    fn serialize(&self) -> Value {
        Value::obj([
            ("id", self.id.serialize()),
            ("name", self.name.serialize()),
            ("state", Value::Str(self.state.as_str().into())),
            ("cells", self.cells.serialize()),
            ("rows", self.rows.serialize()),
            ("spec", self.spec.serialize()),
        ])
    }
}

impl Deserialize for UnfinishedCampaign {
    fn deserialize(v: &Value) -> Result<UnfinishedCampaign, serde::Error> {
        let state = String::deserialize(v.require("state")?)?;
        Ok(UnfinishedCampaign {
            id: u64::deserialize(v.require("id")?)?,
            name: String::deserialize(v.require("name")?)?,
            state: CampaignState::parse(&state)
                .ok_or_else(|| serde::Error::new(format!("unknown state {state:?}")))?,
            cells: usize::deserialize(v.require("cells")?)?,
            rows: usize::deserialize(v.require("rows")?)?,
            spec: SweepSpec::deserialize(v.require("spec")?)?,
        })
    }
}

impl Serialize for ShutdownReport {
    fn serialize(&self) -> Value {
        Value::obj([
            ("server", self.server.serialize()),
            ("unfinished", self.unfinished.serialize()),
        ])
    }
}

impl Deserialize for ShutdownReport {
    fn deserialize(v: &Value) -> Result<ShutdownReport, serde::Error> {
        Ok(ShutdownReport {
            server: ServerStatus::deserialize(v.require("server")?)?,
            unfinished: Vec::<UnfinishedCampaign>::deserialize(v.require("unfinished")?)?,
        })
    }
}

/// Shutdown flag values (an `AtomicU8` so connection handlers can set
/// it without the state lock).
const RUN: u8 = 0;
const DRAIN: u8 = 1;
const NOW: u8 = 2;

/// A campaign's buffered event stream plus its live subscribers.
///
/// Every event line is retained for the campaign's lifetime so a late
/// subscriber replays the full prefix before receiving live events —
/// the stream a client sees is always complete, whichever side of the
/// campaign it connects on.
struct EventLog {
    inner: Mutex<LogInner>,
}

struct LogInner {
    lines: Vec<String>,
    subscribers: Vec<TcpStream>,
    closed: bool,
}

impl EventLog {
    fn new() -> EventLog {
        EventLog {
            inner: Mutex::new(LogInner {
                lines: Vec::new(),
                subscribers: Vec::new(),
                closed: false,
            }),
        }
    }

    /// Append one event line: buffer it and push it to every live
    /// subscriber (dropping subscribers whose socket broke).
    fn append(&self, line: String) {
        let mut inner = self.inner.lock().unwrap();
        inner
            .subscribers
            .retain_mut(|s| write_line(s, &line).is_ok());
        inner.lines.push(line);
    }

    /// Mark the stream complete and hang up on subscribers (they see
    /// EOF after the final event).
    fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        for s in inner.subscribers.drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    /// Replay the buffered prefix to `stream`, then keep it for live
    /// events (or hang up immediately if the stream already closed).
    fn subscribe(&self, stream: TcpStream) {
        let mut inner = self.inner.lock().unwrap();
        let mut stream = stream;
        for line in &inner.lines {
            if write_line(&mut stream, line).is_err() {
                return;
            }
        }
        if inner.closed {
            let _ = stream.shutdown(Shutdown::Both);
        } else {
            inner.subscribers.push(stream);
        }
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}

/// Observer installed on every served campaign: mirrors the event
/// stream into the campaign's [`EventLog`] (the exact lines a
/// `sweep-worker` would write on stdout) and counts finished cells.
struct LogObserver {
    log: Arc<EventLog>,
    rows: Arc<AtomicUsize>,
}

impl CampaignObserver for LogObserver {
    fn on_event(&mut self, event: &CampaignEvent) -> Result<(), EngineError> {
        if matches!(event, CampaignEvent::Cell { .. }) {
            self.rows.fetch_add(1, Ordering::Relaxed);
        }
        self.log.append(encode_event(event));
        Ok(())
    }
}

/// Book-keeping for one submitted campaign.
struct Entry {
    name: String,
    spec: SweepSpec,
    backend: BackendChoice,
    state: CampaignState,
    cells: usize,
    rows: Arc<AtomicUsize>,
    error: Option<String>,
    cancel: CancelToken,
    log: Arc<EventLog>,
}

/// Mutable server state behind one mutex: the campaign table and the
/// admission queue. Everything hot-path (counters, shutdown flag) is
/// atomic and lives outside it.
struct State {
    campaigns: BTreeMap<u64, Entry>,
    queue: VecDeque<u64>,
}

struct Inner {
    config: ServeConfig,
    cache: Arc<ResultCache>,
    telemetry: Telemetry,
    state: Mutex<State>,
    work: Condvar,
    next_id: AtomicU64,
    stop: AtomicU8,
    submissions: AtomicU64,
    admission_rejected: AtomicU64,
    quota_rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    cells_computed: AtomicU64,
    cells_memory_hits: AtomicU64,
    cells_disk_hits: AtomicU64,
}

/// A cheap, cloneable handle for controlling a running [`Server`] from
/// another thread (tests, signal handlers).
#[derive(Clone)]
pub struct ServeHandle {
    inner: Arc<Inner>,
}

impl ServeHandle {
    /// Trigger a shutdown exactly as a [`Request::Shutdown`] would.
    pub fn shutdown(&self, mode: ShutdownMode) {
        self.inner.shutdown(mode);
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.stop.load(Ordering::Relaxed) != RUN
    }

    /// Whole-process metrics (admissions, queue pressure, cache
    /// dividend) accumulated so far.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.telemetry.snapshot()
    }
}

/// The campaign daemon: one shared cache, one bounded worker pool,
/// many clients. Construct with [`Server::bind`], then call
/// [`Server::run`] (blocks until shutdown).
pub struct Server {
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl Server {
    /// Bind the listener and set up the shared cache and pool. The
    /// daemon does not accept connections until [`Server::run`].
    pub fn bind(config: ServeConfig) -> Result<Server, EngineError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| EngineError::io(format!("bind {}", config.addr), e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| EngineError::io("set listener non-blocking", e))?;
        let cache = Arc::new(match &config.cache {
            Some(dir) => ResultCache::on_disk(dir),
            None => ResultCache::in_memory(),
        });
        let inner = Arc::new(Inner {
            config,
            cache,
            telemetry: Telemetry::enabled(),
            state: Mutex::new(State {
                campaigns: BTreeMap::new(),
                queue: VecDeque::new(),
            }),
            work: Condvar::new(),
            next_id: AtomicU64::new(1),
            stop: AtomicU8::new(RUN),
            submissions: AtomicU64::new(0),
            admission_rejected: AtomicU64::new(0),
            quota_rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            cells_computed: AtomicU64::new(0),
            cells_memory_hits: AtomicU64::new(0),
            cells_disk_hits: AtomicU64::new(0),
        });
        Ok(Server { listener, inner })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> Result<SocketAddr, EngineError> {
        self.listener
            .local_addr()
            .map_err(|e| EngineError::io("read local addr", e))
    }

    /// A control handle usable from other threads while `run` blocks.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            inner: self.inner.clone(),
        }
    }

    /// Serve until shutdown: spawn the worker pool, accept and handle
    /// connections, then drain, persist the shutdown report, and
    /// return it.
    ///
    /// During a drain the daemon keeps answering `status`, `cancel`,
    /// and `events` connections (new submissions are refused) until
    /// the last in-flight campaign finishes; only then does it stop
    /// accepting and exit.
    pub fn run(self) -> Result<ShutdownReport, EngineError> {
        let active = Arc::new(AtomicUsize::new(self.inner.config.max_running.max(1)));
        let workers: Vec<_> = (0..self.inner.config.max_running.max(1))
            .map(|w| {
                let inner = self.inner.clone();
                let active = active.clone();
                thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || {
                        worker_loop(&inner);
                        active.fetch_sub(1, Ordering::Relaxed);
                    })
                    .map_err(|e| EngineError::io("spawn serve worker", e))
            })
            .collect::<Result<_, _>>()?;

        loop {
            if self.inner.stop.load(Ordering::Relaxed) != RUN && active.load(Ordering::Relaxed) == 0
            {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let inner = self.inner.clone();
                    // Handler threads are detached: each serves one
                    // request and exits; `events` subscribers park
                    // their socket in the campaign's log.
                    let _ = thread::Builder::new()
                        .name("serve-conn".into())
                        .spawn(move || handle_connection(&inner, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(EngineError::io("accept connection", e)),
            }
        }

        for worker in workers {
            let _ = worker.join();
        }

        let report = self.inner.shutdown_report();
        if let Some(path) = &self.inner.config.shutdown_report {
            let json = serde::json::to_string(&report);
            std::fs::write(path, format!("{json}\n"))
                .map_err(|e| EngineError::io(format!("write {}", path.display()), e))?;
        }
        Ok(report)
    }
}

impl Inner {
    /// Admission path shared by `submit` and `resume`.
    fn submit(&self, mut spec: SweepSpec, backend: BackendChoice) -> Response {
        if self.stop.load(Ordering::Relaxed) != RUN {
            self.admission_rejected.fetch_add(1, Ordering::Relaxed);
            self.telemetry.count("serve.admission_rejected", 1);
            return Response::Error {
                kind: "admission".into(),
                message: "server is shutting down".into(),
            };
        }
        // A per-spec jobs cap serializes capped campaigns process-wide
        // (the engine guards them with a global mutex), which would
        // defeat the whole point of a multiplexing service — strip it.
        spec.jobs = None;
        // Reject malformed backend choices before admission, with the
        // same structured kind a bad spec would get.
        match &backend {
            BackendChoice::MultiProcess { workers: 0 } => {
                return Response::Error {
                    kind: "spec".into(),
                    message: "backend worker count must be positive".into(),
                }
            }
            BackendChoice::SharedFs { spool } if spool.is_empty() => {
                return Response::Error {
                    kind: "spec".into(),
                    message: "backend spool directory must not be empty".into(),
                }
            }
            _ => {}
        }
        // Validate and size the campaign before admitting it; the
        // throwaway Campaign never runs.
        let sized = Campaign::builder(spec.clone())
            .cache(self.cache.clone())
            .build()
            .and_then(|c| c.dry_run());
        let dry = match sized {
            Ok(dry) => dry,
            Err(e) => {
                return Response::Error {
                    kind: e.kind().into(),
                    message: e.to_string(),
                }
            }
        };
        if let Some(quota) = self.config.max_cells {
            if dry.cells > quota {
                self.quota_rejected.fetch_add(1, Ordering::Relaxed);
                self.telemetry.count("serve.quota_rejected", 1);
                return Response::Error {
                    kind: "quota".into(),
                    message: format!(
                        "campaign {:?} has {} cells, per-campaign quota is {quota}",
                        spec.name, dry.cells
                    ),
                };
            }
        }
        let mut state = self.state.lock().unwrap();
        if state.queue.len() >= self.config.max_queued {
            self.admission_rejected.fetch_add(1, Ordering::Relaxed);
            self.telemetry.count("serve.admission_rejected", 1);
            return Response::Error {
                kind: "admission".into(),
                message: format!(
                    "queue is full ({} campaigns waiting, capacity {})",
                    state.queue.len(),
                    self.config.max_queued
                ),
            };
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let name = spec.name.clone();
        state.campaigns.insert(
            id,
            Entry {
                name: name.clone(),
                spec,
                backend,
                state: CampaignState::Queued,
                cells: dry.cells,
                rows: Arc::new(AtomicUsize::new(0)),
                error: None,
                cancel: CancelToken::new(),
                log: Arc::new(EventLog::new()),
            },
        );
        state.queue.push_back(id);
        let queue_depth = state.queue.len();
        drop(state);
        self.submissions.fetch_add(1, Ordering::Relaxed);
        self.telemetry.count("serve.submissions", 1);
        self.telemetry
            .count("serve.queue_depth_on_submit", queue_depth as u64);
        self.work.notify_one();
        Response::Submitted(Submitted {
            id,
            name,
            cells: dry.cells,
            references: dry.references,
            queue_depth,
        })
    }

    fn status(&self, id: Option<u64>) -> Response {
        let state = self.state.lock().unwrap();
        if let Some(id) = id {
            if !state.campaigns.contains_key(&id) {
                return unknown_id(id);
            }
        }
        let campaigns: Vec<CampaignStatus> = state
            .campaigns
            .iter()
            .filter(|(cid, _)| id.is_none_or(|want| **cid == want))
            .map(|(cid, e)| CampaignStatus {
                id: *cid,
                name: e.name.clone(),
                state: e.state,
                cells: e.cells,
                rows: e.rows.load(Ordering::Relaxed),
                error: e.error.clone(),
            })
            .collect();
        let running = state
            .campaigns
            .values()
            .filter(|e| e.state == CampaignState::Running)
            .count();
        let queued = state.queue.len();
        drop(state);
        Response::Status(StatusReport {
            server: ServerStatus {
                running,
                queued,
                max_running: self.config.max_running.max(1),
                max_queued: self.config.max_queued,
                max_cells: self.config.max_cells,
                submissions: self.submissions.load(Ordering::Relaxed),
                admission_rejected: self.admission_rejected.load(Ordering::Relaxed),
                quota_rejected: self.quota_rejected.load(Ordering::Relaxed),
                completed: self.completed.load(Ordering::Relaxed),
                failed: self.failed.load(Ordering::Relaxed),
                cancelled: self.cancelled.load(Ordering::Relaxed),
                cells_computed: self.cells_computed.load(Ordering::Relaxed),
                cells_memory_hits: self.cells_memory_hits.load(Ordering::Relaxed),
                cells_disk_hits: self.cells_disk_hits.load(Ordering::Relaxed),
            },
            campaigns,
        })
    }

    fn cancel(&self, id: u64) -> Response {
        let mut state = self.state.lock().unwrap();
        let Some(entry) = state.campaigns.get_mut(&id) else {
            return unknown_id(id);
        };
        match entry.state {
            CampaignState::Queued => {
                entry.state = CampaignState::Cancelled;
                entry.error = Some(EngineError::cancelled().to_string());
                finish_log_with_error(&entry.log, &EngineError::cancelled());
                state.queue.retain(|qid| *qid != id);
                drop(state);
                self.cancelled.fetch_add(1, Ordering::Relaxed);
                self.telemetry.count("serve.campaigns_cancelled", 1);
                Response::Ack {
                    message: format!("cancelled queued campaign {id}"),
                }
            }
            CampaignState::Running => {
                // Cooperative: the campaign stops at its next cell
                // boundary and the worker records the final state.
                entry.cancel.cancel();
                Response::Ack {
                    message: format!("cancel requested for running campaign {id}"),
                }
            }
            finished => Response::Ack {
                message: format!("campaign {id} already {}", finished.as_str()),
            },
        }
    }

    fn resume(&self, id: u64) -> Response {
        let state = self.state.lock().unwrap();
        let Some(entry) = state.campaigns.get(&id) else {
            return unknown_id(id);
        };
        match entry.state {
            CampaignState::Failed | CampaignState::Cancelled => {
                let spec = entry.spec.clone();
                let backend = entry.backend.clone();
                drop(state);
                // Re-admission over the shared cache: finished cells
                // are hits, so only the missing tail is recomputed.
                // SharedFs resumes fall back to in-process: the old
                // spool directory already hosted a campaign and cannot
                // be reused, but the cache still carries the work.
                let backend = match backend {
                    BackendChoice::SharedFs { .. } => BackendChoice::InProcess,
                    other => other,
                };
                self.submit(spec, backend)
            }
            CampaignState::Done => Response::Error {
                kind: "state".into(),
                message: format!("campaign {id} already completed; nothing to resume"),
            },
            CampaignState::Queued | CampaignState::Running => Response::Error {
                kind: "state".into(),
                message: format!("campaign {id} is still active; cancel it first"),
            },
        }
    }

    fn events_log(&self, id: u64) -> Result<Arc<EventLog>, Box<Response>> {
        let state = self.state.lock().unwrap();
        match state.campaigns.get(&id) {
            Some(entry) => Ok(entry.log.clone()),
            None => Err(Box::new(unknown_id(id))),
        }
    }

    /// Apply a shutdown request: flip the flag, cancel what the mode
    /// says to cancel, and wake the pool. Returns the ack message.
    fn shutdown(&self, mode: ShutdownMode) -> String {
        let level = match mode {
            ShutdownMode::Drain => DRAIN,
            ShutdownMode::Now => NOW,
        };
        self.stop.fetch_max(level, Ordering::Relaxed);
        let mut state = self.state.lock().unwrap();
        // Queued campaigns never start under either mode.
        let queued: Vec<u64> = state.queue.drain(..).collect();
        for id in queued {
            if let Some(entry) = state.campaigns.get_mut(&id) {
                entry.state = CampaignState::Cancelled;
                entry.error = Some(EngineError::cancelled().to_string());
                finish_log_with_error(&entry.log, &EngineError::cancelled());
                self.cancelled.fetch_add(1, Ordering::Relaxed);
                self.telemetry.count("serve.campaigns_cancelled", 1);
            }
        }
        let mut interrupted = 0usize;
        if mode == ShutdownMode::Now {
            for entry in state.campaigns.values() {
                if entry.state == CampaignState::Running {
                    entry.cancel.cancel();
                    interrupted += 1;
                }
            }
        }
        let running = state
            .campaigns
            .values()
            .filter(|e| e.state == CampaignState::Running)
            .count();
        drop(state);
        self.work.notify_all();
        match mode {
            ShutdownMode::Drain => {
                format!("shutting down after draining {running} running campaign(s)")
            }
            ShutdownMode::Now => {
                format!("shutting down now, cancelling {interrupted} running campaign(s)")
            }
        }
    }

    fn shutdown_report(&self) -> ShutdownReport {
        let Response::Status(report) = self.status(None) else {
            unreachable!("status with id=None always succeeds");
        };
        let state = self.state.lock().unwrap();
        let unfinished = state
            .campaigns
            .iter()
            .filter(|(_, e)| e.state != CampaignState::Done)
            .map(|(id, e)| UnfinishedCampaign {
                id: *id,
                name: e.name.clone(),
                state: e.state,
                cells: e.cells,
                rows: e.rows.load(Ordering::Relaxed),
                spec: e.spec.clone(),
            })
            .collect();
        ShutdownReport {
            server: report.server,
            unfinished,
        }
    }
}

fn unknown_id(id: u64) -> Response {
    Response::Error {
        kind: "unknown-id".into(),
        message: format!("no campaign with id {id}"),
    }
}

/// Terminate a log the way a failed `sweep-worker` terminates its
/// stdout: one final structured error event, then EOF.
fn finish_log_with_error(log: &EventLog, error: &EngineError) {
    log.append(encode_event(&CampaignEvent::Error {
        message: error.to_string(),
        kind: Some(error.kind().to_string()),
    }));
    log.close();
}

/// One worker-pool thread: pop campaign ids off the queue and run
/// them until a shutdown drains the queue.
fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let id = {
            let mut state = inner.state.lock().unwrap();
            loop {
                if let Some(id) = state.queue.pop_front() {
                    break id;
                }
                if inner.stop.load(Ordering::Relaxed) != RUN {
                    return;
                }
                state = inner.work.wait(state).unwrap();
            }
        };
        run_campaign(inner, id);
    }
}

/// Execute one queued campaign on the shared cache, mirroring its
/// events into the log and folding its outcome into process totals.
fn run_campaign(inner: &Arc<Inner>, id: u64) {
    let (spec, backend, cancel, log, rows) = {
        let mut state = inner.state.lock().unwrap();
        let Some(entry) = state.campaigns.get_mut(&id) else {
            return;
        };
        // Cancelled (or shutdown-drained) between pop and here.
        if entry.state != CampaignState::Queued {
            return;
        }
        entry.state = CampaignState::Running;
        (
            entry.spec.clone(),
            entry.backend.clone(),
            entry.cancel.clone(),
            entry.log.clone(),
            entry.rows.clone(),
        )
    };

    // Per-campaign telemetry child: fresh aggregates, shared sink;
    // merged back into the process handle below.
    let child = inner.telemetry.child();
    let mut builder = Campaign::builder(spec)
        .cache(inner.cache.clone())
        .telemetry(child.clone())
        .cancel_token(cancel)
        .observer(LogObserver {
            log: log.clone(),
            rows,
        });
    // Per-campaign execution backend (ROADMAP round 2 (c)): the
    // default stays in-process on the shared pool; multi-process and
    // cross-host spool campaigns run their workers against the same
    // shared cache, so the cross-campaign cache dividend is unchanged.
    builder = match backend {
        BackendChoice::InProcess => builder,
        BackendChoice::MultiProcess { workers } => builder.backend(MultiProcess::new(workers)),
        BackendChoice::SharedFs { spool } => builder.backend(SharedFs::new(spool)),
    };
    let result = builder.build().and_then(|c| c.run());
    inner.telemetry.merge(&child.snapshot());

    let mut state = inner.state.lock().unwrap();
    let Some(entry) = state.campaigns.get_mut(&id) else {
        return;
    };
    match result {
        Ok(outcome) => {
            entry.state = CampaignState::Done;
            log.close();
            drop(state);
            inner.completed.fetch_add(1, Ordering::Relaxed);
            inner
                .cells_computed
                .fetch_add(outcome.cells_computed as u64, Ordering::Relaxed);
            inner
                .cells_memory_hits
                .fetch_add(outcome.cells_memory_hits as u64, Ordering::Relaxed);
            inner
                .cells_disk_hits
                .fetch_add(outcome.cells_disk_hits as u64, Ordering::Relaxed);
            inner.telemetry.count("serve.campaigns_completed", 1);
            inner
                .telemetry
                .count("serve.cells_computed", outcome.cells_computed as u64);
            inner
                .telemetry
                .count("serve.cells_memory_hits", outcome.cells_memory_hits as u64);
            inner
                .telemetry
                .count("serve.cells_disk_hits", outcome.cells_disk_hits as u64);
        }
        Err(error) => {
            let was_cancel = error.kind() == "cancelled";
            entry.state = if was_cancel {
                CampaignState::Cancelled
            } else {
                CampaignState::Failed
            };
            entry.error = Some(error.to_string());
            finish_log_with_error(&log, &error);
            drop(state);
            if was_cancel {
                inner.cancelled.fetch_add(1, Ordering::Relaxed);
                inner.telemetry.count("serve.campaigns_cancelled", 1);
            } else {
                inner.failed.fetch_add(1, Ordering::Relaxed);
                inner.telemetry.count("serve.campaigns_failed", 1);
            }
        }
    }
}

/// Serve one connection: one request line, one response line; for
/// `events` the socket is then handed to the campaign's log.
fn handle_connection(inner: &Arc<Inner>, stream: TcpStream) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() || line.trim().is_empty() {
        respond(
            stream,
            &Response::Error {
                kind: "protocol".into(),
                message: "expected one request line".into(),
            },
        );
        return;
    }
    let request = match decode_request(&line) {
        Ok(r) => r,
        Err(message) => {
            respond(
                stream,
                &Response::Error {
                    kind: "protocol".into(),
                    message,
                },
            );
            return;
        }
    };
    match request {
        Request::Submit { spec, backend } => respond(stream, &inner.submit(spec, backend)),
        Request::Status { id } => respond(stream, &inner.status(id)),
        Request::Cancel { id } => respond(stream, &inner.cancel(id)),
        Request::Resume { id } => respond(stream, &inner.resume(id)),
        Request::Shutdown { mode } => {
            let message = inner.shutdown(mode);
            respond(stream, &Response::Ack { message });
        }
        Request::Events { id } => {
            let mut stream = stream;
            match inner.events_log(id) {
                Ok(log) => {
                    if write_line(&mut stream, &encode_response(&Response::Subscribed { id }))
                        .is_ok()
                    {
                        log.subscribe(stream);
                    }
                }
                Err(error) => respond(stream, &error),
            }
        }
    }
}

fn respond(mut stream: TcpStream, response: &Response) {
    let _ = write_line(&mut stream, &encode_response(response));
    let _ = stream.shutdown(Shutdown::Both);
}
