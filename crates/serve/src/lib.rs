//! # stochdag-serve — resident campaign service
//!
//! A long-running daemon that multiplexes **concurrent clients over
//! one shared result cache and one bounded worker pool**. Where
//! `stochdag sweep` builds a fresh process (and, by default, a fresh
//! cache) per campaign, the service keeps the memory cache tier
//! resident: when several clients sweep overlapping (DAG, pfail,
//! estimator) grids, each cell is computed once and every later
//! campaign gets it as a memory-tier hit.
//!
//! The moving parts:
//!
//! * [`Server`] — binds a loopback TCP listener ([`ServeConfig`]),
//!   admits campaigns through a per-campaign cell quota and a bounded
//!   queue, runs them on a fixed-size worker pool over one shared
//!   [`ResultCache`](stochdag_engine::ResultCache), and buffers each
//!   campaign's full event stream for subscribers. Shutdown (request
//!   or signal) drains in-flight work and persists a resume report.
//! * [`protocol`] — the line-delimited JSON request/response
//!   vocabulary ([`Request`]/[`Response`]), sharing the engine's
//!   [`CampaignEvent`](stochdag_engine::CampaignEvent) wire format for
//!   event streams.
//! * [`ServeClient`] — the documented public client API: typed
//!   [`Submitted`]/[`StatusReport`] returns, an [`EventStream`]
//!   iterator of decoded
//!   [`CampaignEvent`](stochdag_engine::CampaignEvent)s from
//!   [`events`](ServeClient::events), per-campaign execution backends
//!   via [`submit_on`](ServeClient::submit_on) ([`BackendChoice`]:
//!   in-process, multi-process, or a cross-host spool directory), and
//!   [`run_to_sinks`](ServeClient::run_to_sinks) replaying a served
//!   event stream through the engine's stream merger — producing
//!   CSV/JSONL **byte-identical** to an in-process run.
//!
//! No runtime, no new dependencies: `std::net` sockets and OS threads,
//! matching the engine's process-based distribution design.
//!
//! ## Quickstart
//!
//! ```
//! use std::thread;
//! use stochdag_engine::{SweepSpec, VecSink, ProgressMode, ResultSink};
//! use stochdag_serve::{Server, ServeClient, ServeConfig, ShutdownMode};
//!
//! let server = Server::bind(ServeConfig::default()).unwrap();
//! let addr = server.local_addr().unwrap().to_string();
//! let handle = server.handle();
//! let daemon = thread::spawn(move || server.run().unwrap());
//!
//! let spec = SweepSpec::from_str_auto(r#"
//!     name = "doc"
//!     pfails = [0.01]
//!     estimators = ["first-order"]
//!     reference_trials = 200
//!     [[dags]]
//!     kind = "cholesky"
//!     ks = [2]
//! "#).unwrap();
//!
//! let client = ServeClient::connect_to(&addr);
//! let ticket = client.submit(&spec).unwrap();
//! let mut rows = VecSink::default();
//! {
//!     let mut sinks: Vec<&mut dyn ResultSink> = vec![&mut rows];
//!     let outcome = client
//!         .run_to_sinks(ticket.id, &mut sinks, ProgressMode::None)
//!         .unwrap();
//!     assert_eq!(outcome.cells, 1);
//! }
//!
//! client.shutdown(ShutdownMode::Drain).unwrap();
//! let report = daemon.join().unwrap();
//! assert_eq!(report.server.completed, 1);
//! # let _ = handle;
//! ```

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{EventStream, ServeClient, ServeError};
pub use protocol::{
    BackendChoice, CampaignState, CampaignStatus, Request, Response, ServerStatus, ShutdownMode,
    StatusReport, Submitted,
};
pub use server::{ServeConfig, ServeHandle, Server, ShutdownReport, UnfinishedCampaign};
