//! Blocking client for the campaign service.
//!
//! [`ServeClient`] speaks the [`protocol`](crate::protocol) over plain
//! TCP: one connection per request, one JSON line each way. The
//! high-level [`ServeClient::run_to_sinks`] subscribes to a campaign's
//! event stream and replays it through the engine's
//! [`merge_event_streams`] — the same code path a distributed
//! `sweep --workers N` uses — so the files it writes are byte-identical
//! to an in-process [`Campaign::run`] over the same cache.
//!
//! [`Campaign::run`]: stochdag_engine::Campaign::run

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use stochdag_engine::{
    decode_event, merge_event_streams, CampaignEvent, EngineError, ProgressMode, ProgressReporter,
    ResultSink, SweepOutcome, SweepSpec,
};

use crate::protocol::{
    decode_response, encode_request, BackendChoice, Request, Response, ShutdownMode, StatusReport,
    Submitted,
};

/// A failed service interaction: transport problems, protocol
/// violations, and structured server-side refusals all normalise to a
/// stable `kind` plus a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeError {
    /// Stable machine-readable kind — a protocol error kind
    /// (`"quota"`, `"admission"`, `"unknown-id"`, `"state"`,
    /// `"protocol"`), an engine error kind, or `"io"` for transport
    /// failures.
    pub kind: String,
    /// Human-readable description.
    pub message: String,
}

impl ServeError {
    fn io(context: &str, e: std::io::Error) -> ServeError {
        ServeError {
            kind: "io".into(),
            message: format!("{context}: {e}"),
        }
    }

    fn protocol(message: impl Into<String>) -> ServeError {
        ServeError {
            kind: "protocol".into(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.message, self.kind)
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> ServeError {
        ServeError {
            kind: e.kind().to_string(),
            message: e.to_string(),
        }
    }
}

impl From<ServeError> for String {
    fn from(e: ServeError) -> String {
        e.to_string()
    }
}

/// Client handle for one daemon address. Cheap to construct; every
/// request opens its own short-lived connection.
#[derive(Clone, Debug)]
pub struct ServeClient {
    addr: String,
}

impl ServeClient {
    /// Target a daemon at `addr` (e.g. `"127.0.0.1:7677"`).
    pub fn connect_to(addr: impl Into<String>) -> ServeClient {
        ServeClient { addr: addr.into() }
    }

    /// The daemon address this client targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Open a connection, send one request line, and return the
    /// stream positioned after it plus a reader for responses.
    fn send(&self, request: &Request) -> Result<(TcpStream, BufReader<TcpStream>), ServeError> {
        let mut stream = TcpStream::connect(&self.addr)
            .map_err(|e| ServeError::io(&format!("connect {}", self.addr), e))?;
        let line = encode_request(request);
        stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .map_err(|e| ServeError::io("send request", e))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| ServeError::io("clone stream", e))?,
        );
        Ok((stream, reader))
    }

    /// Send one request and read its single response line.
    fn round_trip(&self, request: &Request) -> Result<Response, ServeError> {
        let (_stream, mut reader) = self.send(request)?;
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| ServeError::io("read response", e))?;
        if line.trim().is_empty() {
            return Err(ServeError::protocol("server closed without a response"));
        }
        match decode_response(&line).map_err(ServeError::protocol)? {
            Response::Error { kind, message } => Err(ServeError { kind, message }),
            response => Ok(response),
        }
    }

    /// Submit a campaign spec on the daemon's default in-process
    /// backend; returns the admission receipt.
    pub fn submit(&self, spec: &SweepSpec) -> Result<Submitted, ServeError> {
        self.submit_on(spec, BackendChoice::InProcess)
    }

    /// Submit a campaign spec on an explicit execution backend
    /// (in-process, multi-process, or a cross-host spool directory
    /// reachable from the daemon's host).
    pub fn submit_on(
        &self,
        spec: &SweepSpec,
        backend: BackendChoice,
    ) -> Result<Submitted, ServeError> {
        match self.round_trip(&Request::Submit {
            spec: spec.clone(),
            backend,
        })? {
            Response::Submitted(s) => Ok(s),
            other => Err(ServeError::protocol(format!(
                "expected submitted, got {other:?}"
            ))),
        }
    }

    /// Fetch a status report: one campaign (`Some(id)`) or everything.
    pub fn status(&self, id: Option<u64>) -> Result<StatusReport, ServeError> {
        match self.round_trip(&Request::Status { id })? {
            Response::Status(report) => Ok(report),
            other => Err(ServeError::protocol(format!(
                "expected status, got {other:?}"
            ))),
        }
    }

    /// Cancel a campaign; returns the server's acknowledgement.
    pub fn cancel(&self, id: u64) -> Result<String, ServeError> {
        match self.round_trip(&Request::Cancel { id })? {
            Response::Ack { message } => Ok(message),
            other => Err(ServeError::protocol(format!("expected ack, got {other:?}"))),
        }
    }

    /// Re-submit a failed or cancelled campaign's spec (cache-first,
    /// so only unfinished cells recompute).
    pub fn resume(&self, id: u64) -> Result<Submitted, ServeError> {
        match self.round_trip(&Request::Resume { id })? {
            Response::Submitted(s) => Ok(s),
            other => Err(ServeError::protocol(format!(
                "expected submitted, got {other:?}"
            ))),
        }
    }

    /// Ask the daemon to shut down; returns the acknowledgement.
    pub fn shutdown(&self, mode: ShutdownMode) -> Result<String, ServeError> {
        match self.round_trip(&Request::Shutdown { mode })? {
            Response::Ack { message } => Ok(message),
            other => Err(ServeError::protocol(format!("expected ack, got {other:?}"))),
        }
    }

    /// Subscribe to a campaign's event stream as typed
    /// [`CampaignEvent`]s — the full stream from the beginning,
    /// however late the subscription; the iterator ends when the
    /// campaign finishes. A campaign that failed (or was cancelled)
    /// ends its stream with a [`CampaignEvent::Error`] item; transport
    /// or decode problems surface as `Err` items and end the stream.
    pub fn events(&self, id: u64) -> Result<EventStream, ServeError> {
        Ok(EventStream {
            reader: self.events_raw(id)?,
            done: false,
        })
    }

    /// The raw subscription reader (one encoded event per line) —
    /// exactly what [`merge_event_streams`] consumes.
    fn events_raw(&self, id: u64) -> Result<BufReader<TcpStream>, ServeError> {
        let (_stream, mut reader) = self.send(&Request::Events { id })?;
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| ServeError::io("read subscribe ack", e))?;
        match decode_response(&line).map_err(ServeError::protocol)? {
            Response::Subscribed { .. } => Ok(reader),
            Response::Error { kind, message } => Err(ServeError { kind, message }),
            other => Err(ServeError::protocol(format!(
                "expected subscribed, got {other:?}"
            ))),
        }
    }

    /// Stream a campaign into local sinks and return its outcome.
    ///
    /// Subscribes to the event stream and replays it through the
    /// engine's [`merge_event_streams`], exactly as a distributed
    /// sweep merges its workers' stdout — so CSV/JSONL written here is
    /// byte-identical to running the same spec in-process over the
    /// same cache. A campaign that failed (or was cancelled) ends its
    /// stream with a structured error event, which surfaces here as
    /// the corresponding [`EngineError`] wrapped in [`ServeError`].
    pub fn run_to_sinks(
        &self,
        id: u64,
        sinks: &mut [&mut dyn ResultSink],
        progress: ProgressMode,
    ) -> Result<SweepOutcome, ServeError> {
        let reader = self.events_raw(id)?;
        let mut progress = ProgressReporter::stderr(progress);
        let outcome = merge_event_streams(vec![reader], sinks, &mut progress)?;
        Ok(outcome)
    }
}

/// A campaign's event subscription as an iterator of decoded
/// [`CampaignEvent`]s (from [`ServeClient::events`]). Yields the full
/// stream from the campaign's beginning and ends when the server
/// closes the subscription; a transport or decode failure yields one
/// `Err` and then ends.
pub struct EventStream {
    reader: BufReader<TcpStream>,
    done: bool,
}

impl Iterator for EventStream {
    type Item = Result<CampaignEvent, ServeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Err(e) => {
                self.done = true;
                Some(Err(ServeError::io("read event stream", e)))
            }
            Ok(0) => {
                self.done = true;
                None
            }
            Ok(_) => match decode_event(&line) {
                Ok(event) => Some(Ok(event)),
                Err(message) => {
                    self.done = true;
                    Some(Err(ServeError::protocol(message)))
                }
            },
        }
    }
}
