//! The client ↔ daemon wire protocol of the campaign service.
//!
//! Same shape as the engine's worker protocol (`crate::protocol` of
//! `stochdag-engine`): **line-delimited JSON**, one `"type"`-tagged
//! object per line, over a plain TCP connection on the loopback
//! interface. A connection carries exactly one [`Request`] line and one
//! [`Response`] line — except `events`, whose response line is followed
//! by the campaign's raw
//! [`CampaignEvent`](stochdag_engine::CampaignEvent) stream (the
//! engine wire vocabulary, unchanged) until the server closes the
//! connection.
//!
//! | request | response | then |
//! |---------|----------|------|
//! | `submit` | `submitted` \| `error` | connection closes |
//! | `status` | `status` \| `error` | connection closes |
//! | `events` | `subscribed` \| `error` | raw `CampaignEvent` lines until EOF |
//! | `cancel` | `ack` \| `error` | connection closes |
//! | `resume` | `submitted` \| `error` | connection closes |
//! | `shutdown` | `ack` | connection closes |
//!
//! The `events` stream is **exactly** what a `sweep-worker` process
//! writes on stdout, so a client replays it through
//! [`merge_event_streams`](stochdag_engine::merge_event_streams) and
//! gets CSV/JSONL byte-identical to an in-process
//! [`Campaign::run`](stochdag_engine::Campaign::run) over the same
//! cache. A failed or cancelled campaign ends its stream with a
//! [`CampaignEvent::Error`](stochdag_engine::CampaignEvent) line whose
//! `kind` is the structured
//! [`EngineError::kind`](stochdag_engine::EngineError::kind).
//!
//! Errors are structured: every [`Response::Error`] carries a stable
//! machine-readable `kind` (`"quota"`, `"admission"`, `"unknown-id"`,
//! `"state"`, `"protocol"`, or an engine error kind) next to the
//! human-readable message, so clients can branch without parsing prose.

use serde::{Deserialize, Serialize, Value};
use stochdag_engine::SweepSpec;

/// Which engine [`ExecBackend`](stochdag_engine::ExecBackend) a served
/// campaign runs on. Per-campaign: one daemon can run an in-process
/// campaign, a multi-process one, and a cross-host spool campaign
/// concurrently over the same shared cache.
///
/// On the wire this is an optional `backend` object on `submit`;
/// absent means [`InProcess`](BackendChoice::InProcess), so v1 clients
/// keep working unchanged.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum BackendChoice {
    /// Work-stealing threads inside the daemon (the default).
    #[default]
    InProcess,
    /// `workers` lease-pulling `sweep-worker` child processes sharing
    /// the daemon's on-disk cache.
    MultiProcess {
        /// Worker process count (must be positive).
        workers: usize,
    },
    /// Cross-host execution through a shared-filesystem spool
    /// directory; remote `sweep-worker --spool` processes do the work.
    SharedFs {
        /// Spool directory (must be empty; shared with the workers).
        spool: String,
    },
}

impl Serialize for BackendChoice {
    fn serialize(&self) -> Value {
        match self {
            BackendChoice::InProcess => Value::obj([("kind", Value::Str("in-process".into()))]),
            BackendChoice::MultiProcess { workers } => Value::obj([
                ("kind", Value::Str("multi-process".into())),
                ("workers", workers.serialize()),
            ]),
            BackendChoice::SharedFs { spool } => Value::obj([
                ("kind", Value::Str("shared-fs".into())),
                ("spool", spool.serialize()),
            ]),
        }
    }
}

impl Deserialize for BackendChoice {
    fn deserialize(v: &Value) -> Result<BackendChoice, serde::Error> {
        let kind = String::deserialize(v.require("kind")?)?;
        match kind.as_str() {
            "in-process" => Ok(BackendChoice::InProcess),
            "multi-process" => Ok(BackendChoice::MultiProcess {
                workers: usize::deserialize(v.require("workers")?)?,
            }),
            "shared-fs" => Ok(BackendChoice::SharedFs {
                spool: String::deserialize(v.require("spool")?)?,
            }),
            other => Err(serde::Error::new(format!("unknown backend {other:?}"))),
        }
    }
}

/// One client request (see the module table).
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit a campaign spec for execution. The server clears the
    /// spec's `jobs` cap (per-campaign thread caps would serialize
    /// concurrent campaigns process-wide); admission control and the
    /// per-campaign cell quota apply before the campaign is queued.
    Submit {
        /// The campaign to run (same spec model as `sweep --spec`).
        spec: SweepSpec,
        /// Execution backend for this campaign; `InProcess` is the
        /// wire default (the field is omitted when encoding it).
        backend: BackendChoice,
    },
    /// Report one campaign (`id` set) or the whole server (`id`
    /// unset): every campaign plus pool/cache/admission statistics.
    Status {
        /// Campaign to report, or `None` for everything.
        id: Option<u64>,
    },
    /// Subscribe to a campaign's event stream. Events already emitted
    /// are replayed first (a subscriber never misses the prefix), then
    /// live events follow; the server closes the connection after the
    /// final event.
    Events {
        /// Campaign to subscribe to.
        id: u64,
    },
    /// Cancel a campaign. Queued campaigns never start; running ones
    /// stop cooperatively at the next cell boundary (finished cells
    /// stay in the shared cache).
    Cancel {
        /// Campaign to cancel.
        id: u64,
    },
    /// Re-submit the spec of a failed or cancelled campaign as a new
    /// campaign. Execution is cache-first over the shared cache, so
    /// the new run recomputes only what the old one never finished.
    Resume {
        /// The failed/cancelled campaign whose spec to re-submit.
        id: u64,
    },
    /// Stop the server. `Drain` refuses new work, cancels queued
    /// campaigns, and lets running ones finish; `Now` also cancels
    /// running campaigns at their next cell boundary. Either way the
    /// server persists a shutdown report before exiting.
    Shutdown {
        /// How urgently to stop.
        mode: ShutdownMode,
    },
}

/// How a [`Request::Shutdown`] stops the server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Refuse new work, cancel the queue, finish running campaigns.
    Drain,
    /// Also cancel running campaigns at their next cell boundary.
    Now,
}

impl ShutdownMode {
    /// Stable wire name (`"drain"` / `"now"`).
    pub fn as_str(self) -> &'static str {
        match self {
            ShutdownMode::Drain => "drain",
            ShutdownMode::Now => "now",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<ShutdownMode> {
        match s {
            "drain" => Some(ShutdownMode::Drain),
            "now" => Some(ShutdownMode::Now),
            _ => None,
        }
    }
}

/// Lifecycle state of a submitted campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CampaignState {
    /// Admitted, waiting for a pool slot.
    Queued,
    /// Executing on the shared worker pool.
    Running,
    /// Finished successfully; the full event stream is replayable.
    Done,
    /// Failed with an engine error (carried in the status row and as
    /// the final `error` event of the stream).
    Failed,
    /// Cancelled before or during execution.
    Cancelled,
}

impl CampaignState {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            CampaignState::Queued => "queued",
            CampaignState::Running => "running",
            CampaignState::Done => "done",
            CampaignState::Failed => "failed",
            CampaignState::Cancelled => "cancelled",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<CampaignState> {
        match s {
            "queued" => Some(CampaignState::Queued),
            "running" => Some(CampaignState::Running),
            "done" => Some(CampaignState::Done),
            "failed" => Some(CampaignState::Failed),
            "cancelled" => Some(CampaignState::Cancelled),
            _ => None,
        }
    }

    /// Whether the campaign can still make progress.
    pub fn is_active(self) -> bool {
        matches!(self, CampaignState::Queued | CampaignState::Running)
    }
}

/// Acknowledgement of an admitted campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct Submitted {
    /// Server-assigned campaign id (use with `status`/`events`/
    /// `cancel`/`resume`).
    pub id: u64,
    /// The spec's campaign name.
    pub name: String,
    /// Estimator cells the campaign will execute (quota currency).
    pub cells: usize,
    /// Monte-Carlo reference scenarios the campaign needs.
    pub references: usize,
    /// Campaigns queued ahead of or including this one.
    pub queue_depth: usize,
}

/// One campaign's row in a status report.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignStatus {
    /// Server-assigned campaign id.
    pub id: u64,
    /// The spec's campaign name.
    pub name: String,
    /// Lifecycle state.
    pub state: CampaignState,
    /// Total estimator cells.
    pub cells: usize,
    /// Cells completed so far (== `cells` once done).
    pub rows: usize,
    /// The failure, for `Failed`/`Cancelled` campaigns.
    pub error: Option<String>,
}

/// Whole-server statistics in a status report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServerStatus {
    /// Campaigns currently executing.
    pub running: usize,
    /// Campaigns waiting for a pool slot.
    pub queued: usize,
    /// Worker pool size (concurrent campaign ceiling).
    pub max_running: usize,
    /// Queue capacity; submissions beyond it are rejected
    /// (`kind = "admission"`).
    pub max_queued: usize,
    /// Per-campaign cell quota; bigger specs are rejected
    /// (`kind = "quota"`). `None` = unlimited.
    pub max_cells: Option<usize>,
    /// Campaigns admitted since the server started.
    pub submissions: u64,
    /// Submissions rejected because the queue was full.
    pub admission_rejected: u64,
    /// Submissions rejected for exceeding the cell quota.
    pub quota_rejected: u64,
    /// Campaigns finished successfully.
    pub completed: u64,
    /// Campaigns that failed.
    pub failed: u64,
    /// Campaigns cancelled (before or during execution).
    pub cancelled: u64,
    /// Cells computed fresh, across every finished campaign.
    pub cells_computed: u64,
    /// Cells served from the shared memory tier — the cross-campaign
    /// cache dividend.
    pub cells_memory_hits: u64,
    /// Cells served from the disk tier.
    pub cells_disk_hits: u64,
}

impl ServerStatus {
    /// Fraction of finished cells served from either cache tier
    /// (0 when nothing has finished).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.cells_memory_hits + self.cells_disk_hits;
        let total = hits + self.cells_computed;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// A full status report: server statistics plus campaign rows
/// (all campaigns, or just the requested one), sorted by id.
#[derive(Clone, Debug, PartialEq)]
pub struct StatusReport {
    /// Whole-server statistics.
    pub server: ServerStatus,
    /// Campaign rows, ascending by id.
    pub campaigns: Vec<CampaignStatus>,
}

/// One server response (see the module table).
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The campaign was admitted and queued.
    Submitted(Submitted),
    /// Status report for `status`.
    Status(StatusReport),
    /// `events` accepted; raw [`CampaignEvent`] lines follow until the
    /// server closes the connection.
    ///
    /// [`CampaignEvent`]: stochdag_engine::CampaignEvent
    Subscribed {
        /// The subscribed campaign.
        id: u64,
    },
    /// `cancel`/`shutdown` acknowledgement.
    Ack {
        /// What the server did.
        message: String,
    },
    /// The request was refused; `kind` is stable and machine-readable
    /// (see the module docs for the vocabulary).
    Error {
        /// Stable error kind.
        kind: String,
        /// Human-readable description.
        message: String,
    },
}

impl Serialize for Request {
    fn serialize(&self) -> Value {
        match self {
            Request::Submit { spec, backend } => {
                let mut fields = vec![
                    ("type", Value::Str("submit".into())),
                    ("spec", spec.serialize()),
                ];
                if backend != &BackendChoice::InProcess {
                    fields.push(("backend", backend.serialize()));
                }
                Value::obj(fields)
            }
            Request::Status { id } => {
                let mut fields = vec![("type", Value::Str("status".into()))];
                if let Some(id) = id {
                    fields.push(("id", id.serialize()));
                }
                Value::obj(fields)
            }
            Request::Events { id } => Value::obj([
                ("type", Value::Str("events".into())),
                ("id", id.serialize()),
            ]),
            Request::Cancel { id } => Value::obj([
                ("type", Value::Str("cancel".into())),
                ("id", id.serialize()),
            ]),
            Request::Resume { id } => Value::obj([
                ("type", Value::Str("resume".into())),
                ("id", id.serialize()),
            ]),
            Request::Shutdown { mode } => Value::obj([
                ("type", Value::Str("shutdown".into())),
                ("mode", Value::Str(mode.as_str().into())),
            ]),
        }
    }
}

impl Deserialize for Request {
    fn deserialize(v: &Value) -> Result<Request, serde::Error> {
        let tag = String::deserialize(v.require("type")?)?;
        match tag.as_str() {
            "submit" => Ok(Request::Submit {
                spec: SweepSpec::deserialize(v.require("spec")?)?,
                backend: match v.get("backend") {
                    None | Some(Value::Null) => BackendChoice::InProcess,
                    Some(b) => BackendChoice::deserialize(b)?,
                },
            }),
            "status" => Ok(Request::Status {
                id: match v.get("id") {
                    None | Some(Value::Null) => None,
                    Some(id) => Some(u64::deserialize(id)?),
                },
            }),
            "events" => Ok(Request::Events {
                id: u64::deserialize(v.require("id")?)?,
            }),
            "cancel" => Ok(Request::Cancel {
                id: u64::deserialize(v.require("id")?)?,
            }),
            "resume" => Ok(Request::Resume {
                id: u64::deserialize(v.require("id")?)?,
            }),
            "shutdown" => {
                let mode = String::deserialize(v.require("mode")?)?;
                Ok(Request::Shutdown {
                    mode: ShutdownMode::parse(&mode).ok_or_else(|| {
                        serde::Error::new(format!("unknown shutdown mode {mode:?}"))
                    })?,
                })
            }
            other => Err(serde::Error::new(format!("unknown request {other:?}"))),
        }
    }
}

impl Serialize for CampaignStatus {
    fn serialize(&self) -> Value {
        let mut fields = vec![
            ("id", self.id.serialize()),
            ("name", self.name.serialize()),
            ("state", Value::Str(self.state.as_str().into())),
            ("cells", self.cells.serialize()),
            ("rows", self.rows.serialize()),
        ];
        if let Some(error) = &self.error {
            fields.push(("error", error.serialize()));
        }
        Value::obj(fields)
    }
}

impl Deserialize for CampaignStatus {
    fn deserialize(v: &Value) -> Result<CampaignStatus, serde::Error> {
        let state = String::deserialize(v.require("state")?)?;
        Ok(CampaignStatus {
            id: u64::deserialize(v.require("id")?)?,
            name: String::deserialize(v.require("name")?)?,
            state: CampaignState::parse(&state)
                .ok_or_else(|| serde::Error::new(format!("unknown campaign state {state:?}")))?,
            cells: usize::deserialize(v.require("cells")?)?,
            rows: usize::deserialize(v.require("rows")?)?,
            error: match v.get("error") {
                None | Some(Value::Null) => None,
                Some(e) => Some(String::deserialize(e)?),
            },
        })
    }
}

impl Serialize for ServerStatus {
    fn serialize(&self) -> Value {
        Value::obj([
            ("running", self.running.serialize()),
            ("queued", self.queued.serialize()),
            ("max_running", self.max_running.serialize()),
            ("max_queued", self.max_queued.serialize()),
            ("max_cells", self.max_cells.serialize()),
            ("submissions", self.submissions.serialize()),
            ("admission_rejected", self.admission_rejected.serialize()),
            ("quota_rejected", self.quota_rejected.serialize()),
            ("completed", self.completed.serialize()),
            ("failed", self.failed.serialize()),
            ("cancelled", self.cancelled.serialize()),
            ("cells_computed", self.cells_computed.serialize()),
            ("cells_memory_hits", self.cells_memory_hits.serialize()),
            ("cells_disk_hits", self.cells_disk_hits.serialize()),
        ])
    }
}

impl Deserialize for ServerStatus {
    fn deserialize(v: &Value) -> Result<ServerStatus, serde::Error> {
        Ok(ServerStatus {
            running: usize::deserialize(v.require("running")?)?,
            queued: usize::deserialize(v.require("queued")?)?,
            max_running: usize::deserialize(v.require("max_running")?)?,
            max_queued: usize::deserialize(v.require("max_queued")?)?,
            max_cells: Option::<usize>::deserialize(v.get("max_cells").unwrap_or(&Value::Null))?,
            submissions: u64::deserialize(v.require("submissions")?)?,
            admission_rejected: u64::deserialize(v.require("admission_rejected")?)?,
            quota_rejected: u64::deserialize(v.require("quota_rejected")?)?,
            completed: u64::deserialize(v.require("completed")?)?,
            failed: u64::deserialize(v.require("failed")?)?,
            cancelled: u64::deserialize(v.require("cancelled")?)?,
            cells_computed: u64::deserialize(v.require("cells_computed")?)?,
            cells_memory_hits: u64::deserialize(v.require("cells_memory_hits")?)?,
            cells_disk_hits: u64::deserialize(v.require("cells_disk_hits")?)?,
        })
    }
}

impl Serialize for Submitted {
    fn serialize(&self) -> Value {
        Value::obj([
            ("id", self.id.serialize()),
            ("name", self.name.serialize()),
            ("cells", self.cells.serialize()),
            ("references", self.references.serialize()),
            ("queue_depth", self.queue_depth.serialize()),
        ])
    }
}

impl Deserialize for Submitted {
    fn deserialize(v: &Value) -> Result<Submitted, serde::Error> {
        Ok(Submitted {
            id: u64::deserialize(v.require("id")?)?,
            name: String::deserialize(v.require("name")?)?,
            cells: usize::deserialize(v.require("cells")?)?,
            references: usize::deserialize(v.require("references")?)?,
            queue_depth: usize::deserialize(v.require("queue_depth")?)?,
        })
    }
}

impl Serialize for Response {
    fn serialize(&self) -> Value {
        match self {
            Response::Submitted(s) => {
                let mut v = s.serialize();
                if let Value::Obj(m) = &mut v {
                    m.insert("type".into(), Value::Str("submitted".into()));
                }
                v
            }
            Response::Status(report) => Value::obj([
                ("type", Value::Str("status".into())),
                ("server", report.server.serialize()),
                ("campaigns", report.campaigns.serialize()),
            ]),
            Response::Subscribed { id } => Value::obj([
                ("type", Value::Str("subscribed".into())),
                ("id", id.serialize()),
            ]),
            Response::Ack { message } => Value::obj([
                ("type", Value::Str("ack".into())),
                ("message", message.serialize()),
            ]),
            Response::Error { kind, message } => Value::obj([
                ("type", Value::Str("error".into())),
                ("kind", kind.serialize()),
                ("message", message.serialize()),
            ]),
        }
    }
}

impl Deserialize for Response {
    fn deserialize(v: &Value) -> Result<Response, serde::Error> {
        let tag = String::deserialize(v.require("type")?)?;
        match tag.as_str() {
            "submitted" => Ok(Response::Submitted(Submitted::deserialize(v)?)),
            "status" => Ok(Response::Status(StatusReport {
                server: ServerStatus::deserialize(v.require("server")?)?,
                campaigns: Vec::<CampaignStatus>::deserialize(v.require("campaigns")?)?,
            })),
            "subscribed" => Ok(Response::Subscribed {
                id: u64::deserialize(v.require("id")?)?,
            }),
            "ack" => Ok(Response::Ack {
                message: String::deserialize(v.require("message")?)?,
            }),
            "error" => Ok(Response::Error {
                kind: String::deserialize(v.require("kind")?)?,
                message: String::deserialize(v.require("message")?)?,
            }),
            other => Err(serde::Error::new(format!("unknown response {other:?}"))),
        }
    }
}

/// Encode a request as one protocol line (no trailing newline).
pub fn encode_request(req: &Request) -> String {
    serde::json::to_string(req)
}

/// Decode one request line.
pub fn decode_request(line: &str) -> Result<Request, String> {
    serde::json::from_str::<Request>(line.trim_end())
        .map_err(|e| format!("bad request {line:?}: {e}"))
}

/// Encode a response as one protocol line (no trailing newline).
pub fn encode_response(resp: &Response) -> String {
    serde::json::to_string(resp)
}

/// Decode one response line.
pub fn decode_response(line: &str) -> Result<Response, String> {
    serde::json::from_str::<Response>(line.trim_end())
        .map_err(|e| format!("bad response {line:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> SweepSpec {
        SweepSpec::from_str_auto(
            r#"
            name = "proto"
            pfails = [0.01]
            estimators = ["first-order"]
            reference_trials = 100
            [[dags]]
            kind = "cholesky"
            ks = [2]
            "#,
        )
        .unwrap()
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Submit {
                spec: sample_spec(),
                backend: BackendChoice::InProcess,
            },
            Request::Submit {
                spec: sample_spec(),
                backend: BackendChoice::MultiProcess { workers: 3 },
            },
            Request::Submit {
                spec: sample_spec(),
                backend: BackendChoice::SharedFs {
                    spool: "/tmp/spool".into(),
                },
            },
            Request::Status { id: None },
            Request::Status { id: Some(7) },
            Request::Events { id: 3 },
            Request::Cancel { id: 3 },
            Request::Resume { id: 9 },
            Request::Shutdown {
                mode: ShutdownMode::Drain,
            },
            Request::Shutdown {
                mode: ShutdownMode::Now,
            },
        ];
        for req in &requests {
            let line = encode_request(req);
            assert!(!line.contains('\n'), "one request per line: {line:?}");
            assert_eq!(&decode_request(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Submitted(Submitted {
                id: 4,
                name: "camp".into(),
                cells: 18,
                references: 6,
                queue_depth: 2,
            }),
            Response::Status(StatusReport {
                server: ServerStatus {
                    running: 1,
                    queued: 2,
                    max_running: 2,
                    max_queued: 16,
                    max_cells: Some(500),
                    submissions: 9,
                    admission_rejected: 1,
                    quota_rejected: 2,
                    completed: 5,
                    failed: 1,
                    cancelled: 1,
                    cells_computed: 18,
                    cells_memory_hits: 36,
                    cells_disk_hits: 0,
                },
                campaigns: vec![CampaignStatus {
                    id: 4,
                    name: "camp".into(),
                    state: CampaignState::Failed,
                    cells: 18,
                    rows: 7,
                    error: Some("disk on fire".into()),
                }],
            }),
            Response::Subscribed { id: 4 },
            Response::Ack {
                message: "cancelled campaign 4".into(),
            },
            Response::Error {
                kind: "quota".into(),
                message: "campaign has 600 cells, quota is 500".into(),
            },
        ];
        for resp in &responses {
            let line = encode_response(resp);
            assert!(!line.contains('\n'), "one response per line: {line:?}");
            assert_eq!(&decode_response(&line).unwrap(), resp, "{line}");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_request("").is_err());
        assert!(decode_request("{\"type\":\"warp\"}").is_err());
        assert!(decode_request("{\"type\":\"events\"}").is_err());
        assert!(decode_response("{not json").is_err());
        assert!(decode_response("{\"type\":\"warp\"}").is_err());
    }

    #[test]
    fn submit_backend_field_is_optional_on_the_wire() {
        // A v1 submit line (no backend field) decodes to InProcess,
        // and an InProcess submit encodes without the field — the v1
        // wire shape is preserved in both directions.
        let line = encode_request(&Request::Submit {
            spec: sample_spec(),
            backend: BackendChoice::InProcess,
        });
        assert!(!line.contains("backend"), "{line}");
        match decode_request(&line).unwrap() {
            Request::Submit { backend, .. } => assert_eq!(backend, BackendChoice::InProcess),
            other => panic!("expected submit, got {other:?}"),
        }
        let line = encode_request(&Request::Submit {
            spec: sample_spec(),
            backend: BackendChoice::MultiProcess { workers: 2 },
        });
        assert!(line.contains("multi-process"), "{line}");
        let bad = serde::json::parse("{\"kind\":\"warp\"}").unwrap();
        assert!(BackendChoice::deserialize(&bad).is_err());
    }

    #[test]
    fn hit_rate_handles_empty_server() {
        assert_eq!(ServerStatus::default().cache_hit_rate(), 0.0);
        let s = ServerStatus {
            cells_computed: 1,
            cells_memory_hits: 3,
            ..ServerStatus::default()
        };
        assert_eq!(s.cache_hit_rate(), 0.75);
    }

    #[test]
    fn states_and_modes_round_trip() {
        for state in [
            CampaignState::Queued,
            CampaignState::Running,
            CampaignState::Done,
            CampaignState::Failed,
            CampaignState::Cancelled,
        ] {
            assert_eq!(CampaignState::parse(state.as_str()), Some(state));
        }
        assert!(CampaignState::Queued.is_active());
        assert!(CampaignState::Running.is_active());
        assert!(!CampaignState::Done.is_active());
        for mode in [ShutdownMode::Drain, ShutdownMode::Now] {
            assert_eq!(ShutdownMode::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(CampaignState::parse("exploded"), None);
        assert_eq!(ShutdownMode::parse("later"), None);
    }
}
