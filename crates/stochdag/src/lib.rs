//! # stochdag — expected makespan of task graphs under silent errors
//!
//! Umbrella crate re-exporting the full public API of the workspace, a
//! Rust reproduction of **Casanova, Herrmann, Robert, "Computing the
//! expected makespan of task graphs in the presence of silent errors"**
//! (P2S2/ICPP 2016).
//!
//! ## Layout
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`dag`] | `stochdag-dag` | DAG substrate: graphs, topological order, longest paths, DOT |
//! | [`dist`] | `stochdag-dist` | discrete distributions, normal/erf, Clark's formulas, failure calibration |
//! | [`taskgraphs`] | `stochdag-taskgraphs` | Cholesky/LU/QR generators (paper Figs. 1–3) + synthetic families |
//! | [`workload`] | `stochdag-workload` | real-trace ingestion (DOT, WfCommons JSON) + correlated failure scenarios |
//! | [`sp`] | `stochdag-sp` | series-parallel reductions, Dodin's transformation |
//! | [`core`] | `stochdag-core` | the estimators: FirstOrder, SecondOrder, MonteCarlo, Dodin, Sculli/CorLCA/Normal(cov), Exact |
//! | [`sched`] | `stochdag-sched` | failure-aware list scheduling, HEFT, execution simulation |
//! | [`engine`] | `stochdag-engine` | parallel scenario sweeps: estimator registry, content-addressed caching, streaming sinks |
//!
//! ## Quickstart
//!
//! ```
//! use stochdag::prelude::*;
//!
//! // The paper's LU workload at k = 4, with the calibrated weight table.
//! let dag = lu_dag(4, &KernelTimings::paper_default());
//! // Paper protocol: pfail = 0.001 for the average task.
//! let model = FailureModel::from_pfail_for_dag(0.001, &dag);
//!
//! let first_order = FirstOrderEstimator::fast().estimate(&dag, &model);
//! let mc = MonteCarloEstimator::new(50_000).with_seed(1).estimate(&dag, &model);
//! let rel = first_order.relative_error(mc.value).abs();
//! assert!(rel < 1e-3, "first-order error {rel} vs Monte Carlo");
//! ```

pub use stochdag_core as core;
pub use stochdag_dag as dag;
pub use stochdag_dist as dist;
pub use stochdag_engine as engine;
pub use stochdag_sched as sched;
pub use stochdag_sp as sp;
pub use stochdag_taskgraphs as taskgraphs;
pub use stochdag_workload as workload;

/// Convenient glob-import surface for applications and examples.
pub mod prelude {
    pub use stochdag_core::{
        dodin::DodinStrategy,
        dvfs::{speed_tradeoff, DvfsModel, PowerModel, TradeoffPoint},
        exact_expected_makespan_two_state, first_order_detailed,
        first_order_expected_makespan_fast, first_order_expected_makespan_naive,
        second_order_expected_makespan, CorLcaEstimator, CovarianceNormalEstimator, DodinEstimator,
        Estimate, Estimator, ExactEstimator, FailureModel, FirstOrderEstimator, FirstOrderResult,
        MonteCarloEstimator, MonteCarloResult, PreparedEstimator, SamplingModel, SculliEstimator,
        SecondOrderEstimator, SpeldeEstimator,
    };
    pub use stochdag_dag::{
        dot_string, longest_path_length, structural_hash, topological_layers, topological_order,
        Dag, DagBuilder, LevelInfo, LongestPaths, NodeId, PreparedDag, TopoLayers,
    };
    pub use stochdag_dist::{
        clark_max_moments, failure_probability, geometric_truncated,
        lambda_for_failure_probability, two_state, DiscreteDist, DurationTable, Normal,
        TaskDurationModel,
    };
    pub use stochdag_engine::{
        Campaign, CampaignBuilder, CampaignEvent, CampaignObserver, CsvSink, DagSpec, DryRun,
        EngineError, EstimatorRegistry, EstimatorSpec, ExecBackend, InProcess, JsonlSink,
        MultiProcess, ProgressMode, ProgressReporter, ResultCache, ResultSink, ResumeReport,
        SweepOutcome, SweepSpec, VecSink, WireObserver,
    };
    pub use stochdag_sched::{
        compare_policies, heft_schedule, list_schedule, simulate_execution, Priority, Schedule,
        SimConfig,
    };
    pub use stochdag_sp::{dodin_forward_evaluate, exact_sp_expected_makespan, is_series_parallel};
    pub use stochdag_taskgraphs::{
        chain_dag, cholesky_dag, diamond_mesh_dag, erdos_renyi_dag, fork_join_dag,
        layered_random_dag, lu_dag, qr_dag, FactorizationClass, Kernel, KernelTimings,
        LayeredConfig,
    };
    pub use stochdag_workload::{
        load_dot, load_trace_json, parse_dot, parse_trace_json, IngestedTrace, ScenarioSpec,
        TraceFormat, WorkloadError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_compiles_and_links_the_whole_stack() {
        let dag = cholesky_dag(3, &KernelTimings::paper_default());
        let model = FailureModel::from_pfail_for_dag(0.01, &dag);
        let e = FirstOrderEstimator::fast().estimate(&dag, &model);
        assert!(e.value >= longest_path_length(&dag));
    }
}
