//! Longest-path machinery: failure-free makespan `d(G)`, top/bottom
//! levels, critical-path extraction, incremental `d(G_i)`, and all-pairs
//! longest paths.
//!
//! Conventions (activity-on-node):
//!
//! * `top(i)` — length of the longest path ending *just before* `i`,
//!   i.e. the sum of weights of the heaviest predecessor chain,
//!   **excluding** `a_i`. This is the earliest start time of `i` with
//!   unlimited processors. `top(i) = 0` for sources.
//! * `bot(i)` — length of the longest path starting at `i`,
//!   **including** `a_i` (the classical *bottom level* used by
//!   CP-scheduling). `bot(i) = a_i` for sinks.
//! * `d(G) = max_i top(i) + bot(i) − a_i + a_i = max_i (top(i) + bot(i))`
//!   … where `top(i) + bot(i)` is the longest path *through* `i`.
//!
//! The paper's key incremental identity: doubling `a_i` lengthens exactly
//! the paths through `i` by `a_i`, so
//! `d(G_i) = max( d(G), top(i) + bot(i) + a_i )`.

use crate::graph::{Dag, NodeId};
use crate::topo::topological_order;

/// Precomputed level information for a DAG.
///
/// Construction costs one topological sort plus two linear DP passes,
/// `O(|V| + |E|)` total.
#[derive(Clone, Debug)]
pub struct LevelInfo {
    topo: Vec<NodeId>,
    /// `top(i)`: longest path ending just before `i` (excludes `a_i`).
    pub top: Vec<f64>,
    /// `bot(i)`: longest path starting at `i` (includes `a_i`).
    pub bot: Vec<f64>,
    /// Failure-free makespan `d(G)`.
    pub makespan: f64,
}

impl LevelInfo {
    /// Compute levels for `dag`.
    ///
    /// # Panics
    /// Panics if the graph is cyclic (validate first with
    /// [`crate::validate_acyclic`] for a `Result`-based API).
    pub fn compute(dag: &Dag) -> LevelInfo {
        let topo = topological_order(dag).expect("LevelInfo requires an acyclic graph");
        let n = dag.node_count();
        let mut top = vec![0.0f64; n];
        let mut bot = vec![0.0f64; n];
        for &v in &topo {
            let mut best = 0.0f64;
            for &p in dag.preds(v) {
                let c = top[p.index()] + dag.weight(p);
                if c > best {
                    best = c;
                }
            }
            top[v.index()] = best;
        }
        for &v in topo.iter().rev() {
            let mut best = 0.0f64;
            for &s in dag.succs(v) {
                let c = bot[s.index()];
                if c > best {
                    best = c;
                }
            }
            bot[v.index()] = best + dag.weight(v);
        }
        let makespan = dag
            .nodes()
            .map(|v| top[v.index()] + bot[v.index()])
            .fold(0.0f64, f64::max);
        LevelInfo {
            topo,
            top,
            bot,
            makespan,
        }
    }

    /// The topological order used internally.
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Longest path passing *through* node `i` (includes `a_i` once).
    #[inline]
    pub fn path_through(&self, i: NodeId) -> f64 {
        self.top[i.index()] + self.bot[i.index()]
    }

    /// `d(G_i)` — the makespan of the graph with `a_i` replaced by
    /// `factor · a_i`, computed in `O(1)` from the levels.
    ///
    /// Doubling (`factor = 2`) models one re-execution of task `i`:
    /// every path through `i` grows by `(factor − 1)·a_i`, paths avoiding
    /// `i` are unchanged.
    #[inline]
    pub fn makespan_with_scaled_node(&self, dag: &Dag, i: NodeId, factor: f64) -> f64 {
        let extra = (factor - 1.0) * dag.weight(i);
        self.makespan.max(self.path_through(i) + extra)
    }

    /// The amount by which the makespan grows when task `i` is
    /// re-executed once (`d(G_i) − d(G)`); the paper's per-task
    /// sensitivity. Non-negative.
    #[inline]
    pub fn reexecution_sensitivity(&self, dag: &Dag, i: NodeId) -> f64 {
        self.makespan_with_scaled_node(dag, i, 2.0) - self.makespan
    }

    /// *Slack* of node `i`: `d(G) − path_through(i)`. Zero exactly on
    /// critical nodes.
    #[inline]
    pub fn slack(&self, i: NodeId) -> f64 {
        self.makespan - self.path_through(i)
    }
}

/// A single longest (critical) path through the DAG.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalPath {
    /// Nodes along the path, source to sink.
    pub nodes: Vec<NodeId>,
    /// Total weight of the path (= `d(G)`).
    pub length: f64,
}

/// Bundled longest-path results for a DAG: levels, makespan, and one
/// extracted critical path.
#[derive(Clone, Debug)]
pub struct LongestPaths {
    /// Level information (top/bot arrays, makespan).
    pub levels: LevelInfo,
    /// One critical path (ties broken deterministically by node id).
    pub critical: CriticalPath,
}

impl LongestPaths {
    /// Compute levels and extract a critical path.
    pub fn compute(dag: &Dag) -> LongestPaths {
        let levels = LevelInfo::compute(dag);
        let critical = extract_critical_path(dag, &levels);
        LongestPaths { levels, critical }
    }
}

fn extract_critical_path(dag: &Dag, levels: &LevelInfo) -> CriticalPath {
    if dag.node_count() == 0 {
        return CriticalPath {
            nodes: Vec::new(),
            length: 0.0,
        };
    }
    let eps = 1e-9 * (1.0 + levels.makespan.abs());
    // Start from the critical source: a source whose bot equals d(G).
    let mut cur = dag
        .nodes()
        .filter(|&v| dag.in_degree(v) == 0)
        .find(|&v| (levels.bot[v.index()] - levels.makespan).abs() <= eps)
        .expect("some source must start a critical path");
    let mut nodes = vec![cur];
    // Walk down: choose the successor that continues the critical path.
    loop {
        let rest = levels.bot[cur.index()] - dag.weight(cur);
        if dag.out_degree(cur) == 0 {
            break;
        }
        // If the path can stop here (rest == 0 and no successor is
        // needed) we still only stop at a sink; a zero-rest non-sink
        // means remaining bot comes from zero-weight successors, keep
        // walking for a well-formed source-to-sink path.
        let next = dag
            .succs(cur)
            .iter()
            .copied()
            .find(|&s| (levels.bot[s.index()] - rest).abs() <= eps)
            .expect("critical path must continue through some successor");
        nodes.push(next);
        cur = next;
    }
    CriticalPath {
        nodes,
        length: levels.makespan,
    }
}

/// Failure-free makespan `d(G)` of the DAG — the longest path length.
///
/// Convenience wrapper around [`LevelInfo::compute`].
pub fn longest_path_length(dag: &Dag) -> f64 {
    LevelInfo::compute(dag).makespan
}

impl Dag {
    /// Failure-free makespan `d(G)` (longest path length).
    pub fn longest_path_length(&self) -> f64 {
        longest_path_length(self)
    }
}

/// All-pairs longest path lengths.
///
/// `get(i, j)` is the length of the longest path from `i` to `j`
/// *including both endpoint weights*; `f64::NEG_INFINITY` when `j` is
/// unreachable from `i`; `a_i` on the diagonal. Memory is `O(|V|²)` and
/// time `O(|V|·(|V| + |E|))` — used by the second-order estimator.
#[derive(Clone, Debug)]
pub struct AllPairsLongestPaths {
    n: usize,
    /// Row-major `n × n` matrix.
    data: Vec<f64>,
}

impl AllPairsLongestPaths {
    /// Compute the full matrix.
    ///
    /// # Panics
    /// Panics on cyclic input.
    pub fn compute(dag: &Dag) -> AllPairsLongestPaths {
        let n = dag.node_count();
        let topo = topological_order(dag).expect("AllPairsLongestPaths requires an acyclic graph");
        // Row i only needs the topo suffix starting at i itself: nodes
        // before i in the order cannot be reachable from i, so skipping
        // them changes nothing but the wasted scan (~2× on average).
        let mut pos = vec![0u32; n];
        for (idx, &v) in topo.iter().enumerate() {
            pos[v.index()] = idx as u32;
        }
        let mut data = vec![f64::NEG_INFINITY; n * n];
        // One forward DP per source row. Row i is filled in topological
        // order restricted to nodes at/after i.
        for i in 0..n {
            let row = &mut data[i * n..(i + 1) * n];
            row[i] = dag.weight(NodeId::from_index(i));
            for &v in &topo[pos[i] as usize..] {
                let dv = row[v.index()];
                if dv == f64::NEG_INFINITY {
                    continue;
                }
                for &s in dag.succs(v) {
                    let cand = dv + dag.weight(s);
                    if cand > row[s.index()] {
                        row[s.index()] = cand;
                    }
                }
            }
        }
        AllPairsLongestPaths { n, data }
    }

    /// Longest `i → j` path length (inclusive of both endpoints), or
    /// `NEG_INFINITY` if unreachable.
    #[inline]
    pub fn get(&self, i: NodeId, j: NodeId) -> f64 {
        self.data[i.index() * self.n + j.index()]
    }

    /// Whether a directed path `i → j` exists (including `i == j`).
    #[inline]
    pub fn reaches(&self, i: NodeId, j: NodeId) -> bool {
        self.get(i, j) != f64::NEG_INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Dag, [NodeId; 4]) {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        let c = g.add_node(3.0);
        let d = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        (g, [a, b, c, d])
    }

    #[test]
    fn makespan_of_diamond() {
        let (g, _) = diamond();
        assert!((longest_path_length(&g) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn top_bot_levels() {
        let (g, [a, b, c, d]) = diamond();
        let lv = LevelInfo::compute(&g);
        assert_eq!(lv.top[a.index()], 0.0);
        assert_eq!(lv.top[b.index()], 1.0);
        assert_eq!(lv.top[c.index()], 1.0);
        assert_eq!(lv.top[d.index()], 4.0); // a + c
        assert_eq!(lv.bot[d.index()], 1.0);
        assert_eq!(lv.bot[b.index()], 3.0);
        assert_eq!(lv.bot[c.index()], 4.0);
        assert_eq!(lv.bot[a.index()], 5.0);
    }

    #[test]
    fn path_through_and_slack() {
        let (g, [a, b, c, d]) = diamond();
        let lv = LevelInfo::compute(&g);
        assert_eq!(lv.path_through(c), 5.0);
        assert_eq!(lv.path_through(b), 4.0);
        assert!(lv.slack(c).abs() < 1e-12);
        assert!((lv.slack(b) - 1.0).abs() < 1e-12);
        assert!(lv.slack(a).abs() < 1e-12);
        assert!(lv.slack(d).abs() < 1e-12);
    }

    #[test]
    fn incremental_matches_recompute() {
        let (g, [a, b, c, d]) = diamond();
        let lv = LevelInfo::compute(&g);
        for &i in &[a, b, c, d] {
            let expect = longest_path_length(&g.with_scaled_weight(i, 2.0));
            let got = lv.makespan_with_scaled_node(&g, i, 2.0);
            assert!(
                (expect - got).abs() < 1e-12,
                "node {i:?}: recompute {expect} vs incremental {got}"
            );
        }
    }

    #[test]
    fn sensitivity_of_noncritical_node() {
        let (g, [_, b, c, _]) = diamond();
        let lv = LevelInfo::compute(&g);
        // b has slack 1 and weight 2: doubling adds 2 along its path
        // (4 -> 6), exceeding d(G)=5 by 1.
        assert!((lv.reexecution_sensitivity(&g, b) - 1.0).abs() < 1e-12);
        // c is critical with weight 3: doubling adds 3.
        assert!((lv.reexecution_sensitivity(&g, c) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn critical_path_extraction() {
        let (g, [a, _, c, d]) = diamond();
        let lp = LongestPaths::compute(&g);
        assert_eq!(lp.critical.nodes, vec![a, c, d]);
        assert!((lp.critical.length - 5.0).abs() < 1e-12);
    }

    #[test]
    fn critical_path_sums_to_makespan() {
        let (g, _) = diamond();
        let lp = LongestPaths::compute(&g);
        let sum: f64 = lp.critical.nodes.iter().map(|&v| g.weight(v)).sum();
        assert!((sum - lp.critical.length).abs() < 1e-12);
    }

    #[test]
    fn chain_makespan_is_total_weight() {
        let mut g = Dag::new();
        let mut prev = g.add_node(1.5);
        for i in 0..9 {
            let v = g.add_node(1.0 + i as f64);
            g.add_edge(prev, v);
            prev = v;
        }
        assert!((longest_path_length(&g) - g.total_weight()).abs() < 1e-12);
    }

    #[test]
    fn independent_tasks_makespan_is_max_weight() {
        let mut g = Dag::new();
        for w in [3.0, 7.0, 2.0] {
            g.add_node(w);
        }
        assert!((longest_path_length(&g) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_nodes_are_handled() {
        let mut g = Dag::new();
        let a = g.add_node(0.0);
        let b = g.add_node(5.0);
        let c = g.add_node(0.0);
        g.add_edge(a, b);
        g.add_edge(b, c);
        assert!((longest_path_length(&g) - 5.0).abs() < 1e-12);
        let lp = LongestPaths::compute(&g);
        assert_eq!(lp.critical.nodes, vec![a, b, c]);
    }

    #[test]
    fn all_pairs_longest_paths() {
        let (g, [a, b, c, d]) = diamond();
        let ap = AllPairsLongestPaths::compute(&g);
        assert_eq!(ap.get(a, a), 1.0);
        assert_eq!(ap.get(a, b), 3.0);
        assert_eq!(ap.get(a, d), 5.0); // via c
        assert_eq!(ap.get(b, d), 3.0);
        assert!(!ap.reaches(b, c));
        assert!(!ap.reaches(d, a));
        assert!(ap.reaches(a, d));
    }

    #[test]
    fn all_pairs_consistent_with_levels() {
        let (g, _) = diamond();
        let ap = AllPairsLongestPaths::compute(&g);
        let d = g
            .nodes()
            .flat_map(|i| g.nodes().map(move |j| (i, j)))
            .map(|(i, j)| ap.get(i, j))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((d - longest_path_length(&g)).abs() < 1e-12);
    }
}
