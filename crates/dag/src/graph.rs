//! Core graph representation.
//!
//! [`Dag`] stores nodes (with a weight and an optional human-readable
//! name) and directed edges in flat vectors. Adjacency is exposed both as
//! per-node `Vec`s (cheap to build incrementally) and, for the
//! performance-critical longest-path kernels, as a compressed sparse-row
//! (CSR) view built lazily by [`Dag::freeze`].

use std::collections::HashMap;
use std::fmt;

/// Identifier of a node (task) inside a [`Dag`].
///
/// `NodeId` is a plain index newtype: it is `Copy`, ordered, and can be
/// used to index per-node arrays via [`NodeId::index`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Create a `NodeId` from a raw index.
    ///
    /// Callers are responsible for the index referring to a node of the
    /// intended graph; all `Dag` accessors panic on out-of-range ids.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32 range"))
    }

    /// The raw index of this node, usable for per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of a directed edge inside a [`Dag`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// The raw index of this edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct NodeData {
    weight: f64,
    name: Option<String>,
    succs: Vec<NodeId>,
    preds: Vec<NodeId>,
}

/// A directed acyclic graph of weighted tasks.
///
/// Nodes carry a non-negative weight `a_i` (the failure-free execution
/// time of the task) and an optional name. Edges are unweighted
/// precedence constraints `(src, dst)` meaning `dst` cannot start before
/// `src` completes.
///
/// Acyclicity is *not* enforced on every `add_edge`; use
/// [`crate::validate_acyclic`] (or build through [`crate::DagBuilder`],
/// which validates on `build`). All longest-path algorithms panic with a
/// clear message when handed a cyclic graph.
#[derive(Clone, Debug, Default)]
pub struct Dag {
    nodes: Vec<NodeData>,
    edges: Vec<(NodeId, NodeId)>,
}

impl Dag {
    /// Create an empty graph.
    pub fn new() -> Self {
        Dag::default()
    }

    /// Create an empty graph with preallocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Dag {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Add a node with the given weight; returns its id.
    ///
    /// # Panics
    /// Panics if `weight` is negative or not finite.
    pub fn add_node(&mut self, weight: f64) -> NodeId {
        self.add_named_node(weight, None::<&str>)
    }

    /// Add a node with the given weight and optional name.
    ///
    /// # Panics
    /// Panics if `weight` is negative or not finite.
    pub fn add_named_node(&mut self, weight: f64, name: Option<impl Into<String>>) -> NodeId {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "task weight must be finite and non-negative, got {weight}"
        );
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeData {
            weight,
            name: name.map(Into::into),
            succs: Vec::new(),
            preds: Vec::new(),
        });
        id
    }

    /// Add a directed precedence edge `src -> dst`; returns its id.
    ///
    /// Parallel (duplicate) edges are permitted by the representation but
    /// never produced by the workspace generators; `dedup_edges` removes
    /// them. Self-loops are rejected because they always create a cycle.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range or if `src == dst`.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) -> EdgeId {
        assert!(
            src.index() < self.nodes.len(),
            "edge source {src:?} out of range"
        );
        assert!(
            dst.index() < self.nodes.len(),
            "edge target {dst:?} out of range"
        );
        assert!(src != dst, "self-loop on {src:?} would create a cycle");
        let id = EdgeId(u32::try_from(self.edges.len()).expect("edge count exceeds u32 range"));
        self.edges.push((src, dst));
        self.nodes[src.index()].succs.push(dst);
        self.nodes[dst.index()].preds.push(src);
        id
    }

    /// Add `src -> dst` unless an identical edge already exists.
    ///
    /// Returns `Some(edge)` when a new edge was inserted. This is a
    /// linear scan of `src`'s successor list, which is fine for the
    /// bounded out-degrees of the workspace generators.
    pub fn add_edge_dedup(&mut self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        if self.nodes[src.index()].succs.contains(&dst) {
            None
        } else {
            Some(self.add_edge(src, dst))
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids, in insertion order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Iterator over all edges as `(src, dst)` pairs, in insertion order.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = (NodeId, NodeId)> + '_ {
        self.edges.iter().copied()
    }

    /// Weight `a_i` of a node.
    #[inline]
    pub fn weight(&self, n: NodeId) -> f64 {
        self.nodes[n.index()].weight
    }

    /// Overwrite the weight of a node.
    ///
    /// # Panics
    /// Panics if `weight` is negative or not finite.
    pub fn set_weight(&mut self, n: NodeId, weight: f64) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "task weight must be finite and non-negative, got {weight}"
        );
        self.nodes[n.index()].weight = weight;
    }

    /// All node weights as a vector indexed by `NodeId::index`.
    pub fn weights(&self) -> Vec<f64> {
        self.nodes.iter().map(|n| n.weight).collect()
    }

    /// Sum of all task weights (the sequential execution time).
    pub fn total_weight(&self) -> f64 {
        self.nodes.iter().map(|n| n.weight).sum()
    }

    /// Mean task weight `ā = Σ a_i / |V|`, or 0 for an empty graph.
    ///
    /// The paper calibrates the failure rate λ from a target per-task
    /// failure probability through this quantity.
    pub fn mean_weight(&self) -> f64 {
        if self.nodes.is_empty() {
            0.0
        } else {
            self.total_weight() / self.nodes.len() as f64
        }
    }

    /// Name of a node, if one was assigned.
    pub fn name(&self, n: NodeId) -> Option<&str> {
        self.nodes[n.index()].name.as_deref()
    }

    /// Name of a node, or its numeric id rendered as `"#<idx>"`.
    pub fn display_name(&self, n: NodeId) -> String {
        match self.name(n) {
            Some(s) => s.to_string(),
            None => format!("#{}", n.index()),
        }
    }

    /// Assign a name to a node.
    pub fn set_name(&mut self, n: NodeId, name: impl Into<String>) {
        self.nodes[n.index()].name = Some(name.into());
    }

    /// Look up a node by exact name. Linear scan; intended for tests and
    /// small interactive use. Returns the first match.
    pub fn find_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name.as_deref() == Some(name))
            .map(NodeId::from_index)
    }

    /// Build a name → id map for all named nodes.
    ///
    /// # Panics
    /// Panics if two nodes share a name (workspace generators always
    /// produce unique names).
    pub fn name_index(&self) -> HashMap<String, NodeId> {
        let mut map = HashMap::with_capacity(self.nodes.len());
        for (i, n) in self.nodes.iter().enumerate() {
            if let Some(name) = &n.name {
                let prev = map.insert(name.clone(), NodeId::from_index(i));
                assert!(prev.is_none(), "duplicate node name {name:?}");
            }
        }
        map
    }

    /// Successors of `n` (direct dependents).
    #[inline]
    pub fn succs(&self, n: NodeId) -> &[NodeId] {
        &self.nodes[n.index()].succs
    }

    /// Predecessors of `n` (direct dependencies).
    #[inline]
    pub fn preds(&self, n: NodeId) -> &[NodeId] {
        &self.nodes[n.index()].preds
    }

    /// Out-degree of `n`.
    #[inline]
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.nodes[n.index()].succs.len()
    }

    /// In-degree of `n`.
    #[inline]
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.nodes[n.index()].preds.len()
    }

    /// Nodes without predecessors (entry tasks), in id order.
    pub fn sources(&self) -> Vec<NodeId> {
        self.nodes().filter(|&n| self.in_degree(n) == 0).collect()
    }

    /// Nodes without successors (exit tasks), in id order.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.nodes().filter(|&n| self.out_degree(n) == 0).collect()
    }

    /// Remove duplicate parallel edges, keeping the first occurrence.
    ///
    /// Rebuilds the adjacency lists; edge ids are renumbered.
    pub fn dedup_edges(&mut self) {
        let mut seen = std::collections::HashSet::with_capacity(self.edges.len());
        let mut kept = Vec::with_capacity(self.edges.len());
        for &(s, d) in &self.edges {
            if seen.insert((s, d)) {
                kept.push((s, d));
            }
        }
        if kept.len() == self.edges.len() {
            return;
        }
        for n in &mut self.nodes {
            n.succs.clear();
            n.preds.clear();
        }
        self.edges.clear();
        for (s, d) in kept {
            self.add_edge(s, d);
        }
    }

    /// Return a copy of this DAG in which node `n`'s weight is scaled by
    /// `factor` (e.g. `2.0` models one re-execution of task `n`).
    ///
    /// This mirrors the paper's `G_i` construction.
    pub fn with_scaled_weight(&self, n: NodeId, factor: f64) -> Dag {
        let mut g = self.clone();
        let w = g.weight(n);
        g.set_weight(n, w * factor);
        g
    }

    /// A frozen CSR adjacency view for hot-loop traversal. See
    /// [`FrozenDag`].
    pub fn freeze(&self) -> FrozenDag {
        FrozenDag::build(self)
    }
}

/// A compressed-sparse-row snapshot of a [`Dag`]'s adjacency, weights,
/// and a precomputed topological order.
///
/// The Monte-Carlo estimator evaluates hundreds of thousands of longest
/// paths over the same structure with varying weights; `FrozenDag` keeps
/// that inner loop free of pointer chasing through per-node `Vec`s and of
/// repeated topological sorting. Per the Rust Performance Book, flat
/// index arrays beat nested `Vec<Vec<_>>` for this access pattern.
#[derive(Clone, Debug)]
pub struct FrozenDag {
    /// Node weights, indexed by `NodeId::index()`.
    pub weights: Vec<f64>,
    /// CSR offsets into `pred_list`; predecessors of node `i` are
    /// `pred_list[pred_off[i]..pred_off[i+1]]`.
    pub pred_off: Vec<u32>,
    /// Flattened predecessor lists.
    pub pred_list: Vec<u32>,
    /// CSR offsets into `succ_list`.
    pub succ_off: Vec<u32>,
    /// Flattened successor lists.
    pub succ_list: Vec<u32>,
    /// A topological order (indices into the node array).
    pub topo: Vec<u32>,
}

impl FrozenDag {
    fn build(dag: &Dag) -> FrozenDag {
        let n = dag.node_count();
        let mut pred_off = Vec::with_capacity(n + 1);
        let mut succ_off = Vec::with_capacity(n + 1);
        let mut pred_list = Vec::with_capacity(dag.edge_count());
        let mut succ_list = Vec::with_capacity(dag.edge_count());
        pred_off.push(0);
        succ_off.push(0);
        for id in dag.nodes() {
            for &p in dag.preds(id) {
                pred_list.push(p.0);
            }
            for &s in dag.succs(id) {
                succ_list.push(s.0);
            }
            pred_off.push(pred_list.len() as u32);
            succ_off.push(succ_list.len() as u32);
        }
        let topo = crate::topo::topological_order(dag)
            .expect("FrozenDag requires an acyclic graph")
            .into_iter()
            .map(|id| id.0)
            .collect();
        FrozenDag {
            weights: dag.weights(),
            pred_off,
            pred_list,
            succ_off,
            succ_list,
            topo,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.weights.len()
    }

    /// Predecessor indices of node `i`.
    #[inline]
    pub fn preds(&self, i: usize) -> &[u32] {
        &self.pred_list[self.pred_off[i] as usize..self.pred_off[i + 1] as usize]
    }

    /// Successor indices of node `i`.
    #[inline]
    pub fn succs(&self, i: usize) -> &[u32] {
        &self.succ_list[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// Longest-path length (makespan with unlimited processors) for the
    /// given per-node weights, which must have the same length as
    /// [`FrozenDag::node_count`].
    ///
    /// This is the Monte-Carlo hot loop: one pass over nodes in
    /// topological order, `completion(i) = w(i) + max over preds`.
    pub fn longest_path_with_weights(&self, weights: &[f64], completion: &mut Vec<f64>) -> f64 {
        assert_eq!(
            weights.len(),
            self.node_count(),
            "weight vector length mismatch"
        );
        completion.clear();
        completion.resize(self.node_count(), 0.0);
        let mut best = 0.0f64;
        for &iu in &self.topo {
            let i = iu as usize;
            let mut start = 0.0f64;
            for &p in self.preds(i) {
                let c = completion[p as usize];
                if c > start {
                    start = c;
                }
            }
            let c = start + weights[i];
            completion[i] = c;
            if c > best {
                best = c;
            }
        }
        best
    }

    /// Convenience wrapper over [`Self::longest_path_with_weights`] using
    /// the frozen weights (the failure-free makespan `d(G)`).
    pub fn longest_path(&self) -> f64 {
        let mut scratch = Vec::new();
        let w = self.weights.clone();
        self.longest_path_with_weights(&w, &mut scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Dag, [NodeId; 4]) {
        // a -> b -> d, a -> c -> d
        let mut g = Dag::new();
        let a = g.add_named_node(1.0, Some("a"));
        let b = g.add_named_node(2.0, Some("b"));
        let c = g.add_named_node(3.0, Some("c"));
        let d = g.add_named_node(1.0, Some("d"));
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        (g, [a, b, c, d])
    }

    #[test]
    fn node_and_edge_counts() {
        let (g, _) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn adjacency_is_consistent() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.succs(a), &[b, c]);
        assert_eq!(g.preds(d), &[b, c]);
        assert_eq!(g.in_degree(a), 0);
        assert_eq!(g.out_degree(d), 0);
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![d]);
    }

    #[test]
    fn weights_and_means() {
        let (g, [a, ..]) = diamond();
        assert_eq!(g.weight(a), 1.0);
        assert_eq!(g.total_weight(), 7.0);
        assert!((g.mean_weight() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn set_weight_updates() {
        let (mut g, [a, ..]) = diamond();
        g.set_weight(a, 10.0);
        assert_eq!(g.weight(a), 10.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let mut g = Dag::new();
        g.add_node(-1.0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        g.add_edge(a, a);
    }

    #[test]
    fn names_round_trip() {
        let (g, [a, b, ..]) = diamond();
        assert_eq!(g.name(a), Some("a"));
        assert_eq!(g.find_by_name("b"), Some(b));
        assert_eq!(g.find_by_name("zz"), None);
        let idx = g.name_index();
        assert_eq!(idx["a"], a);
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn display_name_falls_back_to_index() {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        assert_eq!(g.display_name(a), "#0");
        g.set_name(a, "root");
        assert_eq!(g.display_name(a), "root");
    }

    #[test]
    fn dedup_edges_removes_duplicates() {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(a, b);
        g.add_edge(a, b);
        assert_eq!(g.edge_count(), 3);
        g.dedup_edges();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.succs(a), &[b]);
        assert_eq!(g.preds(b), &[a]);
    }

    #[test]
    fn add_edge_dedup_skips_existing() {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(1.0);
        assert!(g.add_edge_dedup(a, b).is_some());
        assert!(g.add_edge_dedup(a, b).is_none());
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn scaled_weight_copy() {
        let (g, [_, b, ..]) = diamond();
        let g2 = g.with_scaled_weight(b, 2.0);
        assert_eq!(g2.weight(b), 4.0);
        assert_eq!(g.weight(b), 2.0, "original untouched");
        assert_eq!(g2.edge_count(), g.edge_count());
    }

    #[test]
    fn frozen_matches_dynamic() {
        let (g, _) = diamond();
        let f = g.freeze();
        assert_eq!(f.node_count(), 4);
        // longest path: a(1) -> c(3) -> d(1) = 5
        assert!((f.longest_path() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn frozen_with_custom_weights() {
        let (g, _) = diamond();
        let f = g.freeze();
        let mut scratch = Vec::new();
        // double node b's weight: a(1) -> b(4) -> d(1) = 6
        let w = vec![1.0, 4.0, 3.0, 1.0];
        assert!((f.longest_path_with_weights(&w, &mut scratch) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn frozen_csr_adjacency() {
        let (g, [a, b, c, d]) = diamond();
        let f = g.freeze();
        assert_eq!(f.succs(a.index()), &[b.0, c.0]);
        assert_eq!(f.preds(d.index()), &[b.0, c.0]);
        assert_eq!(f.preds(a.index()), &[] as &[u32]);
    }

    #[test]
    fn empty_graph() {
        let g = Dag::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.mean_weight(), 0.0);
        assert_eq!(g.total_weight(), 0.0);
        assert!(g.sources().is_empty());
        let f = g.freeze();
        assert_eq!(f.longest_path(), 0.0);
    }
}
