//! Shared, immutable per-graph preparation.
//!
//! Every estimator in the workspace needs the same handful of
//! model-independent artifacts before it can evaluate anything: the
//! frozen CSR adjacency, a topological order, the weight vector, the
//! source/sink sets, and — for the sweep engine's content-addressed
//! cache — the Weisfeiler–Lehman structural hash. Before this module
//! existed each estimator recomputed those internally on every call, so
//! a sweep of M failure models × E estimators over one graph paid for
//! the same preprocessing `M × E` times.
//!
//! [`PreparedDag`] computes each artifact **exactly once per graph** and
//! hands out cheap shared handles: the type is a thin [`Arc`] wrapper,
//! so cloning it (as every prepared estimator does) is a reference-count
//! bump, never a recomputation. The two artifacts not every consumer
//! needs — the structural hash and the level decomposition — are
//! materialized lazily on first use and then shared by all handles.
//!
//! The module also counts constructions ([`prepared_dag_build_count`])
//! so integration tests can assert that a sweep campaign builds each DAG
//! source exactly once.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crate::graph::{Dag, FrozenDag, NodeId};
use crate::longest_path::LevelInfo;

/// Process-global count of [`PreparedDag`] constructions.
static BUILD_COUNT: AtomicUsize = AtomicUsize::new(0);

/// Number of [`PreparedDag`] values built by this process so far.
///
/// A monotone counter incremented by every [`PreparedDag::new`] call.
/// Tests diff it around a sweep campaign to prove the engine prepares
/// each DAG source exactly once (note that test binaries run their
/// tests in parallel threads, so a meaningful delta must be measured
/// within a single `#[test]`).
pub fn prepared_dag_build_count() -> usize {
    BUILD_COUNT.load(Ordering::Relaxed)
}

#[derive(Debug)]
struct Inner {
    dag: Dag,
    frozen: FrozenDag,
    topo: Vec<NodeId>,
    /// Lazy: no current estimator consumes the source set, so it is
    /// materialized only on demand (shared by all clones, like the
    /// hash and the levels).
    sources: OnceLock<Vec<NodeId>>,
    sinks: Vec<NodeId>,
    hash: OnceLock<u128>,
    levels: OnceLock<LevelInfo>,
}

/// A DAG bundled with its shared preprocessing (see module docs).
///
/// `PreparedDag` is immutable and cheap to clone (`Arc` internally):
/// prepared estimators hold a clone and borrow the graph, the frozen
/// CSR view, the topological order, and the source/sink sets from it.
///
/// # Panics
/// [`PreparedDag::new`] panics on cyclic input, like every longest-path
/// consumer in this crate.
#[derive(Clone, Debug)]
pub struct PreparedDag {
    inner: Arc<Inner>,
}

impl PreparedDag {
    /// Prepare a graph: freeze the CSR view, compute one topological
    /// order and the source/sink sets. The structural hash and the
    /// level decomposition are deferred until first requested.
    pub fn new(dag: Dag) -> PreparedDag {
        let frozen = dag.freeze();
        let topo = frozen
            .topo
            .iter()
            .map(|&i| NodeId::from_index(i as usize))
            .collect();
        let sinks = dag.sinks();
        BUILD_COUNT.fetch_add(1, Ordering::Relaxed);
        PreparedDag {
            inner: Arc::new(Inner {
                dag,
                frozen,
                topo,
                sources: OnceLock::new(),
                sinks,
                hash: OnceLock::new(),
                levels: OnceLock::new(),
            }),
        }
    }

    /// The underlying graph.
    #[inline]
    pub fn dag(&self) -> &Dag {
        &self.inner.dag
    }

    /// The frozen CSR adjacency snapshot.
    #[inline]
    pub fn frozen(&self) -> &FrozenDag {
        &self.inner.frozen
    }

    /// Node weights, indexed by `NodeId::index()`.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.inner.frozen.weights
    }

    /// The precomputed topological order.
    #[inline]
    pub fn topo_order(&self) -> &[NodeId] {
        &self.inner.topo
    }

    /// Entry tasks (no predecessors), in id order; computed on first
    /// call and shared by all clones.
    pub fn sources(&self) -> &[NodeId] {
        self.inner.sources.get_or_init(|| self.inner.dag.sources())
    }

    /// Exit tasks (no successors), in id order.
    #[inline]
    pub fn sinks(&self) -> &[NodeId] {
        &self.inner.sinks
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.inner.dag.node_count()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.inner.dag.edge_count()
    }

    /// The Weisfeiler–Lehman structural hash (see
    /// [`crate::structural_hash`]), computed on first call and cached
    /// for the lifetime of the preparation — all clones share it.
    pub fn structural_hash(&self) -> u128 {
        *self
            .inner
            .hash
            .get_or_init(|| crate::hash::structural_hash(&self.inner.dag))
    }

    /// The level decomposition (top/bottom levels, failure-free
    /// makespan), computed on first call and shared by all clones.
    pub fn levels(&self) -> &LevelInfo {
        self.inner
            .levels
            .get_or_init(|| LevelInfo::compute(&self.inner.dag))
    }

    /// Whether two handles share one preparation (same `Arc`).
    pub fn same_preparation(&self, other: &PreparedDag) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Display for PreparedDag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PreparedDag({} nodes, {} edges)",
            self.node_count(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::structural_hash;
    use crate::topo::topological_order;

    fn diamond() -> Dag {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        let c = g.add_node(3.0);
        let d = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        g
    }

    #[test]
    fn bundles_match_fresh_computation() {
        let g = diamond();
        let p = PreparedDag::new(g.clone());
        assert_eq!(p.node_count(), 4);
        assert_eq!(p.edge_count(), 4);
        assert_eq!(p.weights(), g.weights().as_slice());
        assert_eq!(p.topo_order(), topological_order(&g).unwrap().as_slice());
        assert_eq!(p.sources(), g.sources().as_slice());
        assert_eq!(p.sinks(), g.sinks().as_slice());
        assert_eq!(p.structural_hash(), structural_hash(&g));
        assert_eq!(p.levels().makespan, 5.0);
        assert!((p.frozen().longest_path() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn clones_share_the_preparation() {
        let p = PreparedDag::new(diamond());
        let q = p.clone();
        assert!(p.same_preparation(&q));
        assert_eq!(p.structural_hash(), q.structural_hash());
        assert!(!p.same_preparation(&PreparedDag::new(diamond())));
    }

    #[test]
    fn build_counter_counts_constructions_not_clones() {
        let before = prepared_dag_build_count();
        let p = PreparedDag::new(diamond());
        let _q = p.clone();
        let _r = p.clone();
        // Other tests may build preparations concurrently, so only a
        // lower bound plus "clones are free" can be asserted here; the
        // exact-count assertion lives in the engine integration test.
        assert!(prepared_dag_build_count() > before);
    }

    #[test]
    fn empty_graph_prepares() {
        let p = PreparedDag::new(Dag::new());
        assert_eq!(p.node_count(), 0);
        assert!(p.topo_order().is_empty());
        assert_eq!(p.levels().makespan, 0.0);
    }
}
