//! Graphviz DOT export.
//!
//! Regenerates the paper's Figures 1–3 (example Cholesky/LU/QR DAGs) via
//! `stochdag dot --class cholesky -k 5 | dot -Tpdf`.

use crate::graph::Dag;
use std::fmt::Write as _;

/// Render `dag` as a Graphviz `digraph`.
///
/// Node labels are the task names (falling back to `#idx`), with the
/// weight shown on a second line when `show_weights` is set. Every node
/// also carries a full-precision `weight` attribute (Rust's `Display`
/// for `f64` is shortest-round-trip), so re-ingesting the output
/// through `stochdag-workload`'s DOT parser reproduces the exact
/// weight bits — the label's `{:.4}` rendering is display-only. Output
/// is deterministic (insertion order).
pub fn dot_string(dag: &Dag, graph_name: &str, show_weights: bool) -> String {
    let mut s = String::with_capacity(32 * (dag.node_count() + dag.edge_count()));
    let clean: String = graph_name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    writeln!(s, "digraph {clean} {{").unwrap();
    writeln!(s, "  rankdir=TB;").unwrap();
    writeln!(s, "  node [shape=box, fontsize=10];").unwrap();
    for v in dag.nodes() {
        let label = if show_weights {
            format!("{}\\n{:.4}", dag.display_name(v), dag.weight(v))
        } else {
            dag.display_name(v)
        };
        writeln!(
            s,
            "  n{} [label=\"{}\", weight={}];",
            v.index(),
            label,
            dag.weight(v)
        )
        .unwrap();
    }
    for (a, b) in dag.edges() {
        writeln!(s, "  n{} -> n{};", a.index(), b.index()).unwrap();
    }
    writeln!(s, "}}").unwrap();
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_and_edges() {
        let mut g = Dag::new();
        let a = g.add_named_node(1.0, Some("POTRF_0"));
        let b = g.add_named_node(2.0, Some("TRSM_1_0"));
        g.add_edge(a, b);
        let dot = dot_string(&g, "chol", false);
        assert!(dot.contains("digraph chol {"));
        assert!(dot.contains("POTRF_0"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(!dot.contains("1.0000"));
    }

    #[test]
    fn weights_shown_when_requested() {
        let mut g = Dag::new();
        g.add_named_node(1.5, Some("t"));
        let dot = dot_string(&g, "g", true);
        assert!(dot.contains("1.5000"));
    }

    #[test]
    fn weight_attribute_is_always_emitted_at_full_precision() {
        let mut g = Dag::new();
        g.add_named_node(0.1 + 0.2, Some("t")); // 0.30000000000000004
        let dot = dot_string(&g, "g", false);
        assert!(
            dot.contains("weight=0.30000000000000004"),
            "shortest-round-trip weight attribute missing:\n{dot}"
        );
    }

    #[test]
    fn graph_name_is_sanitized() {
        let g = Dag::new();
        let dot = dot_string(&g, "my graph-1", false);
        assert!(dot.contains("digraph my_graph_1 {"));
    }

    #[test]
    fn output_is_deterministic() {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(1.0);
        g.add_edge(a, b);
        assert_eq!(dot_string(&g, "g", true), dot_string(&g, "g", true));
    }
}
