//! Plain-text task-graph format: load user DAGs into the estimators.
//!
//! The format is line-oriented and diff-friendly:
//!
//! ```text
//! # comments and blank lines are ignored
//! task <name> <weight>
//! dep  <src-name> <dst-name>
//! ```
//!
//! Names may not contain whitespace; weights are non-negative seconds.
//! Tasks must be declared before they are referenced by `dep` lines.
//! [`write_taskgraph`] emits the same format (tasks in id order, then
//! edges), so load ∘ store is the identity up to comments.

use crate::builder::DagBuilder;
use crate::graph::Dag;
use crate::validate::DagError;
use std::fmt;

/// Errors from [`parse_taskgraph`].
#[derive(Clone, Debug, PartialEq)]
pub enum ParseError {
    /// A line could not be parsed; carries the 1-based line number and a
    /// description.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The parsed graph is invalid (cycle, duplicate name, unknown
    /// dependency endpoint).
    Graph(DagError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Malformed { line, message } => write!(f, "line {line}: {message}"),
            ParseError::Graph(e) => write!(f, "invalid task graph: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<DagError> for ParseError {
    fn from(e: DagError) -> Self {
        ParseError::Graph(e)
    }
}

/// Parse the text format described in the module docs.
pub fn parse_taskgraph(input: &str) -> Result<Dag, ParseError> {
    let mut b = DagBuilder::new();
    for (no, raw) in input.lines().enumerate() {
        let line_no = no + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().expect("non-empty line has a first token");
        match kind {
            "task" => {
                let name = parts.next().ok_or_else(|| ParseError::Malformed {
                    line: line_no,
                    message: "task needs a name".into(),
                })?;
                let weight_s = parts.next().ok_or_else(|| ParseError::Malformed {
                    line: line_no,
                    message: format!("task {name:?} needs a weight"),
                })?;
                let weight: f64 = weight_s.parse().map_err(|_| ParseError::Malformed {
                    line: line_no,
                    message: format!("bad weight {weight_s:?}"),
                })?;
                if !(weight.is_finite() && weight >= 0.0) {
                    return Err(ParseError::Malformed {
                        line: line_no,
                        message: format!("weight must be finite and >= 0, got {weight}"),
                    });
                }
                b.add_task(name, weight);
            }
            "dep" => {
                let src = parts.next().ok_or_else(|| ParseError::Malformed {
                    line: line_no,
                    message: "dep needs a source".into(),
                })?;
                let dst = parts.next().ok_or_else(|| ParseError::Malformed {
                    line: line_no,
                    message: "dep needs a destination".into(),
                })?;
                b.add_dep_by_name(src, dst)?;
            }
            other => {
                return Err(ParseError::Malformed {
                    line: line_no,
                    message: format!("unknown directive {other:?} (expected task|dep)"),
                });
            }
        }
        if let Some(extra) = parts.next() {
            return Err(ParseError::Malformed {
                line: line_no,
                message: format!("trailing token {extra:?}"),
            });
        }
    }
    Ok(b.build()?)
}

/// Serialize a DAG to the text format (inverse of [`parse_taskgraph`]
/// for graphs whose nodes all carry names; unnamed nodes get `t<idx>`).
pub fn write_taskgraph(dag: &Dag) -> String {
    use std::fmt::Write as _;
    let name_of = |v: crate::graph::NodeId| -> String {
        match dag.name(v) {
            Some(n) => n.to_string(),
            None => format!("t{}", v.index()),
        }
    };
    let mut out = String::new();
    writeln!(
        out,
        "# stochdag task graph: {} tasks, {} deps",
        dag.node_count(),
        dag.edge_count()
    )
    .unwrap();
    for v in dag.nodes() {
        writeln!(out, "task {} {}", name_of(v), dag.weight(v)).unwrap();
    }
    for (s, d) in dag.edges() {
        writeln!(out, "dep {} {}", name_of(s), name_of(d)).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a small pipeline
task load 0.5
task work 2.0
task store 0.25

dep load work
dep work store
";

    #[test]
    fn parse_sample() {
        let g = parse_taskgraph(SAMPLE).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.weight(g.find_by_name("work").unwrap()), 2.0);
        assert!((g.longest_path_length() - 2.75).abs() < 1e-12);
    }

    #[test]
    fn round_trip() {
        let g = parse_taskgraph(SAMPLE).unwrap();
        let text = write_taskgraph(&g);
        let g2 = parse_taskgraph(&text).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.weights(), g.weights());
    }

    #[test]
    fn unnamed_nodes_get_synthetic_names() {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        g.add_edge(a, b);
        let text = write_taskgraph(&g);
        assert!(text.contains("task t0 1"));
        let g2 = parse_taskgraph(&text).unwrap();
        assert_eq!(g2.edge_count(), 1);
    }

    #[test]
    fn error_on_unknown_directive() {
        let err = parse_taskgraph("frob x 1").unwrap_err();
        assert!(
            matches!(err, ParseError::Malformed { line: 1, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("frob"));
    }

    #[test]
    fn error_on_bad_weight() {
        let err = parse_taskgraph("task a heavy").unwrap_err();
        assert!(err.to_string().contains("bad weight"));
        let err = parse_taskgraph("task a -1").unwrap_err();
        assert!(err.to_string().contains(">= 0"));
    }

    #[test]
    fn error_on_unknown_dep_endpoint() {
        let err = parse_taskgraph("task a 1\ndep a b").unwrap_err();
        assert!(matches!(
            err,
            ParseError::Graph(DagError::UnknownName { .. })
        ));
    }

    #[test]
    fn error_on_cycle() {
        let err = parse_taskgraph("task a 1\ntask b 1\ndep a b\ndep b a").unwrap_err();
        assert!(matches!(err, ParseError::Graph(DagError::Cycle { .. })));
    }

    #[test]
    fn error_on_trailing_tokens() {
        let err = parse_taskgraph("task a 1 extra").unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn error_on_duplicate_task() {
        let err = parse_taskgraph("task a 1\ntask a 2").unwrap_err();
        assert!(matches!(
            err,
            ParseError::Graph(DagError::DuplicateName { .. })
        ));
    }
}
