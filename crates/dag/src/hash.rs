//! Stable structural hashing of weighted DAGs.
//!
//! [`structural_hash`] digests a DAG's *structure and weights* into a
//! 128-bit value that is
//!
//! * **stable** — fixed mixing constants, no per-process randomness, no
//!   dependence on pointer values or `HashMap` iteration order, so the
//!   hash is reproducible across runs, builds, and machines (the
//!   property the sweep engine's content-addressed result cache needs);
//! * **relabeling-invariant** — isomorphic DAGs (same shape and
//!   weights, nodes inserted in a different order) hash equal. This
//!   follows from the Weisfeiler–Lehman-style construction: node
//!   signatures are refined from *multisets* of neighbor signatures
//!   combined with a commutative reduction, and the final digest is a
//!   commutative combination over all nodes;
//! * **perturbation-sensitive** — changing any weight or edge changes
//!   some node's signature and therefore (up to 128-bit collisions) the
//!   digest. Like all WL-family hashes it is not a full isomorphism
//!   test: rare non-isomorphic WL-equivalent pairs collide by design.
//!
//! Node names are deliberately **excluded**: two generator runs that
//! produce the same weighted shape under different labels are the same
//! computation for every estimator in this workspace.

use crate::graph::Dag;

/// SplitMix64 finalizer — the stable mixing primitive shared by the
/// structural hash and every content-key consumer in the workspace
/// (the sweep engine's cache keys build on it, so the constants here
/// are part of the on-disk cache format).
#[inline]
pub fn stable_mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Canonical bit pattern of an `f64` for hashing (`-0.0` → `0.0`).
#[inline]
pub fn canonical_f64_bits(w: f64) -> u64 {
    if w == 0.0 {
        0u64
    } else {
        w.to_bits()
    }
}

use stable_mix64 as mix;

/// Combine two words order-sensitively.
#[inline]
fn mix2(a: u64, b: u64) -> u64 {
    mix(a ^ mix(b))
}

use canonical_f64_bits as weight_bits;

/// One seeded Weisfeiler–Lehman digest round-trip over the whole DAG.
fn wl_digest(dag: &Dag, seed: u64) -> u64 {
    let n = dag.node_count();
    if n == 0 {
        return mix(seed ^ 0x6A09_E667_F3BC_C908);
    }
    // Initial signatures: weight only.
    let mut sig: Vec<u64> = (0..n)
        .map(|i| {
            mix2(
                seed,
                weight_bits(dag.weight(crate::graph::NodeId::from_index(i))),
            )
        })
        .collect();
    let mut next = vec![0u64; n];
    // Enough rounds to propagate information across the longest
    // dependency chain of the graphs this workspace works with, capped
    // to keep hashing O(rounds · (V + E)).
    let rounds = (n.ilog2() as usize + 3).min(24);
    for round in 0..rounds {
        let round_salt = mix(seed ^ (round as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        for i in 0..n {
            let v = crate::graph::NodeId::from_index(i);
            // Commutative (wrapping-sum) multiset reductions keep the
            // signature independent of adjacency-list order.
            let mut preds_acc = 0u64;
            for &p in dag.preds(v) {
                preds_acc = preds_acc.wrapping_add(mix(sig[p.index()]));
            }
            let mut succs_acc = 0u64;
            for &s in dag.succs(v) {
                succs_acc = succs_acc.wrapping_add(mix2(0x5BD1_E995, sig[s.index()]));
            }
            next[i] = mix2(
                mix2(sig[i], round_salt),
                preds_acc ^ succs_acc.rotate_left(17),
            );
        }
        std::mem::swap(&mut sig, &mut next);
    }
    // Commutative final combination + global invariants.
    let mut acc = mix2(seed, n as u64);
    acc = mix2(acc, dag.edge_count() as u64);
    let mut node_sum = 0u64;
    let mut node_xor = 0u64;
    for &s in &sig {
        node_sum = node_sum.wrapping_add(mix(s));
        node_xor ^= mix2(0xC2B2_AE35, s);
    }
    mix2(mix2(acc, node_sum), node_xor)
}

/// Stable 128-bit structure+weights digest of a DAG (see module docs).
pub fn structural_hash(dag: &Dag) -> u128 {
    let lo = wl_digest(dag, 0x0123_4567_89AB_CDEF);
    let hi = wl_digest(dag, 0xFEDC_BA98_7654_3210);
    ((hi as u128) << 64) | lo as u128
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Dag;

    fn diamond() -> Dag {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        let c = g.add_node(3.0);
        let d = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        g
    }

    #[test]
    fn deterministic_across_calls() {
        let g = diamond();
        assert_eq!(structural_hash(&g), structural_hash(&g));
    }

    #[test]
    fn known_stable_value_shape() {
        // Pin that the hash does not degenerate.
        let h = structural_hash(&diamond());
        assert_ne!(h, 0);
        assert_ne!(h as u64, (h >> 64) as u64);
    }

    #[test]
    fn relabeling_is_invariant() {
        // Same diamond, nodes inserted in reverse order.
        let mut g = Dag::new();
        let d = g.add_node(1.0);
        let c = g.add_node(3.0);
        let b = g.add_node(2.0);
        let a = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        assert_eq!(structural_hash(&g), structural_hash(&diamond()));
    }

    #[test]
    fn adjacency_order_is_invariant() {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        let c = g.add_node(3.0);
        let d = g.add_node(1.0);
        // Same edges as diamond(), declared in a different order.
        g.add_edge(b, d);
        g.add_edge(a, c);
        g.add_edge(c, d);
        g.add_edge(a, b);
        assert_eq!(structural_hash(&g), structural_hash(&diamond()));
    }

    #[test]
    fn names_do_not_matter() {
        let mut g = diamond();
        let first = structural_hash(&g);
        g.set_name(crate::graph::NodeId::from_index(0), "renamed");
        assert_eq!(structural_hash(&g), first);
    }

    #[test]
    fn weight_perturbation_changes_hash() {
        let g = diamond();
        let mut g2 = g.clone();
        g2.set_weight(crate::graph::NodeId::from_index(1), 2.0001);
        assert_ne!(structural_hash(&g), structural_hash(&g2));
    }

    #[test]
    fn edge_perturbation_changes_hash() {
        let g = diamond();
        let mut g2 = g.clone();
        g2.add_edge(
            crate::graph::NodeId::from_index(1),
            crate::graph::NodeId::from_index(2),
        );
        assert_ne!(structural_hash(&g), structural_hash(&g2));
    }

    #[test]
    fn empty_and_singleton() {
        let empty = Dag::new();
        let mut single = Dag::new();
        single.add_node(1.0);
        assert_ne!(structural_hash(&empty), structural_hash(&single));
    }

    #[test]
    fn negative_zero_weight_is_canonical() {
        let mut a = Dag::new();
        a.add_node(0.0);
        let h = structural_hash(&a);
        assert_ne!(h, 0);
    }
}
