//! Validation helpers and the crate error type.

use crate::graph::{Dag, NodeId};
use crate::topo::topological_order;
use std::fmt;

/// Errors produced by DAG construction and validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagError {
    /// The graph contains a directed cycle; `node` lies on or downstream
    /// of one.
    Cycle {
        /// A witness node with non-zero residual in-degree after Kahn's
        /// algorithm drained all ready nodes.
        node: NodeId,
    },
    /// A named node was referenced but never defined (builder API).
    UnknownName {
        /// The offending name.
        name: String,
    },
    /// Two nodes were given the same name (builder API).
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::Cycle { node } => {
                write!(f, "graph contains a cycle through/behind node {node:?}")
            }
            DagError::UnknownName { name } => write!(f, "unknown node name {name:?}"),
            DagError::DuplicateName { name } => write!(f, "duplicate node name {name:?}"),
        }
    }
}

impl std::error::Error for DagError {}

/// Check that `dag` is acyclic.
pub fn validate_acyclic(dag: &Dag) -> Result<(), DagError> {
    topological_order(dag).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_passes() {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(1.0);
        g.add_edge(a, b);
        assert!(validate_acyclic(&g).is_ok());
    }

    #[test]
    fn cycle_fails_with_witness() {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(b, a);
        match validate_acyclic(&g) {
            Err(DagError::Cycle { node }) => assert!(node == a || node == b),
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn error_messages_render() {
        let e = DagError::UnknownName { name: "x".into() };
        assert!(e.to_string().contains("unknown"));
        let e = DagError::DuplicateName { name: "x".into() };
        assert!(e.to_string().contains("duplicate"));
    }
}
