//! # stochdag-dag — DAG substrate
//!
//! Directed-acyclic-graph data structures and algorithms used throughout
//! the `stochdag` workspace: a compact adjacency-list graph with `f64`
//! node weights, topological ordering, longest-path machinery (critical
//! path, top/bottom levels, all-pairs longest paths), transitive
//! closure/reduction, validation, and DOT export.
//!
//! The representation is *activity-on-node*: vertices carry the task
//! weights, edges are zero-cost precedence constraints, exactly as in the
//! paper this workspace reproduces (Casanova, Herrmann, Robert,
//! "Computing the expected makespan of task graphs in the presence of
//! silent errors", P2S2/ICPP 2016).
//!
//! ## Quick example
//!
//! ```
//! use stochdag_dag::DagBuilder;
//!
//! let mut b = DagBuilder::new();
//! let a = b.add_task("a", 1.0);
//! let c = b.add_task("c", 2.0);
//! let d = b.add_task("d", 4.0);
//! b.add_dep(a, c);
//! b.add_dep(a, d);
//! let dag = b.build().unwrap();
//! assert_eq!(dag.longest_path_length(), 5.0); // a -> d
//! ```

mod builder;
mod dot;
mod graph;
mod hash;
pub mod io;
mod longest_path;
mod paths;
mod prepared;
mod topo;
mod transitive;
mod validate;

pub use builder::DagBuilder;
pub use dot::dot_string;
pub use graph::{Dag, EdgeId, FrozenDag, NodeId};
pub use hash::{canonical_f64_bits, stable_mix64, structural_hash};
pub use longest_path::{
    longest_path_length, AllPairsLongestPaths, CriticalPath, LevelInfo, LongestPaths,
};
pub use paths::k_longest_paths;
pub use prepared::{prepared_dag_build_count, PreparedDag};
pub use topo::{topological_layers, topological_order, TopoLayers};
pub use transitive::{transitive_closure, transitive_reduction, Reachability};
pub use validate::{validate_acyclic, DagError};
