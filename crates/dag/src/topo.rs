//! Topological ordering (Kahn's algorithm) and layer decomposition.

use crate::graph::{Dag, NodeId};
use crate::validate::DagError;

/// Compute a topological order of `dag` using Kahn's algorithm.
///
/// Ties are broken by node id, so the order is deterministic. Returns
/// [`DagError::Cycle`] if the graph contains a cycle; the error carries
/// one node that participates in (or is downstream of) a cycle.
pub fn topological_order(dag: &Dag) -> Result<Vec<NodeId>, DagError> {
    let n = dag.node_count();
    let mut indeg: Vec<u32> = (0..n)
        .map(|i| dag.in_degree(NodeId::from_index(i)) as u32)
        .collect();
    // A FIFO queue of ready nodes gives a deterministic, roughly
    // breadth-first order; determinism matters for reproducible
    // experiments and stable DOT output.
    let mut queue: std::collections::VecDeque<NodeId> =
        dag.nodes().filter(|&v| indeg[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &s in dag.succs(v) {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                queue.push_back(s);
            }
        }
    }
    if order.len() != n {
        let culprit = (0..n)
            .map(NodeId::from_index)
            .find(|v| indeg[v.index()] > 0)
            .expect("cycle implies a node with remaining in-degree");
        return Err(DagError::Cycle { node: culprit });
    }
    Ok(order)
}

/// Partition the nodes into *topological layers*: layer 0 holds the
/// sources, and each node sits in layer `1 + max(layer of predecessors)`.
///
/// Layers are the standard way to draw/inspect task graphs and are used
/// by the synthetic layered-DAG generator tests. Returns
/// [`DagError::Cycle`] on cyclic input.
pub fn topological_layers(dag: &Dag) -> Result<Vec<Vec<NodeId>>, DagError> {
    let order = topological_order(dag)?;
    let mut layer = vec![0usize; dag.node_count()];
    let mut max_layer = 0usize;
    for &v in &order {
        let l = dag
            .preds(v)
            .iter()
            .map(|p| layer[p.index()] + 1)
            .max()
            .unwrap_or(0);
        layer[v.index()] = l;
        max_layer = max_layer.max(l);
    }
    let mut layers = vec![
        Vec::new();
        if dag.node_count() == 0 {
            0
        } else {
            max_layer + 1
        }
    ];
    for v in dag.nodes() {
        layers[layer[v.index()]].push(v);
    }
    Ok(layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Dag, [NodeId; 5]) {
        // a -> b -> d; a -> c -> d; d -> e
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(1.0);
        let c = g.add_node(1.0);
        let d = g.add_node(1.0);
        let e = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        g.add_edge(d, e);
        (g, [a, b, c, d, e])
    }

    fn assert_is_topological(dag: &Dag, order: &[NodeId]) {
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        assert_eq!(order.len(), dag.node_count());
        for (s, d) in dag.edges() {
            assert!(pos[&s] < pos[&d], "edge {s:?}->{d:?} violates order");
        }
    }

    #[test]
    fn order_is_topological() {
        let (g, _) = sample();
        let order = topological_order(&g).unwrap();
        assert_is_topological(&g, &order);
    }

    #[test]
    fn order_is_deterministic() {
        let (g, _) = sample();
        assert_eq!(
            topological_order(&g).unwrap(),
            topological_order(&g).unwrap()
        );
    }

    #[test]
    fn cycle_detected() {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(1.0);
        let c = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(c, a);
        assert!(matches!(topological_order(&g), Err(DagError::Cycle { .. })));
    }

    #[test]
    fn layers_are_correct() {
        let (g, [a, b, c, d, e]) = sample();
        let layers = topological_layers(&g).unwrap();
        assert_eq!(layers.len(), 4);
        assert_eq!(layers[0], vec![a]);
        assert_eq!(layers[1], vec![b, c]);
        assert_eq!(layers[2], vec![d]);
        assert_eq!(layers[3], vec![e]);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Dag::new();
        assert!(topological_order(&g).unwrap().is_empty());
        assert!(topological_layers(&g).unwrap().is_empty());
    }

    #[test]
    fn isolated_nodes_form_single_layer() {
        let mut g = Dag::new();
        g.add_node(1.0);
        g.add_node(2.0);
        let layers = topological_layers(&g).unwrap();
        assert_eq!(layers.len(), 1);
        assert_eq!(layers[0].len(), 2);
    }
}
