//! Topological ordering (Kahn's algorithm) and layer decomposition.
//!
//! The layer decomposition comes in two shapes: the compact
//! [`TopoLayers`] (flat node array + offsets, two allocations total)
//! for kernel-side consumers, and the nested-`Vec` adapter
//! [`topological_layers`] for callers that want owned sets.

use crate::graph::{Dag, NodeId};
use crate::validate::DagError;

/// Compute a topological order of `dag` using Kahn's algorithm.
///
/// Ties are broken by node id, so the order is deterministic. Returns
/// [`DagError::Cycle`] if the graph contains a cycle; the error carries
/// one node that participates in (or is downstream of) a cycle.
pub fn topological_order(dag: &Dag) -> Result<Vec<NodeId>, DagError> {
    let n = dag.node_count();
    let mut indeg: Vec<u32> = (0..n)
        .map(|i| dag.in_degree(NodeId::from_index(i)) as u32)
        .collect();
    // A FIFO queue of ready nodes gives a deterministic, roughly
    // breadth-first order; determinism matters for reproducible
    // experiments and stable DOT output.
    let mut queue: std::collections::VecDeque<NodeId> =
        dag.nodes().filter(|&v| indeg[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &s in dag.succs(v) {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                queue.push_back(s);
            }
        }
    }
    if order.len() != n {
        let culprit = (0..n)
            .map(NodeId::from_index)
            .find(|v| indeg[v.index()] > 0)
            .expect("cycle implies a node with remaining in-degree");
        return Err(DagError::Cycle { node: culprit });
    }
    Ok(order)
}

/// Compact layer decomposition: layer 0 holds the sources, and each
/// node sits in layer `1 + max(layer of predecessors)`.
///
/// The layers are stored *flat* — one counting-sorted node array plus a
/// per-layer offset table — so the whole decomposition costs exactly
/// two allocations regardless of layer count, and a layer is a `&[NodeId]`
/// slice into shared storage. This is the representation the hot
/// kernels want; [`topological_layers`] adapts it to nested `Vec`s for
/// callers that need owned per-layer sets.
#[derive(Clone, Debug)]
pub struct TopoLayers {
    /// `layer_of[i]` — layer index of node `i`.
    layer_of: Vec<u32>,
    /// All nodes, grouped by layer (ascending id within a layer).
    nodes: Vec<NodeId>,
    /// `layer_count() + 1` offsets into `nodes`; layer `l` is
    /// `nodes[offsets[l]..offsets[l + 1]]`.
    offsets: Vec<u32>,
}

impl TopoLayers {
    /// Compute the decomposition. Returns [`DagError::Cycle`] on cyclic
    /// input.
    pub fn compute(dag: &Dag) -> Result<TopoLayers, DagError> {
        let order = topological_order(dag)?;
        let n = dag.node_count();
        let mut layer_of = vec![0u32; n];
        let mut max_layer = 0u32;
        for &v in &order {
            let l = dag
                .preds(v)
                .iter()
                .map(|p| layer_of[p.index()] + 1)
                .max()
                .unwrap_or(0);
            layer_of[v.index()] = l;
            max_layer = max_layer.max(l);
        }
        let layer_count = if n == 0 { 0 } else { max_layer as usize + 1 };
        // Counting sort by layer; iterating nodes in id order keeps
        // each layer's slice sorted by id.
        let mut offsets = vec![0u32; layer_count + 1];
        for &l in &layer_of {
            offsets[l as usize + 1] += 1;
        }
        for l in 0..layer_count {
            offsets[l + 1] += offsets[l];
        }
        let mut cursor: Vec<u32> = offsets[..layer_count].to_vec();
        let mut nodes = vec![NodeId::from_index(0); n];
        for v in dag.nodes() {
            let c = &mut cursor[layer_of[v.index()] as usize];
            nodes[*c as usize] = v;
            *c += 1;
        }
        Ok(TopoLayers {
            layer_of,
            nodes,
            offsets,
        })
    }

    /// Number of layers (0 for an empty graph).
    #[inline]
    pub fn layer_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The nodes of layer `l`, ascending by id.
    #[inline]
    pub fn layer(&self, l: usize) -> &[NodeId] {
        &self.nodes[self.offsets[l] as usize..self.offsets[l + 1] as usize]
    }

    /// The layer index of node `v`.
    #[inline]
    pub fn layer_of(&self, v: NodeId) -> usize {
        self.layer_of[v.index()] as usize
    }

    /// Iterate over the layers, sources first.
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> + '_ {
        (0..self.layer_count()).map(move |l| self.layer(l))
    }
}

/// Partition the nodes into *topological layers*: layer 0 holds the
/// sources, and each node sits in layer `1 + max(layer of predecessors)`.
///
/// Layers are the standard way to draw/inspect task graphs and are used
/// by the synthetic layered-DAG generator tests. Returns
/// [`DagError::Cycle`] on cyclic input.
///
/// This is the owned-`Vec` adapter over [`TopoLayers`]; prefer the
/// compact form in loops that only need to *walk* the layers.
pub fn topological_layers(dag: &Dag) -> Result<Vec<Vec<NodeId>>, DagError> {
    let compact = TopoLayers::compute(dag)?;
    Ok(compact.iter().map(<[NodeId]>::to_vec).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Dag, [NodeId; 5]) {
        // a -> b -> d; a -> c -> d; d -> e
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(1.0);
        let c = g.add_node(1.0);
        let d = g.add_node(1.0);
        let e = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        g.add_edge(d, e);
        (g, [a, b, c, d, e])
    }

    fn assert_is_topological(dag: &Dag, order: &[NodeId]) {
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        assert_eq!(order.len(), dag.node_count());
        for (s, d) in dag.edges() {
            assert!(pos[&s] < pos[&d], "edge {s:?}->{d:?} violates order");
        }
    }

    #[test]
    fn order_is_topological() {
        let (g, _) = sample();
        let order = topological_order(&g).unwrap();
        assert_is_topological(&g, &order);
    }

    #[test]
    fn order_is_deterministic() {
        let (g, _) = sample();
        assert_eq!(
            topological_order(&g).unwrap(),
            topological_order(&g).unwrap()
        );
    }

    #[test]
    fn cycle_detected() {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(1.0);
        let c = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(c, a);
        assert!(matches!(topological_order(&g), Err(DagError::Cycle { .. })));
    }

    #[test]
    fn layers_are_correct() {
        let (g, [a, b, c, d, e]) = sample();
        let layers = topological_layers(&g).unwrap();
        assert_eq!(layers.len(), 4);
        assert_eq!(layers[0], vec![a]);
        assert_eq!(layers[1], vec![b, c]);
        assert_eq!(layers[2], vec![d]);
        assert_eq!(layers[3], vec![e]);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Dag::new();
        assert!(topological_order(&g).unwrap().is_empty());
        assert!(topological_layers(&g).unwrap().is_empty());
        assert_eq!(TopoLayers::compute(&g).unwrap().layer_count(), 0);
    }

    #[test]
    fn compact_layers_match_the_nested_adapter() {
        let (g, [a, b, c, d, e]) = sample();
        let compact = TopoLayers::compute(&g).unwrap();
        assert_eq!(compact.layer_count(), 4);
        assert_eq!(compact.layer(0), &[a]);
        assert_eq!(compact.layer(1), &[b, c]);
        assert_eq!(compact.layer(2), &[d]);
        assert_eq!(compact.layer(3), &[e]);
        assert_eq!(compact.layer_of(a), 0);
        assert_eq!(compact.layer_of(c), 1);
        assert_eq!(compact.layer_of(e), 3);
        let nested = topological_layers(&g).unwrap();
        let from_compact: Vec<Vec<NodeId>> = compact.iter().map(<[NodeId]>::to_vec).collect();
        assert_eq!(nested, from_compact);
    }

    #[test]
    fn isolated_nodes_form_single_layer() {
        let mut g = Dag::new();
        g.add_node(1.0);
        g.add_node(2.0);
        let layers = topological_layers(&g).unwrap();
        assert_eq!(layers.len(), 1);
        assert_eq!(layers[0].len(), 2);
    }
}
