//! K-longest source-to-sink paths.
//!
//! Used by the Spelde-style path-based estimators: the expected makespan
//! is approximated from the handful of *dominant* paths, so we need the
//! `K` longest source→sink paths of the weighted DAG, allowing ties and
//! shared prefixes.
//!
//! Algorithm: dynamic programming over the topological order keeping,
//! per node, the `K` largest path lengths *ending* at that node (each
//! with a back-pointer `(predecessor, rank-at-predecessor)` for
//! reconstruction). Merging predecessor lists is `O(indeg · K log K)`
//! per node, `O(|E| · K log K)` total.

use crate::graph::{Dag, NodeId};
use crate::longest_path::CriticalPath;
use crate::topo::topological_order;

/// One of the `K` best partial paths ending at a node.
#[derive(Clone, Copy, Debug)]
struct Partial {
    /// Total weight including the node itself.
    length: f64,
    /// Predecessor node and the rank of the partial path at it;
    /// `None` for path starts.
    back: Option<(NodeId, u32)>,
}

/// Compute the `k` longest source→sink paths (by total node weight),
/// longest first. Returns fewer than `k` paths when the DAG has fewer
/// distinct source→sink paths.
///
/// Paths are node-distinct *as sequences*; two different sequences with
/// equal length both count.
///
/// The per-node candidate lists live in one shared arena (a flat
/// `Vec<Partial>` with per-node spans) rather than `n` separate `Vec`s,
/// so the DP makes a constant number of allocations — this sits on the
/// Spelde estimator's prepare path.
///
/// # Panics
/// Panics if `k == 0` or the graph is cyclic.
pub fn k_longest_paths(dag: &Dag, k: usize) -> Vec<CriticalPath> {
    assert!(k > 0, "k must be positive");
    if dag.node_count() == 0 {
        return Vec::new();
    }
    let order = topological_order(dag).expect("k_longest_paths requires an acyclic graph");
    let n = dag.node_count();
    // Arena of the kept partial paths; span[v] = (start, len) of node
    // v's up-to-k best, sorted desc by length. Nodes are visited in
    // topological order, so a predecessor's span is final before any
    // successor reads it.
    let mut arena: Vec<Partial> = Vec::with_capacity(n.min(4 * k.max(1)));
    let mut span: Vec<(u32, u32)> = vec![(0, 0); n];
    let mut cands: Vec<Partial> = Vec::new();
    for &v in &order {
        let w = dag.weight(v);
        cands.clear();
        if dag.in_degree(v) == 0 {
            cands.push(Partial {
                length: w,
                back: None,
            });
        } else {
            for &p in dag.preds(v) {
                let (start, len) = span[p.index()];
                for rank in 0..len {
                    cands.push(Partial {
                        length: arena[(start + rank) as usize].length + w,
                        back: Some((p, rank)),
                    });
                }
            }
        }
        cands.sort_by(|a, b| b.length.total_cmp(&a.length));
        cands.truncate(k);
        span[v.index()] = (arena.len() as u32, cands.len() as u32);
        arena.extend_from_slice(&cands);
    }
    // Collect sink candidates and take the global top k.
    let mut finals: Vec<(NodeId, u32, f64)> = Vec::new();
    for v in dag.nodes().filter(|&v| dag.out_degree(v) == 0) {
        let (start, len) = span[v.index()];
        for rank in 0..len {
            finals.push((v, rank, arena[(start + rank) as usize].length));
        }
    }
    finals.sort_by(|a, b| b.2.total_cmp(&a.2));
    finals.truncate(k);

    finals
        .into_iter()
        .map(|(sink, rank, length)| {
            // Walk the back-pointers.
            let mut nodes = Vec::new();
            let mut cur = (sink, rank);
            loop {
                nodes.push(cur.0);
                match arena[(span[cur.0.index()].0 + cur.1) as usize].back {
                    Some((p, r)) => cur = (p, r),
                    None => break,
                }
            }
            nodes.reverse();
            CriticalPath { nodes, length }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::longest_path::longest_path_length;

    fn diamond() -> (Dag, [NodeId; 4]) {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        let c = g.add_node(3.0);
        let d = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        (g, [a, b, c, d])
    }

    #[test]
    fn first_path_is_the_critical_path() {
        let (g, [a, _, c, d]) = diamond();
        let paths = k_longest_paths(&g, 3);
        assert_eq!(paths[0].nodes, vec![a, c, d]);
        assert!((paths[0].length - longest_path_length(&g)).abs() < 1e-12);
    }

    #[test]
    fn diamond_has_exactly_two_paths() {
        let (g, [a, b, _, d]) = diamond();
        let paths = k_longest_paths(&g, 10);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[1].nodes, vec![a, b, d]);
        assert!((paths[1].length - 4.0).abs() < 1e-12);
    }

    #[test]
    fn lengths_are_sorted_and_match_node_sums() {
        let (g, _) = diamond();
        let paths = k_longest_paths(&g, 5);
        let mut prev = f64::INFINITY;
        for p in &paths {
            assert!(p.length <= prev + 1e-12);
            prev = p.length;
            let sum: f64 = p.nodes.iter().map(|&v| g.weight(v)).sum();
            assert!((sum - p.length).abs() < 1e-12);
            // consecutive nodes connected
            for w in p.nodes.windows(2) {
                assert!(g.succs(w[0]).contains(&w[1]));
            }
        }
    }

    #[test]
    fn independent_tasks_are_singleton_paths() {
        let mut g = Dag::new();
        g.add_node(3.0);
        g.add_node(1.0);
        g.add_node(2.0);
        let paths = k_longest_paths(&g, 10);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].length, 3.0);
        assert_eq!(paths[2].length, 1.0);
    }

    #[test]
    fn chain_has_one_path() {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(1.0);
        g.add_edge(a, b);
        let paths = k_longest_paths(&g, 4);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].nodes.len(), 2);
    }

    #[test]
    fn grid_path_count_is_binomial() {
        // 3x3 monotone grid: C(4,2) = 6 source→sink paths.
        let mut g = Dag::new();
        let mut ids = vec![];
        for _ in 0..9 {
            ids.push(g.add_node(1.0));
        }
        let at = |r: usize, c: usize| ids[r * 3 + c];
        for r in 0..3 {
            for c in 0..3 {
                if r + 1 < 3 {
                    g.add_edge(at(r, c), at(r + 1, c));
                }
                if c + 1 < 3 {
                    g.add_edge(at(r, c), at(r, c + 1));
                }
            }
        }
        let paths = k_longest_paths(&g, 100);
        assert_eq!(paths.len(), 6);
        assert!(paths.iter().all(|p| (p.length - 5.0).abs() < 1e-12));
        // All distinct as sequences.
        let set: std::collections::HashSet<Vec<usize>> = paths
            .iter()
            .map(|p| p.nodes.iter().map(|n| n.index()).collect())
            .collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let (g, _) = diamond();
        k_longest_paths(&g, 0);
    }
}
