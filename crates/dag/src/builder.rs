//! Ergonomic, validated DAG construction.

use crate::graph::{Dag, NodeId};
use crate::validate::{validate_acyclic, DagError};
use std::collections::HashMap;

/// Builder for [`Dag`] with name-based lookup and validation on `build`.
///
/// The task-graph generators address tasks by structured names (e.g.
/// `GEMM_4_2_1`); the builder keeps the name → id map so dependencies can
/// be declared by name or by id interchangeably.
///
/// ```
/// use stochdag_dag::DagBuilder;
/// let mut b = DagBuilder::new();
/// b.add_task("load", 1.0);
/// b.add_task("compute", 4.0);
/// b.add_task("store", 0.5);
/// b.add_dep_by_name("load", "compute").unwrap();
/// b.add_dep_by_name("compute", "store").unwrap();
/// let dag = b.build().unwrap();
/// assert_eq!(dag.node_count(), 3);
/// assert!((dag.longest_path_length() - 5.5).abs() < 1e-12);
/// ```
#[derive(Debug, Default)]
pub struct DagBuilder {
    dag: Dag,
    names: HashMap<String, NodeId>,
    duplicate: Option<String>,
}

impl DagBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        DagBuilder::default()
    }

    /// New builder with preallocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DagBuilder {
            dag: Dag::with_capacity(nodes, edges),
            names: HashMap::with_capacity(nodes),
            duplicate: None,
        }
    }

    /// Add a named task. Duplicate names are reported by [`Self::build`].
    pub fn add_task(&mut self, name: impl Into<String>, weight: f64) -> NodeId {
        let name = name.into();
        let id = self.dag.add_named_node(weight, Some(name.clone()));
        if self.names.insert(name.clone(), id).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(name);
        }
        id
    }

    /// Add an anonymous task.
    pub fn add_anon_task(&mut self, weight: f64) -> NodeId {
        self.dag.add_node(weight)
    }

    /// Declare a precedence `src -> dst` by id, skipping duplicates.
    pub fn add_dep(&mut self, src: NodeId, dst: NodeId) {
        self.dag.add_edge_dedup(src, dst);
    }

    /// Declare a precedence by task names.
    pub fn add_dep_by_name(&mut self, src: &str, dst: &str) -> Result<(), DagError> {
        let s = self.lookup(src)?;
        let d = self.lookup(dst)?;
        self.add_dep(s, d);
        Ok(())
    }

    /// Id of a previously added named task.
    pub fn lookup(&self, name: &str) -> Result<NodeId, DagError> {
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| DagError::UnknownName {
                name: name.to_string(),
            })
    }

    /// Whether a task with this name exists already.
    pub fn contains(&self, name: &str) -> bool {
        self.names.contains_key(name)
    }

    /// Number of tasks added so far.
    pub fn len(&self) -> usize {
        self.dag.node_count()
    }

    /// Whether no task has been added yet.
    pub fn is_empty(&self) -> bool {
        self.dag.node_count() == 0
    }

    /// Finish construction: checks for duplicate names and cycles.
    pub fn build(self) -> Result<Dag, DagError> {
        if let Some(name) = self.duplicate {
            return Err(DagError::DuplicateName { name });
        }
        validate_acyclic(&self.dag)?;
        Ok(self.dag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_by_name() {
        let mut b = DagBuilder::new();
        b.add_task("a", 1.0);
        b.add_task("b", 2.0);
        b.add_dep_by_name("a", "b").unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.find_by_name("b").map(|n| g.weight(n)), Some(2.0));
    }

    #[test]
    fn unknown_name_is_error() {
        let mut b = DagBuilder::new();
        b.add_task("a", 1.0);
        assert_eq!(
            b.add_dep_by_name("a", "zz"),
            Err(DagError::UnknownName { name: "zz".into() })
        );
    }

    #[test]
    fn duplicate_name_reported_on_build() {
        let mut b = DagBuilder::new();
        b.add_task("a", 1.0);
        b.add_task("a", 2.0);
        assert_eq!(
            b.build().unwrap_err(),
            DagError::DuplicateName { name: "a".into() }
        );
    }

    #[test]
    fn cycle_reported_on_build() {
        let mut b = DagBuilder::new();
        let a = b.add_task("a", 1.0);
        let c = b.add_task("c", 1.0);
        b.add_dep(a, c);
        b.add_dep(c, a);
        assert!(matches!(b.build(), Err(DagError::Cycle { .. })));
    }

    #[test]
    fn dep_dedup() {
        let mut b = DagBuilder::new();
        let a = b.add_task("a", 1.0);
        let c = b.add_task("c", 1.0);
        b.add_dep(a, c);
        b.add_dep(a, c);
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn len_and_contains() {
        let mut b = DagBuilder::new();
        assert!(b.is_empty());
        b.add_task("a", 1.0);
        assert_eq!(b.len(), 1);
        assert!(b.contains("a"));
        assert!(!b.contains("b"));
    }
}
