//! Transitive closure and transitive reduction.
//!
//! The closure is used by the second-order estimator (reachability
//! queries) and by the scheduling crate; the reduction is offered for
//! graph hygiene (the tiled-factorization generators can emit redundant
//! precedence edges that reduction removes without changing any path
//! length semantics).

use crate::graph::{Dag, NodeId};
use crate::topo::topological_order;

/// Dense reachability matrix computed with a bitset per node.
///
/// `reaches(i, j)` is true iff there is a directed path from `i` to `j`
/// of length ≥ 0 (so `reaches(i, i)` is always true). Memory is
/// `O(|V|² / 64)`.
#[derive(Clone, Debug)]
pub struct Reachability {
    n: usize,
    words: usize,
    bits: Vec<u64>,
}

impl Reachability {
    #[inline]
    fn row(&self, i: usize) -> &[u64] {
        &self.bits[i * self.words..(i + 1) * self.words]
    }

    /// Whether a directed path `i → j` exists (reflexive).
    #[inline]
    pub fn reaches(&self, i: NodeId, j: NodeId) -> bool {
        let r = self.row(i.index());
        r[j.index() / 64] >> (j.index() % 64) & 1 == 1
    }

    /// Number of nodes reachable from `i` (including `i`).
    pub fn descendant_count(&self, i: NodeId) -> usize {
        self.row(i.index())
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Number of nodes in the matrix.
    pub fn node_count(&self) -> usize {
        self.n
    }
}

/// Compute the transitive closure of `dag`.
///
/// Processes nodes in reverse topological order, OR-ing successor rows —
/// `O(|V|·|E| / 64)` word operations.
///
/// # Panics
/// Panics on cyclic input.
pub fn transitive_closure(dag: &Dag) -> Reachability {
    let n = dag.node_count();
    let words = n.div_ceil(64);
    let mut bits = vec![0u64; n * words];
    let topo = topological_order(dag).expect("transitive_closure requires an acyclic graph");
    for &v in topo.iter().rev() {
        let vi = v.index();
        // self bit
        bits[vi * words + vi / 64] |= 1u64 << (vi % 64);
        // OR in each successor's row (successors are later in topo order,
        // hence already complete).
        for &s in dag.succs(v) {
            let si = s.index();
            // Split the flat buffer to borrow two disjoint rows.
            let (lo, hi) = (vi.min(si), vi.max(si));
            let (first, second) = bits.split_at_mut(hi * words);
            let (dst, src) = if vi < si {
                (&mut first[vi * words..(vi + 1) * words], &second[..words])
            } else {
                (&mut second[..words], &first[si * words..(si + 1) * words])
            };
            debug_assert!(lo < hi);
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d |= *s;
            }
        }
    }
    Reachability { n, words, bits }
}

/// Compute the transitive reduction of `dag`: the unique minimal subgraph
/// of a DAG with the same reachability relation.
///
/// An edge `(u, v)` is redundant iff some other successor `w` of `u`
/// reaches `v`. Returns a new graph with the same nodes (weights and
/// names preserved) and only the non-redundant edges.
///
/// # Panics
/// Panics on cyclic input.
pub fn transitive_reduction(dag: &Dag) -> Dag {
    let reach = transitive_closure(dag);
    let mut out = Dag::with_capacity(dag.node_count(), dag.edge_count());
    for v in dag.nodes() {
        out.add_named_node(dag.weight(v), dag.name(v));
    }
    for (u, v) in dag.edges() {
        let redundant = dag.succs(u).iter().any(|&w| w != v && reach.reaches(w, v));
        if !redundant {
            out.add_edge_dedup(u, v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_of_chain() {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(1.0);
        let c = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(b, c);
        let r = transitive_closure(&g);
        assert!(r.reaches(a, c));
        assert!(r.reaches(a, a));
        assert!(!r.reaches(c, a));
        assert_eq!(r.descendant_count(a), 3);
        assert_eq!(r.descendant_count(c), 1);
    }

    #[test]
    fn reduction_removes_shortcut() {
        let mut g = Dag::new();
        let a = g.add_named_node(1.0, Some("a"));
        let b = g.add_node(1.0);
        let c = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(a, c); // redundant shortcut
        let red = transitive_reduction(&g);
        assert_eq!(red.edge_count(), 2);
        assert_eq!(red.name(a), Some("a"), "names preserved");
        // Reachability unchanged.
        let r = transitive_closure(&red);
        assert!(r.reaches(a, c));
    }

    #[test]
    fn reduction_preserves_longest_paths_here() {
        // Redundant edges never carry the longest path in an
        // activity-on-node DAG with non-negative weights.
        let mut g = Dag::new();
        let a = g.add_node(2.0);
        let b = g.add_node(3.0);
        let c = g.add_node(4.0);
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(a, c);
        let before = g.longest_path_length();
        let red = transitive_reduction(&g);
        assert!((red.longest_path_length() - before).abs() < 1e-12);
    }

    #[test]
    fn reduction_of_irreducible_graph_is_identity() {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(1.0);
        let c = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(a, c);
        let red = transitive_reduction(&g);
        assert_eq!(red.edge_count(), 2);
    }

    #[test]
    fn closure_on_wide_graph_crosses_word_boundary() {
        // >64 nodes to exercise multi-word rows.
        let mut g = Dag::new();
        let root = g.add_node(1.0);
        let mut leaves = Vec::new();
        for _ in 0..130 {
            let v = g.add_node(1.0);
            g.add_edge(root, v);
            leaves.push(v);
        }
        let r = transitive_closure(&g);
        for &l in &leaves {
            assert!(r.reaches(root, l));
            assert!(!r.reaches(l, root));
        }
        assert_eq!(r.descendant_count(root), 131);
    }
}
