//! Property-based coverage of the stable structural hash.
//!
//! The properties the sweep engine's content-addressed cache depends
//! on: relabeling-invariance (isomorphic insertions collide) and
//! perturbation-sensitivity (weight or edge edits separate).

use proptest::prelude::*;
use stochdag_dag::{structural_hash, Dag, NodeId};

/// A random DAG description: weights plus forward-edge bits, both
/// indexed by *logical* node position so it can be instantiated under
/// any insertion order.
#[derive(Clone, Debug)]
struct DagDesc {
    weights: Vec<f64>,
    edges: Vec<(usize, usize)>,
}

fn arb_desc() -> impl Strategy<Value = DagDesc> {
    (2usize..=9).prop_flat_map(|n| {
        let weights = proptest::collection::vec(0.0f64..10.0, n);
        let bits = proptest::collection::vec(any::<bool>(), n * (n - 1) / 2);
        (weights, bits).prop_map(move |(weights, bits)| {
            let mut edges = Vec::new();
            let mut b = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if bits[b] {
                        edges.push((i, j));
                    }
                    b += 1;
                }
            }
            DagDesc { weights, edges }
        })
    })
}

/// Instantiate a description with logical node `order[k]` inserted at
/// position `k` (edges remapped accordingly, in shuffled order).
fn instantiate(desc: &DagDesc, order: &[usize]) -> Dag {
    let n = desc.weights.len();
    let mut position = vec![0usize; n];
    for (k, &logical) in order.iter().enumerate() {
        position[logical] = k;
    }
    let mut g = Dag::new();
    let ids: Vec<NodeId> = order.iter().map(|&l| g.add_node(desc.weights[l])).collect();
    // Edge declaration order must not matter either: reverse it.
    for &(a, b) in desc.edges.iter().rev() {
        g.add_edge(ids[position[a]], ids[position[b]]);
    }
    g
}

/// A permutation of `0..n` derived from random sort keys.
fn permutation_of(n: usize, keys: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (keys[i % keys.len()], i));
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn isomorphic_relabelings_hash_equal(
        desc in arb_desc(),
        keys in proptest::collection::vec(0u64..1_000_000, 9),
    ) {
        let n = desc.weights.len();
        let identity: Vec<usize> = (0..n).collect();
        let shuffled = permutation_of(n, &keys);
        let a = instantiate(&desc, &identity);
        let b = instantiate(&desc, &shuffled);
        prop_assert_eq!(
            structural_hash(&a),
            structural_hash(&b),
            "relabeling {:?} changed the hash", shuffled
        );
    }

    #[test]
    fn weight_perturbation_changes_hash(
        desc in arb_desc(),
        which in 0usize..9,
        delta in 0.001f64..5.0,
    ) {
        let order: Vec<usize> = (0..desc.weights.len()).collect();
        let g = instantiate(&desc, &order);
        let mut g2 = g.clone();
        let victim = NodeId::from_index(which % desc.weights.len());
        g2.set_weight(victim, g.weight(victim) + delta);
        prop_assert!(
            structural_hash(&g) != structural_hash(&g2),
            "weight bump {delta} on {victim:?} kept the hash"
        );
    }

    #[test]
    fn edge_perturbation_changes_hash(
        desc in arb_desc(),
        pick in 0usize..64,
    ) {
        let n = desc.weights.len();
        let order: Vec<usize> = (0..n).collect();
        let g = instantiate(&desc, &order);
        // Candidate forward pairs not already present.
        let absent: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .filter(|p| !desc.edges.contains(p))
            .collect();
        if let Some(&(a, b)) = absent.get(pick % absent.len().max(1)) {
            let mut g2 = g.clone();
            g2.add_edge(NodeId::from_index(a), NodeId::from_index(b));
            prop_assert!(
                structural_hash(&g) != structural_hash(&g2),
                "adding edge ({a}, {b}) kept the hash"
            );
        }
        // Removing an edge: rebuild without the first one.
        if !desc.edges.is_empty() {
            let mut removed = desc.clone();
            removed.edges.remove(pick % desc.edges.len());
            let g3 = instantiate(&removed, &order);
            prop_assert!(
                structural_hash(&g) != structural_hash(&g3),
                "removing an edge kept the hash"
            );
        }
    }

    #[test]
    fn hash_is_stable_across_clones_and_calls(desc in arb_desc()) {
        let order: Vec<usize> = (0..desc.weights.len()).collect();
        let g = instantiate(&desc, &order);
        let h1 = structural_hash(&g);
        let h2 = structural_hash(&g.clone());
        prop_assert_eq!(h1, h2);
    }
}
