//! Dodin's reduction on real factorization DAGs: terminates, produces a
//! finite estimate, and reports duplication counts.

use stochdag_dist::two_state;
use stochdag_sp::{dodin_evaluate, is_series_parallel, ReduceConfig};
use stochdag_taskgraphs::{cholesky_dag, lu_dag, qr_dag, KernelTimings};

#[test]
fn factorization_dags_are_not_series_parallel() {
    let t = KernelTimings::unit();
    assert!(!is_series_parallel(&cholesky_dag(4, &t)));
    assert!(!is_series_parallel(&lu_dag(4, &t)));
    assert!(!is_series_parallel(&qr_dag(4, &t)));
}

#[test]
fn dodin_terminates_on_cholesky_k6() {
    let t = KernelTimings::paper_default();
    let g = cholesky_dag(6, &t);
    let cfg = ReduceConfig {
        max_atoms: 64,
        ..Default::default()
    };
    let out = dodin_evaluate(&g, |i| two_state(g.weight(i), 0.99), &cfg).unwrap();
    let d_g = g.longest_path_length();
    assert!(out.duplications > 0);
    assert!(
        out.dist.mean() >= d_g * 0.5,
        "mean {} vs d(G) {d_g}",
        out.dist.mean()
    );
    assert!(out.dist.mean() <= g.total_weight() * 2.0);
    eprintln!(
        "cholesky k=6: dups={} series={} parallel={} mean={} d(G)={}",
        out.duplications,
        out.series,
        out.parallel,
        out.dist.mean(),
        d_g
    );
}

#[test]
fn dodin_terminates_on_lu_k6() {
    let t = KernelTimings::paper_default();
    let g = lu_dag(6, &t);
    let cfg = ReduceConfig {
        max_atoms: 64,
        ..Default::default()
    };
    let out = dodin_evaluate(&g, |i| two_state(g.weight(i), 0.999), &cfg).unwrap();
    eprintln!(
        "lu k=6: dups={} mean={} d(G)={}",
        out.duplications,
        out.dist.mean(),
        g.longest_path_length()
    );
    assert!(out.dist.mean().is_finite());
}

mod forward_equivalence {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use stochdag_dag::{Dag, NodeId};
    use stochdag_dist::two_state;
    use stochdag_sp::{dodin_evaluate, dodin_forward_evaluate, ReduceConfig};

    /// The duplication fixpoint and the forward propagation are two
    /// renderings of the same independence approximation; they are not
    /// identical (duplication keeps series-parallel regions exact and
    /// unfolds *downstream* structure, forward propagation breaks
    /// sharing at every join), but they must stay within a small
    /// relative band of each other - that is what justifies using the
    /// forward strategy as the scalable surrogate in the experiment
    /// harness (see EXPERIMENTS.md).
    fn compare(g: &Dag, p: f64) {
        let dup = dodin_evaluate(
            g,
            |i| two_state(g.weight(i), p),
            &ReduceConfig {
                max_atoms: usize::MAX,
                ..Default::default()
            },
        )
        .unwrap();
        let fwd = dodin_forward_evaluate(g, |i| two_state(g.weight(i), p), usize::MAX);
        let rel = (dup.dist.mean() - fwd.mean()).abs() / dup.dist.mean();
        // The band is RNG-stream dependent (random DAG draws); 0.03
        // accommodates the vendored xoshiro-based rand shim's stream
        // while still pinning the two renderings to the same bias.
        assert!(
            rel < 0.03,
            "duplication {} vs forward {} (rel {rel}, dups={})",
            dup.dist.mean(),
            fwd.mean(),
            dup.duplications
        );
    }

    #[test]
    fn dodin_forward_tracks_duplication_on_n_graph() {
        let mut g = Dag::new();
        let n1 = g.add_node(1.0);
        let n2 = g.add_node(2.0);
        let n3 = g.add_node(1.5);
        let n4 = g.add_node(1.0);
        g.add_edge(n1, n3);
        g.add_edge(n1, n4);
        g.add_edge(n2, n4);
        compare(&g, 0.95);
    }

    #[test]
    fn dodin_forward_tracks_duplication_on_random_dags() {
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..25 {
            let n = rng.gen_range(4..9);
            let mut g = Dag::new();
            let ids: Vec<NodeId> = (0..n)
                .map(|_| g.add_node(rng.gen_range(0.5..3.0)))
                .collect();
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_bool(0.45) {
                        g.add_edge(ids[i], ids[j]);
                    }
                }
            }
            compare(&g, 0.97 + 0.029 * rng.gen::<f64>()); // paper-regime failure rates
            let _ = trial;
        }
    }

    #[test]
    fn dodin_forward_tracks_duplication_on_cholesky_k4() {
        let t = stochdag_taskgraphs::KernelTimings::unit();
        let g = stochdag_taskgraphs::cholesky_dag(4, &t);
        compare(&g, 0.95);
    }
}
