//! # stochdag-sp — series-parallel machinery and Dodin's bound
//!
//! Implements the series-parallel (SP) toolchain needed by the paper's
//! **Dodin** baseline (Dodin, *Bounding the project completion time
//! distribution in PERT networks*, Operations Research 1985):
//!
//! 1. [`ArcNetwork`] — an activity-on-arc rendering of an
//!    activity-on-node task DAG: each task becomes an arc carrying its
//!    duration distribution, each precedence a zero-duration arc, with a
//!    unique virtual source and sink.
//! 2. A *reduction engine* ([`reduce`]) applying
//!    * **series reductions** (node with one in-arc and one out-arc →
//!      convolve the two distributions) and
//!    * **parallel reductions** (two arcs with the same endpoints → max
//!      of independent distributions)
//!      until the network collapses to a single source→sink arc.
//! 3. **Dodin duplication** — when a (non-SP) network is irreducible,
//!    the first node `v` in topological order with in-degree ≥ 2 is
//!    split: one incoming arc `(u, v)` with `outdeg(u) ≥ 2` is moved to
//!    a fresh copy `v'` which receives copies of `v`'s outgoing arcs.
//!    Copies are treated as independent — this is exactly the
//!    approximation that makes Dodin a *bound* rather than an exact
//!    method.
//! 4. [`is_series_parallel`] / [`exact_sp_expected_makespan`] — running
//!    the engine with duplication disabled recognizes SP DAGs and (with
//!    an unbounded atom cap) evaluates them **exactly**, which the tests
//!    use as ground truth for Dodin on SP inputs.
//!
//! Support growth is contained by mean-preserving coarsening
//! ([`stochdag_dist::DiscreteDist::reduce_support`]); the cap is a
//! parameter ([`ReduceConfig::max_atoms`]) swept by the
//! `dodin_ablation` bench.

mod arcnet;
mod engine;

pub use arcnet::ArcNetwork;
pub use engine::{
    dodin_evaluate, dodin_forward_evaluate, dodin_forward_evaluate_in, exact_sp_expected_makespan,
    is_series_parallel, reduce, ForwardScratch, ReduceConfig, ReduceError, ReduceOutcome,
};
