//! The series-parallel reduction engine with Dodin duplication.

use crate::arcnet::ArcNetwork;
use std::collections::VecDeque;
use stochdag_dag::{Dag, NodeId};
use stochdag_dist::{DiscreteDist, DistScratch};

/// Tuning knobs of the reduction engine.
#[derive(Clone, Debug)]
pub struct ReduceConfig {
    /// Cap on distribution support size after every convolution/max
    /// (mean-preserving coarsening). `usize::MAX` disables coarsening,
    /// making SP evaluation exact (pseudo-polynomial).
    pub max_atoms: usize,
    /// Whether Dodin duplication may be used on irreducible networks.
    /// `false` turns the engine into an SP recognizer/evaluator.
    pub allow_duplication: bool,
    /// Hard cap on reduction+duplication operations, as a runaway guard.
    pub max_operations: usize,
}

impl Default for ReduceConfig {
    fn default() -> Self {
        ReduceConfig {
            max_atoms: 128,
            allow_duplication: true,
            max_operations: 50_000_000,
        }
    }
}

/// Successful reduction result.
#[derive(Clone, Debug)]
pub struct ReduceOutcome {
    /// Distribution of the single remaining source→sink arc — the
    /// (approximate) makespan distribution.
    pub dist: DiscreteDist,
    /// Number of series reductions performed.
    pub series: usize,
    /// Number of parallel reductions performed.
    pub parallel: usize,
    /// Number of Dodin duplications performed (0 on SP inputs).
    pub duplications: usize,
}

/// Reduction failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReduceError {
    /// Duplication was disabled and the network is not series-parallel.
    NotSeriesParallel,
    /// `max_operations` was exceeded.
    OperationLimitExceeded {
        /// The configured limit that was hit.
        limit: usize,
    },
}

impl std::fmt::Display for ReduceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReduceError::NotSeriesParallel => write!(f, "network is not series-parallel"),
            ReduceError::OperationLimitExceeded { limit } => {
                write!(f, "reduction exceeded the operation limit of {limit}")
            }
        }
    }
}

impl std::error::Error for ReduceError {}

/// Reduce `net` to a single source→sink arc.
///
/// Applies parallel and series reductions from a worklist; when the
/// network is irreducible and duplication is allowed, performs one Dodin
/// duplication and resumes. See the crate docs for the algorithm.
pub fn reduce(net: &mut ArcNetwork, cfg: &ReduceConfig) -> Result<ReduceOutcome, ReduceError> {
    let mut state = Engine {
        net,
        cfg,
        ops: 0,
        series: 0,
        parallel: 0,
        duplications: 0,
        queued: Vec::new(),
        work: VecDeque::new(),
        rank: Vec::new(),
        join_heap: std::collections::BinaryHeap::new(),
        dist_scratch: DistScratch::new(),
    };
    state.run()?;
    let arc = state
        .net
        .sole_arc()
        .expect("reduction loop only exits with a single arc");
    let (s, t) = state.net.endpoints(arc);
    debug_assert_eq!(s, state.net.source());
    debug_assert_eq!(t, state.net.sink());
    Ok(ReduceOutcome {
        dist: state.net.dist(arc).clone(),
        series: state.series,
        parallel: state.parallel,
        duplications: state.duplications,
    })
}

struct Engine<'a> {
    net: &'a mut ArcNetwork,
    cfg: &'a ReduceConfig,
    ops: usize,
    series: usize,
    parallel: usize,
    duplications: usize,
    queued: Vec<bool>,
    work: VecDeque<u32>,
    /// Static topological rank per node; a duplicated node inherits the
    /// rank of its original, which keeps ranks a valid topological
    /// numbering of the evolving network (the copy has exactly the
    /// original's successors and one of its predecessors).
    rank: Vec<u32>,
    /// Min-heap (by rank) of *candidate* join nodes (in-degree possibly
    /// ≥ 2). Entries are lazily revalidated at pop time, so stale pushes
    /// are harmless.
    join_heap: std::collections::BinaryHeap<std::cmp::Reverse<(u32, u32)>>,
    /// Merge arena shared by every convolve/max of the reduction.
    dist_scratch: DistScratch,
}

impl Engine<'_> {
    fn run(&mut self) -> Result<(), ReduceError> {
        self.queued = vec![false; self.net.node_slots()];
        // Initial ranks from a topological sort of the starting network.
        self.rank = vec![0; self.net.node_slots()];
        for (r, v) in self.net.topological_order().into_iter().enumerate() {
            self.rank[v as usize] = r as u32;
        }
        for v in 0..self.net.node_slots() as u32 {
            self.enqueue(v);
            if self.net.in_degree(v) >= 2 {
                self.push_join(v);
            }
        }
        loop {
            while let Some(v) = self.work.pop_front() {
                self.queued[v as usize] = false;
                self.tick()?;
                self.try_parallel(v);
                self.try_series(v);
            }
            if self.net.live_arcs() == 1 {
                return Ok(());
            }
            if !self.cfg.allow_duplication {
                return Err(ReduceError::NotSeriesParallel);
            }
            self.tick()?;
            self.duplicate();
        }
    }

    fn push_join(&mut self, v: u32) {
        self.join_heap
            .push(std::cmp::Reverse((self.rank[v as usize], v)));
    }

    fn tick(&mut self) -> Result<(), ReduceError> {
        self.ops += 1;
        if self.ops > self.cfg.max_operations {
            Err(ReduceError::OperationLimitExceeded {
                limit: self.cfg.max_operations,
            })
        } else {
            Ok(())
        }
    }

    fn enqueue(&mut self, v: u32) {
        let i = v as usize;
        if i >= self.queued.len() {
            self.queued.resize(i + 1, false);
        }
        if !self.queued[i] {
            self.queued[i] = true;
            self.work.push_back(v);
        }
    }

    fn cap(&self, mut d: DiscreteDist) -> DiscreteDist {
        d.reduce_support_in_place(self.cfg.max_atoms);
        d
    }

    /// Merge parallel out-arcs of `v` (same destination) via independent
    /// max. One hash pass finds a duplicate pair in `O(out-degree)`.
    fn try_parallel(&mut self, v: u32) {
        loop {
            let arcs = self.net.out_of(v);
            if arcs.len() < 2 {
                return;
            }
            let mut seen: std::collections::HashMap<u32, u32> =
                std::collections::HashMap::with_capacity(arcs.len());
            let mut found: Option<(u32, u32)> = None;
            for &a in arcs {
                let (_, dst) = self.net.endpoints(a);
                if let Some(&first) = seen.get(&dst) {
                    found = Some((first, a));
                    break;
                }
                seen.insert(dst, a);
            }
            let Some((a, b)) = found else { return };
            let (_, dst) = self.net.endpoints(a);
            let da = self.net.remove_arc(a);
            let db = self.net.remove_arc(b);
            let merged = da.max_independent_with(&db, &mut self.dist_scratch);
            let merged = self.cap(merged);
            self.net.add_arc(v, dst, merged);
            self.parallel += 1;
            self.enqueue(v);
            self.enqueue(dst);
        }
    }

    /// Series-reduce `v` if it has exactly one in-arc and one out-arc.
    fn try_series(&mut self, v: u32) {
        if v == self.net.source() || v == self.net.sink() {
            return;
        }
        if self.net.in_degree(v) != 1 || self.net.out_degree(v) != 1 {
            return;
        }
        let ain = self.net.in_of(v)[0];
        let aout = self.net.out_of(v)[0];
        let (u, _) = self.net.endpoints(ain);
        let (_, w) = self.net.endpoints(aout);
        debug_assert_ne!(
            u, w,
            "series reduction would create a self-loop (cycle in input)"
        );
        let din = self.net.remove_arc(ain);
        let dout = self.net.remove_arc(aout);
        let merged = din.convolve_with(&dout, &mut self.dist_scratch);
        let merged = self.cap(merged);
        self.net.add_arc(u, w, merged);
        self.series += 1;
        // u may now have parallel arcs to w; w may have become
        // series-reducible (its in-degree is unchanged but u's arc is
        // new); u's own in/out profile changed only in arc identity.
        self.enqueue(u);
        self.enqueue(w);
    }

    /// One Dodin duplication on an irreducible network.
    ///
    /// Picks the first node `v` in topological order with in-degree ≥ 2
    /// (never the source; never the sink — see below), and an in-arc
    /// `(u, v)` whose tail has out-degree ≥ 2. Moves that arc to a fresh
    /// node `v'` which receives independent copies of `v`'s out-arcs.
    ///
    /// On an irreducible network such a pair exists with `v ≠ sink`:
    /// consider the first `v` in topological order with `indeg ≥ 2`.
    /// Each of its predecessors has `indeg ≤ 1`; a predecessor with
    /// `indeg = outdeg = 1` would be series-reducible and only the
    /// unique source has `indeg = 0`, so some predecessor has
    /// `outdeg ≥ 2`. If the only qualifying `v` were the sink, every
    /// internal node would have `indeg ≤ 1`, making the network an
    /// out-forest whose deepest internal node either has parallel arcs
    /// to the sink or is series-reducible — contradicting
    /// irreducibility.
    fn duplicate(&mut self) {
        let sink = self.net.sink();
        // Pop stale heap entries until a live join node appears.
        let v = loop {
            let std::cmp::Reverse((_, v)) = self
                .join_heap
                .pop()
                .expect("irreducible network has an internal node with in-degree >= 2");
            if v != sink && self.net.in_degree(v) >= 2 {
                break v;
            }
        };
        let arc = self
            .net
            .in_of(v)
            .iter()
            .copied()
            .find(|&a| {
                let (u, _) = self.net.endpoints(a);
                self.net.out_degree(u) >= 2
            })
            .expect("first multi-in node has a multi-out predecessor");
        let (u, _) = self.net.endpoints(arc);
        let moved = self.net.remove_arc(arc);
        let vprime = self.net.add_node();
        debug_assert_eq!(vprime as usize, self.rank.len());
        self.rank.push(self.rank[v as usize]); // copy sits at v's rank
        self.net.add_arc(u, vprime, moved);
        let out: Vec<u32> = self.net.out_of(v).to_vec();
        for a in out {
            let (_, w) = self.net.endpoints(a);
            let d = self.net.dist(a).clone();
            self.net.add_arc(vprime, w, d);
            self.enqueue(w);
            if self.net.in_degree(w) >= 2 {
                self.push_join(w);
            }
        }
        self.duplications += 1;
        self.enqueue(u);
        self.enqueue(v);
        self.enqueue(vprime);
        if self.net.in_degree(v) >= 2 {
            self.push_join(v);
        }
    }
}

/// Evaluate a task DAG with Dodin's series-parallel approximation.
///
/// Builds the activity-on-arc network with per-task distributions from
/// `dist_of` and reduces it with duplication enabled. The returned
/// distribution approximates the makespan distribution; its
/// [`DiscreteDist::mean`] is the Dodin estimate of the expected
/// makespan.
pub fn dodin_evaluate(
    dag: &Dag,
    dist_of: impl FnMut(NodeId) -> DiscreteDist,
    cfg: &ReduceConfig,
) -> Result<ReduceOutcome, ReduceError> {
    let mut net = ArcNetwork::from_task_dag(dag, dist_of);
    let cfg = ReduceConfig {
        allow_duplication: true,
        ..cfg.clone()
    };
    reduce(&mut net, &cfg)
}

/// Exact expected makespan of a **series-parallel** task DAG, or `None`
/// if the DAG (after source/sink augmentation) is not series-parallel.
///
/// With `max_atoms = usize::MAX` the computation is exact
/// (pseudo-polynomial in the support sizes); tests use this as ground
/// truth for Dodin on SP inputs.
pub fn exact_sp_expected_makespan(
    dag: &Dag,
    dist_of: impl FnMut(NodeId) -> DiscreteDist,
    max_atoms: usize,
) -> Option<DiscreteDist> {
    let mut net = ArcNetwork::from_task_dag(dag, dist_of);
    let cfg = ReduceConfig {
        max_atoms,
        allow_duplication: false,
        max_operations: usize::MAX,
    };
    match reduce(&mut net, &cfg) {
        Ok(out) => Some(out.dist),
        Err(ReduceError::NotSeriesParallel) => None,
        Err(e) => panic!("unexpected reduction failure: {e}"),
    }
}

/// Whether the task DAG is series-parallel (in the two-terminal sense,
/// after virtual source/sink augmentation).
///
/// Runs the reduction engine structurally (point-mass distributions, so
/// every merge is `O(1)`).
pub fn is_series_parallel(dag: &Dag) -> bool {
    exact_sp_expected_makespan(dag, |_| DiscreteDist::point(0.0), usize::MAX).is_some()
}

/// Forward independence propagation — the closed form of Dodin's
/// duplication fixpoint.
///
/// Computes, in one topological pass,
///
/// ```text
/// C(v) = D(v) ⊛ max_indep { C(p) : p ∈ Pred(v) },
/// result = max_indep { C(s) : s a sink }
/// ```
///
/// Carrying Dodin's node duplication to completion unfolds the DAG into
/// an in-tree in which every shared ancestor is replaced by independent
/// copies with identical marginals; evaluating that tree bottom-up is
/// precisely the recurrence above. The `dodin_forward_equals_duplication`
/// tests check the two implementations coincide (exactly, with unbounded
/// support) on non-SP inputs; the duplication engine remains available
/// as the literature-faithful reference and for extracting reduction
/// statistics.
///
/// Cost: `O(|V| + |E|)` distribution operations, each bounded by
/// `max_atoms` — this is what makes Dodin usable at the paper's
/// 2 870-task scale.
pub fn dodin_forward_evaluate(
    dag: &Dag,
    dist_of: impl FnMut(NodeId) -> DiscreteDist,
    max_atoms: usize,
) -> DiscreteDist {
    let topo = stochdag_dag::topological_order(dag).expect("requires an acyclic graph");
    dodin_forward_evaluate_in(dag, &topo, dist_of, max_atoms, &mut ForwardScratch::new())
}

/// Reusable scratch for [`dodin_forward_evaluate_in`]: the per-node
/// completion slots and the [`DistScratch`] merge arena, so a prepared
/// estimator evaluating many failure models allocates nothing per call
/// beyond the per-node result supports themselves.
#[derive(Debug, Default)]
pub struct ForwardScratch {
    completion: Vec<Option<DiscreteDist>>,
    dist: DistScratch,
}

impl ForwardScratch {
    /// An empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> ForwardScratch {
        ForwardScratch::default()
    }
}

/// [`dodin_forward_evaluate`] over a caller-provided topological order
/// and [`ForwardScratch`] — the hot-loop form: the topo walk is hoisted
/// out of the per-model call and every convolve/max runs through the
/// reused merge arena. Output is bit-identical to
/// [`dodin_forward_evaluate`].
///
/// `topo` must be a topological order of `dag` over all its nodes.
pub fn dodin_forward_evaluate_in(
    dag: &Dag,
    topo: &[NodeId],
    mut dist_of: impl FnMut(NodeId) -> DiscreteDist,
    max_atoms: usize,
    scratch: &mut ForwardScratch,
) -> DiscreteDist {
    assert!(dag.node_count() > 0, "cannot evaluate an empty DAG");
    debug_assert_eq!(topo.len(), dag.node_count(), "topo must cover the DAG");
    let cap = |mut d: DiscreteDist| {
        d.reduce_support_in_place(max_atoms);
        d
    };
    let completion = &mut scratch.completion;
    completion.clear();
    completion.resize(dag.node_count(), None);
    for &v in topo {
        let d = dist_of(v);
        let preds = dag.preds(v);
        // Identical fold to the historical "clone the first predecessor,
        // max the rest, convolve the node" — minus the clone: the first
        // binary operation reads the predecessor's completion in place.
        let done = match preds.split_first() {
            None => d,
            Some((&p0, rest)) => {
                let c0 = completion[p0.index()]
                    .as_ref()
                    .expect("topological order visits predecessors first");
                let mut start: Option<DiscreteDist> = None;
                for &p in rest {
                    let c = completion[p.index()]
                        .as_ref()
                        .expect("topological order visits predecessors first");
                    start = Some(cap(match &start {
                        None => c0.max_independent_with(c, &mut scratch.dist),
                        Some(s) => s.max_independent_with(c, &mut scratch.dist),
                    }));
                }
                cap(match &start {
                    None => c0.convolve_with(&d, &mut scratch.dist),
                    Some(s) => s.convolve_with(&d, &mut scratch.dist),
                })
            }
        };
        completion[v.index()] = Some(done);
    }
    let mut result: Option<DiscreteDist> = None;
    for v in dag.nodes().filter(|&v| dag.out_degree(v) == 0) {
        let c = completion[v.index()].as_ref().expect("all nodes computed");
        result = Some(match &result {
            None => c.clone(),
            Some(r) => cap(r.max_independent_with(c, &mut scratch.dist)),
        });
    }
    result.expect("non-empty DAG has at least one sink")
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochdag_dag::Dag;
    use stochdag_dist::two_state;

    fn point(dag: &Dag) -> impl FnMut(NodeId) -> DiscreteDist + '_ {
        |i| DiscreteDist::point(dag.weight(i))
    }

    #[test]
    fn chain_reduces_to_sum() {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        let c = g.add_node(3.0);
        g.add_edge(a, b);
        g.add_edge(b, c);
        let d = exact_sp_expected_makespan(&g, point(&g), usize::MAX).unwrap();
        assert!(d.is_point());
        assert!((d.mean() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn diamond_is_series_parallel() {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        let c = g.add_node(3.0);
        let d = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        assert!(is_series_parallel(&g));
        let dist = exact_sp_expected_makespan(&g, point(&g), usize::MAX).unwrap();
        assert!(
            (dist.mean() - 5.0).abs() < 1e-12,
            "deterministic diamond = d(G)"
        );
    }

    #[test]
    fn n_graph_is_not_series_parallel() {
        // 1→3, 1→4, 2→4: the classical forbidden "N".
        let mut g = Dag::new();
        let n1 = g.add_node(1.0);
        let n2 = g.add_node(1.0);
        let n3 = g.add_node(1.0);
        let n4 = g.add_node(1.0);
        g.add_edge(n1, n3);
        g.add_edge(n1, n4);
        g.add_edge(n2, n4);
        assert!(!is_series_parallel(&g));
    }

    #[test]
    fn dodin_handles_the_n_graph() {
        let mut g = Dag::new();
        let n1 = g.add_node(1.0);
        let n2 = g.add_node(4.0);
        let n3 = g.add_node(2.0);
        let n4 = g.add_node(1.0);
        g.add_edge(n1, n3);
        g.add_edge(n1, n4);
        g.add_edge(n2, n4);
        let out = dodin_evaluate(&g, point(&g), &ReduceConfig::default()).unwrap();
        assert!(out.duplications >= 1, "N graph requires duplication");
        // Deterministic weights: duplication is harmless, result must be
        // the true makespan max(1+2, 1+1, 4+1) = 5.
        assert!((out.dist.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn independent_tasks_reduce_by_parallel_max() {
        let mut g = Dag::new();
        g.add_node(3.0);
        g.add_node(7.0);
        g.add_node(5.0);
        let d = exact_sp_expected_makespan(&g, point(&g), usize::MAX).unwrap();
        assert!((d.mean() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn exact_sp_on_stochastic_fork_join() {
        // source a, two parallel tasks b, c, sink d; 2-state durations.
        let mut g = Dag::new();
        let a = g.add_node(0.0);
        let b = g.add_node(1.0);
        let c = g.add_node(1.0);
        let d = g.add_node(0.0);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        let p = 0.9;
        let dist =
            exact_sp_expected_makespan(&g, |i| two_state(g.weight(i), p), usize::MAX).unwrap();
        // max of two iid {1 w.p. .9, 2 w.p. .1}: P(max=1)=0.81, P(max=2)=0.19.
        assert!((dist.mean() - (1.0 * 0.81 + 2.0 * 0.19)).abs() < 1e-12);
    }

    #[test]
    fn dodin_exact_on_sp_inputs() {
        // On an SP DAG, Dodin performs no duplication and equals the
        // exact SP evaluation.
        let mut g = Dag::new();
        let a = g.add_node(2.0);
        let b = g.add_node(1.0);
        let c = g.add_node(3.0);
        let d = g.add_node(2.0);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        let p = 0.95;
        let exact =
            exact_sp_expected_makespan(&g, |i| two_state(g.weight(i), p), usize::MAX).unwrap();
        let dodin =
            dodin_evaluate(&g, |i| two_state(g.weight(i), p), &ReduceConfig::default()).unwrap();
        assert_eq!(dodin.duplications, 0);
        assert!((dodin.dist.mean() - exact.mean()).abs() < 1e-9);
    }

    #[test]
    fn operation_limit_is_enforced() {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(1.0);
        g.add_edge(a, b);
        let mut net = ArcNetwork::from_task_dag(&g, |_| DiscreteDist::point(1.0));
        let cfg = ReduceConfig {
            max_operations: 1,
            ..Default::default()
        };
        assert!(matches!(
            reduce(&mut net, &cfg),
            Err(ReduceError::OperationLimitExceeded { limit: 1 })
        ));
    }

    #[test]
    fn atom_cap_keeps_mean_close() {
        // Long stochastic chain: capped evaluation should track the
        // uncapped mean closely (sums are exact in mean regardless of
        // coarsening; maxima introduce only small bias).
        let mut g = Dag::new();
        let mut prev = None;
        for _ in 0..30 {
            let v = g.add_node(1.0);
            if let Some(p) = prev {
                g.add_edge(p, v);
            }
            prev = Some(v);
        }
        let exact = exact_sp_expected_makespan(&g, |_| two_state(1.0, 0.9), usize::MAX).unwrap();
        let capped = exact_sp_expected_makespan(&g, |_| two_state(1.0, 0.9), 16).unwrap();
        assert!(
            (exact.mean() - capped.mean()).abs() < 1e-9,
            "chain means are exact"
        );
        assert!(capped.len() <= 16);
    }

    #[test]
    fn reduction_counts_reported() {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(1.0);
        g.add_edge(a, b);
        let out = dodin_evaluate(&g, point(&g), &ReduceConfig::default()).unwrap();
        assert!(out.series > 0);
        assert_eq!(out.duplications, 0);
        assert!((out.dist.mean() - 2.0).abs() < 1e-12);
    }
}
