//! Activity-on-arc stochastic network.

use stochdag_dag::{Dag, NodeId};
use stochdag_dist::DiscreteDist;

/// A directed multigraph whose arcs carry duration distributions, with a
/// unique source and sink — the representation Dodin's algorithm (and
/// classical PERT analysis) operates on.
///
/// Arcs are stored in a slot vector with tombstones; per-node adjacency
/// lists hold live arc ids and are maintained eagerly on every mutation,
/// so degree queries are `O(1)` and iteration over a node's arcs is
/// `O(degree)`.
#[derive(Clone, Debug)]
pub struct ArcNetwork {
    arcs: Vec<ArcSlot>,
    out_arcs: Vec<Vec<u32>>,
    in_arcs: Vec<Vec<u32>>,
    live_arcs: usize,
    source: u32,
    sink: u32,
}

#[derive(Clone, Debug)]
struct ArcSlot {
    src: u32,
    dst: u32,
    dist: DiscreteDist,
    alive: bool,
}

impl ArcNetwork {
    /// Build the activity-on-arc network of a task DAG.
    ///
    /// Every task `i` becomes an arc `begin(i) → end(i)` carrying
    /// `dist_of(i)`; every precedence `(i, j)` a zero arc
    /// `end(i) → begin(j)`; entry/exit tasks attach to the virtual
    /// source/sink with zero arcs. Node ids: `source = 0`, `sink = 1`,
    /// `begin(i) = 2 + 2·index(i)`, `end(i) = 3 + 2·index(i)`.
    ///
    /// # Panics
    /// Panics if the DAG is empty.
    pub fn from_task_dag(dag: &Dag, mut dist_of: impl FnMut(NodeId) -> DiscreteDist) -> ArcNetwork {
        assert!(
            dag.node_count() > 0,
            "cannot build a network from an empty DAG"
        );
        let n_nodes = 2 + 2 * dag.node_count();
        let mut net = ArcNetwork {
            arcs: Vec::with_capacity(2 * dag.node_count() + dag.edge_count()),
            out_arcs: vec![Vec::new(); n_nodes],
            in_arcs: vec![Vec::new(); n_nodes],
            live_arcs: 0,
            source: 0,
            sink: 1,
        };
        let begin = |i: NodeId| 2 + 2 * i.index() as u32;
        let end = |i: NodeId| 3 + 2 * i.index() as u32;
        for i in dag.nodes() {
            net.add_arc(begin(i), end(i), dist_of(i));
            if dag.in_degree(i) == 0 {
                net.add_arc(net.source, begin(i), DiscreteDist::point(0.0));
            }
            if dag.out_degree(i) == 0 {
                net.add_arc(end(i), net.sink, DiscreteDist::point(0.0));
            }
        }
        for (i, j) in dag.edges() {
            net.add_arc(end(i), begin(j), DiscreteDist::point(0.0));
        }
        net
    }

    /// The virtual source node.
    pub fn source(&self) -> u32 {
        self.source
    }

    /// The virtual sink node.
    pub fn sink(&self) -> u32 {
        self.sink
    }

    /// Number of node slots (live and dead; node ids never shift).
    pub fn node_slots(&self) -> usize {
        self.out_arcs.len()
    }

    /// Number of live arcs.
    pub fn live_arcs(&self) -> usize {
        self.live_arcs
    }

    /// Allocate a fresh node (used by Dodin duplication).
    pub fn add_node(&mut self) -> u32 {
        let id = self.out_arcs.len() as u32;
        self.out_arcs.push(Vec::new());
        self.in_arcs.push(Vec::new());
        id
    }

    /// Add an arc and return its id.
    pub fn add_arc(&mut self, src: u32, dst: u32, dist: DiscreteDist) -> u32 {
        assert!(src != dst, "self-loop arc {src}->{dst}");
        let id = self.arcs.len() as u32;
        self.arcs.push(ArcSlot {
            src,
            dst,
            dist,
            alive: true,
        });
        self.out_arcs[src as usize].push(id);
        self.in_arcs[dst as usize].push(id);
        self.live_arcs += 1;
        id
    }

    /// Remove an arc, returning its distribution.
    ///
    /// The slot's payload is replaced by a point mass so large
    /// distributions do not linger in tombstones (Dodin's duplication can
    /// create and retire hundreds of thousands of arcs).
    ///
    /// # Panics
    /// Panics if the arc is already dead.
    pub fn remove_arc(&mut self, id: u32) -> DiscreteDist {
        let slot = &mut self.arcs[id as usize];
        assert!(slot.alive, "arc {id} already removed");
        slot.alive = false;
        let (src, dst) = (slot.src, slot.dst);
        let dist = std::mem::replace(&mut slot.dist, DiscreteDist::point(0.0));
        self.out_arcs[src as usize].retain(|&a| a != id);
        self.in_arcs[dst as usize].retain(|&a| a != id);
        self.live_arcs -= 1;
        dist
    }

    /// Endpoints of a live arc.
    pub fn endpoints(&self, id: u32) -> (u32, u32) {
        let slot = &self.arcs[id as usize];
        debug_assert!(slot.alive);
        (slot.src, slot.dst)
    }

    /// Distribution carried by a live arc.
    pub fn dist(&self, id: u32) -> &DiscreteDist {
        let slot = &self.arcs[id as usize];
        debug_assert!(slot.alive);
        &slot.dist
    }

    /// Replace the distribution of a live arc.
    pub fn set_dist(&mut self, id: u32, dist: DiscreteDist) {
        let slot = &mut self.arcs[id as usize];
        debug_assert!(slot.alive);
        slot.dist = dist;
    }

    /// Live out-arc ids of a node.
    pub fn out_of(&self, node: u32) -> &[u32] {
        &self.out_arcs[node as usize]
    }

    /// Live in-arc ids of a node.
    pub fn in_of(&self, node: u32) -> &[u32] {
        &self.in_arcs[node as usize]
    }

    /// Live out-degree.
    pub fn out_degree(&self, node: u32) -> usize {
        self.out_arcs[node as usize].len()
    }

    /// Live in-degree.
    pub fn in_degree(&self, node: u32) -> usize {
        self.in_arcs[node as usize].len()
    }

    /// A topological order of the nodes that currently have live arcs
    /// (isolated nodes are skipped). Kahn's algorithm on live arcs.
    ///
    /// # Panics
    /// Panics if the live network is cyclic (cannot happen for networks
    /// produced by the reduction engine from a valid DAG).
    pub fn topological_order(&self) -> Vec<u32> {
        let n = self.out_arcs.len();
        let mut indeg: Vec<u32> = (0..n).map(|v| self.in_arcs[v].len() as u32).collect();
        let mut active = vec![false; n];
        let mut active_count = 0usize;
        for slot in &self.arcs {
            if slot.alive {
                for v in [slot.src, slot.dst] {
                    if !active[v as usize] {
                        active[v as usize] = true;
                        active_count += 1;
                    }
                }
            }
        }
        let mut queue: std::collections::VecDeque<u32> = (0..n as u32)
            .filter(|&v| active[v as usize] && indeg[v as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(active_count);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &a in &self.out_arcs[v as usize] {
                let d = self.arcs[a as usize].dst;
                indeg[d as usize] -= 1;
                if indeg[d as usize] == 0 {
                    queue.push_back(d);
                }
            }
        }
        assert_eq!(order.len(), active_count, "live network contains a cycle");
        order
    }

    /// The single live arc's id, if exactly one remains.
    pub fn sole_arc(&self) -> Option<u32> {
        if self.live_arcs != 1 {
            return None;
        }
        self.arcs.iter().position(|s| s.alive).map(|i| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochdag_dag::Dag;

    fn two_task_chain() -> (Dag, ArcNetwork) {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        g.add_edge(a, b);
        let net = ArcNetwork::from_task_dag(&g, |i| DiscreteDist::point(g.weight(i)));
        (g, net)
    }

    #[test]
    fn construction_counts() {
        let (_, net) = two_task_chain();
        // arcs: 2 tasks + 1 precedence + source attach + sink attach = 5
        assert_eq!(net.live_arcs(), 5);
        assert_eq!(net.node_slots(), 6);
        assert_eq!(net.out_degree(net.source()), 1);
        assert_eq!(net.in_degree(net.sink()), 1);
    }

    #[test]
    fn remove_arc_updates_adjacency() {
        let (_, mut net) = two_task_chain();
        let id = net.out_of(net.source())[0];
        let d = net.remove_arc(id);
        assert_eq!(d.mean(), 0.0);
        assert_eq!(net.out_degree(net.source()), 0);
        assert_eq!(net.live_arcs(), 4);
    }

    #[test]
    #[should_panic(expected = "already removed")]
    fn double_remove_panics() {
        let (_, mut net) = two_task_chain();
        let id = net.out_of(net.source())[0];
        net.remove_arc(id);
        net.remove_arc(id);
    }

    #[test]
    fn topological_order_covers_active_nodes() {
        let (_, net) = two_task_chain();
        let order = net.topological_order();
        assert_eq!(order.len(), 6);
        assert_eq!(order[0], net.source());
        assert_eq!(*order.last().unwrap(), net.sink());
    }

    #[test]
    fn add_node_extends_slots() {
        let (_, mut net) = two_task_chain();
        let v = net.add_node();
        assert_eq!(v as usize, net.node_slots() - 1);
        assert_eq!(net.out_degree(v), 0);
    }

    #[test]
    fn sole_arc_detection() {
        let mut g = Dag::new();
        g.add_node(1.0);
        let mut net = ArcNetwork::from_task_dag(&g, |_| DiscreteDist::point(1.0));
        assert_eq!(net.live_arcs(), 3); // source->b, task, e->sink
        assert!(net.sole_arc().is_none());
        // Remove two, leaving one.
        let a0 = net.out_of(net.source())[0];
        net.remove_arc(a0);
        let a1 = net.in_of(net.sink())[0];
        net.remove_arc(a1);
        assert!(net.sole_arc().is_some());
    }
}
