//! Duplication-count scaling probe for the faithful Dodin engine.
//!
//! Demonstrates why the experiment harness uses the forward surrogate at
//! the paper's scales: duplications grow combinatorially on the dense
//! LU DAGs (about 1.0e5 at k = 8 and 2.6e6 at k = 10 — the k = 10 row
//! takes several minutes). See DESIGN.md §3.
//!
//! Run with: `cargo run -p stochdag-sp --release --example dodin_scale [max_k]`

fn main() {
    let max_k: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let t = stochdag_taskgraphs::KernelTimings::paper_default();
    for k in (4..=max_k).step_by(2) {
        let g = stochdag_taskgraphs::lu_dag(k, &t);
        let cfg = stochdag_sp::ReduceConfig {
            max_atoms: 64,
            ..Default::default()
        };
        let start = std::time::Instant::now();
        let out =
            stochdag_sp::dodin_evaluate(&g, |i| stochdag_dist::two_state(g.weight(i), 0.999), &cfg)
                .unwrap();
        println!(
            "lu k={k}: n={} dups={} mean={:.4} d(G)={:.4} time={:?}",
            g.node_count(),
            out.duplications,
            out.dist.mean(),
            g.longest_path_length(),
            start.elapsed()
        );
    }
}
