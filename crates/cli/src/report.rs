//! Plain-text table and CSV emission (hand-rolled; no serde).

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A simple column-aligned text table with a CSV twin.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let mut line = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            write!(line, "{h:>w$}  ").unwrap();
        }
        out.push_str(line.trim_end());
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len() - 2));
        out.push('\n');
        for row in &self.rows {
            let mut line = String::new();
            for (cell, w) in row.iter().zip(&widths) {
                write!(line, "{cell:>w$}  ").unwrap();
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }

    /// Render as CSV (RFC-4180-style quoting for cells containing
    /// commas/quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV rendering to a file, creating parent directories.
    pub fn write_csv(&self, path: &Path) -> Result<(), String> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("creating {}: {e}", parent.display()))?;
            }
        }
        let mut f =
            std::fs::File::create(path).map_err(|e| format!("creating {}: {e}", path.display()))?;
        f.write_all(self.to_csv().as_bytes())
            .map_err(|e| format!("writing {}: {e}", path.display()))
    }
}

/// Format a signed relative error the way the paper's plots read
/// (scientific, sign-preserving).
pub fn fmt_rel(v: f64) -> String {
    format!("{v:+.3e}")
}

/// Format a duration in a human unit.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}min", s / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["k", "err"]);
        t.row(vec!["4".into(), "+1.0e-3".into()]);
        t.row(vec!["12".into(), "-2.5e-4".into()]);
        let txt = t.to_text();
        assert!(txt.contains(" k"));
        assert!(txt.lines().count() == 4);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x,y".into(), "q\"z".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"q\"\"z\""));
    }

    #[test]
    fn duration_formats() {
        use std::time::Duration;
        assert!(fmt_duration(Duration::from_micros(50)).ends_with("us"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with('s'));
        assert!(fmt_duration(Duration::from_secs(600)).ends_with("min"));
    }

    #[test]
    fn rel_format_signs() {
        assert!(fmt_rel(0.001).starts_with('+'));
        assert!(fmt_rel(-0.001).starts_with('-'));
    }
}
