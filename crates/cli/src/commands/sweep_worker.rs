//! `sweep-worker` — the worker half of distributed sweeps, in three
//! modes:
//!
//! * `--leases` (spawned by the engine's [`MultiProcess`] backend):
//!   the coordinator streams [`WorkLease`] requests over **stdin**,
//!   one JSON line each, and this process executes them via
//!   [`Campaign::serve_leases`], emitting every
//!   [`stochdag_engine::CampaignEvent`] as one line of JSON on
//!   **stdout** (which therefore stays machine-readable; diagnostics
//!   go to stderr). `--jobs N` caps this worker's threads — the
//!   coordinator sizes it, not a cores/N guess.
//! * `--spool DIR` (launched by hand or a job scheduler on any host
//!   sharing the filesystem with a `sweep --spool DIR` coordinator):
//!   runs a [`SpoolWorker`] session that claims leases from the spool
//!   directory until the coordinator stops the campaign. See the
//!   README's "Cross-host campaigns" section.
//! * `--shard I --of N` (legacy v1 protocol): executes a static
//!   partition via [`Campaign::run_shard`]. Kept for one deprecation
//!   window alongside [`V1Backend`](stochdag_engine::V1Backend).
//!
//! Not listed in `stochdag help`: the piped protocol is an internal
//! contract with the coordinator, not a user interface — though a
//! captured event log is valid input to the coordinator's merge, which
//! is what makes campaigns debuggable post-hoc. The `--spool` mode IS
//! user-facing (it is how remote hosts join a campaign) and is
//! documented in the README.
//!
//! [`MultiProcess`]: stochdag_engine::MultiProcess
//! [`WorkLease`]: stochdag_engine::WorkLease
//! [`Campaign::serve_leases`]: stochdag_engine::Campaign::serve_leases
//! [`Campaign::run_shard`]: stochdag_engine::Campaign::run_shard
//! [`SpoolWorker`]: stochdag_engine::SpoolWorker

use crate::args::Options;
use std::sync::Arc;
use std::time::Duration;
use stochdag::prelude::*;
#[cfg(debug_assertions)]
use stochdag_engine::CampaignObserver;
use stochdag_engine::{
    encode_event, Campaign, CampaignEvent, EngineError, SpoolWorker, Telemetry, WireObserver,
};

/// Fault-injection hook for the coordinator's kill-a-worker test: when
/// `STOCHDAG_SWEEP_WORKER_CRASH_FILE` names a file whose content is
/// this worker's slot index, the worker deletes the file (so the
/// re-queued leases land on a clean respawn) and hard-exits mid-stream
/// after a few events. Debug builds only (what `cargo test` runs) —
/// release workers ship without the hook.
#[cfg(debug_assertions)]
struct CrashAfterEvents {
    remaining: usize,
}

#[cfg(debug_assertions)]
impl CampaignObserver for CrashAfterEvents {
    fn on_event(&mut self, _event: &CampaignEvent) -> Result<(), EngineError> {
        if self.remaining == 0 {
            // Simulates a worker dying mid-lease: some events are
            // already on the wire, the stream has no `done`, and the
            // exit status is non-zero.
            std::process::exit(87);
        }
        self.remaining -= 1;
        Ok(())
    }
}

#[cfg(debug_assertions)]
fn crash_armed(slot: usize) -> bool {
    let Ok(path) = std::env::var("STOCHDAG_SWEEP_WORKER_CRASH_FILE") else {
        return false;
    };
    match std::fs::read_to_string(&path) {
        Ok(content) if content.trim() == slot.to_string() => {
            // Disarm before crashing so the re-queued leases run clean
            // on the respawned worker — unless the test wants the
            // respawn to die too (`…_CRASH_REARM`).
            if std::env::var_os("STOCHDAG_SWEEP_WORKER_CRASH_REARM").is_none() {
                let _ = std::fs::remove_file(&path);
            }
            true
        }
        _ => false,
    }
}

pub fn run(argv: &[String]) -> Result<(), String> {
    let opts = Options::parse(argv)?;
    if let Some(spool) = opts.get("spool") {
        return run_spool(&opts, spool);
    }
    let spec_path = opts.require("spec-json")?;
    let leases = opts.flag("leases");
    let slot: usize = if leases {
        opts.require("worker")?
            .parse()
            .map_err(|_| "bad --worker".to_string())?
    } else {
        opts.require("shard")?
            .parse()
            .map_err(|_| "bad --shard".to_string())?
    };
    let result: Result<(), EngineError> = (|| {
        let mut spec = SweepSpec::from_file(spec_path)?;
        if leases {
            // The coordinator sizes this worker's thread pool
            // explicitly (satellite of the lease redesign: no more
            // cores/N guessing inside the worker).
            if let Some(jobs) = opts.get("jobs") {
                spec.jobs = Some(jobs.parse().map_err(|_| EngineError::spec("bad --jobs"))?);
            }
        }
        let cache = Arc::new(if opts.flag("no-cache") {
            ResultCache::in_memory()
        } else {
            ResultCache::on_disk(opts.get("cache").unwrap_or(".stochdag-cache"))
        });

        // One event per line on stdout, flushed immediately: the
        // coordinator renders live progress from this stream, so events
        // must not sit in a buffer until the lease finishes.
        let mut builder = Campaign::builder(spec)
            .cache(cache)
            .observer(WireObserver::new(std::io::stdout()));
        // The coordinator passes --telemetry when its own telemetry is
        // enabled: the worker then collects spans/counters and streams a
        // `telemetry` event home just before `done`.
        if opts.flag("telemetry") {
            builder = builder.telemetry(Telemetry::enabled());
        }
        #[cfg(debug_assertions)]
        if crash_armed(slot) {
            builder = builder.observer(CrashAfterEvents { remaining: 3 });
        }
        let campaign = builder.build()?;
        if leases {
            campaign.serve_leases(slot, std::io::stdin().lock())?;
        } else {
            let of: usize = opts
                .require("of")
                .map_err(EngineError::spec)?
                .parse()
                .map_err(|_| EngineError::spec("bad --of"))?;
            campaign.run_shard(slot, of)?;
        }
        Ok(())
    })();
    if let Err(e) = &result {
        // Best effort, covering every failure from spec loading through
        // lease execution: tell the coordinator why (and what kind of
        // failure it was, for the metrics report's errors_by_kind
        // tally) before exiting non-zero. If the pipe is already gone
        // the write fails silently — never panic here — and the exit
        // status still carries the failure.
        use std::io::Write;
        let _ = writeln!(
            std::io::stdout(),
            "{}",
            encode_event(&CampaignEvent::Error {
                message: e.to_string(),
                kind: Some(e.kind().to_string()),
            })
        );
    }
    result.map_err(String::from)
}

/// `sweep-worker --spool DIR`: serve a shared-filesystem campaign from
/// this host until its coordinator writes the stop file.
fn run_spool(opts: &Options, spool: &str) -> Result<(), String> {
    let mut worker = SpoolWorker::new(spool);
    if let Some(name) = opts.get("name") {
        worker = worker.name(name);
    }
    if let Some(jobs) = opts.get("jobs") {
        let jobs: usize = jobs.parse().map_err(|_| "bad --jobs".to_string())?;
        if jobs == 0 {
            return Err("--jobs must be positive".into());
        }
        worker = worker.jobs(jobs);
    }
    if opts.flag("no-cache") {
        worker = worker.no_cache();
    } else if let Some(dir) = opts.get("cache") {
        worker = worker.cache_dir(dir);
    }
    if let Some(wait) = opts.get("max-wait") {
        let secs: f64 = wait.parse().map_err(|_| "bad --max-wait".to_string())?;
        if !(secs.is_finite() && secs >= 0.0) {
            return Err("--max-wait must be a non-negative number of seconds".into());
        }
        worker = worker.max_wait(Duration::from_secs_f64(secs));
    }
    let summary = worker.run().map_err(String::from)?;
    eprintln!(
        "spool worker done: {} lease(s), {} cell(s)",
        summary.leases, summary.cells
    );
    Ok(())
}
