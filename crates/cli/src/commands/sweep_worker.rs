//! `sweep-worker` — the hidden worker half of `sweep --workers N`.
//!
//! Spawned by the coordinator, one process per shard. Executes the
//! cells [`stochdag_engine::shard_of`] assigns to `--shard` out of
//! `--of`, sharing the coordinator's on-disk result cache, and streams
//! line-delimited JSON [`stochdag_engine::WorkerEvent`]s on **stdout**
//! (which therefore stays machine-readable; diagnostics go to stderr).
//! Not listed in `stochdag help`: the protocol is an internal contract
//! with the coordinator, not a user interface — though a replayed event
//! log is valid input to the coordinator's merge, which is what makes
//! campaigns debuggable post-hoc.

use crate::args::Options;
use std::io::Write;
use stochdag::prelude::*;
use stochdag_engine::{encode_event, run_shard, WorkerEvent};

pub fn run(argv: &[String]) -> Result<(), String> {
    let opts = Options::parse(argv)?;
    let spec_path = opts.require("spec-json")?;
    let shard: usize = opts
        .require("shard")?
        .parse()
        .map_err(|_| "bad --shard".to_string())?;
    let of: usize = opts
        .require("of")?
        .parse()
        .map_err(|_| "bad --of".to_string())?;
    let spec = SweepSpec::from_file(spec_path)?;
    let registry = EstimatorRegistry::standard();
    let cache = if opts.flag("no-cache") {
        ResultCache::in_memory()
    } else {
        ResultCache::on_disk(opts.get("cache").unwrap_or(".stochdag-cache"))
    };

    // One event per line, flushed immediately: the coordinator renders
    // live progress from this stream, so events must not sit in a
    // buffer until the shard finishes.
    let emit = |ev: &WorkerEvent| -> Result<(), String> {
        let mut out = std::io::stdout().lock();
        writeln!(out, "{}", encode_event(ev))
            .and_then(|()| out.flush())
            .map_err(|e| format!("writing event to coordinator: {e}"))
    };
    match run_shard(&spec, &registry, &cache, shard, of, &emit) {
        Ok(_) => Ok(()),
        Err(message) => {
            // Best effort: tell the coordinator why before exiting
            // non-zero (if the pipe is gone, the exit status still
            // carries the failure).
            let _ = emit(&WorkerEvent::Error {
                message: message.clone(),
            });
            Err(message)
        }
    }
}
