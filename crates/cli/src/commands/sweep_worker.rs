//! `sweep-worker` — the hidden worker half of `sweep --workers N`.
//!
//! Spawned by the engine's [`MultiProcess`] backend, one process per
//! shard. Executes the cells [`stochdag_engine::shard_of`] assigns to
//! `--shard` out of `--of` via [`Campaign::run_shard`], sharing the
//! coordinator's on-disk result cache, and subscribes a
//! [`WireObserver`] so every [`stochdag_engine::CampaignEvent`] goes
//! out as one line of JSON on **stdout** (which therefore stays
//! machine-readable; diagnostics go to stderr). Not listed in
//! `stochdag help`: the protocol is an internal contract with the
//! coordinator, not a user interface — though a captured event log is
//! valid input to the coordinator's merge, which is what makes
//! campaigns debuggable post-hoc.
//!
//! [`MultiProcess`]: stochdag_engine::MultiProcess
//! [`Campaign::run_shard`]: stochdag_engine::Campaign::run_shard
//! [`WireObserver`]: stochdag_engine::WireObserver

use crate::args::Options;
use std::sync::Arc;
use stochdag::prelude::*;
#[cfg(debug_assertions)]
use stochdag_engine::CampaignObserver;
use stochdag_engine::{
    encode_event, Campaign, CampaignEvent, EngineError, Telemetry, WireObserver,
};

/// Fault-injection hook for the coordinator's kill-a-worker test: when
/// `STOCHDAG_SWEEP_WORKER_CRASH_FILE` names a file whose content is
/// this worker's shard index, the worker deletes the file (so its
/// retry survives) and hard-exits mid-stream after a few events.
/// Debug builds only (what `cargo test` runs) — release workers ship
/// without the hook.
#[cfg(debug_assertions)]
struct CrashAfterEvents {
    remaining: usize,
}

#[cfg(debug_assertions)]
impl CampaignObserver for CrashAfterEvents {
    fn on_event(&mut self, _event: &CampaignEvent) -> Result<(), EngineError> {
        if self.remaining == 0 {
            // Simulates a worker dying mid-shard: some events are
            // already on the wire, the stream has no `done`, and the
            // exit status is non-zero.
            std::process::exit(87);
        }
        self.remaining -= 1;
        Ok(())
    }
}

#[cfg(debug_assertions)]
fn crash_armed(shard: usize) -> bool {
    let Ok(path) = std::env::var("STOCHDAG_SWEEP_WORKER_CRASH_FILE") else {
        return false;
    };
    match std::fs::read_to_string(&path) {
        Ok(content) if content.trim() == shard.to_string() => {
            // Disarm before crashing so the coordinator's single retry
            // of this shard runs clean — unless the test wants the
            // retry to die too (`…_CRASH_REARM`).
            if std::env::var_os("STOCHDAG_SWEEP_WORKER_CRASH_REARM").is_none() {
                let _ = std::fs::remove_file(&path);
            }
            true
        }
        _ => false,
    }
}

pub fn run(argv: &[String]) -> Result<(), String> {
    let opts = Options::parse(argv)?;
    let spec_path = opts.require("spec-json")?;
    let shard: usize = opts
        .require("shard")?
        .parse()
        .map_err(|_| "bad --shard".to_string())?;
    let of: usize = opts
        .require("of")?
        .parse()
        .map_err(|_| "bad --of".to_string())?;
    let result: Result<(), EngineError> = (|| {
        let spec = SweepSpec::from_file(spec_path)?;
        let cache = Arc::new(if opts.flag("no-cache") {
            ResultCache::in_memory()
        } else {
            ResultCache::on_disk(opts.get("cache").unwrap_or(".stochdag-cache"))
        });

        // One event per line on stdout, flushed immediately: the
        // coordinator renders live progress from this stream, so events
        // must not sit in a buffer until the shard finishes.
        let mut builder = Campaign::builder(spec)
            .cache(cache)
            .observer(WireObserver::new(std::io::stdout()));
        // The coordinator passes --telemetry when its own telemetry is
        // enabled: the shard then collects spans/counters and streams a
        // `telemetry` event home just before `done`.
        if opts.flag("telemetry") {
            builder = builder.telemetry(Telemetry::enabled());
        }
        #[cfg(debug_assertions)]
        if crash_armed(shard) {
            builder = builder.observer(CrashAfterEvents { remaining: 3 });
        }
        builder.build()?.run_shard(shard, of)?;
        Ok(())
    })();
    if let Err(e) = &result {
        // Best effort, covering every failure from spec loading through
        // shard execution: tell the coordinator why (and what kind of
        // failure it was, for the metrics report's errors_by_kind
        // tally) before exiting non-zero. If the pipe is already gone
        // the write fails silently — never panic here — and the exit
        // status still carries the failure.
        use std::io::Write;
        let _ = writeln!(
            std::io::stdout(),
            "{}",
            encode_event(&CampaignEvent::Error {
                message: e.to_string(),
                kind: Some(e.kind().to_string()),
            })
        );
    }
    result.map_err(String::from)
}
