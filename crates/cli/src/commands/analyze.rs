//! `analyze` — run the full estimator panel on a user-supplied task
//! graph file (see `stochdag_dag::io` for the format).

use crate::args::Options;
use crate::report::{fmt_duration, Table};
use stochdag::dag::io::parse_taskgraph;
use stochdag::prelude::*;

pub fn run(argv: &[String]) -> Result<(), String> {
    let opts = Options::parse(argv)?;
    let path = opts.require("file")?;
    let pfail: f64 = opts.get_or("pfail", 0.001)?;
    let trials: usize = opts.get_or("trials", 100_000)?;
    let seed: u64 = opts.get_or("seed", 0)?;

    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let dag = parse_taskgraph(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: {} tasks, {} edges, d(G) = {:.6}, a-bar = {:.6}",
        dag.node_count(),
        dag.edge_count(),
        longest_path_length(&dag),
        dag.mean_weight()
    );
    let model = FailureModel::from_pfail_for_dag(pfail, &dag);
    println!(
        "pfail = {pfail} => lambda = {:.6} (MTBF {:.1})\n",
        model.lambda,
        model.mtbf()
    );

    // One shared preparation (freeze + topological order) serves the
    // whole panel; each estimator binds to it and evaluates once. The
    // reported time covers bind + evaluate, i.e. each estimator's full
    // one-shot cost on an already-prepared graph.
    let prepared = PreparedDag::new(dag);
    let timed = |est: &dyn Estimator| {
        let t0 = std::time::Instant::now();
        let mut e = est.prepare(&prepared).estimate_for(&model);
        e.elapsed = t0.elapsed();
        e
    };
    let mc = timed(&MonteCarloEstimator::new(trials).with_seed(seed));
    let mut table = Table::new(&["estimator", "E(G)", "rel_vs_mc", "time"]);
    table.row(vec![
        "MonteCarlo".into(),
        format!("{:.6}", mc.value),
        format!("±{:.1e}", mc.std_error.unwrap_or(0.0) / mc.value),
        fmt_duration(mc.elapsed),
    ]);
    let panel: Vec<Box<dyn Estimator>> = vec![
        Box::new(FirstOrderEstimator::fast()),
        Box::new(SecondOrderEstimator),
        Box::new(SculliEstimator),
        Box::new(CorLcaEstimator),
        Box::new(CovarianceNormalEstimator),
        Box::new(DodinEstimator::scalable()),
        Box::new(SpeldeEstimator::default()),
    ];
    for est in panel {
        let e = timed(est.as_ref());
        table.row(vec![
            e.name.clone(),
            format!("{:.6}", e.value),
            format!("{:+.3e}", e.relative_error(mc.value)),
            fmt_duration(e.elapsed),
        ]);
    }
    print!("{}", table.to_text());
    Ok(())
}
