//! `second-order` — the ablation for the paper's "future work"
//! extension: how much does the `O(λ²)` term buy at each failure rate?

use crate::args::Options;
use crate::commands::{build_dag, parse_class};
use crate::report::{fmt_rel, Table};
use stochdag::prelude::*;

pub fn run(argv: &[String]) -> Result<(), String> {
    let opts = Options::parse(argv)?;
    let class = parse_class(opts.require("class")?)?;
    let k: usize = opts.get_or("k", 8)?;
    let trials: usize = opts.get_or("trials", 300_000)?;
    let seed: u64 = opts.get_or("seed", 0)?;

    let dag = build_dag(class, k);
    let mut table = Table::new(&["pfail", "mc_mean", "first_order", "second_order", "gain"]);
    for pfail in [0.05, 0.02, 0.01, 0.005, 0.001, 0.0001] {
        let model = FailureModel::from_pfail_for_dag(pfail, &dag);
        let mc = MonteCarloEstimator::new(trials)
            .with_seed(seed)
            .run(&dag, &model);
        let e1 = first_order_expected_makespan_fast(&dag, &model);
        let e2 = second_order_expected_makespan(&dag, &model);
        let r1 = (e1 - mc.mean) / mc.mean;
        let r2 = (e2 - mc.mean) / mc.mean;
        let gain = if r2 != 0.0 {
            r1.abs() / r2.abs()
        } else {
            f64::INFINITY
        };
        table.row(vec![
            format!("{pfail}"),
            format!("{:.6}", mc.mean),
            fmt_rel(r1),
            fmt_rel(r2),
            format!("{gain:.1}x"),
        ]);
    }
    println!(
        "# first- vs second-order error vs Monte Carlo ({} k={k}, {trials} trials)",
        class.name()
    );
    print!("{}", table.to_text());
    Ok(())
}
