//! `figure` / `all-figures` — the paper's Figures 4–12.
//!
//! For one DAG class and one `pfail`, sweep `k` and report every
//! estimator's relative error against the Monte Carlo ground truth
//! (the paper's "normalized difference with Monte-Carlo"; negative =
//! underestimation).

use crate::args::Options;
use crate::commands::{build_dag, parse_class};
use crate::report::{fmt_duration, fmt_rel, Table};
use std::path::PathBuf;
use stochdag::prelude::*;

struct FigureConfig {
    class: FactorizationClass,
    pfail: f64,
    ks: Vec<usize>,
    trials: usize,
    seed: u64,
    csv: Option<PathBuf>,
}

/// Default graph sizes of the paper's figures.
const PAPER_KS: [usize; 5] = [4, 6, 8, 10, 12];

pub fn run(argv: &[String]) -> Result<(), String> {
    let opts = Options::parse(argv)?;
    let cfg = FigureConfig {
        class: parse_class(opts.require("class")?)?,
        pfail: opts
            .require("pfail")?
            .parse()
            .map_err(|_| "bad --pfail".to_string())?,
        ks: opts.get_usize_list("ks", &PAPER_KS)?,
        trials: opts.get_or("trials", if opts.flag("fast") { 20_000 } else { 300_000 })?,
        seed: opts.get_or("seed", 0)?,
        csv: opts.get("csv").map(PathBuf::from),
    };
    let table = figure_table(&cfg);
    println!(
        "# {} pfail={} trials={} (paper Figs. 4-12 series; error = (est - MC)/MC)",
        cfg.class.name(),
        cfg.pfail,
        cfg.trials
    );
    print!("{}", table.to_text());
    if let Some(path) = &cfg.csv {
        table.write_csv(path)?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

pub fn run_all(argv: &[String]) -> Result<(), String> {
    let opts = Options::parse(argv)?;
    let trials = opts.get_or("trials", if opts.flag("fast") { 20_000 } else { 300_000 })?;
    let seed = opts.get_or("seed", 0)?;
    let out: PathBuf = opts.get("out").unwrap_or("results").into();
    let ks = opts.get_usize_list("ks", &PAPER_KS)?;
    let mut fig_no = 4; // paper numbering: Figs. 4..12
    for class in FactorizationClass::ALL {
        for pfail in [0.01, 0.001, 0.0001] {
            let cfg = FigureConfig {
                class,
                pfail,
                ks: ks.clone(),
                trials,
                seed,
                csv: Some(out.join(format!("figure{fig_no:02}_{}_{pfail}.csv", class.name()))),
            };
            eprintln!("figure {fig_no}: {} pfail={pfail}", class.name());
            let table = figure_table(&cfg);
            println!(
                "\n# Figure {fig_no}: {} pfail={pfail} trials={trials}",
                class.name()
            );
            print!("{}", table.to_text());
            if let Some(path) = &cfg.csv {
                table.write_csv(path)?;
            }
            fig_no += 1;
        }
    }
    eprintln!("CSV series in {}", out.display());
    Ok(())
}

fn figure_table(cfg: &FigureConfig) -> Table {
    let mut table = Table::new(&[
        "k",
        "tasks",
        "mc_mean",
        "mc_stderr",
        "dodin",
        "sculli",
        "corlca",
        "normal_cov",
        "first_order",
        "second_order",
        "t_mc",
        "t_dodin",
        "t_normal_cov",
        "t_first_order",
    ]);
    for &k in &cfg.ks {
        let dag = build_dag(cfg.class, k);
        let model = FailureModel::from_pfail_for_dag(cfg.pfail, &dag);
        let mc = MonteCarloEstimator::new(cfg.trials)
            .with_seed(cfg.seed)
            .estimate(&dag, &model);
        let reference = mc.value;

        let dodin = DodinEstimator::scalable().estimate(&dag, &model);
        let sculli = SculliEstimator.estimate(&dag, &model);
        let corlca = CorLcaEstimator.estimate(&dag, &model);
        let cov = CovarianceNormalEstimator.estimate(&dag, &model);
        let first = FirstOrderEstimator::fast().estimate(&dag, &model);
        let second = SecondOrderEstimator.estimate(&dag, &model);

        table.row(vec![
            k.to_string(),
            dag.node_count().to_string(),
            format!("{reference:.6}"),
            format!("{:.2e}", mc.std_error.unwrap_or(0.0)),
            fmt_rel(dodin.relative_error(reference)),
            fmt_rel(sculli.relative_error(reference)),
            fmt_rel(corlca.relative_error(reference)),
            fmt_rel(cov.relative_error(reference)),
            fmt_rel(first.relative_error(reference)),
            fmt_rel(second.relative_error(reference)),
            fmt_duration(mc.elapsed),
            fmt_duration(dodin.elapsed),
            fmt_duration(cov.elapsed),
            fmt_duration(first.elapsed),
        ]);
    }
    table
}
