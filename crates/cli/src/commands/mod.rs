//! CLI subcommands, one module per paper artifact family.

pub mod analyze;
pub mod dodin_compare;
pub mod dot;
pub mod figure;
pub mod info;
pub mod sched;
pub mod second_order;
pub mod serve;
pub mod sweep;
pub mod sweep_worker;
pub mod table1;

use stochdag::prelude::*;

/// Parse `--class`.
pub fn parse_class(s: &str) -> Result<FactorizationClass, String> {
    FactorizationClass::parse(s).ok_or_else(|| format!("unknown DAG class {s:?} (cholesky|lu|qr)"))
}

/// Build a paper workload DAG with the calibrated default weights.
pub fn build_dag(class: FactorizationClass, k: usize) -> Dag {
    class.generate(k, &KernelTimings::paper_default())
}
