//! `dot` — DOT export of the factorization DAGs (paper Figures 1–3),
//! or re-emission of an ingested trace (`--from FILE`).

use crate::args::Options;
use crate::commands::{build_dag, parse_class};
use stochdag::prelude::*;

pub fn run(argv: &[String]) -> Result<(), String> {
    let opts = Options::parse(argv)?;
    if let Some(path) = opts.get("from") {
        let trace = ingest(path)?;
        eprintln!(
            "ingested {} trace {:?} from {path}: {} tasks, {} edges, structural hash {:032x}",
            trace.format.id(),
            trace.name,
            trace.dag.node_count(),
            trace.dag.edge_count(),
            structural_hash(&trace.dag),
        );
        print!(
            "{}",
            dot_string(&trace.dag, &trace.name, opts.flag("weights"))
        );
        return Ok(());
    }
    let class = parse_class(opts.require("class")?)?;
    let k: usize = opts.get_or("k", 5)?;
    let dag = build_dag(class, k);
    print!(
        "{}",
        dot_string(&dag, &format!("{}_{k}", class.name()), opts.flag("weights"))
    );
    Ok(())
}

/// Load a trace file, dispatching on extension: `.json` is parsed as a
/// WfCommons-style trace, everything else as DOT.
pub fn ingest(path: &str) -> Result<IngestedTrace, String> {
    let p = std::path::Path::new(path);
    let result = if path.ends_with(".json") {
        load_trace_json(p)
    } else {
        load_dot(p)
    };
    result.map_err(|e| format!("--from {path}: {e}"))
}
