//! `dot` — DOT export of the factorization DAGs (paper Figures 1–3).

use crate::args::Options;
use crate::commands::{build_dag, parse_class};
use stochdag::prelude::*;

pub fn run(argv: &[String]) -> Result<(), String> {
    let opts = Options::parse(argv)?;
    let class = parse_class(opts.require("class")?)?;
    let k: usize = opts.get_or("k", 5)?;
    let dag = build_dag(class, k);
    print!(
        "{}",
        dot_string(&dag, &format!("{}_{k}", class.name()), opts.flag("weights"))
    );
    Ok(())
}
