//! `serve` + client subcommands — the resident campaign service.
//!
//! `stochdag serve` starts the daemon: one shared result cache and one
//! bounded worker pool multiplexing every submitted campaign, so
//! concurrent clients with overlapping grids share work through the
//! memory cache tier. `stochdag submit|status|cancel|shutdown` are the
//! matching clients, speaking the line-delimited JSON protocol of
//! `stochdag-serve` over loopback TCP.
//!
//! `submit` streams the campaign's events back and materialises
//! CSV/JSONL locally through the engine's stream merger — the files
//! are byte-identical to `stochdag sweep` over the same cache. Pass
//! `--detach` to just queue the campaign and exit; re-attach later
//! with `submit --resume-id` semantics or inspect with `status`.
//!
//! The daemon drains gracefully on SIGTERM or a `shutdown` request:
//! running campaigns finish (or stop at the next cell with
//! `shutdown --now`), queued ones are cancelled, and a resume report
//! (`--shutdown-report`) records every unfinished campaign with its
//! spec.

use crate::args::Options;
use crate::report::{fmt_duration, Table};
use std::io::Write;
use std::path::PathBuf;
use stochdag_engine::{CsvSink, JsonlSink, ProgressMode, ResultSink};
use stochdag_serve::{
    BackendChoice, ServeClient, ServeConfig, ServeHandle, Server, ShutdownMode, Submitted,
};

/// Default daemon address, shared by `serve` and the clients.
const DEFAULT_ADDR: &str = "127.0.0.1:7677";

/// `stochdag serve` — run the daemon until shutdown.
pub fn run_daemon(argv: &[String]) -> Result<(), String> {
    let opts = Options::parse(argv)?;
    let max_running: usize = opts.get_or("max-running", 2)?;
    if max_running == 0 {
        return Err("--max-running must be positive".into());
    }
    let max_cells: usize = opts.get_or("max-cells", 0)?;
    let config = ServeConfig {
        addr: opts.get("listen").unwrap_or(DEFAULT_ADDR).to_string(),
        cache: if opts.flag("no-cache") {
            None
        } else {
            Some(PathBuf::from(
                opts.get("cache").unwrap_or(".stochdag-cache"),
            ))
        },
        max_running,
        max_queued: opts.get_or("max-queued", 16)?,
        max_cells: if max_cells == 0 {
            None
        } else {
            Some(max_cells)
        },
        shutdown_report: opts.get("shutdown-report").map(Into::into),
    };
    let cache_desc = match &config.cache {
        Some(dir) => format!("disk cache {}", dir.display()),
        None => "in-memory cache".to_string(),
    };
    let report_path = config.shutdown_report.clone();

    let server = Server::bind(config).map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    // The listening line is machine-read (tests, CI, scripts polling
    // for readiness) — keep its shape stable and flush it immediately.
    println!("stochdag-serve listening on {addr}");
    std::io::stdout().flush().ok();
    eprintln!(
        "serve: {max_running} worker slot(s), queue capacity {}, {} cell quota, {cache_desc}",
        opts.get_or::<usize>("max-queued", 16)?,
        if max_cells == 0 {
            "no".to_string()
        } else {
            max_cells.to_string()
        },
    );
    install_sigterm(server.handle());

    let report = server.run().map_err(|e| e.to_string())?;
    println!(
        "serve: shut down after {} campaign(s): {} completed, {} cancelled, {} failed",
        report.server.submissions,
        report.server.completed,
        report.server.cancelled,
        report.server.failed
    );
    if let Some(path) = report_path {
        println!(
            "serve: resume report ({} unfinished) written to {}",
            report.unfinished.len(),
            path.display()
        );
    }
    Ok(())
}

/// `stochdag submit` — submit a campaign (spec file or flag-assembled,
/// exactly like `sweep`) and, unless `--detach`, stream it to local
/// CSV/JSONL.
pub fn run_submit(argv: &[String]) -> Result<(), String> {
    let opts = Options::parse(argv)?;
    let client = client_for(&opts);

    let ticket = if let Some(id) = opts.get("resume-id") {
        let id: u64 = id.parse().map_err(|_| "bad --resume-id".to_string())?;
        client.resume(id)?
    } else {
        let spec = super::sweep::load_spec(&opts)?;
        spec.validate()?;
        // Per-campaign backend, same flags as `sweep`: --workers N
        // runs the campaign on N worker processes beside the daemon,
        // --spool DIR coordinates remote spool workers. Default stays
        // in-process on the daemon's pool.
        let workers: Option<usize> = opts
            .get("workers")
            .map(str::parse)
            .transpose()
            .map_err(|_| "bad --workers".to_string())?;
        let spool = opts.get("spool");
        let backend = match (workers, spool) {
            (Some(_), Some(_)) => {
                return Err(
                    "use either --workers (daemon-side processes) or --spool (cross-host)".into(),
                )
            }
            (Some(0), None) => return Err("--workers must be positive".into()),
            (Some(n), None) => BackendChoice::MultiProcess { workers: n },
            (None, Some(dir)) => BackendChoice::SharedFs { spool: dir.into() },
            (None, None) => BackendChoice::InProcess,
        };
        client.submit_on(&spec, backend)?
    };
    println!(
        "submitted campaign {} ({:?}): {} cells + {} references, queue depth {}",
        ticket.id, ticket.name, ticket.cells, ticket.references, ticket.queue_depth
    );
    if opts.flag("detach") {
        println!(
            "detached; follow with `stochdag status --id {}` or fetch results by re-submitting",
            ticket.id
        );
        return Ok(());
    }
    attach(&client, &ticket, &opts)
}

/// Stream a submitted campaign's events into local sinks and print
/// the sweep-style summary.
fn attach(client: &ServeClient, ticket: &Submitted, opts: &Options) -> Result<(), String> {
    let out_dir: PathBuf = opts.get("out").unwrap_or("results").into();
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    let progress = match opts.get("progress") {
        None => ProgressMode::Plain,
        Some(mode) => ProgressMode::parse(mode)?,
    };
    let csv_path = out_dir.join(format!("{}.csv", ticket.name));
    let jsonl_path = out_dir.join(format!("{}.jsonl", ticket.name));
    let mut csv = CsvSink::create(&csv_path).map_err(|e| e.to_string())?;
    let mut jsonl = JsonlSink::create(&jsonl_path).map_err(|e| e.to_string())?;
    let outcome = {
        let mut sinks: Vec<&mut dyn ResultSink> = vec![&mut csv, &mut jsonl];
        client.run_to_sinks(ticket.id, &mut sinks, progress)?
    };
    println!(
        "# campaign {} ({:?}): {} cells + {} references in {}",
        ticket.id,
        ticket.name,
        outcome.cells,
        outcome.references,
        fmt_duration(outcome.wall)
    );
    println!(
        "cache: {}/{} hits{}",
        outcome.cache_hits,
        outcome.cache_hits + outcome.cache_misses,
        if outcome.fully_cached() {
            " (fully cached)"
        } else {
            ""
        }
    );
    println!("wrote {}", csv_path.display());
    println!("wrote {}", jsonl_path.display());
    Ok(())
}

/// `stochdag status` — one campaign (`--id`) or the whole server.
pub fn run_status(argv: &[String]) -> Result<(), String> {
    let opts = Options::parse(argv)?;
    let id: Option<u64> = opts
        .get("id")
        .map(str::parse)
        .transpose()
        .map_err(|_| "bad --id".to_string())?;
    let report = client_for(&opts).status(id)?;
    let s = &report.server;
    println!(
        "server: {} running / {} queued (pool {}, queue cap {}, {} cell quota)",
        s.running,
        s.queued,
        s.max_running,
        s.max_queued,
        match s.max_cells {
            Some(q) => q.to_string(),
            None => "no".to_string(),
        }
    );
    println!(
        "admitted {} | rejected: {} admission, {} quota | finished: {} done, {} failed, {} cancelled",
        s.submissions, s.admission_rejected, s.quota_rejected, s.completed, s.failed, s.cancelled
    );
    println!(
        "cells: {} computed, {} memory hits, {} disk hits ({:.0}% served from cache)",
        s.cells_computed,
        s.cells_memory_hits,
        s.cells_disk_hits,
        s.cache_hit_rate() * 100.0
    );
    if !report.campaigns.is_empty() {
        let mut table = Table::new(&["id", "name", "state", "cells", "rows", "error"]);
        for c in &report.campaigns {
            table.row(vec![
                c.id.to_string(),
                c.name.clone(),
                c.state.as_str().to_string(),
                c.cells.to_string(),
                c.rows.to_string(),
                c.error.clone().unwrap_or_default(),
            ]);
        }
        print!("{}", table.to_text());
    }
    Ok(())
}

/// `stochdag cancel --id N` — cancel a queued or running campaign.
pub fn run_cancel(argv: &[String]) -> Result<(), String> {
    let opts = Options::parse(argv)?;
    let id: u64 = opts
        .require("id")?
        .parse()
        .map_err(|_| "bad --id".to_string())?;
    let ack = client_for(&opts).cancel(id)?;
    println!("{ack}");
    Ok(())
}

/// `stochdag shutdown [--now]` — stop the daemon (drain by default).
pub fn run_shutdown(argv: &[String]) -> Result<(), String> {
    let opts = Options::parse(argv)?;
    let mode = if opts.flag("now") {
        ShutdownMode::Now
    } else {
        ShutdownMode::Drain
    };
    let ack = client_for(&opts).shutdown(mode)?;
    println!("{ack}");
    Ok(())
}

fn client_for(opts: &Options) -> ServeClient {
    ServeClient::connect_to(opts.get("addr").unwrap_or(DEFAULT_ADDR))
}

/// Drain the daemon on SIGTERM so supervisors (systemd, CI teardown)
/// get the same graceful path as a `shutdown` request. Signal-handler
/// rules allow almost nothing, so the handler only flips a flag; a
/// watcher thread does the actual drain.
#[cfg(unix)]
fn install_sigterm(handle: ServeHandle) {
    use std::sync::atomic::{AtomicBool, Ordering};
    static TERM: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term);
    }
    std::thread::spawn(move || loop {
        if TERM.load(Ordering::SeqCst) {
            handle.shutdown(ShutdownMode::Drain);
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    });
}

#[cfg(not(unix))]
fn install_sigterm(_handle: ServeHandle) {}
