//! `sweep` — run a declarative scenario campaign on the parallel
//! engine, with content-addressed caching and streaming CSV/JSONL
//! sinks.
//!
//! The campaign comes from a spec file (`--spec camp.toml|.json`) or is
//! assembled from flags (`--classes`, `--ks`, `--pfails`,
//! `--estimators`, …). Re-running the same spec against the same
//! `--cache` directory completes from cache with byte-identical output
//! files. `--jobs N` caps the worker threads (results are identical at
//! any setting), `--resume-report` diffs the spec against the cache
//! without running anything, and `--cache-max-bytes B` LRU-prunes the
//! on-disk cache after the campaign.
//!
//! `--workers N` distributes the campaign over N `sweep-worker`
//! processes sharing the on-disk cache: cells are partitioned
//! deterministically by cache key, workers stream per-cell events back
//! over their stdout pipes, and this coordinator merges the streams
//! into the same byte-identical CSV/JSONL a single-process run writes
//! — rendering live progress/ETA on stderr (`--progress
//! none|plain|live`).

use crate::args::Options;
use crate::report::{fmt_duration, Table};
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use stochdag::prelude::*;
use stochdag_engine::{
    coordinate, resume_report, sharded_resume_report, DagSpec, ProgressMode, ProgressReporter,
};

pub fn run(argv: &[String]) -> Result<(), String> {
    let opts = Options::parse(argv)?;
    let spec = load_spec(&opts)?;
    spec.validate()?;

    let out_dir: PathBuf = opts.get("out").unwrap_or("results").into();
    let registry = EstimatorRegistry::standard();
    // Resolve estimator specs before touching the filesystem so a typo
    // does not leave empty output files behind.
    for est in &spec.estimators {
        registry.canonical_id(est)?;
    }
    let cache_dir: PathBuf = opts.get("cache").unwrap_or(".stochdag-cache").into();
    let cache = if opts.flag("no-cache") {
        ResultCache::in_memory()
    } else {
        ResultCache::on_disk(&cache_dir)
    };
    // Parse every knob before any work: a malformed value must fail up
    // front, not after an hours-long campaign.
    let cache_budget: Option<u64> = opts
        .get("cache-max-bytes")
        .map(str::parse)
        .transpose()
        .map_err(|_| "bad --cache-max-bytes".to_string())?;
    let workers: Option<usize> = opts
        .get("workers")
        .map(str::parse)
        .transpose()
        .map_err(|_| "bad --workers".to_string())?;
    if workers == Some(0) {
        return Err("--workers must be positive".into());
    }
    let progress = match opts.get("progress") {
        None => ProgressMode::Plain,
        Some(mode) => ProgressMode::parse(mode)?,
    };
    if workers.is_none() && opts.get("progress").is_some() && progress != ProgressMode::None {
        eprintln!("note: --progress only renders for distributed runs; pass --workers N");
    }

    if opts.flag("resume-report") {
        if cache_budget.is_some() {
            eprintln!("note: --cache-max-bytes has no effect with --resume-report (nothing runs)");
        }
        return print_resume_report(&spec, &registry, &cache, workers);
    }

    let csv_path = out_dir.join(format!("{}.csv", spec.name));
    let jsonl_path = out_dir.join(format!("{}.jsonl", spec.name));
    let mut csv = CsvSink::create(&csv_path).map_err(|e| format!("{}: {e}", csv_path.display()))?;
    let mut jsonl =
        JsonlSink::create(&jsonl_path).map_err(|e| format!("{}: {e}", jsonl_path.display()))?;

    eprintln!(
        "sweep {:?}: {} estimator(s) x {} model(s), reference mc={} trials{}",
        spec.name,
        spec.estimators.len(),
        spec.pfails.len() + spec.lambdas.len(),
        spec.reference_trials,
        match workers {
            Some(n) => format!(", distributed over {n} worker(s)"),
            None => String::new(),
        }
    );
    let outcome = {
        let mut sinks: Vec<&mut dyn ResultSink> = vec![&mut csv, &mut jsonl];
        match workers {
            None => run_sweep(&spec, &registry, &cache, &mut sinks)?,
            Some(n) => {
                let shared_cache = if opts.flag("no-cache") {
                    None
                } else {
                    Some(cache_dir.as_path())
                };
                run_distributed(&spec, n, progress, shared_cache, &mut sinks)?
            }
        }
    };

    let mut table = Table::new(&[
        "estimator",
        "cells",
        "mean|rel_err|",
        "max|rel_err|",
        "total_time",
    ]);
    for s in &outcome.summary {
        table.row(vec![
            s.estimator.clone(),
            s.cells.to_string(),
            format!("{:.3e}", s.mean_abs_rel_error),
            format!("{:.3e}", s.max_abs_rel_error),
            fmt_duration(std::time::Duration::from_secs_f64(s.total_elapsed_s)),
        ]);
    }
    println!(
        "# sweep {:?}: {} cells + {} references in {}",
        spec.name,
        outcome.cells,
        outcome.references,
        fmt_duration(outcome.wall)
    );
    print!("{}", table.to_text());
    println!(
        "cache: {}/{} hits{}",
        outcome.cache_hits,
        outcome.cache_hits + outcome.cache_misses,
        if outcome.fully_cached() {
            " (fully cached)"
        } else {
            ""
        }
    );
    println!("wrote {}", csv_path.display());
    println!("wrote {}", jsonl_path.display());

    if let Some(budget) = cache_budget {
        if opts.flag("no-cache") {
            eprintln!("note: --cache-max-bytes has no effect with --no-cache");
        } else {
            let stats = cache
                .gc_disk(budget)
                .map_err(|e| format!("cache gc: {e}"))?;
            println!(
                "cache gc: kept {} entries ({} B), evicted {} ({} B) to fit {budget} B",
                stats.kept_files, stats.kept_bytes, stats.evicted_files, stats.evicted_bytes
            );
        }
    }
    Ok(())
}

/// `sweep --workers N`: spawn N `sweep-worker` processes over the
/// shared cache, merge their event streams into the sinks, and render
/// progress on stderr. The merged output is byte-identical to what a
/// single-process run over the same cache would write.
fn run_distributed(
    spec: &SweepSpec,
    workers: usize,
    progress: ProgressMode,
    shared_cache: Option<&Path>,
    sinks: &mut [&mut dyn ResultSink],
) -> Result<SweepOutcome, String> {
    // Hand the (flag-merged) spec to the workers as a temp JSON file —
    // the workers re-derive the identical cell partition from it.
    // Without an explicit --jobs, split the machine's cores across the
    // worker processes (an uncapped worker would build a full-size
    // thread pool, oversubscribing the host N-fold); with --jobs J,
    // the cap is per worker. Either way results are identical — the
    // thread count cannot change any value.
    let mut worker_spec = spec.clone();
    if worker_spec.jobs.is_none() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        worker_spec.jobs = Some((cores / workers).max(1));
    }
    // Named by pid only: spec.name is user-controlled and may contain
    // path separators (legal for output files, which create parent
    // dirs), and one coordinator process runs one campaign at a time.
    let spec_path = std::env::temp_dir().join(format!("stochdag-spec-{}.json", std::process::id()));
    std::fs::write(&spec_path, serde::json::to_string(&worker_spec))
        .map_err(|e| format!("writing worker spec {}: {e}", spec_path.display()))?;
    let exe = std::env::current_exe().map_err(|e| format!("locating own binary: {e}"))?;

    let mut children: Vec<Child> = Vec::with_capacity(workers);
    for shard in 0..workers {
        let mut cmd = Command::new(&exe);
        cmd.arg("sweep-worker")
            .arg("--spec-json")
            .arg(&spec_path)
            .arg("--shard")
            .arg(shard.to_string())
            .arg("--of")
            .arg(workers.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        match shared_cache {
            Some(dir) => cmd.arg("--cache").arg(dir),
            None => cmd.arg("--no-cache"),
        };
        match cmd.spawn() {
            Ok(child) => children.push(child),
            Err(e) => {
                // Don't leave earlier workers running against a
                // campaign that will never be merged.
                for mut c in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                let _ = std::fs::remove_file(&spec_path);
                return Err(format!("spawning sweep worker {shard}: {e}"));
            }
        }
    }
    let readers: Vec<BufReader<std::process::ChildStdout>> = children
        .iter_mut()
        .map(|c| BufReader::new(c.stdout.take().expect("stdout piped")))
        .collect();
    let mut reporter = ProgressReporter::new(progress, Box::new(std::io::stderr()));
    let merged = coordinate(readers, sinks, &mut reporter);
    // Reap every worker before surfacing the merge result; a non-zero
    // worker trumps an apparently clean merge.
    let mut worker_failure = None;
    for (shard, mut child) in children.into_iter().enumerate() {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                worker_failure.get_or_insert(format!("sweep worker {shard} failed ({status})"));
            }
            Err(e) => {
                worker_failure.get_or_insert(format!("waiting for sweep worker {shard}: {e}"));
            }
        }
    }
    let _ = std::fs::remove_file(&spec_path);
    match (merged, worker_failure) {
        (Err(e), _) => Err(e),
        (Ok(_), Some(e)) => Err(e),
        (Ok(mut outcome), None) => {
            // Worker hellos count a reference scenario once per shard
            // that needs it; report the deduplicated campaign total so
            // the summary line means the same thing as a
            // single-process run's. Every scenario has exactly one
            // cell per estimator, so the unique scenario count falls
            // out of the merged cell count.
            outcome.references = outcome.cells / spec.estimators.len().max(1);
            Ok(outcome)
        }
    }
}

/// `sweep --resume-report`: diff the spec against the cache and print
/// hit/miss counts per estimator — plus per-shard counts under
/// `--workers N` — without running anything.
fn print_resume_report(
    spec: &SweepSpec,
    registry: &EstimatorRegistry,
    cache: &ResultCache,
    workers: Option<usize>,
) -> Result<(), String> {
    let report = match workers {
        None => resume_report(spec, registry, cache)?,
        Some(n) => sharded_resume_report(spec, registry, cache, n)?,
    };
    println!(
        "# resume report for {:?}: {} of {} work units cached",
        spec.name,
        report.total_hits(),
        report.total_hits() + report.total_misses()
    );
    let mut table = Table::new(&["estimator", "cached", "to compute"]);
    table.row(vec![
        "(mc reference)".into(),
        report.reference_hits.to_string(),
        report.reference_misses.to_string(),
    ]);
    for e in &report.estimators {
        table.row(vec![
            e.estimator.clone(),
            e.hits.to_string(),
            e.misses.to_string(),
        ]);
    }
    print!("{}", table.to_text());
    if workers.is_some() {
        let mut shards = Table::new(&["shard", "cached", "to compute"]);
        for s in &report.shards {
            shards.row(vec![
                format!("{}/{}", s.shard, report.shards.len()),
                s.hits.to_string(),
                s.misses.to_string(),
            ]);
        }
        print!("{}", shards.to_text());
    }
    if report.fully_cached() {
        println!("a run would complete entirely from cache");
    } else {
        println!("{} work unit(s) would be computed", report.total_misses());
    }
    Ok(())
}

fn load_spec(opts: &Options) -> Result<SweepSpec, String> {
    if let Some(path) = opts.get("spec") {
        let mut spec = SweepSpec::from_file(path)?;
        // Flag overrides on top of a file spec.
        if let Some(seed) = opts.get("seed") {
            spec.seed = seed.parse().map_err(|_| "bad --seed".to_string())?;
        }
        if let Some(trials) = opts.get("trials") {
            spec.reference_trials = trials.parse().map_err(|_| "bad --trials".to_string())?;
        }
        if let Some(jobs) = opts.get("jobs") {
            spec.jobs = Some(jobs.parse().map_err(|_| "bad --jobs".to_string())?);
        }
        return Ok(spec);
    }
    // Flag-assembled spec: factorization classes only.
    let classes = opts.get("classes").ok_or_else(|| {
        "pass --spec FILE, or assemble one with --classes/--ks/--pfails/--estimators".to_string()
    })?;
    let ks = opts.get_usize_list("ks", &[4, 6, 8])?;
    let dags = classes
        .split(',')
        .map(|c| {
            let class = FactorizationClass::parse(c.trim())
                .ok_or_else(|| format!("unknown DAG class {c:?}"))?;
            Ok(DagSpec::Factorization {
                class,
                ks: ks.clone(),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let pfails = match opts.get("pfails") {
        None => vec![0.01, 0.001],
        Some(list) => list
            .split(',')
            .map(|p| {
                p.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("bad pfail {p:?}"))
            })
            .collect::<Result<_, _>>()?,
    };
    let estimators = opts
        .get("estimators")
        .unwrap_or("first-order,sculli,corlca,dodin")
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    Ok(SweepSpec {
        name: opts.get("name").unwrap_or("sweep").to_string(),
        seed: opts.get_or("seed", 0)?,
        pfails,
        lambdas: Vec::new(),
        estimators,
        reference_trials: opts.get_or("trials", 100_000)?,
        reference_sampling: stochdag::core::SamplingModel::Geometric,
        jobs: opts
            .get("jobs")
            .map(str::parse)
            .transpose()
            .map_err(|_| "bad --jobs".to_string())?,
        dags,
    })
}
