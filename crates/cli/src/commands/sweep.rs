//! `sweep` — run a declarative scenario campaign on the engine's
//! [`Campaign`] facade, with content-addressed caching and streaming
//! CSV/JSONL sinks.
//!
//! The campaign comes from a spec file (`--spec camp.toml|.json`) or is
//! assembled from flags (`--classes`, `--ks`, `--pfails`,
//! `--estimators`, …). Re-running the same spec against the same
//! `--cache` directory completes from cache with byte-identical output
//! files. `--jobs N` caps the worker threads (results are identical at
//! any setting), `--resume-report` diffs the spec against the cache
//! without running anything, `--dry-run` prints the expansion without
//! executing, and `--cache-max-bytes B` LRU-prunes the on-disk cache
//! after the campaign.
//!
//! `--workers N` selects the engine's [`MultiProcess`] backend: the
//! campaign pull-schedules cell leases over N `sweep-worker` processes
//! sharing the on-disk cache, a crashed worker's leases are re-queued
//! to the survivors, and the merged CSV/JSONL is byte-identical to an
//! in-process run. `--spool DIR` selects the [`SharedFs`] backend
//! instead: the campaign coordinates remote `sweep-worker --spool DIR`
//! processes (launched separately, on any hosts sharing the
//! filesystem) through a spool directory, with `--lease-timeout SECS`
//! bounding how long a dead worker's claim can stall a lease before it
//! is re-queued. `--progress none|plain|live` renders progress on
//! stderr for either backend (`live` falls back to `plain` when stderr
//! is not a terminal; `--progress-interval SECS` tunes the plain-mode
//! throttle).
//!
//! Observability: `--metrics-out FILE` writes a deterministic JSON
//! metrics report (cells by cache tier, rows, per-estimator counts,
//! span timings, failure tallies by kind) after the campaign, and
//! `--trace-out FILE` streams every telemetry span/counter as JSONL
//! while it runs. See the README's "Observability" section for the
//! schema and span glossary.

use crate::args::Options;
use crate::report::{fmt_duration, Table};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use stochdag::prelude::*;
use stochdag_engine::{
    Campaign, DagSpec, EstimatorSpec, MultiProcess, ProgressMode, ProgressReporter, SharedFs,
    Telemetry,
};

pub fn run(argv: &[String]) -> Result<(), String> {
    let opts = Options::parse(argv)?;
    let spec = load_spec(&opts)?;
    spec.validate()?;

    let out_dir: PathBuf = opts.get("out").unwrap_or("results").into();
    let cache_dir: PathBuf = opts.get("cache").unwrap_or(".stochdag-cache").into();
    let cache = Arc::new(if opts.flag("no-cache") {
        ResultCache::in_memory()
    } else {
        ResultCache::on_disk(&cache_dir)
    });
    // Parse every knob before any work: a malformed value must fail up
    // front, not after an hours-long campaign.
    let cache_budget: Option<u64> = opts
        .get("cache-max-bytes")
        .map(str::parse)
        .transpose()
        .map_err(|_| "bad --cache-max-bytes".to_string())?;
    let workers: Option<usize> = opts
        .get("workers")
        .map(str::parse)
        .transpose()
        .map_err(|_| "bad --workers".to_string())?;
    if workers == Some(0) {
        return Err("--workers must be positive".into());
    }
    let spool = opts.get("spool").map(PathBuf::from);
    if spool.is_some() && workers.is_some() {
        return Err("use either --workers (local processes) or --spool (cross-host)".into());
    }
    let lease_timeout: Option<f64> = opts
        .get("lease-timeout")
        .map(str::parse)
        .transpose()
        .map_err(|_| "bad --lease-timeout".to_string())?;
    if lease_timeout.is_some_and(|s| !(s.is_finite() && s > 0.0)) {
        return Err("--lease-timeout must be a positive number of seconds".into());
    }
    if lease_timeout.is_some() && spool.is_none() {
        return Err("--lease-timeout only applies with --spool".into());
    }
    if spool.is_some() && opts.flag("no-cache") {
        return Err("--spool needs the shared on-disk cache; drop --no-cache".into());
    }
    let distributed = workers.is_some() || spool.is_some();
    let progress = match opts.get("progress") {
        None => {
            if distributed {
                ProgressMode::Plain
            } else {
                ProgressMode::None
            }
        }
        Some(mode) => ProgressMode::parse(mode)?,
    };
    let progress_interval: Option<f64> = opts
        .get("progress-interval")
        .map(str::parse)
        .transpose()
        .map_err(|_| "bad --progress-interval".to_string())?;
    if progress_interval.is_some_and(|s| !(s.is_finite() && s >= 0.0)) {
        return Err("--progress-interval must be a non-negative number of seconds".into());
    }
    let metrics_out: Option<PathBuf> = opts.get("metrics-out").map(Into::into);
    let trace_out: Option<PathBuf> = opts.get("trace-out").map(Into::into);

    // Telemetry is pay-for-what-you-ask: off unless a report or trace
    // was requested, so the default path records nothing and reads no
    // clocks.
    let telemetry = if let Some(path) = &trace_out {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("creating trace file {}: {e}", path.display()))?;
        Telemetry::with_trace(Box::new(file))
    } else if metrics_out.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };

    let mut builder = Campaign::builder(spec.clone())
        .cache(cache.clone())
        .telemetry(telemetry.clone());
    if let Some(n) = workers {
        builder = builder.backend(MultiProcess::new(n));
    } else if let Some(dir) = &spool {
        let mut backend = SharedFs::new(dir);
        if let Some(secs) = lease_timeout {
            backend = backend.lease_timeout(Duration::from_secs_f64(secs));
        }
        builder = builder.backend(backend);
    }

    if opts.flag("dry-run") {
        return print_dry_run(builder.build()?);
    }
    if opts.flag("resume-report") {
        if cache_budget.is_some() {
            eprintln!("note: --cache-max-bytes has no effect with --resume-report (nothing runs)");
        }
        return print_resume_report(builder.build()?, workers.is_some());
    }

    let csv_path = out_dir.join(format!("{}.csv", spec.name));
    let jsonl_path = out_dir.join(format!("{}.jsonl", spec.name));
    let csv = CsvSink::create(&csv_path).map_err(|e| e.to_string())?;
    let jsonl = JsonlSink::create(&jsonl_path).map_err(|e| e.to_string())?;

    eprintln!(
        "sweep {:?}: {} estimator(s) x {} model(s), reference mc={} trials{}",
        spec.name,
        spec.estimators.len(),
        spec.model_count(),
        spec.reference_trials,
        match (workers, &spool) {
            (Some(n), _) => format!(", distributed over {n} worker(s)"),
            (None, Some(dir)) => format!(", cross-host via spool {}", dir.display()),
            (None, None) => String::new(),
        }
    );
    let mut reporter = ProgressReporter::stderr(progress);
    if let Some(secs) = progress_interval {
        reporter = reporter.with_plain_interval(Duration::from_secs_f64(secs));
    }
    let outcome = builder
        .sink(csv)
        .sink(jsonl)
        .observer(reporter)
        .build()?
        .run()?;

    let mut table = Table::new(&[
        "estimator",
        "cells",
        "mean|rel_err|",
        "max|rel_err|",
        "total_time",
    ]);
    for s in &outcome.summary {
        table.row(vec![
            s.estimator.clone(),
            s.cells.to_string(),
            format!("{:.3e}", s.mean_abs_rel_error),
            format!("{:.3e}", s.max_abs_rel_error),
            fmt_duration(std::time::Duration::from_secs_f64(s.total_elapsed_s)),
        ]);
    }
    println!(
        "# sweep {:?}: {} cells + {} references in {}",
        spec.name,
        outcome.cells,
        outcome.references,
        fmt_duration(outcome.wall)
    );
    print!("{}", table.to_text());
    println!(
        "cache: {}/{} hits{}",
        outcome.cache_hits,
        outcome.cache_hits + outcome.cache_misses,
        if outcome.fully_cached() {
            " (fully cached)"
        } else {
            ""
        }
    );
    println!("wrote {}", csv_path.display());
    println!("wrote {}", jsonl_path.display());
    if let Some(path) = &metrics_out {
        let report = telemetry.report(&spec.name, &outcome);
        std::fs::write(path, report.to_json() + "\n")
            .map_err(|e| format!("writing metrics report {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    if let Some(path) = &trace_out {
        println!("wrote {}", path.display());
    }

    if let Some(budget) = cache_budget {
        if opts.flag("no-cache") {
            eprintln!("note: --cache-max-bytes has no effect with --no-cache");
        } else {
            let stats = cache.gc_disk(budget)?;
            println!(
                "cache gc: kept {} entries ({} B), evicted {} ({} B) to fit {budget} B",
                stats.kept_files, stats.kept_bytes, stats.evicted_files, stats.evicted_bytes
            );
        }
    }
    Ok(())
}

/// `sweep --dry-run`: print the campaign's expansion — instances,
/// estimators, cell/reference counts, per-shard loads — without
/// executing or probing anything.
fn print_dry_run(campaign: Campaign) -> Result<(), String> {
    let dry = campaign.dry_run()?;
    println!(
        "# dry run {:?} on {}: {} cells + {} references",
        dry.name, dry.backend, dry.cells, dry.references
    );
    let mut table = Table::new(&["dag", "tasks", "edges"]);
    for inst in &dry.instances {
        table.row(vec![
            inst.id.clone(),
            inst.tasks.to_string(),
            inst.edges.to_string(),
        ]);
    }
    print!("{}", table.to_text());
    println!(
        "{} failure model(s) x estimators: {}",
        dry.models,
        dry.estimators.join(", ")
    );
    if dry.shard_cells.len() > 1 {
        for (shard, cells) in dry.shard_cells.iter().enumerate() {
            println!("shard {shard}/{}: {cells} cell(s)", dry.shard_cells.len());
        }
    }
    Ok(())
}

/// `sweep --resume-report`: diff the spec against the cache and print
/// hit/miss counts per estimator — plus per-shard counts under
/// `--workers N` — without running anything.
fn print_resume_report(campaign: Campaign, sharded: bool) -> Result<(), String> {
    let report = campaign.resume_report()?;
    println!(
        "# resume report for {:?}: {} of {} work units cached",
        campaign.spec().name,
        report.total_hits(),
        report.total_hits() + report.total_misses()
    );
    let mut table = Table::new(&["estimator", "cached", "to compute"]);
    table.row(vec![
        "(mc reference)".into(),
        report.reference_hits.to_string(),
        report.reference_misses.to_string(),
    ]);
    for e in &report.estimators {
        table.row(vec![
            e.estimator.clone(),
            e.hits.to_string(),
            e.misses.to_string(),
        ]);
    }
    print!("{}", table.to_text());
    if sharded {
        let mut shards = Table::new(&["shard", "cached", "to compute"]);
        for s in &report.shards {
            shards.row(vec![
                format!("{}/{}", s.shard, report.shards.len()),
                s.hits.to_string(),
                s.misses.to_string(),
            ]);
        }
        print!("{}", shards.to_text());
    }
    if report.fully_cached() {
        println!("a run would complete entirely from cache");
    } else {
        println!("{} work unit(s) would be computed", report.total_misses());
    }
    Ok(())
}

fn parse_estimators(list: &str) -> Result<Vec<EstimatorSpec>, String> {
    list.split(',')
        .map(|s| s.trim().parse::<EstimatorSpec>())
        .collect()
}

/// Build the campaign spec from `--spec FILE` plus flag overrides, or
/// assemble it purely from flags. Shared with `submit`, which sends
/// the same spec model to a resident daemon instead of running it.
pub(crate) fn load_spec(opts: &Options) -> Result<SweepSpec, String> {
    if let Some(path) = opts.get("spec") {
        let mut spec = SweepSpec::from_file(path)?;
        // Flag overrides on top of a file spec.
        if let Some(seed) = opts.get("seed") {
            spec.seed = seed.parse().map_err(|_| "bad --seed".to_string())?;
        }
        if let Some(trials) = opts.get("trials") {
            spec.reference_trials = trials.parse().map_err(|_| "bad --trials".to_string())?;
        }
        if let Some(jobs) = opts.get("jobs") {
            spec.jobs = Some(jobs.parse().map_err(|_| "bad --jobs".to_string())?);
        }
        if let Some(list) = opts.get("scenarios") {
            spec.scenarios = parse_scenarios(list)?;
        }
        return Ok(spec);
    }
    // Flag-assembled spec: factorization classes only.
    let classes = opts.get("classes").ok_or_else(|| {
        "pass --spec FILE, or assemble one with --classes/--ks/--pfails/--estimators".to_string()
    })?;
    let ks = opts.get_usize_list("ks", &[4, 6, 8])?;
    let dags = classes
        .split(',')
        .map(|c| {
            let class = FactorizationClass::parse(c.trim())
                .ok_or_else(|| format!("unknown DAG class {c:?}"))?;
            Ok(DagSpec::Factorization {
                class,
                ks: ks.clone(),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let pfails = match opts.get("pfails") {
        None => vec![0.01, 0.001],
        Some(list) => list
            .split(',')
            .map(|p| {
                p.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("bad pfail {p:?}"))
            })
            .collect::<Result<_, _>>()?,
    };
    let estimators = parse_estimators(
        opts.get("estimators")
            .unwrap_or("first-order,sculli,corlca,dodin"),
    )?;
    Ok(SweepSpec {
        name: opts.get("name").unwrap_or("sweep").to_string(),
        seed: opts.get_or("seed", 0)?,
        pfails,
        lambdas: Vec::new(),
        estimators,
        reference_trials: opts.get_or("trials", 100_000)?,
        reference_sampling: stochdag::core::SamplingModel::Geometric,
        jobs: opts
            .get("jobs")
            .map(str::parse)
            .transpose()
            .map_err(|_| "bad --jobs".to_string())?,
        scenarios: match opts.get("scenarios") {
            None => Vec::new(),
            Some(list) => parse_scenarios(list)?,
        },
        dags,
    })
}

/// Comma-separated scenario ids, e.g. `iid,rack:4:0.05:2`.
fn parse_scenarios(list: &str) -> Result<Vec<stochdag::workload::ScenarioSpec>, String> {
    list.split(',')
        .map(|s| {
            s.trim()
                .parse::<stochdag::workload::ScenarioSpec>()
                .map_err(|e| format!("bad scenario {s:?}: {e}"))
        })
        .collect()
}
