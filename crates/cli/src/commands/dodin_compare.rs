//! `dodin-compare` — quantify the faithful-vs-surrogate substitution
//! for the Dodin baseline (see DESIGN.md §3 and the module docs of
//! `stochdag_core::dodin`).

use crate::args::Options;
use crate::report::{fmt_duration, Table};
use stochdag::core::dodin::DodinStrategy;
use stochdag::prelude::*;

pub fn run(argv: &[String]) -> Result<(), String> {
    let opts = Options::parse(argv)?;
    let ks = opts.get_usize_list("ks", &[2, 3, 4, 5, 6])?;
    let pfail: f64 = opts.get_or("pfail", 0.01)?;

    let mut table = Table::new(&[
        "class",
        "k",
        "tasks",
        "dodin_dup",
        "dodin_fwd",
        "rel_gap",
        "dups",
        "t_dup",
        "t_fwd",
    ]);
    for class in FactorizationClass::ALL {
        for &k in &ks {
            let dag = class.generate(k, &KernelTimings::paper_default());
            let model = FailureModel::from_pfail_for_dag(pfail, &dag);
            let faithful = DodinEstimator::new().with_strategy(DodinStrategy::Duplication);
            let start = std::time::Instant::now();
            let out = faithful.run(&dag, &model);
            let t_dup = start.elapsed();
            let dup_mean = out.dist.mean();
            let fwd = DodinEstimator::scalable().estimate(&dag, &model);
            table.row(vec![
                class.name().into(),
                k.to_string(),
                dag.node_count().to_string(),
                format!("{dup_mean:.6}"),
                format!("{:.6}", fwd.value),
                format!("{:+.2e}", (fwd.value - dup_mean) / dup_mean),
                out.duplications.to_string(),
                fmt_duration(t_dup),
                fmt_duration(fwd.elapsed),
            ]);
        }
    }
    println!("# faithful Dodin (duplication engine) vs scalable surrogate (forward propagation)");
    println!("# pfail = {pfail}; rel_gap = (fwd - dup)/dup");
    print!("{}", table.to_text());
    Ok(())
}
