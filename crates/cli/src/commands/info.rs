//! `info` — structural statistics of a workload DAG.

use crate::args::Options;
use crate::commands::{build_dag, parse_class};
use stochdag::prelude::*;

pub fn run(argv: &[String]) -> Result<(), String> {
    let opts = Options::parse(argv)?;
    let class = parse_class(opts.require("class")?)?;
    let k: usize = opts.get_or("k", 8)?;
    let dag = build_dag(class, k);
    let lp = LongestPaths::compute(&dag);
    println!("class:            {}", class.name());
    println!("k:                {k}");
    println!("tasks:            {}", dag.node_count());
    println!("edges:            {}", dag.edge_count());
    println!(
        "sources/sinks:    {}/{}",
        dag.sources().len(),
        dag.sinks().len()
    );
    println!("total weight:     {:.6} s", dag.total_weight());
    println!("mean weight a-bar:{:.6} s", dag.mean_weight());
    println!("d(G):             {:.6} s", lp.levels.makespan);
    println!("critical tasks:   {}", lp.critical.nodes.len());
    println!(
        "parallelism:      {:.2} (total weight / d(G))",
        dag.total_weight() / lp.levels.makespan
    );
    println!("series-parallel:  {}", is_series_parallel(&dag));
    for pfail in [0.01, 0.001, 0.0001] {
        let m = FailureModel::from_pfail_for_dag(pfail, &dag);
        println!(
            "pfail={pfail:<7} lambda={:.6}  MTBF={:.1}s  E1(G)={:.6}",
            m.lambda,
            m.mtbf(),
            first_order_expected_makespan_fast(&dag, &m)
        );
    }
    Ok(())
}
