//! `table1` — the paper's Table I: LU k = 20 (2 870 tasks),
//! pfail = 0.0001; normalized error *and* wall-clock per estimator.
//!
//! Ported to the scenario-sweep engine: the estimator panel is one
//! [`SweepSpec`] cell column, executed in parallel with
//! content-addressed caching (pass `--cache DIR` to persist results —
//! an immediate re-run then completes without recomputing anything).

use crate::args::Options;
use crate::report::{fmt_duration, fmt_rel, Table};
use std::sync::Arc;
use std::time::Duration;
use stochdag::prelude::*;
use stochdag_engine::{Campaign, DagSpec};

/// Table I's estimator panel, in the paper's presentation order.
const PANEL: &[&str] = &[
    "dodin",
    "normal-cov",
    "sculli",
    "corlca",
    "first-order",
    "second-order",
];

pub fn run(argv: &[String]) -> Result<(), String> {
    let opts = Options::parse(argv)?;
    let k: usize = opts.get_or("k", 20)?;
    let trials: usize = opts.get_or("trials", if opts.flag("fast") { 20_000 } else { 300_000 })?;
    let seed: u64 = opts.get_or("seed", 0)?;
    let pfail: f64 = opts.get_or("pfail", 0.0001)?;

    let spec = SweepSpec {
        name: format!("table1-lu-k{k}"),
        seed,
        pfails: vec![pfail],
        lambdas: Vec::new(),
        estimators: PANEL
            .iter()
            .map(|s| s.parse().expect("panel specs are registered"))
            .collect(),
        reference_trials: trials,
        reference_sampling: stochdag::core::SamplingModel::Geometric,
        jobs: opts
            .get("jobs")
            .map(str::parse)
            .transpose()
            .map_err(|_| "bad --jobs".to_string())?,
        scenarios: vec![],
        dags: vec![DagSpec::Factorization {
            class: FactorizationClass::Lu,
            ks: vec![k],
        }],
    };

    let cache = Arc::new(match opts.get("cache") {
        Some(dir) => ResultCache::on_disk(dir),
        None => ResultCache::in_memory(),
    });
    eprintln!("LU k={k}: running Monte Carlo reference ({trials} trials) + estimator panel...");
    let outcome = Campaign::builder(spec).cache(cache).build()?.run()?;

    let reference = outcome.rows.first().map(|r| r.reference).unwrap_or(0.0);
    let ref_se = outcome
        .rows
        .first()
        .map(|r| r.reference_std_error)
        .unwrap_or(0.0);
    let mut table = Table::new(&["estimator", "normalized_difference", "execution_time"]);
    table.row(vec![
        "MonteCarlo (ground truth)".into(),
        format!("0 (se {ref_se:.2e})"),
        "(reference)".into(),
    ]);
    for row in &outcome.rows {
        table.row(vec![
            row.estimator.clone(),
            fmt_rel(row.rel_error),
            fmt_duration(Duration::from_secs_f64(row.elapsed_s)),
        ]);
    }

    println!("\n# Table I: LU k={k}, pfail={pfail} (MC mean {reference:.6})");
    print!("{}", table.to_text());
    if outcome.fully_cached() {
        println!("(served entirely from cache)");
    }
    Ok(())
}
