//! `table1` — the paper's Table I: LU with k = 20 (2 870 tasks),
//! pfail = 0.0001; normalized error *and* wall-clock per estimator.

use crate::args::Options;
use crate::commands::build_dag;
use crate::report::{fmt_duration, fmt_rel, Table};
use stochdag::prelude::*;

pub fn run(argv: &[String]) -> Result<(), String> {
    let opts = Options::parse(argv)?;
    let k: usize = opts.get_or("k", 20)?;
    let trials: usize = opts.get_or("trials", if opts.flag("fast") { 20_000 } else { 300_000 })?;
    let seed: u64 = opts.get_or("seed", 0)?;
    let pfail: f64 = opts.get_or("pfail", 0.0001)?;

    let dag = build_dag(FactorizationClass::Lu, k);
    let model = FailureModel::from_pfail_for_dag(pfail, &dag);
    eprintln!(
        "LU k={k}: {} tasks, {} edges, d(G)={:.4}, lambda={:.6}",
        dag.node_count(),
        dag.edge_count(),
        longest_path_length(&dag),
        model.lambda
    );

    eprintln!("running Monte Carlo ({trials} trials)...");
    let mc = MonteCarloEstimator::new(trials)
        .with_seed(seed)
        .estimate(&dag, &model);
    let reference = mc.value;

    let mut table = Table::new(&["estimator", "normalized_difference", "execution_time"]);
    table.row(vec![
        "MonteCarlo (ground truth)".into(),
        format!("0 (se {:.2e})", mc.std_error.unwrap_or(0.0)),
        fmt_duration(mc.elapsed),
    ]);
    eprintln!("running Dodin (scalable surrogate)...");
    let dodin = DodinEstimator::scalable().estimate(&dag, &model);
    table.row(vec![
        "Dodin".into(),
        fmt_rel(dodin.relative_error(reference)),
        fmt_duration(dodin.elapsed),
    ]);
    eprintln!("running Normal (full covariance)...");
    let cov = CovarianceNormalEstimator.estimate(&dag, &model);
    table.row(vec![
        "Normal(cov)".into(),
        fmt_rel(cov.relative_error(reference)),
        fmt_duration(cov.elapsed),
    ]);
    eprintln!("running Sculli / CorLCA...");
    let sculli = SculliEstimator.estimate(&dag, &model);
    table.row(vec![
        "Sculli".into(),
        fmt_rel(sculli.relative_error(reference)),
        fmt_duration(sculli.elapsed),
    ]);
    let corlca = CorLcaEstimator.estimate(&dag, &model);
    table.row(vec![
        "CorLCA".into(),
        fmt_rel(corlca.relative_error(reference)),
        fmt_duration(corlca.elapsed),
    ]);
    eprintln!("running First Order...");
    let first = FirstOrderEstimator::fast().estimate(&dag, &model);
    table.row(vec![
        "FirstOrder".into(),
        fmt_rel(first.relative_error(reference)),
        fmt_duration(first.elapsed),
    ]);
    let second = SecondOrderEstimator.estimate(&dag, &model);
    table.row(vec![
        "SecondOrder".into(),
        fmt_rel(second.relative_error(reference)),
        fmt_duration(second.elapsed),
    ]);

    println!("\n# Table I: LU k={k}, pfail={pfail} (MC mean {reference:.6})");
    print!("{}", table.to_text());
    Ok(())
}
