//! `sched` — failure-aware list-scheduling comparison (the paper's
//! motivating application, Section I / future work).

use crate::args::Options;
use crate::commands::{build_dag, parse_class};
use crate::report::Table;
use stochdag::prelude::*;

pub fn run(argv: &[String]) -> Result<(), String> {
    let opts = Options::parse(argv)?;
    let class = parse_class(opts.require("class")?)?;
    let k: usize = opts.get_or("k", 8)?;
    let processors: usize = opts.get_or("p", 8)?;
    let pfail: f64 = opts.get_or("pfail", 0.01)?;
    let replicas: usize = opts.get_or("replicas", 1000)?;
    let seed: u64 = opts.get_or("seed", 0)?;

    let dag = build_dag(class, k);
    let model = FailureModel::from_pfail_for_dag(pfail, &dag);
    eprintln!(
        "{} k={k}: {} tasks on {processors} processors, pfail={pfail}, {replicas} replicas",
        class.name(),
        dag.node_count()
    );

    let cmp = compare_policies(&dag, &model, processors, &Priority::ALL, replicas, seed);
    let mut table = Table::new(&[
        "policy",
        "mean_makespan",
        "stderr",
        "vs_bottom_level",
        "mean_failures",
    ]);
    let baseline = cmp
        .stats
        .iter()
        .find(|s| s.policy == Priority::BottomLevel)
        .expect("bottom-level included")
        .mean_makespan;
    for s in &cmp.stats {
        table.row(vec![
            s.policy.name().into(),
            format!("{:.6}", s.mean_makespan),
            format!("{:.2e}", s.std_error),
            format!("{:+.3}%", 100.0 * (s.mean_makespan - baseline) / baseline),
            format!("{:.2}", s.mean_failures),
        ]);
    }
    println!(
        "\n# policy comparison: {} k={k}, P={processors}, pfail={pfail}",
        class.name()
    );
    print!("{}", table.to_text());
    println!("best: {}", cmp.best().policy.name());

    // Context: the unlimited-processor expected makespan the estimators
    // bound from below.
    let first = FirstOrderEstimator::fast().expected_makespan(&dag, &model);
    println!(
        "context: d(G) = {:.6}, first-order E(G) with unlimited processors = {first:.6}",
        longest_path_length(&dag)
    );
    Ok(())
}
