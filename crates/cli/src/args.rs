//! Minimal hand-rolled option parsing (no external crates).

use std::collections::HashMap;

/// Parsed `--key value` / `-k value` options plus bare flags.
pub struct Options {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

/// Flags that take no value.
const BARE_FLAGS: &[&str] = &[
    "--weights",
    "--fast",
    "--csv-only",
    "--no-cache",
    "--resume-report",
    "--dry-run",
    "--telemetry",
    "--detach",
    "--now",
    "--leases",
];

impl Options {
    /// Parse an argument list. Every `--key` is expected to be followed
    /// by a value unless listed as a bare flag.
    pub fn parse(argv: &[String]) -> Result<Options, String> {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut it = argv.iter().peekable();
        while let Some(arg) = it.next() {
            if !arg.starts_with('-') {
                return Err(format!("unexpected positional argument {arg:?}"));
            }
            if BARE_FLAGS.contains(&arg.as_str()) {
                flags.push(arg.trim_start_matches('-').to_string());
                continue;
            }
            let key = arg.trim_start_matches('-').to_string();
            let Some(value) = it.next() else {
                return Err(format!("option {arg} expects a value"));
            };
            values.insert(key, value.clone());
        }
        Ok(Options { values, flags })
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Optional typed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{key}: cannot parse {v:?}")),
        }
    }

    /// Whether a bare flag was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Comma-separated usize list option with a default.
    pub fn get_usize_list(&self, key: &str, default: &[usize]) -> Result<Vec<usize>, String> {
        match self.values.get(key) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse::<usize>()
                        .map_err(|_| format!("option --{key}: bad entry {s:?}"))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Options {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Options::parse(&v).unwrap()
    }

    #[test]
    fn values_and_flags() {
        let o = parse(&["--class", "lu", "-k", "8", "--weights"]);
        assert_eq!(o.require("class").unwrap(), "lu");
        assert_eq!(o.get_or::<usize>("k", 5).unwrap(), 8);
        assert!(o.flag("weights"));
        assert!(!o.flag("fast"));
    }

    #[test]
    fn missing_required() {
        let o = parse(&[]);
        assert!(o.require("class").is_err());
    }

    #[test]
    fn defaults() {
        let o = parse(&[]);
        assert_eq!(o.get_or::<f64>("pfail", 0.01).unwrap(), 0.01);
        assert_eq!(o.get_usize_list("ks", &[4, 6]).unwrap(), vec![4, 6]);
    }

    #[test]
    fn list_parsing() {
        let o = parse(&["--ks", "4, 6,8"]);
        assert_eq!(o.get_usize_list("ks", &[]).unwrap(), vec![4, 6, 8]);
    }

    #[test]
    fn value_missing_is_error() {
        let v = vec!["--class".to_string()];
        assert!(Options::parse(&v).is_err());
    }

    #[test]
    fn positional_rejected() {
        let v = vec!["oops".to_string()];
        assert!(Options::parse(&v).is_err());
    }
}
