//! `stochdag` — the experiment harness.
//!
//! Regenerates every table and figure of the paper's evaluation
//! (Section V). Run `stochdag help` for the command list; DESIGN.md
//! maps each paper artifact to the command that reproduces it.

mod args;
mod commands;
mod report;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `stochdag help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        print_help();
        return Ok(());
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "figure" => commands::figure::run(rest),
        "analyze" => commands::analyze::run(rest),
        "all-figures" => commands::figure::run_all(rest),
        "sweep" => commands::sweep::run(rest),
        // Internal worker half of distributed sweeps (hidden from
        // help): drains leases over stdin/stdout for `sweep --workers
        // N`, polls a spool directory with `--spool DIR` (cross-host),
        // or executes one static shard via the legacy `--shard/--of`.
        "sweep-worker" => commands::sweep_worker::run(rest),
        "serve" => commands::serve::run_daemon(rest),
        "submit" => commands::serve::run_submit(rest),
        "status" => commands::serve::run_status(rest),
        "cancel" => commands::serve::run_cancel(rest),
        "shutdown" => commands::serve::run_shutdown(rest),
        "table1" => commands::table1::run(rest),
        "dot" => commands::dot::run(rest),
        "sched" => commands::sched::run(rest),
        "dodin-compare" => commands::dodin_compare::run(rest),
        "second-order" => commands::second_order::run(rest),
        "info" => commands::info::run(rest),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

fn print_help() {
    println!(
        "stochdag — expected makespan of task graphs under silent errors
(reproduction of Casanova/Herrmann/Robert, P2S2/ICPP 2016)

USAGE: stochdag <COMMAND> [OPTIONS]

COMMANDS:
  figure         one figure's data series: relative error vs graph size
                   --class cholesky|lu|qr   (required)
                   --pfail 0.01|0.001|...   (required)
                   [--ks 4,6,8,10,12] [--trials 300000] [--seed 0]
                   [--csv PATH] [--fast]
                 reproduces paper Figures 4-12 (one per class x pfail)
  all-figures    every class x pfail combination; CSVs into results/
                   [--trials N] [--seed S] [--out DIR] [--fast]
  sweep          declarative scenario campaign on the parallel engine
                   --spec camp.toml|camp.json   (or assemble with flags:)
                   [--classes cholesky,lu] [--ks 4,6,8] [--pfails 0.01,0.001]
                   [--estimators first-order,sculli,corlca,dodin]
                   [--trials 100000] [--seed 0] [--name sweep] [--jobs N]
                   [--out results] [--cache .stochdag-cache] [--no-cache]
                   [--resume-report] [--dry-run] [--cache-max-bytes B]
                   [--workers N] [--spool DIR] [--lease-timeout SECS]
                   [--progress none|plain|live]
                   [--progress-interval SECS]
                   [--metrics-out FILE] [--trace-out FILE]
                 caches every cell content-addressed: re-runs and resumed
                 campaigns skip finished cells and emit identical CSV/JSONL.
                 each DAG source is built/frozen/hashed once per campaign
                 and shared across all models x estimators. --jobs caps
                 worker threads (results identical at any setting);
                 --resume-report prints per-estimator cache hit/miss
                 counts without running (per-shard with --workers);
                 --dry-run prints the expansion (instances, cells,
                 per-shard loads) without executing anything;
                 --cache-max-bytes LRU-prunes the on-disk cache after
                 the campaign. --workers N distributes cells over N
                 processes sharing the cache: workers pull batches of
                 cells (leases) as they finish, a crashed worker's
                 leases are re-queued cache-first to the survivors, and
                 merged CSV/JSONL is byte-identical to a single-process
                 run. --spool DIR coordinates remote `sweep-worker
                 --spool DIR` processes through a shared-filesystem
                 spool directory instead (cross-host campaigns; needs
                 the shared on-disk cache, and --lease-timeout tunes
                 how long a silent claim may sit before it is
                 re-queued). --progress
                 renders counters/ETA on stderr for either backend
                 (default: plain with --workers, none otherwise; live
                 falls back to plain when stderr is not a terminal, and
                 --progress-interval tunes the plain throttle).
                 --metrics-out writes a deterministic JSON metrics
                 report (cells by cache tier, span timings, failures
                 by kind); --trace-out streams telemetry spans and
                 counters as JSONL while the campaign runs
  serve          resident campaign daemon: one shared cache + worker
                 pool multiplexing concurrent clients over loopback TCP
                   [--listen 127.0.0.1:7677] [--cache DIR] [--no-cache]
                   [--max-running 2] [--max-queued 16] [--max-cells N]
                   [--shutdown-report FILE]
                 campaigns from different clients share every cached
                 cell; --max-cells rejects over-quota specs and a full
                 queue rejects submissions (structured errors). SIGTERM
                 or `stochdag shutdown` drains in-flight campaigns and
                 writes a resume report of unfinished ones
  submit         submit a campaign to a running daemon and stream the
                 results to local CSV/JSONL (byte-identical to `sweep`
                 over the same cache)
                   [--addr 127.0.0.1:7677] [--spec camp.toml] [--out DIR]
                   [--progress none|plain|live] [--detach]
                   [--workers N] [--spool DIR]
                   [--resume-id N]  (re-admit a failed/cancelled campaign)
                 plus the spec-assembly flags of `sweep`; --detach
                 queues the campaign and returns immediately.
                 --workers N runs the campaign on N worker processes
                 beside the daemon; --spool DIR coordinates remote
                 spool workers (both per campaign, over the daemon's
                 shared cache)
  status         daemon + campaign states, admission counters, cache
                 hit-rates   [--addr ...] [--id N]
  cancel         cancel a queued or running campaign  --id N [--addr ...]
  shutdown       stop the daemon (drain; --now also stops running
                 campaigns at the next cell)  [--addr ...] [--now]
  table1         LU k=20 error + wall-clock comparison (paper Table I),
                 executed as an engine sweep (cache-aware)
                   [--k 20] [--trials 300000] [--seed 0] [--fast]
                   [--cache DIR]
  dot            DOT export of a factorization DAG (paper Figures 1-3)
                   --class C [-k 5] [--weights]
  sched          failure-aware list-scheduling policy comparison
                   --class C [-k 8] [-p 8] [--pfail 0.01]
                   [--replicas 1000] [--seed 0]
  dodin-compare  faithful Dodin (duplication) vs scalable surrogate
                   [--ks 2,4,6,8] [--pfail 0.01]
  second-order   first- vs second-order accuracy across pfail values
                   --class C [-k 8] [--trials 300000] [--seed 0]
  info           DAG statistics (tasks, edges, d(G), weights)
                   --class C [-k 8]
  analyze        estimator panel on a user task-graph file
                   --file graph.txt [--pfail 0.001] [--trials 100000]
                 (format: `task <name> <weight>` / `dep <src> <dst>`)
  help           this message"
    );
}
