//! End-to-end tests of distributed sweeps: the `sweep --workers N`
//! coordinator, the hidden `sweep-worker` protocol, and the acceptance
//! guarantee that a distributed campaign's merged CSV/JSONL is
//! byte-identical to the single-process path over the same cache.

use std::path::PathBuf;
use std::process::Command;
use stochdag_engine::{decode_event, CampaignEvent};

fn stochdag(args: &[&str]) -> (bool, String, String) {
    stochdag_env(args, &[])
}

fn stochdag_env(args: &[&str], env: &[(&str, &str)]) -> (bool, String, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_stochdag"));
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Recursively copy a directory (the committed fixture cache into a
/// scratch dir, so tests never mutate repo files).
fn copy_dir(from: &std::path::Path, to: &std::path::Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let target = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &target);
        } else {
            std::fs::copy(entry.path(), &target).unwrap();
        }
    }
}

/// The 24-cell acceptance campaign (2 DAG kinds × 3 sizes × 2
/// estimators × 2 failure probabilities) — the same file CI's
/// distributed-sweep-smoke job runs, so editing the example cannot
/// silently diverge CI from the byte-identity guarantee tested here.
const CAMPAIGN: &str = include_str!("../../../examples/ci_smoke_campaign.toml");

fn scratch(tag: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("stochdag_cli_dist_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let spec = dir.join("campaign.toml");
    std::fs::write(&spec, CAMPAIGN).unwrap();
    (dir, spec)
}

#[test]
fn distributed_output_is_byte_identical_to_single_process() {
    // Acceptance criterion: for N ∈ {1, 2, 4}, a fresh distributed run
    // followed by a single-process run over the same cache produces
    // byte-identical CSV and JSONL (the single-process run is served
    // entirely from what the workers computed and stored).
    for n in ["1", "2", "4"] {
        let (dir, spec) = scratch(&format!("accept{n}"));
        let cache = dir.join("cache");
        let dist_out = dir.join("dist");
        let single_out = dir.join("single");

        let (ok, stdout, stderr) = stochdag(&[
            "sweep",
            "--spec",
            spec.to_str().unwrap(),
            "--workers",
            n,
            "--progress",
            "plain",
            "--out",
            dist_out.to_str().unwrap(),
            "--cache",
            cache.to_str().unwrap(),
        ]);
        assert!(ok, "workers={n}: {stdout}\n{stderr}");
        assert!(stdout.contains("24 cells"), "{stdout}");
        assert!(
            stderr.contains("cells 24/24") && stderr.contains("eta done"),
            "progress on stderr: {stderr}"
        );

        let (ok, stdout, stderr) = stochdag(&[
            "sweep",
            "--spec",
            spec.to_str().unwrap(),
            "--out",
            single_out.to_str().unwrap(),
            "--cache",
            cache.to_str().unwrap(),
        ]);
        assert!(ok, "{stdout}\n{stderr}");
        assert!(
            stdout.contains("(fully cached)"),
            "workers={n} must have computed every work unit: {stdout}"
        );
        for ext in ["csv", "jsonl"] {
            assert_eq!(
                std::fs::read(dist_out.join(format!("ci-smoke.{ext}"))).unwrap(),
                std::fs::read(single_out.join(format!("ci-smoke.{ext}"))).unwrap(),
                "workers={n}: merged {ext} differs from single-process {ext}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn crashed_worker_shard_is_retried_once_and_output_stays_identical() {
    // Kill-a-worker: a crash file arms the fault-injection hook in
    // `sweep-worker` — worker slot 0 emits a few events, deletes the
    // file, and hard-exits mid-stream (non-zero, no `lease_done`). The
    // coordinator must re-queue the dead worker's leases (cache-first
    // over the shared cache) and still produce byte-identical output.
    let (dir, spec) = scratch("retry");
    let cache = dir.join("cache");
    let crash_file = dir.join("crash-shard");
    std::fs::write(&crash_file, "0").unwrap();

    let dist_out = dir.join("dist");
    let (ok, stdout, stderr) = stochdag_env(
        &[
            "sweep",
            "--spec",
            spec.to_str().unwrap(),
            "--workers",
            "2",
            "--progress",
            "plain",
            "--out",
            dist_out.to_str().unwrap(),
            "--cache",
            cache.to_str().unwrap(),
        ],
        &[(
            "STOCHDAG_SWEEP_WORKER_CRASH_FILE",
            crash_file.to_str().unwrap(),
        )],
    );
    assert!(ok, "campaign must survive one worker crash: {stderr}");
    assert!(
        stderr.contains("sweep worker 0 failed") && stderr.contains("re-queueing"),
        "coordinator reports the re-queue: {stderr}"
    );
    assert!(stdout.contains("24 cells"), "{stdout}");
    assert!(!crash_file.exists(), "the crashing worker disarms the hook");
    // The crashed attempt's duplicate events must not skew progress:
    // the final line reports exactly the campaign's 24 cells — not a
    // double-counted retry total — and reaches a finished ETA.
    assert!(
        stderr.contains("cells 24/24 (100%)") && stderr.contains("eta done"),
        "progress counters stay exact across the retry: {stderr}"
    );

    // The merged output must match a clean single-process run.
    let single_out = dir.join("single");
    let (ok, stdout, stderr) = stochdag(&[
        "sweep",
        "--spec",
        spec.to_str().unwrap(),
        "--out",
        single_out.to_str().unwrap(),
        "--cache",
        cache.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(stdout.contains("(fully cached)"), "{stdout}");
    for ext in ["csv", "jsonl"] {
        assert_eq!(
            std::fs::read(dist_out.join(format!("ci-smoke.{ext}"))).unwrap(),
            std::fs::read(single_out.join(format!("ci-smoke.{ext}"))).unwrap(),
            "retried campaign {ext} differs from single-process {ext}"
        );
    }

    // A lease whose every attempt crashes fails the campaign. Run with
    // a single worker slot so no healthy peer can absorb the re-queued
    // leases, and re-arm the hook so the respawned worker dies too:
    // the second crash exhausts the per-lease attempt budget.
    std::fs::write(&crash_file, "0").unwrap();
    let twice = dir.join("twice-crash");
    let (ok2, stdout2, stderr2) = stochdag_env(
        &[
            "sweep",
            "--spec",
            spec.to_str().unwrap(),
            "--workers",
            "1",
            "--out",
            twice.to_str().unwrap(),
            "--cache",
            dir.join("cache2").to_str().unwrap(),
        ],
        &[
            (
                "STOCHDAG_SWEEP_WORKER_CRASH_FILE",
                crash_file.to_str().unwrap(),
            ),
            ("STOCHDAG_SWEEP_WORKER_CRASH_REARM", "1"),
        ],
    );
    assert!(!ok2, "a lease failing every attempt must fail the campaign");
    assert!(stderr2.contains("sweep worker 0 failed"), "{stderr2}");
    assert!(
        !stdout2.contains("24 cells"),
        "the failed campaign must not report completion: {stdout2}"
    );
    assert!(
        crash_file.exists(),
        "the re-armed hook never disarms itself"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_replays_byte_identically_from_a_pre_redesign_cache() {
    // Acceptance criterion: the 24-cell acceptance campaign, run
    // against a cache directory written by the PR-4 (pre-Campaign)
    // code, is served fully from cache — cache keys unchanged — and
    // regenerates byte-identical CSV/JSONL through both the InProcess
    // and MultiProcess{2} backends.
    let fixture = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/pr4_acceptance"
    ));
    let expected_csv = std::fs::read(fixture.join("ci-smoke.csv")).unwrap();
    let expected_jsonl = std::fs::read(fixture.join("ci-smoke.jsonl")).unwrap();

    for workers in [None, Some("2")] {
        let (dir, spec) = scratch(&format!("pr4cache{}", workers.unwrap_or("1")));
        let cache = dir.join("cache");
        copy_dir(&fixture.join("cache"), &cache);
        let out = dir.join("out");
        let mut args = vec![
            "sweep",
            "--spec",
            spec.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--cache",
            cache.to_str().unwrap(),
        ];
        if let Some(n) = workers {
            args.extend(["--workers", n]);
        }
        let (ok, stdout, stderr) = stochdag(&args);
        assert!(ok, "{stdout}\n{stderr}");
        // Single-process probes each of the 36 work units once; with
        // workers, a reference needed by both shards is (cache-)hit by
        // each. Either way nothing may be recomputed.
        assert!(
            stdout.contains("(fully cached)"),
            "every cell and reference must hit the PR-4 cache (workers={workers:?}): {stdout}"
        );
        if workers.is_none() {
            assert!(stdout.contains("cache: 36/36 hits"), "{stdout}");
        }
        assert_eq!(
            std::fs::read(out.join("ci-smoke.csv")).unwrap(),
            expected_csv,
            "CSV differs from the pre-redesign output (workers={workers:?})"
        );
        assert_eq!(
            std::fs::read(out.join("ci-smoke.jsonl")).unwrap(),
            expected_jsonl,
            "JSONL differs from the pre-redesign output (workers={workers:?})"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn sweep_worker_speaks_the_shard_protocol() {
    let (dir, spec_toml) = scratch("proto");
    // Workers take the spec as JSON (what the coordinator hands them);
    // TOML also parses, but exercise the real handshake format.
    let spec = stochdag_engine::SweepSpec::from_file(spec_toml.to_str().unwrap()).unwrap();
    let spec_json = dir.join("campaign.json");
    std::fs::write(&spec_json, serde::json::to_string(&spec)).unwrap();
    let cache = dir.join("cache");

    let mut all_cells = std::collections::BTreeSet::new();
    let mut total = 0usize;
    for shard in ["0", "1"] {
        let (ok, stdout, stderr) = stochdag(&[
            "sweep-worker",
            "--spec-json",
            spec_json.to_str().unwrap(),
            "--shard",
            shard,
            "--of",
            "2",
            "--cache",
            cache.to_str().unwrap(),
        ]);
        assert!(ok, "{stderr}");
        let events: Vec<CampaignEvent> = stdout
            .lines()
            .map(|l| decode_event(l).unwrap_or_else(|e| panic!("{e}")))
            .collect();
        match events.first() {
            Some(CampaignEvent::Hello {
                shard_count, cells, ..
            }) => {
                assert_eq!(*shard_count, 2);
                total += cells;
            }
            other => panic!("expected hello first, got {other:?}"),
        }
        assert!(
            matches!(events.last(), Some(CampaignEvent::Done { .. })),
            "done last"
        );
        for ev in &events {
            if let CampaignEvent::Cell { index, row, .. } = ev {
                assert!(all_cells.insert(*index), "cell {index} on both shards");
                assert!(row.value > 0.0 && row.rel_error.abs() < 0.5);
            }
        }
    }
    assert_eq!(total, 24, "hello totals cover the campaign");
    assert_eq!(all_cells.len(), 24, "shards partition the 24 cells");

    // A worker asked for an impossible shard fails cleanly, and its
    // final stdout line is a protocol `error` event.
    let (ok, stdout, stderr) = stochdag(&[
        "sweep-worker",
        "--spec-json",
        spec_json.to_str().unwrap(),
        "--shard",
        "5",
        "--of",
        "2",
        "--no-cache",
    ]);
    assert!(!ok);
    assert!(stderr.contains("out of range"), "{stderr}");
    // The error event carries the structured failure kind, so a
    // coordinator's metrics report can tally failures by kind.
    match decode_event(stdout.lines().last().unwrap()) {
        Ok(CampaignEvent::Error { kind, .. }) => {
            assert_eq!(kind.as_deref(), Some("spec"), "{stdout}")
        }
        other => panic!("expected error event, got {other:?}: {stdout}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_report_shows_per_shard_coverage() {
    let (dir, spec) = scratch("resume");
    let cache = dir.join("cache");
    let base = [
        "sweep",
        "--spec",
        spec.to_str().unwrap(),
        "--cache",
        cache.to_str().unwrap(),
    ];

    // Run the campaign once (single process), then ask how the cached
    // cells would split over 2 workers.
    let out = dir.join("out");
    let mut run_args = base.to_vec();
    run_args.extend(["--out", out.to_str().unwrap()]);
    let (ok, stdout, stderr) = stochdag(&run_args);
    assert!(ok, "{stdout}\n{stderr}");

    let mut report_args = base.to_vec();
    report_args.extend(["--resume-report", "--workers", "2"]);
    let (ok, stdout, _) = stochdag(&report_args);
    assert!(ok, "{stdout}");
    // 24 cells + 12 reference scenarios.
    assert!(stdout.contains("36 of 36 work units cached"), "{stdout}");
    assert!(stdout.contains("shard"), "{stdout}");
    assert!(stdout.contains("0/2"), "{stdout}");
    assert!(stdout.contains("1/2"), "{stdout}");
    assert!(stdout.contains("entirely from cache"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_worker_counts_fail_before_any_work() {
    let (dir, spec) = scratch("badn");
    let (ok, _, stderr) = stochdag(&[
        "sweep",
        "--spec",
        spec.to_str().unwrap(),
        "--workers",
        "0",
        "--no-cache",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--workers"), "{stderr}");

    let (ok, _, stderr) = stochdag(&[
        "sweep",
        "--spec",
        spec.to_str().unwrap(),
        "--workers",
        "two",
        "--no-cache",
    ]);
    assert!(!ok);
    assert!(stderr.contains("bad --workers"), "{stderr}");
    assert!(
        !dir.join("results").exists(),
        "no output files before validation"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
