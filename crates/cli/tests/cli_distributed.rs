//! End-to-end tests of distributed sweeps: the `sweep --workers N`
//! coordinator, the hidden `sweep-worker` protocol, and the acceptance
//! guarantee that a distributed campaign's merged CSV/JSONL is
//! byte-identical to the single-process path over the same cache.

use std::path::PathBuf;
use std::process::Command;
use stochdag_engine::{decode_event, WorkerEvent};

fn stochdag(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_stochdag"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The 24-cell acceptance campaign (2 DAG kinds × 3 sizes × 2
/// estimators × 2 failure probabilities) — the same file CI's
/// distributed-sweep-smoke job runs, so editing the example cannot
/// silently diverge CI from the byte-identity guarantee tested here.
const CAMPAIGN: &str = include_str!("../../../examples/ci_smoke_campaign.toml");

fn scratch(tag: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("stochdag_cli_dist_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let spec = dir.join("campaign.toml");
    std::fs::write(&spec, CAMPAIGN).unwrap();
    (dir, spec)
}

#[test]
fn distributed_output_is_byte_identical_to_single_process() {
    // Acceptance criterion: for N ∈ {1, 2, 4}, a fresh distributed run
    // followed by a single-process run over the same cache produces
    // byte-identical CSV and JSONL (the single-process run is served
    // entirely from what the workers computed and stored).
    for n in ["1", "2", "4"] {
        let (dir, spec) = scratch(&format!("accept{n}"));
        let cache = dir.join("cache");
        let dist_out = dir.join("dist");
        let single_out = dir.join("single");

        let (ok, stdout, stderr) = stochdag(&[
            "sweep",
            "--spec",
            spec.to_str().unwrap(),
            "--workers",
            n,
            "--progress",
            "plain",
            "--out",
            dist_out.to_str().unwrap(),
            "--cache",
            cache.to_str().unwrap(),
        ]);
        assert!(ok, "workers={n}: {stdout}\n{stderr}");
        assert!(stdout.contains("24 cells"), "{stdout}");
        assert!(
            stderr.contains("cells 24/24") && stderr.contains("eta done"),
            "progress on stderr: {stderr}"
        );

        let (ok, stdout, stderr) = stochdag(&[
            "sweep",
            "--spec",
            spec.to_str().unwrap(),
            "--out",
            single_out.to_str().unwrap(),
            "--cache",
            cache.to_str().unwrap(),
        ]);
        assert!(ok, "{stdout}\n{stderr}");
        assert!(
            stdout.contains("(fully cached)"),
            "workers={n} must have computed every work unit: {stdout}"
        );
        for ext in ["csv", "jsonl"] {
            assert_eq!(
                std::fs::read(dist_out.join(format!("ci-smoke.{ext}"))).unwrap(),
                std::fs::read(single_out.join(format!("ci-smoke.{ext}"))).unwrap(),
                "workers={n}: merged {ext} differs from single-process {ext}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn sweep_worker_speaks_the_shard_protocol() {
    let (dir, spec_toml) = scratch("proto");
    // Workers take the spec as JSON (what the coordinator hands them);
    // TOML also parses, but exercise the real handshake format.
    let spec = stochdag_engine::SweepSpec::from_file(spec_toml.to_str().unwrap()).unwrap();
    let spec_json = dir.join("campaign.json");
    std::fs::write(&spec_json, serde::json::to_string(&spec)).unwrap();
    let cache = dir.join("cache");

    let mut all_cells = std::collections::BTreeSet::new();
    let mut total = 0usize;
    for shard in ["0", "1"] {
        let (ok, stdout, stderr) = stochdag(&[
            "sweep-worker",
            "--spec-json",
            spec_json.to_str().unwrap(),
            "--shard",
            shard,
            "--of",
            "2",
            "--cache",
            cache.to_str().unwrap(),
        ]);
        assert!(ok, "{stderr}");
        let events: Vec<WorkerEvent> = stdout
            .lines()
            .map(|l| decode_event(l).unwrap_or_else(|e| panic!("{e}")))
            .collect();
        match events.first() {
            Some(WorkerEvent::Hello {
                shard_count, cells, ..
            }) => {
                assert_eq!(*shard_count, 2);
                total += cells;
            }
            other => panic!("expected hello first, got {other:?}"),
        }
        assert!(
            matches!(events.last(), Some(WorkerEvent::Done { .. })),
            "done last"
        );
        for ev in &events {
            if let WorkerEvent::Cell { index, row, .. } = ev {
                assert!(all_cells.insert(*index), "cell {index} on both shards");
                assert!(row.value > 0.0 && row.rel_error.abs() < 0.5);
            }
        }
    }
    assert_eq!(total, 24, "hello totals cover the campaign");
    assert_eq!(all_cells.len(), 24, "shards partition the 24 cells");

    // A worker asked for an impossible shard fails cleanly, and its
    // final stdout line is a protocol `error` event.
    let (ok, stdout, stderr) = stochdag(&[
        "sweep-worker",
        "--spec-json",
        spec_json.to_str().unwrap(),
        "--shard",
        "5",
        "--of",
        "2",
        "--no-cache",
    ]);
    assert!(!ok);
    assert!(stderr.contains("out of range"), "{stderr}");
    assert!(
        matches!(
            decode_event(stdout.lines().last().unwrap()),
            Ok(WorkerEvent::Error { .. })
        ),
        "{stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_report_shows_per_shard_coverage() {
    let (dir, spec) = scratch("resume");
    let cache = dir.join("cache");
    let base = [
        "sweep",
        "--spec",
        spec.to_str().unwrap(),
        "--cache",
        cache.to_str().unwrap(),
    ];

    // Run the campaign once (single process), then ask how the cached
    // cells would split over 2 workers.
    let out = dir.join("out");
    let mut run_args = base.to_vec();
    run_args.extend(["--out", out.to_str().unwrap()]);
    let (ok, stdout, stderr) = stochdag(&run_args);
    assert!(ok, "{stdout}\n{stderr}");

    let mut report_args = base.to_vec();
    report_args.extend(["--resume-report", "--workers", "2"]);
    let (ok, stdout, _) = stochdag(&report_args);
    assert!(ok, "{stdout}");
    // 24 cells + 12 reference scenarios.
    assert!(stdout.contains("36 of 36 work units cached"), "{stdout}");
    assert!(stdout.contains("shard"), "{stdout}");
    assert!(stdout.contains("0/2"), "{stdout}");
    assert!(stdout.contains("1/2"), "{stdout}");
    assert!(stdout.contains("entirely from cache"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_worker_counts_fail_before_any_work() {
    let (dir, spec) = scratch("badn");
    let (ok, _, stderr) = stochdag(&[
        "sweep",
        "--spec",
        spec.to_str().unwrap(),
        "--workers",
        "0",
        "--no-cache",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--workers"), "{stderr}");

    let (ok, _, stderr) = stochdag(&[
        "sweep",
        "--spec",
        spec.to_str().unwrap(),
        "--workers",
        "two",
        "--no-cache",
    ]);
    assert!(!ok);
    assert!(stderr.contains("bad --workers"), "{stderr}");
    assert!(
        !dir.join("results").exists(),
        "no output files before validation"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
