//! End-to-end tests of the `stochdag` binary: every subcommand runs and
//! produces the expected artifacts (reduced trial counts keep this
//! fast).

use std::process::Command;

fn stochdag(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_stochdag"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_lists_all_commands() {
    let (ok, stdout, _) = stochdag(&["help"]);
    assert!(ok);
    for cmd in [
        "figure",
        "all-figures",
        "table1",
        "dot",
        "sched",
        "dodin-compare",
        "second-order",
        "info",
        "analyze",
    ] {
        assert!(stdout.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn no_args_prints_help() {
    let (ok, stdout, _) = stochdag(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn unknown_command_fails_cleanly() {
    let (ok, _, stderr) = stochdag(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn info_reports_paper_task_counts() {
    let (ok, stdout, _) = stochdag(&["info", "--class", "lu", "-k", "12"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("tasks:            650"), "{stdout}");
    assert!(stdout.contains("series-parallel:  false"));
}

#[test]
fn figure_produces_error_table_and_csv() {
    let tmp = std::env::temp_dir().join("stochdag_cli_smoke_fig.csv");
    let _ = std::fs::remove_file(&tmp);
    let (ok, stdout, _) = stochdag(&[
        "figure",
        "--class",
        "cholesky",
        "--pfail",
        "0.001",
        "--ks",
        "4",
        "--trials",
        "5000",
        "--csv",
        tmp.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("first_order"));
    let csv = std::fs::read_to_string(&tmp).expect("CSV written");
    assert!(csv.starts_with("k,tasks,mc_mean"));
    assert_eq!(csv.lines().count(), 2, "header + one k row");
    let _ = std::fs::remove_file(&tmp);
}

#[test]
fn figure_requires_class() {
    let (ok, _, stderr) = stochdag(&["figure", "--pfail", "0.01"]);
    assert!(!ok);
    assert!(stderr.contains("--class"));
}

#[test]
fn dot_emits_graphviz_with_paper_names() {
    let (ok, stdout, _) = stochdag(&["dot", "--class", "qr", "-k", "5"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph qr_5 {"));
    assert!(stdout.contains("TSMQR_3_4_2"), "paper Fig. 3 task present");
    assert!(stdout.trim_end().ends_with('}'));
}

#[test]
fn sched_compares_policies() {
    let (ok, stdout, _) = stochdag(&[
        "sched",
        "--class",
        "cholesky",
        "-k",
        "4",
        "-p",
        "2",
        "--pfail",
        "0.01",
        "--replicas",
        "50",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("bottom-level"));
    assert!(stdout.contains("best:"));
}

#[test]
fn analyze_handles_user_file_and_bad_file() {
    let tmp = std::env::temp_dir().join("stochdag_cli_smoke_graph.txt");
    std::fs::write(&tmp, "task a 1.0\ntask b 2.0\ndep a b\n").unwrap();
    let (ok, stdout, _) = stochdag(&[
        "analyze",
        "--file",
        tmp.to_str().unwrap(),
        "--trials",
        "5000",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("FirstOrder"));
    assert!(stdout.contains("d(G) = 3.0"), "{stdout}");

    std::fs::write(&tmp, "task a 1.0\ndep a missing\n").unwrap();
    let (ok, _, stderr) = stochdag(&["analyze", "--file", tmp.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("missing"), "{stderr}");
    let _ = std::fs::remove_file(&tmp);
}

#[test]
fn second_order_table() {
    let (ok, stdout, _) = stochdag(&[
        "second-order",
        "--class",
        "lu",
        "-k",
        "4",
        "--trials",
        "5000",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("second_order"));
    assert!(stdout.lines().count() >= 8, "six pfail rows plus header");
}

#[test]
fn dodin_compare_reports_gap() {
    let (ok, stdout, _) = stochdag(&["dodin-compare", "--ks", "2,3"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("rel_gap"));
    assert!(stdout.contains("cholesky"));
}
