//! End-to-end tests of the `stochdag` binary: every subcommand runs and
//! produces the expected artifacts (reduced trial counts keep this
//! fast).

use std::process::Command;

fn stochdag(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_stochdag"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_lists_all_commands() {
    let (ok, stdout, _) = stochdag(&["help"]);
    assert!(ok);
    for cmd in [
        "figure",
        "all-figures",
        "table1",
        "dot",
        "sched",
        "dodin-compare",
        "second-order",
        "info",
        "analyze",
    ] {
        assert!(stdout.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn no_args_prints_help() {
    let (ok, stdout, _) = stochdag(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn unknown_command_fails_cleanly() {
    let (ok, _, stderr) = stochdag(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn info_reports_paper_task_counts() {
    let (ok, stdout, _) = stochdag(&["info", "--class", "lu", "-k", "12"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("tasks:            650"), "{stdout}");
    assert!(stdout.contains("series-parallel:  false"));
}

#[test]
fn figure_produces_error_table_and_csv() {
    let tmp = std::env::temp_dir().join("stochdag_cli_smoke_fig.csv");
    let _ = std::fs::remove_file(&tmp);
    let (ok, stdout, _) = stochdag(&[
        "figure",
        "--class",
        "cholesky",
        "--pfail",
        "0.001",
        "--ks",
        "4",
        "--trials",
        "5000",
        "--csv",
        tmp.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("first_order"));
    let csv = std::fs::read_to_string(&tmp).expect("CSV written");
    assert!(csv.starts_with("k,tasks,mc_mean"));
    assert_eq!(csv.lines().count(), 2, "header + one k row");
    let _ = std::fs::remove_file(&tmp);
}

#[test]
fn figure_requires_class() {
    let (ok, _, stderr) = stochdag(&["figure", "--pfail", "0.01"]);
    assert!(!ok);
    assert!(stderr.contains("--class"));
}

#[test]
fn dot_emits_graphviz_with_paper_names() {
    let (ok, stdout, _) = stochdag(&["dot", "--class", "qr", "-k", "5"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph qr_5 {"));
    assert!(stdout.contains("TSMQR_3_4_2"), "paper Fig. 3 task present");
    assert!(stdout.trim_end().ends_with('}'));
}

#[test]
fn sched_compares_policies() {
    let (ok, stdout, _) = stochdag(&[
        "sched",
        "--class",
        "cholesky",
        "-k",
        "4",
        "-p",
        "2",
        "--pfail",
        "0.01",
        "--replicas",
        "50",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("bottom-level"));
    assert!(stdout.contains("best:"));
}

#[test]
fn analyze_handles_user_file_and_bad_file() {
    let tmp = std::env::temp_dir().join("stochdag_cli_smoke_graph.txt");
    std::fs::write(&tmp, "task a 1.0\ntask b 2.0\ndep a b\n").unwrap();
    let (ok, stdout, _) = stochdag(&[
        "analyze",
        "--file",
        tmp.to_str().unwrap(),
        "--trials",
        "5000",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("FirstOrder"));
    assert!(stdout.contains("d(G) = 3.0"), "{stdout}");

    std::fs::write(&tmp, "task a 1.0\ndep a missing\n").unwrap();
    let (ok, _, stderr) = stochdag(&["analyze", "--file", tmp.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("missing"), "{stderr}");
    let _ = std::fs::remove_file(&tmp);
}

#[test]
fn second_order_table() {
    let (ok, stdout, _) = stochdag(&[
        "second-order",
        "--class",
        "lu",
        "-k",
        "4",
        "--trials",
        "5000",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("second_order"));
    assert!(stdout.lines().count() >= 8, "six pfail rows plus header");
}

#[test]
fn dodin_compare_reports_gap() {
    let (ok, stdout, _) = stochdag(&["dodin-compare", "--ks", "2,3"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("rel_gap"));
    assert!(stdout.contains("cholesky"));
}

#[test]
fn sweep_campaign_caches_and_reruns_identically() {
    // The acceptance campaign: 2 DAG kinds x 3 sizes x 2 estimators x
    // 2 failure probabilities = 24 cells, from a TOML spec file.
    let dir = std::env::temp_dir().join(format!("stochdag_cli_sweep_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("campaign.toml");
    std::fs::write(
        &spec_path,
        r#"
name = "smoke"
seed = 3
pfails = [0.01, 0.001]
estimators = ["first-order", "sculli"]
reference_trials = 2000

[[dags]]
kind = "cholesky"
ks = [2, 3, 4]

[[dags]]
kind = "lu"
ks = [2, 3, 4]
"#,
    )
    .unwrap();
    let out = dir.join("results");
    let cache = dir.join("cache");
    let args = [
        "sweep",
        "--spec",
        spec_path.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
        "--cache",
        cache.to_str().unwrap(),
    ];

    let (ok, stdout, stderr) = stochdag(&args);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(stdout.contains("24 cells"), "{stdout}");
    let csv_path = out.join("smoke.csv");
    let csv = std::fs::read(&csv_path).expect("CSV written");
    let text = String::from_utf8_lossy(&csv);
    assert!(text.starts_with("dag,tasks,edges,model,lambda,estimator,"));
    // header + 24 cells + summary header + 2 estimator summaries.
    assert_eq!(text.lines().count(), 1 + 24 + 1 + 2, "{text}");
    let jsonl = std::fs::read(out.join("smoke.jsonl")).expect("JSONL written");

    // Immediate re-run: 100% cache hits, byte-identical outputs.
    let (ok2, stdout2, stderr2) = stochdag(&args);
    assert!(ok2, "{stdout2}\n{stderr2}");
    assert!(stdout2.contains("(fully cached)"), "{stdout2}");
    assert_eq!(std::fs::read(&csv_path).unwrap(), csv, "CSV byte-identical");
    assert_eq!(
        std::fs::read(out.join("smoke.jsonl")).unwrap(),
        jsonl,
        "JSONL byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_flag_spec_and_errors() {
    let dir = std::env::temp_dir().join(format!("stochdag_cli_sweepflags_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = dir.join("results");
    let (ok, stdout, _) = stochdag(&[
        "sweep",
        "--classes",
        "cholesky",
        "--ks",
        "2",
        "--pfails",
        "0.01",
        "--estimators",
        "first-order",
        "--trials",
        "1000",
        "--out",
        out.to_str().unwrap(),
        "--no-cache",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("1 cells + 1 references"), "{stdout}");

    let (ok, _, stderr) = stochdag(&["sweep"]);
    assert!(!ok);
    assert!(stderr.contains("--spec"), "{stderr}");

    let (ok, _, stderr) = stochdag(&[
        "sweep",
        "--classes",
        "cholesky",
        "--estimators",
        "warp-drive",
        "--no-cache",
    ]);
    assert!(!ok);
    assert!(stderr.contains("warp-drive"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_dry_run_expands_without_executing() {
    let dir = std::env::temp_dir().join(format!("stochdag_cli_dryrun_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = dir.join("results");
    let (ok, stdout, stderr) = stochdag(&[
        "sweep",
        "--classes",
        "cholesky,lu",
        "--ks",
        "2,3",
        "--pfails",
        "0.01,0.001",
        "--estimators",
        "first-order,dodin",
        "--out",
        out.to_str().unwrap(),
        "--no-cache",
        "--dry-run",
    ]);
    assert!(ok, "{stdout}\n{stderr}");
    // 4 instances x 2 models x 2 estimators.
    assert!(stdout.contains("16 cells + 8 references"), "{stdout}");
    assert!(stdout.contains("cholesky:k=2"), "{stdout}");
    assert!(
        stdout.contains("dodin:128"),
        "canonical estimator ids: {stdout}"
    );
    assert!(!out.exists(), "dry run must not create output files");

    // With --workers, the dry run predicts per-shard cell loads.
    let (ok, stdout, _) = stochdag(&[
        "sweep",
        "--classes",
        "cholesky",
        "--ks",
        "2,3",
        "--pfails",
        "0.01",
        "--estimators",
        "first-order,sculli",
        "--no-cache",
        "--dry-run",
        "--workers",
        "2",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("shard 0/2"), "{stdout}");
    assert!(stdout.contains("shard 1/2"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_resume_report_jobs_and_cache_gc() {
    let dir = std::env::temp_dir().join(format!("stochdag_cli_resume_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("results");
    let cache = dir.join("cache");
    let base = [
        "sweep",
        "--classes",
        "cholesky",
        "--ks",
        "2,3",
        "--pfails",
        "0.01",
        "--estimators",
        "first-order,sculli",
        "--trials",
        "1000",
        "--out",
        out.to_str().unwrap(),
        "--cache",
        cache.to_str().unwrap(),
    ];

    // Before any run: the resume report predicts all misses and runs
    // nothing (no output files appear).
    let mut report_args = base.to_vec();
    report_args.push("--resume-report");
    let (ok, stdout, stderr) = stochdag(&report_args);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(stdout.contains("0 of 6 work units cached"), "{stdout}");
    assert!(stdout.contains("(mc reference)"), "{stdout}");
    assert!(!out.join("sweep.csv").exists(), "report must not run cells");

    // Run the campaign with a worker cap.
    let mut run_args = base.to_vec();
    run_args.extend(["--jobs", "2"]);
    let (ok, stdout, stderr) = stochdag(&run_args);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(stdout.contains("4 cells + 2 references"), "{stdout}");

    // Now the report sees everything cached.
    let (ok, stdout, _) = stochdag(&report_args);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("6 of 6 work units cached"), "{stdout}");
    assert!(stdout.contains("entirely from cache"), "{stdout}");

    // A zero-byte budget evicts the whole on-disk tier after the run.
    let mut gc_args = base.to_vec();
    gc_args.extend(["--cache-max-bytes", "0"]);
    let (ok, stdout, stderr) = stochdag(&gc_args);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(stdout.contains("cache gc: kept 0 entries"), "{stdout}");
    let (ok, stdout, _) = stochdag(&report_args);
    assert!(ok);
    assert!(stdout.contains("0 of 6 work units cached"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn help_lists_sweep() {
    let (ok, stdout, _) = stochdag(&["help"]);
    assert!(ok);
    assert!(stdout.contains("sweep"), "help missing sweep");
}
