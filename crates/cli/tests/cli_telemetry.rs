//! End-to-end tests of `sweep`'s observability surface: the
//! `--metrics-out` report (deterministic stable section, identical
//! across backends and worker counts), the `--trace-out` JSONL stream,
//! and the progress reporter's non-TTY fallback.

use std::path::{Path, PathBuf};
use std::process::Command;

fn stochdag(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_stochdag"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The 24-cell acceptance campaign CI's smoke job also runs.
const CAMPAIGN: &str = include_str!("../../../examples/ci_smoke_campaign.toml");

fn scratch(tag: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("stochdag_cli_tel_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let spec = dir.join("campaign.toml");
    std::fs::write(&spec, CAMPAIGN).unwrap();
    (dir, spec)
}

/// Parse a metrics report and re-render its `stable` subtree (the
/// serde shim's rendering is deterministic, so equal subtrees mean
/// equal bytes).
fn stable_section(path: &Path) -> String {
    let text = std::fs::read_to_string(path).unwrap();
    let v = serde::json::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    assert_eq!(v.require("schema_version").unwrap().as_u64(), Some(1));
    let mut out = String::new();
    serde::json::write_value(v.require("stable").unwrap(), &mut out);
    out
}

#[test]
fn metrics_report_is_deterministic_and_worker_invariant() {
    let (dir, spec) = scratch("metrics");
    let cache = dir.join("cache");
    let run = |tag: &str, workers: Option<&str>| -> (PathBuf, String) {
        let metrics = dir.join(format!("{tag}.metrics.json"));
        let out = dir.join(tag);
        let mut args = vec![
            "sweep",
            "--spec",
            spec.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--cache",
            cache.to_str().unwrap(),
        ];
        let m = metrics.to_str().unwrap().to_string();
        args.extend(["--metrics-out", &m]);
        if let Some(n) = workers {
            args.extend(["--workers", n]);
        }
        let (ok, stdout, stderr) = stochdag(&args);
        assert!(ok, "{tag}: {stdout}\n{stderr}");
        assert!(
            stdout.contains(&format!("wrote {}", metrics.display())),
            "{stdout}"
        );
        (metrics, stdout)
    };

    // Cold run computes all 24 cells and says so in the report.
    let (cold, _) = run("cold", None);
    let cold_stable = stable_section(&cold);
    assert!(cold_stable.contains("\"total\":24"), "{cold_stable}");
    assert!(cold_stable.contains("\"computed\":24"), "{cold_stable}");
    assert!(cold_stable.contains("\"rows_emitted\":24"), "{cold_stable}");

    // Over the now-warm disk cache, every backend and worker count
    // must agree byte-for-byte: all 24 cells served from the disk
    // tier, regardless of how the campaign was partitioned.
    let (single, _) = run("single", None);
    let (w1, _) = run("w1", Some("1"));
    let (w2, _) = run("w2", Some("2"));
    let warm_stable = stable_section(&single);
    assert!(warm_stable.contains("\"disk_hits\":24"), "{warm_stable}");
    assert!(warm_stable.contains("\"computed\":0"), "{warm_stable}");
    assert_eq!(warm_stable, stable_section(&w1), "workers=1 differs");
    assert_eq!(warm_stable, stable_section(&w2), "workers=2 differs");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_out_streams_parseable_spans_and_counters() {
    let (dir, spec) = scratch("trace");
    let trace = dir.join("trace.jsonl");
    let (ok, stdout, stderr) = stochdag(&[
        "sweep",
        "--spec",
        spec.to_str().unwrap(),
        "--out",
        dir.join("out").to_str().unwrap(),
        "--cache",
        dir.join("cache").to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(
        stdout.contains(&format!("wrote {}", trace.display())),
        "{stdout}"
    );
    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(!text.is_empty());
    for line in text.lines() {
        let v = serde::json::parse(line).unwrap_or_else(|e| panic!("bad trace line {line:?}: {e}"));
        assert!(
            v.get("span").is_some() || v.get("counter").is_some(),
            "{line}"
        );
    }
    assert!(text.contains("\"span\":\"estimate_cell\""), "{text}");
    assert!(text.contains("\"span\":\"cache_probe\""), "{text}");
    assert!(text.contains("\"counter\":\"cells_computed\""), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[cfg(unix)]
fn error_kinds_from_failed_attempts_reach_the_metrics_report() {
    // A worker whose first attempt emits a structured `error` event and
    // dies is retried; the campaign succeeds, but the failure must
    // still be tallied by kind in the metrics report. Inject it with a
    // launcher wrapper: first spawn fails with a `cache`-kind error,
    // every later spawn execs the real worker.
    use std::os::unix::fs::PermissionsExt;
    use stochdag_engine::{Campaign, MultiProcess, ResultCache, SweepSpec, Telemetry, VecSink};

    let (dir, spec) = scratch("errkind");
    let marker = dir.join("first-attempt-done");
    let wrapper = dir.join("flaky-worker.sh");
    std::fs::write(
        &wrapper,
        format!(
            "#!/bin/sh\n\
             if mkdir {marker:?} 2>/dev/null; then\n\
               echo '{{\"event\":\"error\",\"kind\":\"cache\",\"message\":\"injected failure\"}}'\n\
               exit 1\n\
             fi\n\
             exec {real:?} \"$@\"\n",
            marker = marker.to_str().unwrap(),
            real = env!("CARGO_BIN_EXE_stochdag"),
        ),
    )
    .unwrap();
    std::fs::set_permissions(&wrapper, std::fs::Permissions::from_mode(0o755)).unwrap();

    let telemetry = Telemetry::enabled();
    let outcome = Campaign::builder(SweepSpec::from_file(spec.to_str().unwrap()).unwrap())
        .cache(std::sync::Arc::new(ResultCache::on_disk(dir.join("cache"))))
        .backend(MultiProcess::new(2).launcher(&wrapper, vec!["sweep-worker".into()]))
        .telemetry(telemetry.clone())
        .sink(VecSink::default())
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(outcome.cells, 24, "campaign survives the flaky attempt");

    let report = telemetry.report("ci-smoke", &outcome);
    assert_eq!(
        report.errors_by_kind.get("cache"),
        Some(&1),
        "{:?}",
        report.errors_by_kind
    );
    let snap_json = report.to_json();
    assert!(snap_json.contains("\"worker_retries\":1"), "{snap_json}");
    assert!(
        snap_json.contains("\"errors_by_kind\":{\"cache\":1}"),
        "{snap_json}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn live_progress_falls_back_to_plain_when_stderr_is_piped() {
    let (dir, spec) = scratch("live");
    let (ok, stdout, stderr) = stochdag(&[
        "sweep",
        "--spec",
        spec.to_str().unwrap(),
        "--out",
        dir.join("out").to_str().unwrap(),
        "--no-cache",
        "--progress",
        "live",
        "--progress-interval",
        "0",
    ]);
    assert!(ok, "{stdout}\n{stderr}");
    // stderr here is a pipe, not a terminal: live must degrade to
    // append-only plain lines — no carriage-return rewriting in logs.
    assert!(!stderr.contains('\r'), "plain fallback never rewrites");
    assert!(stderr.contains("cells 24/24 (100%)"), "{stderr}");
    assert!(stderr.contains("eta done"), "{stderr}");

    // And the knob rejects nonsense before any work happens.
    let (ok, _, stderr) = stochdag(&[
        "sweep",
        "--spec",
        spec.to_str().unwrap(),
        "--no-cache",
        "--progress-interval",
        "-1",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--progress-interval"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}
