//! End-to-end tests of the campaign service through the real binary:
//! `serve` daemon lifecycle, `submit`/`status`/`cancel`/`shutdown`
//! clients, served-output parity with a direct `sweep`, and on-disk
//! cache reusability after the daemon is SIGKILLed mid-campaign.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn stochdag(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_stochdag"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The same 24-cell campaign CI's smoke jobs run.
const CAMPAIGN: &str = include_str!("../../../examples/ci_smoke_campaign.toml");

fn scratch(tag: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("stochdag_cli_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let spec = dir.join("campaign.toml");
    std::fs::write(&spec, CAMPAIGN).unwrap();
    (dir, spec)
}

/// Start a daemon on an ephemeral port; returns the child, the parsed
/// address from its "listening on" line, and the still-open stdout
/// reader (dropping the pipe would make the daemon's own summary
/// prints fail).
fn start_daemon(extra: &[&str]) -> (Child, String, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_stochdag"))
        .arg("serve")
        .args(["--listen", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon starts");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("daemon announces its address");
    let addr = line
        .trim()
        .strip_prefix("stochdag-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected announce line {line:?}"))
        .to_string();
    (child, addr, reader)
}

fn wait_exit(child: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if child.try_wait().expect("wait works").is_some() {
            return;
        }
        assert!(Instant::now() < deadline, "daemon did not exit in time");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn served_campaign_matches_direct_sweep_and_daemon_shuts_down_cleanly() {
    let (dir, spec) = scratch("parity");
    let cache = dir.join("cache");
    let report = dir.join("report.json");
    let (mut daemon, addr, _daemon_out) = start_daemon(&[
        "--cache",
        cache.to_str().unwrap(),
        "--shutdown-report",
        report.to_str().unwrap(),
    ]);

    // Submit through the daemon and stream results locally.
    let served_out = dir.join("served");
    let (ok, stdout, stderr) = stochdag(&[
        "submit",
        "--addr",
        &addr,
        "--spec",
        spec.to_str().unwrap(),
        "--out",
        served_out.to_str().unwrap(),
        "--progress",
        "none",
    ]);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(stdout.contains("24 cells"), "{stdout}");

    // A direct single-process sweep over the same cache must replay
    // byte-identically.
    let direct_out = dir.join("direct");
    let (ok, stdout, stderr) = stochdag(&[
        "sweep",
        "--spec",
        spec.to_str().unwrap(),
        "--out",
        direct_out.to_str().unwrap(),
        "--cache",
        cache.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(
        stdout.contains("(fully cached)"),
        "daemon must have computed every unit: {stdout}"
    );
    for ext in ["csv", "jsonl"] {
        assert_eq!(
            std::fs::read(served_out.join(format!("ci-smoke.{ext}"))).unwrap(),
            std::fs::read(direct_out.join(format!("ci-smoke.{ext}"))).unwrap(),
            "served {ext} differs from direct sweep {ext}"
        );
    }

    // Status shows the completed campaign and the cache totals.
    let (ok, stdout, _) = stochdag(&["status", "--addr", &addr]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("done"), "{stdout}");
    assert!(stdout.contains("cells: 24 computed"), "{stdout}");

    // Clean shutdown persists the report and exits zero.
    let (ok, stdout, _) = stochdag(&["shutdown", "--addr", &addr]);
    assert!(ok, "{stdout}");
    wait_exit(&mut daemon);
    assert!(
        daemon.wait().unwrap().success(),
        "daemon must exit cleanly after a drain"
    );
    assert!(report.exists(), "shutdown report must be persisted");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn detach_cancel_and_unknown_id_round_trip() {
    let (dir, spec) = scratch("cancel");
    let (mut daemon, addr, _daemon_out) = start_daemon(&["--no-cache", "--max-running", "1"]);

    // A heavyweight submission detaches immediately…
    let slow_spec = dir.join("slow.toml");
    std::fs::write(
        &slow_spec,
        CAMPAIGN.replace("reference_trials = 2000", "reference_trials = 4000000"),
    )
    .unwrap();
    let (ok, stdout, stderr) = stochdag(&[
        "submit",
        "--addr",
        &addr,
        "--spec",
        slow_spec.to_str().unwrap(),
        "--detach",
    ]);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(stdout.contains("submitted campaign 1"), "{stdout}");
    assert!(stdout.contains("detached"), "{stdout}");

    // …and can be cancelled while the daemon chews on it.
    let (ok, stdout, stderr) = stochdag(&["cancel", "--addr", &addr, "--id", "1"]);
    assert!(ok, "{stdout}\n{stderr}");
    let (ok, stdout, _) = stochdag(&["status", "--addr", &addr, "--id", "1"]);
    assert!(ok, "{stdout}");
    assert!(
        stdout.contains("queued") || stdout.contains("running") || stdout.contains("cancelled"),
        "{stdout}"
    );

    // Unknown ids are structured errors surfaced as command failures.
    let (ok, _, stderr) = stochdag(&["cancel", "--addr", &addr, "--id", "99"]);
    assert!(!ok);
    assert!(stderr.contains("unknown-id"), "{stderr}");

    let (ok, _, _) = stochdag(&["shutdown", "--addr", &addr, "--now"]);
    assert!(ok);
    wait_exit(&mut daemon);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = spec;
}

#[test]
fn sigkilled_daemon_leaves_the_disk_cache_reusable() {
    // Torn-write coverage for the service: SIGKILL the daemon while a
    // campaign is writing the shared on-disk cache, then run a direct
    // sweep over the same directory — partial entries must be treated
    // as misses, not corruption.
    let (dir, spec) = scratch("sigkill");
    let cache = dir.join("cache");
    let (mut daemon, addr, _daemon_out) = start_daemon(&["--cache", cache.to_str().unwrap()]);

    let (ok, stdout, stderr) = stochdag(&[
        "submit",
        "--addr",
        &addr,
        "--spec",
        spec.to_str().unwrap(),
        "--detach",
    ]);
    assert!(ok, "{stdout}\n{stderr}");

    // Give the campaign a moment to start writing cache entries, then
    // kill the daemon without any cleanup.
    let deadline = Instant::now() + Duration::from_secs(60);
    while !cache.exists() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    daemon.kill().expect("SIGKILL lands");
    daemon.wait().expect("reaped");

    // The cache directory (in whatever torn state the kill left it)
    // must still serve a fresh single-process sweep.
    let out = dir.join("after");
    let (ok, stdout, stderr) = stochdag(&[
        "sweep",
        "--spec",
        spec.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
        "--cache",
        cache.to_str().unwrap(),
        "--cache-max-bytes",
        "100000000",
    ]);
    assert!(
        ok,
        "sweep over a torn cache must succeed: {stdout}\n{stderr}"
    );
    assert!(stdout.contains("24 cells"), "{stdout}");
    assert!(
        out.join("ci-smoke.csv").exists() && out.join("ci-smoke.jsonl").exists(),
        "outputs written"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
