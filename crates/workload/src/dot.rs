//! Graphviz DOT ingestion — the import dual of [`stochdag_dag::dot`].
//!
//! Parses the directed-graph subset of the DOT language that covers
//! both this workspace's own exports and typical workflow-trace dumps:
//!
//! - `strict`? `digraph` name? `{ … }` (undirected `graph`s are
//!   rejected with a structured error),
//! - node statements `id [attr, …];`, edge chains `a -> b -> c;`,
//!   graph attributes `rankdir=TB;`, and `node`/`edge`/`graph` default
//!   attribute statements (accepted and ignored),
//! - `//`, `#`, and `/* … */` comments, quoted identifiers with
//!   escapes, and optional semicolons.
//!
//! Task weights come from the full-precision `weight=` attribute that
//! [`stochdag_dag::dot_string`] emits, falling back to a `label`'s
//! second line (the human-readable `{:.4}` rendering), and default to
//! `1.0` — so round-tripping an export reproduces the exact weight
//! bits, which in turn makes the WL structural hash (and therefore
//! every cache key) identical. Node *names* come from the label's
//! first line when present, else the DOT id; names are display-only
//! and deliberately excluded from the structural hash.
//!
//! Every error is a located [`WorkloadError::Parse`] naming the line,
//! column, and — where it concerns one — the offending node or edge
//! id, or a [`WorkloadError::Graph`] when the text parses but does not
//! describe a DAG (cycles).

use crate::error::WorkloadError;
use crate::trace::{IngestedTrace, TraceFormat};
use std::collections::HashMap;
use stochdag_dag::{validate_acyclic, Dag};

/// Parse DOT text into a validated DAG plus provenance metadata.
pub fn parse_dot(src: &str) -> Result<IngestedTrace, WorkloadError> {
    Parser::new(src).parse()
}

/// Read and parse a DOT file.
pub fn load_dot(path: &std::path::Path) -> Result<IngestedTrace, WorkloadError> {
    let src = std::fs::read_to_string(path).map_err(|e| WorkloadError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    let mut trace = parse_dot(&src)?;
    trace.source = Some(path.display().to_string());
    Ok(trace)
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    /// Identifier, numeral, or quoted string (unescaped except `\n`,
    /// which is kept verbatim as backslash+n — it is a Graphviz label
    /// line break, not source whitespace).
    Id(String),
    LBrace,
    RBrace,
    LBrack,
    RBrack,
    Semi,
    Comma,
    Eq,
    Arrow,
    Eof,
}

#[derive(Clone, Debug)]
struct Token {
    tok: Tok,
    line: usize,
    col: usize,
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.bytes.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn skip_trivia(&mut self) -> Result<(), WorkloadError> {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.bump();
                }
                Some(b'#') => {
                    while self.peek().is_some_and(|b| b != b'\n') {
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while self.peek().is_some_and(|b| b != b'\n') {
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let (line, col) = (self.line, self.col);
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(WorkloadError::parse(
                                    line,
                                    col,
                                    "unterminated /* comment",
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next(&mut self) -> Result<Token, WorkloadError> {
        self.skip_trivia()?;
        let (line, col) = (self.line, self.col);
        let at = |tok| Token { tok, line, col };
        let Some(b) = self.peek() else {
            return Ok(at(Tok::Eof));
        };
        match b {
            b'{' => {
                self.bump();
                Ok(at(Tok::LBrace))
            }
            b'}' => {
                self.bump();
                Ok(at(Tok::RBrace))
            }
            b'[' => {
                self.bump();
                Ok(at(Tok::LBrack))
            }
            b']' => {
                self.bump();
                Ok(at(Tok::RBrack))
            }
            b';' => {
                self.bump();
                Ok(at(Tok::Semi))
            }
            b',' => {
                self.bump();
                Ok(at(Tok::Comma))
            }
            b'=' => {
                self.bump();
                Ok(at(Tok::Eq))
            }
            b'-' => {
                self.bump();
                match self.peek() {
                    Some(b'>') => {
                        self.bump();
                        Ok(at(Tok::Arrow))
                    }
                    Some(b'-') => Err(WorkloadError::parse(
                        line,
                        col,
                        "undirected edge `--` (only directed graphs are supported)",
                    )),
                    Some(c) if c.is_ascii_digit() || c == b'.' => {
                        let mut s = String::from("-");
                        s.push_str(&self.ident_tail());
                        Ok(at(Tok::Id(s)))
                    }
                    _ => Err(WorkloadError::parse(line, col, "stray `-`")),
                }
            }
            b'"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'"') => break,
                        Some(b'\\') => match self.bump() {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push_str("\\\\"),
                            Some(c) => {
                                // Keep Graphviz escapes (\n, \l, …)
                                // verbatim; they are label markup.
                                s.push('\\');
                                s.push(c as char);
                            }
                            None => {
                                return Err(WorkloadError::parse(
                                    line,
                                    col,
                                    "unterminated quoted string",
                                ))
                            }
                        },
                        Some(c) => s.push(c as char),
                        None => {
                            return Err(WorkloadError::parse(
                                line,
                                col,
                                "unterminated quoted string",
                            ))
                        }
                    }
                }
                Ok(at(Tok::Id(s)))
            }
            c if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' => {
                Ok(at(Tok::Id(self.ident_tail())))
            }
            c => Err(WorkloadError::parse(
                line,
                col,
                format!("unexpected character {:?}", c as char),
            )),
        }
    }

    fn ident_tail(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' {
                s.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        s
    }
}

/// One declared-or-mentioned DOT node, in first-mention order.
struct NodeRec {
    id: String,
    label: Option<String>,
    weight: Option<f64>,
    line: usize,
    col: usize,
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    lookahead: Option<Token>,
    nodes: Vec<NodeRec>,
    index: HashMap<String, usize>,
    edges: Vec<(usize, usize)>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Parser<'a> {
        Parser {
            lexer: Lexer::new(src),
            lookahead: None,
            nodes: Vec::new(),
            index: HashMap::new(),
            edges: Vec::new(),
        }
    }

    fn peek(&mut self) -> Result<&Token, WorkloadError> {
        if self.lookahead.is_none() {
            self.lookahead = Some(self.lexer.next()?);
        }
        Ok(self.lookahead.as_ref().unwrap())
    }

    fn advance(&mut self) -> Result<Token, WorkloadError> {
        self.peek()?;
        Ok(self.lookahead.take().unwrap())
    }

    fn expect_id(&mut self, what: &str) -> Result<(String, usize, usize), WorkloadError> {
        let t = self.advance()?;
        match t.tok {
            Tok::Id(s) => Ok((s, t.line, t.col)),
            other => Err(WorkloadError::parse(
                t.line,
                t.col,
                format!("expected {what}, found {other:?}"),
            )),
        }
    }

    fn node_index(&mut self, id: &str, line: usize, col: usize) -> usize {
        if let Some(&i) = self.index.get(id) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(NodeRec {
            id: id.to_string(),
            label: None,
            weight: None,
            line,
            col,
        });
        self.index.insert(id.to_string(), i);
        i
    }

    fn parse(mut self) -> Result<IngestedTrace, WorkloadError> {
        // strict? digraph name? { … }
        let mut t = self.advance()?;
        if matches!(&t.tok, Tok::Id(s) if s.eq_ignore_ascii_case("strict")) {
            t = self.advance()?;
        }
        match &t.tok {
            Tok::Id(s) if s.eq_ignore_ascii_case("digraph") => {}
            Tok::Id(s) if s.eq_ignore_ascii_case("graph") => {
                return Err(WorkloadError::parse(
                    t.line,
                    t.col,
                    "undirected `graph` is not supported; expected `digraph`",
                ))
            }
            other => {
                return Err(WorkloadError::parse(
                    t.line,
                    t.col,
                    format!("expected `digraph`, found {other:?}"),
                ))
            }
        }
        let name = match &self.peek()?.tok {
            Tok::Id(_) => {
                let (s, _, _) = self.expect_id("graph name")?;
                s
            }
            _ => "trace".to_string(),
        };
        let open = self.advance()?;
        if open.tok != Tok::LBrace {
            return Err(WorkloadError::parse(
                open.line,
                open.col,
                "expected `{` after the graph name",
            ));
        }
        loop {
            let t = self.advance()?;
            match t.tok {
                Tok::RBrace => break,
                Tok::Semi => continue,
                Tok::Eof => {
                    return Err(WorkloadError::parse(
                        t.line,
                        t.col,
                        "unexpected end of input: missing `}`",
                    ))
                }
                Tok::Id(id) => self.statement(id, t.line, t.col)?,
                other => {
                    return Err(WorkloadError::parse(
                        t.line,
                        t.col,
                        format!("expected a node, edge, or attribute statement, found {other:?}"),
                    ))
                }
            }
        }
        let end = self.advance()?;
        if end.tok != Tok::Eof {
            return Err(WorkloadError::parse(
                end.line,
                end.col,
                "trailing input after the closing `}`",
            ));
        }
        self.build(name)
    }

    /// One statement whose leading identifier has been consumed.
    fn statement(&mut self, id: String, line: usize, col: usize) -> Result<(), WorkloadError> {
        if id.eq_ignore_ascii_case("subgraph") {
            return Err(WorkloadError::parse(
                line,
                col,
                "subgraphs are not supported",
            ));
        }
        // Default-attribute statements `node [...]` / `edge [...]` /
        // `graph [...]`: accepted and ignored.
        let is_default_kw = ["node", "edge", "graph"]
            .iter()
            .any(|k| id.eq_ignore_ascii_case(k));
        if is_default_kw && self.peek()?.tok == Tok::LBrack {
            self.attr_lists()?;
            return Ok(());
        }
        match self.peek()?.tok {
            // `key = value` graph attribute (rankdir, ranksep, …).
            Tok::Eq => {
                self.advance()?;
                self.expect_id("an attribute value")?;
            }
            // Edge chain `a -> b -> c [attrs]`.
            Tok::Arrow => {
                let mut prev = self.node_index(&id, line, col);
                while self.peek()?.tok == Tok::Arrow {
                    self.advance()?;
                    let (to, tl, tc) = self.expect_id("a node id after `->`")?;
                    if to.eq_ignore_ascii_case("subgraph") || self.peek()?.tok == Tok::LBrace {
                        return Err(WorkloadError::parse(tl, tc, "subgraphs are not supported"));
                    }
                    let next = self.node_index(&to, tl, tc);
                    self.edges.push((prev, next));
                    prev = next;
                }
                self.attr_lists()?; // edge attributes: ignored
            }
            // Node statement with or without attributes.
            _ => {
                let idx = self.node_index(&id, line, col);
                let attrs = self.attr_lists()?;
                for (key, value, al, ac) in attrs {
                    if key.eq_ignore_ascii_case("label") {
                        self.nodes[idx].label = Some(value);
                    } else if key.eq_ignore_ascii_case("weight") {
                        let w: f64 = value.parse().map_err(|_| {
                            WorkloadError::parse_at(
                                al,
                                ac,
                                format!("node {:?}", self.nodes[idx].id),
                                format!("weight {value:?} is not a number"),
                            )
                        })?;
                        if let Some(old) = self.nodes[idx].weight {
                            if old != w {
                                return Err(WorkloadError::parse_at(
                                    al,
                                    ac,
                                    format!("node {:?}", self.nodes[idx].id),
                                    format!("conflicting weights {old} and {w}"),
                                ));
                            }
                        }
                        self.nodes[idx].weight = Some(w);
                    }
                }
            }
        }
        Ok(())
    }

    /// Zero or more `[ key=value, … ]` lists; returns the (key, value,
    /// line, col) pairs in order.
    #[allow(clippy::type_complexity)]
    fn attr_lists(&mut self) -> Result<Vec<(String, String, usize, usize)>, WorkloadError> {
        let mut out = Vec::new();
        while self.peek()?.tok == Tok::LBrack {
            self.advance()?;
            loop {
                let t = self.advance()?;
                match t.tok {
                    Tok::RBrack => break,
                    Tok::Comma | Tok::Semi => continue,
                    Tok::Id(key) => {
                        let eq = self.advance()?;
                        if eq.tok != Tok::Eq {
                            return Err(WorkloadError::parse(
                                eq.line,
                                eq.col,
                                format!("expected `=` after attribute {key:?}"),
                            ));
                        }
                        let (value, vl, vc) = self.expect_id("an attribute value")?;
                        out.push((key, value, vl, vc));
                    }
                    other => {
                        return Err(WorkloadError::parse(
                            t.line,
                            t.col,
                            format!("expected an attribute or `]`, found {other:?}"),
                        ))
                    }
                }
            }
        }
        Ok(out)
    }

    fn build(self, name: String) -> Result<IngestedTrace, WorkloadError> {
        let mut dag = Dag::new();
        for rec in &self.nodes {
            let weight = match rec.weight {
                Some(w) => w,
                None => rec.label.as_deref().and_then(label_weight).unwrap_or(1.0),
            };
            if !weight.is_finite() || weight < 0.0 {
                return Err(WorkloadError::parse_at(
                    rec.line,
                    rec.col,
                    format!("node {:?}", rec.id),
                    format!("weight {weight} must be finite and non-negative"),
                ));
            }
            let display = rec
                .label
                .as_deref()
                .map(label_name)
                .filter(|s| !s.is_empty())
                .unwrap_or_else(|| rec.id.clone());
            dag.add_named_node(weight, Some(display));
        }
        let ids: Vec<_> = dag.nodes().collect();
        for &(a, b) in &self.edges {
            dag.add_edge_dedup(ids[a], ids[b]);
        }
        validate_acyclic(&dag)?;
        Ok(IngestedTrace {
            dag,
            name,
            format: TraceFormat::Dot,
            source: None,
        })
    }
}

/// First line of a Graphviz label (`\n` markup splits lines).
fn label_name(label: &str) -> String {
    label.split("\\n").next().unwrap_or(label).to_string()
}

/// Weight fallback: a label's *last* line, if it parses as a number
/// (the `{:.4}` rendering [`stochdag_dag::dot_string`] emits).
fn label_weight(label: &str) -> Option<f64> {
    let mut parts = label.split("\\n");
    let _first = parts.next()?;
    parts.last()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochdag_dag::dot_string;

    #[test]
    fn parses_a_minimal_digraph() {
        let t = parse_dot("digraph g { a [weight=2.5]; b; a -> b; }").unwrap();
        assert_eq!(t.name, "g");
        assert_eq!(t.dag.node_count(), 2);
        assert_eq!(t.dag.edge_count(), 1);
        let ids: Vec<_> = t.dag.nodes().collect();
        assert_eq!(t.dag.weight(ids[0]), 2.5);
        assert_eq!(t.dag.weight(ids[1]), 1.0);
        assert_eq!(t.dag.display_name(ids[0]), "a");
    }

    #[test]
    fn round_trips_an_export() {
        let mut g = Dag::new();
        let a = g.add_named_node(0.1 + 0.2, Some("POTRF_0"));
        let b = g.add_named_node(2.0, Some("TRSM_1_0"));
        let c = g.add_named_node(1.0, Some("SYRK_1"));
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, c);
        let dot = dot_string(&g, "chol", true);
        let t = parse_dot(&dot).unwrap();
        assert_eq!(
            stochdag_dag::structural_hash(&t.dag),
            stochdag_dag::structural_hash(&g)
        );
        let (orig, back): (Vec<_>, Vec<_>) = (g.nodes().collect(), t.dag.nodes().collect());
        for (o, r) in orig.iter().zip(&back) {
            assert_eq!(g.weight(*o).to_bits(), t.dag.weight(*r).to_bits());
            assert_eq!(g.display_name(*o), t.dag.display_name(*r));
        }
    }

    #[test]
    fn label_second_line_is_the_weight_fallback() {
        let t = parse_dot("digraph g { n0 [label=\"task\\n1.2500\"]; }").unwrap();
        let v = t.dag.nodes().next().unwrap();
        assert_eq!(t.dag.weight(v), 1.25);
        assert_eq!(t.dag.display_name(v), "task");
    }

    #[test]
    fn weight_attribute_beats_the_label() {
        let t =
            parse_dot("digraph g { n0 [label=\"task\\n1.2500\", weight=1.25000001]; }").unwrap();
        let v = t.dag.nodes().next().unwrap();
        assert_eq!(t.dag.weight(v), 1.25000001);
    }

    #[test]
    fn edge_chains_and_auto_declared_nodes() {
        let t = parse_dot("digraph { a -> b -> c; b -> d [style=dotted]; }").unwrap();
        assert_eq!(t.name, "trace");
        assert_eq!(t.dag.node_count(), 4);
        assert_eq!(t.dag.edge_count(), 3);
    }

    #[test]
    fn comments_defaults_and_graph_attrs_are_ignored() {
        let src = "// header\ndigraph g {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n  \
                   /* block */ # trailing\n  a -> b;\n}\n";
        let t = parse_dot(src).unwrap();
        assert_eq!(t.dag.node_count(), 2);
    }

    #[test]
    fn cycle_is_a_graph_error() {
        let err = parse_dot("digraph g { a -> b; b -> a; }").unwrap_err();
        assert!(matches!(err, WorkloadError::Graph(_)), "{err}");
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn bad_weight_names_the_node_and_location() {
        let err = parse_dot("digraph g {\n  n3 [weight=heavy];\n}").unwrap_err();
        match &err {
            WorkloadError::Parse {
                line,
                column,
                entity,
                ..
            } => {
                assert_eq!(*line, 2);
                assert!(*column > 1);
                assert_eq!(entity.as_deref(), Some("node \"n3\""));
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(err.to_string().contains("n3"), "{err}");
    }

    #[test]
    fn negative_weight_is_rejected_with_location() {
        let err = parse_dot("digraph g { n0 [weight=-1.5]; }").unwrap_err();
        assert!(err.to_string().contains("non-negative"), "{err}");
        assert!(err.to_string().contains("n0"), "{err}");
    }

    #[test]
    fn undirected_graphs_are_rejected() {
        let err = parse_dot("graph g { a -- b; }").unwrap_err();
        assert!(err.to_string().contains("digraph"), "{err}");
        let err = parse_dot("digraph g { a -- b; }").unwrap_err();
        assert!(err.to_string().contains("--"), "{err}");
    }

    #[test]
    fn missing_brace_is_located() {
        let err = parse_dot("digraph g {\n a -> b;\n").unwrap_err();
        assert!(err.to_string().contains("missing `}`"), "{err}");
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn conflicting_weights_are_rejected() {
        let err = parse_dot("digraph g { a [weight=1]; a [weight=2]; }").unwrap_err();
        assert!(err.to_string().contains("conflicting"), "{err}");
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let t = parse_dot("digraph g { a -> b; a -> b; }").unwrap();
        assert_eq!(t.dag.edge_count(), 1);
    }

    #[test]
    fn quoted_ids_with_spaces() {
        let t = parse_dot("digraph \"my trace\" { \"stage 1\" -> \"stage 2\"; }").unwrap();
        assert_eq!(t.name, "my trace");
        let v = t.dag.nodes().next().unwrap();
        assert_eq!(t.dag.display_name(v), "stage 1");
    }
}
