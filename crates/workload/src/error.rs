//! Structured errors for trace ingestion and scenario specs.

use std::fmt;
use stochdag_dag::DagError;

/// What went wrong while ingesting a trace or resolving a scenario.
///
/// Parse problems carry the 1-indexed line/column of the offending
/// input plus, when known, the node or edge id it concerns — the CLI
/// and spec loader surface these verbatim so a user can fix the file
/// without bisecting it.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadError {
    /// Malformed trace text at a specific location.
    Parse {
        /// 1-indexed line of the offending input.
        line: usize,
        /// 1-indexed column of the offending input.
        column: usize,
        /// Offending node or edge id, when the problem concerns one.
        entity: Option<String>,
        /// Human-readable description of the problem.
        message: String,
    },
    /// The trace parsed but does not describe a valid DAG (cycle,
    /// duplicate task, bad weight caught at the graph layer).
    Graph(DagError),
    /// Reading the trace file failed.
    Io {
        /// Path that failed to read.
        path: String,
        /// Underlying I/O error description.
        message: String,
    },
    /// A scenario spec is malformed or cannot be resolved against the
    /// graph.
    Scenario(String),
}

impl WorkloadError {
    /// Shorthand for a located parse error without an entity.
    pub(crate) fn parse(line: usize, column: usize, message: impl Into<String>) -> WorkloadError {
        WorkloadError::Parse {
            line,
            column,
            entity: None,
            message: message.into(),
        }
    }

    /// Shorthand for a located parse error about a specific node/edge.
    pub(crate) fn parse_at(
        line: usize,
        column: usize,
        entity: impl Into<String>,
        message: impl Into<String>,
    ) -> WorkloadError {
        WorkloadError::Parse {
            line,
            column,
            entity: Some(entity.into()),
            message: message.into(),
        }
    }
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Parse {
                line,
                column,
                entity,
                message,
            } => match entity {
                Some(e) => write!(f, "line {line}, column {column} ({e}): {message}"),
                None => write!(f, "line {line}, column {column}: {message}"),
            },
            WorkloadError::Graph(e) => write!(f, "invalid task graph: {e}"),
            WorkloadError::Io { path, message } => write!(f, "reading {path}: {message}"),
            WorkloadError::Scenario(msg) => write!(f, "invalid scenario: {msg}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl From<DagError> for WorkloadError {
    fn from(e: DagError) -> WorkloadError {
        WorkloadError::Graph(e)
    }
}
