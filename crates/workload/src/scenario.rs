//! User-facing correlated-failure scenario specs.
//!
//! A [`ScenarioSpec`] is the declarative, cache-stable form that sweep
//! specs carry (`scenarios = ["rack:4:0.05:2"]`); resolving it against
//! a concrete DAG produces the per-node
//! [`stochdag_core::ScenarioModel`] the estimators consume. The
//! canonical string id round-trips through `FromStr`/`Display` and is
//! what cache keys, sweep row labels, and telemetry use, so two spec
//! files writing the same scenario always share cells.
//!
//! Two correlated families (plus the explicit i.i.d. baseline):
//!
//! - `rack:G:q:m` — tasks are striped into `G` racks by node id
//!   (`node i → rack i mod G`); each rack is independently *hot* with
//!   probability `q` per Monte-Carlo trial, and hot members' failure
//!   hazard is multiplied by `m`.
//! - `bursty:W:frac:m:seed` — the topological order is cut into `W`
//!   equal windows; a seeded, deterministic choice marks
//!   `round(frac·W)` of them as bursts, and every task scheduled
//!   inside a burst window carries hazard multiplier `m`.
//!
//! Which estimators support which scenarios is decided by the engine
//! at spec-validation time (Monte Carlo and the first-order pair);
//! everything else receives a structured
//! [`stochdag_core::UnsupportedScenario`] error instead of a silently
//! wrong answer.

use crate::error::WorkloadError;
use std::fmt;
use std::str::FromStr;
use stochdag_core::ScenarioModel;
use stochdag_dag::{stable_mix64, topological_order, Dag};

/// Declarative correlated-failure scenario, carried by sweep specs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScenarioSpec {
    /// The i.i.d. baseline — identical to not specifying a scenario.
    Iid,
    /// Rack-correlated: `groups` racks striped over node ids, each hot
    /// with probability `prob`, hot hazard multiplier `hazard`.
    Rack {
        /// Number of racks (≥ 1).
        groups: usize,
        /// Per-trial probability a rack is hot, in `[0, 1]`.
        prob: f64,
        /// Hazard multiplier for hot-rack members (≥ 1, finite).
        hazard: f64,
    },
    /// Bursty/temporal: the topo order is cut into `windows` equal
    /// windows and a seeded choice of `round(frac·windows)` of them
    /// carries hazard multiplier `hazard`.
    Bursty {
        /// Number of windows over the topological order (≥ 1).
        windows: usize,
        /// Fraction of windows that burst, in `[0, 1]`.
        frac: f64,
        /// Hazard multiplier inside burst windows (≥ 1, finite).
        hazard: f64,
        /// Seed for the deterministic window choice.
        seed: u64,
    },
}

impl ScenarioSpec {
    /// Validate ranges; the canonical id of a valid spec is stable.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let err = |msg: String| Err(WorkloadError::Scenario(msg));
        match *self {
            ScenarioSpec::Iid => Ok(()),
            ScenarioSpec::Rack {
                groups,
                prob,
                hazard,
            } => {
                if groups == 0 {
                    return err("rack scenario needs at least one group".into());
                }
                if !(0.0..=1.0).contains(&prob) {
                    return err(format!("rack probability {prob} must be in [0, 1]"));
                }
                if !hazard.is_finite() || hazard < 1.0 {
                    return err(format!("rack hazard {hazard} must be finite and >= 1"));
                }
                Ok(())
            }
            ScenarioSpec::Bursty {
                windows,
                frac,
                hazard,
                ..
            } => {
                if windows == 0 {
                    return err("bursty scenario needs at least one window".into());
                }
                if !(0.0..=1.0).contains(&frac) {
                    return err(format!("bursty fraction {frac} must be in [0, 1]"));
                }
                if !hazard.is_finite() || hazard < 1.0 {
                    return err(format!("bursty hazard {hazard} must be finite and >= 1"));
                }
                Ok(())
            }
        }
    }

    /// Whether this is the i.i.d. baseline.
    pub fn is_iid(&self) -> bool {
        matches!(self, ScenarioSpec::Iid)
    }

    /// Resolve against a concrete graph into the per-node
    /// [`ScenarioModel`] the estimators consume. Deterministic: the
    /// same spec and graph always produce the same model.
    pub fn resolve(&self, dag: &Dag) -> Result<ScenarioModel, WorkloadError> {
        self.validate()?;
        let n = dag.node_count();
        match *self {
            ScenarioSpec::Iid => Ok(ScenarioModel::Iid),
            ScenarioSpec::Rack {
                groups,
                prob,
                hazard,
            } => Ok(ScenarioModel::GroupHazard {
                group_of: (0..n).map(|i| (i % groups) as u32).collect(),
                n_groups: groups.min(n.max(1)),
                group_prob: prob,
                hazard,
            }),
            ScenarioSpec::Bursty {
                windows,
                frac,
                hazard,
                seed,
            } => {
                let order = topological_order(dag).map_err(WorkloadError::Graph)?;
                // Seeded, deterministic burst-window choice: rank the
                // windows by a mixed hash of (seed, window) and mark
                // the top `round(frac·W)` as bursts.
                let k = ((frac * windows as f64).round() as usize).min(windows);
                let mut ranked: Vec<usize> = (0..windows).collect();
                ranked.sort_by_key(|&w| stable_mix64(seed ^ stable_mix64(w as u64 + 1)));
                let mut burst = vec![false; windows];
                for &w in ranked.iter().take(k) {
                    burst[w] = true;
                }
                let mut hazards = vec![1.0f64; n];
                for (pos, node) in order.iter().enumerate() {
                    // Equal-width windows over topo positions.
                    let w = (pos * windows) / n.max(1);
                    if burst[w.min(windows - 1)] {
                        hazards[node.index()] = hazard;
                    }
                }
                Ok(ScenarioModel::NodeHazard { hazard: hazards })
            }
        }
    }
}

/// Canonical id: `iid`, `rack:G:q:m`, `bursty:W:frac:m:seed`. Floats
/// render via Rust's shortest-round-trip `Display`, so parsing a
/// canonical id re-renders it byte-identically.
impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ScenarioSpec::Iid => write!(f, "iid"),
            ScenarioSpec::Rack {
                groups,
                prob,
                hazard,
            } => write!(f, "rack:{groups}:{prob}:{hazard}"),
            ScenarioSpec::Bursty {
                windows,
                frac,
                hazard,
                seed,
            } => write!(f, "bursty:{windows}:{frac}:{hazard}:{seed}"),
        }
    }
}

impl FromStr for ScenarioSpec {
    type Err = WorkloadError;

    fn from_str(s: &str) -> Result<ScenarioSpec, WorkloadError> {
        let err = |msg: String| Err(WorkloadError::Scenario(msg));
        let mut parts = s.split(':');
        let family = parts.next().unwrap_or("");
        let rest: Vec<&str> = parts.collect();
        let spec = match family {
            "iid" => {
                if !rest.is_empty() {
                    return err(format!("iid takes no arguments, got {s:?}"));
                }
                ScenarioSpec::Iid
            }
            "rack" => {
                if rest.len() != 3 {
                    return err(format!(
                        "rack scenario must be rack:GROUPS:PROB:HAZARD, got {s:?}"
                    ));
                }
                ScenarioSpec::Rack {
                    groups: parse_field(rest[0], s, "GROUPS")?,
                    prob: parse_field(rest[1], s, "PROB")?,
                    hazard: parse_field(rest[2], s, "HAZARD")?,
                }
            }
            "bursty" => {
                if rest.len() != 4 {
                    return err(format!(
                        "bursty scenario must be bursty:WINDOWS:FRAC:HAZARD:SEED, got {s:?}"
                    ));
                }
                ScenarioSpec::Bursty {
                    windows: parse_field(rest[0], s, "WINDOWS")?,
                    frac: parse_field(rest[1], s, "FRAC")?,
                    hazard: parse_field(rest[2], s, "HAZARD")?,
                    seed: parse_field(rest[3], s, "SEED")?,
                }
            }
            other => {
                return err(format!(
                    "unknown scenario family {other:?} (expected iid, rack, or bursty) in {s:?}"
                ))
            }
        };
        spec.validate()?;
        Ok(spec)
    }
}

fn parse_field<T: FromStr>(raw: &str, spec: &str, what: &str) -> Result<T, WorkloadError> {
    raw.parse().map_err(|_| {
        WorkloadError::Scenario(format!("bad {what} field {raw:?} in scenario {spec:?}"))
    })
}

impl serde::Serialize for ScenarioSpec {
    fn serialize(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl serde::Deserialize for ScenarioSpec {
    fn deserialize(v: &serde::Value) -> Result<ScenarioSpec, serde::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::new(format!("expected a scenario string, got {v:?}")))?;
        s.parse()
            .map_err(|e: WorkloadError| serde::Error::new(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    fn chain(n: usize) -> Dag {
        let mut g = Dag::new();
        let mut prev = None;
        for _ in 0..n {
            let v = g.add_node(1.0);
            if let Some(p) = prev {
                g.add_edge(p, v);
            }
            prev = Some(v);
        }
        g
    }

    #[test]
    fn canonical_ids_round_trip() {
        for id in [
            "iid",
            "rack:4:0.05:2",
            "bursty:3:0.25:2:7",
            "rack:8:0.5:1.5",
        ] {
            let spec: ScenarioSpec = id.parse().unwrap();
            assert_eq!(spec.to_string(), id, "canonical id must be a fixed point");
            let spec2: ScenarioSpec = spec.to_string().parse().unwrap();
            assert_eq!(spec, spec2);
        }
    }

    #[test]
    fn serde_round_trips_as_a_string() {
        let spec: ScenarioSpec = "rack:4:0.05:2".parse().unwrap();
        let v = spec.serialize();
        assert_eq!(v.as_str(), Some("rack:4:0.05:2"));
        assert_eq!(ScenarioSpec::deserialize(&v).unwrap(), spec);
    }

    #[test]
    fn bad_specs_are_actionable() {
        for (s, needle) in [
            ("rack:0:0.1:2", "at least one group"),
            ("rack:4:1.5:2", "[0, 1]"),
            ("rack:4:0.1:0.5", ">= 1"),
            ("rack:4:0.1", "rack:GROUPS:PROB:HAZARD"),
            ("bursty:0:0.5:2:1", "at least one window"),
            ("bursty:2:0.5:2", "bursty:WINDOWS:FRAC:HAZARD:SEED"),
            ("pancake:1", "unknown scenario family"),
            ("rack:four:0.1:2", "GROUPS"),
            ("iid:1", "no arguments"),
        ] {
            let err = s.parse::<ScenarioSpec>().unwrap_err();
            assert!(err.to_string().contains(needle), "{s}: {err}");
        }
    }

    #[test]
    fn rack_resolution_stripes_groups_over_node_ids() {
        let g = chain(5);
        let spec: ScenarioSpec = "rack:2:0.1:3".parse().unwrap();
        match spec.resolve(&g).unwrap() {
            ScenarioModel::GroupHazard {
                group_of,
                n_groups,
                group_prob,
                hazard,
            } => {
                assert_eq!(group_of, vec![0, 1, 0, 1, 0]);
                assert_eq!(n_groups, 2);
                assert_eq!(group_prob, 0.1);
                assert_eq!(hazard, 3.0);
            }
            other => panic!("expected GroupHazard, got {other:?}"),
        }
    }

    #[test]
    fn bursty_resolution_is_deterministic_and_covers_the_fraction() {
        let g = chain(12);
        let spec: ScenarioSpec = "bursty:4:0.5:2:7".parse().unwrap();
        let a = spec.resolve(&g).unwrap();
        let b = spec.resolve(&g).unwrap();
        assert_eq!(a, b, "resolution must be deterministic");
        match a {
            ScenarioModel::NodeHazard { hazard } => {
                let hot = hazard.iter().filter(|&&h| h > 1.0).count();
                // 2 of 4 windows over 12 tasks ⇒ 6 hot tasks.
                assert_eq!(hot, 6, "{hazard:?}");
            }
            other => panic!("expected NodeHazard, got {other:?}"),
        }
    }

    #[test]
    fn bursty_seeds_pick_different_windows() {
        let g = chain(40);
        let a = ScenarioSpec::Bursty {
            windows: 8,
            frac: 0.25,
            hazard: 2.0,
            seed: 1,
        }
        .resolve(&g)
        .unwrap();
        let b = ScenarioSpec::Bursty {
            windows: 8,
            frac: 0.25,
            hazard: 2.0,
            seed: 2,
        }
        .resolve(&g)
        .unwrap();
        assert_ne!(
            a, b,
            "different seeds should usually pick different windows"
        );
    }

    #[test]
    fn iid_resolves_to_iid() {
        let g = chain(3);
        assert_eq!(ScenarioSpec::Iid.resolve(&g).unwrap(), ScenarioModel::Iid);
    }

    #[test]
    fn resolved_models_validate_against_the_graph() {
        let g = chain(6);
        for id in ["rack:3:0.2:2", "bursty:2:0.5:4:11"] {
            let spec: ScenarioSpec = id.parse().unwrap();
            let model = spec.resolve(&g).unwrap();
            model.validate(g.node_count()).unwrap();
        }
    }
}
