//! # stochdag-workload — real traces and correlated failure models
//!
//! The paper evaluates its estimators on generated LU/QR/Cholesky
//! grids under i.i.d. per-task failures. This crate opens the two axes
//! a production campaign system needs beyond that:
//!
//! 1. **Trace ingestion** — parsers for Graphviz DOT
//!    ([`parse_dot`]/[`load_dot`], the import dual of
//!    [`stochdag_dag::dot_string`]) and WfCommons-style workflow JSON
//!    ([`parse_trace_json`]/[`load_trace_json`]), each producing a
//!    validated [`stochdag_dag::Dag`] plus provenance metadata
//!    ([`IngestedTrace`]). Errors are structured
//!    ([`WorkloadError`]): located (line/column) and naming the
//!    offending node or edge id. The engine keys caches on the parsed
//!    graph's WL structural hash — file content, not file path — so a
//!    moved or renamed trace still hits.
//!
//! 2. **Correlated failure scenarios** — [`ScenarioSpec`], the
//!    declarative `rack:G:q:m` / `bursty:W:frac:m:seed` axis sweep
//!    specs carry, resolved per graph into the
//!    [`stochdag_core::ScenarioModel`] the estimator layer consumes.
//!    Monte Carlo samples the correlated mixture directly; the
//!    first-order pair evaluates the marginal-hazard expansion (exact
//!    to first order in λ); every other family reports a structured
//!    [`stochdag_core::UnsupportedScenario`] error instead of a
//!    silently wrong answer.
//!
//! ## Quick example
//!
//! ```
//! use stochdag_workload::{parse_dot, ScenarioSpec};
//! use stochdag_core::{Estimator, FailureModel, FirstOrderEstimator};
//! use stochdag_dag::PreparedDag;
//!
//! let trace = parse_dot(
//!     "digraph wf { a [weight=2]; b [weight=3]; a -> b; }",
//! ).unwrap();
//! let scenario: ScenarioSpec = "rack:2:0.1:4".parse().unwrap();
//! let model = scenario.resolve(&trace.dag).unwrap();
//!
//! let prepared = PreparedDag::new(trace.dag);
//! let mut fo = FirstOrderEstimator::fast().prepare(&prepared);
//! let est = fo
//!     .estimate_scenario(&FailureModel::from_pfail(0.01, 2.5), &model)
//!     .unwrap();
//! assert!(est.value >= 5.0);
//! ```

mod dot;
mod error;
mod scenario;
mod trace;

pub use dot::{load_dot, parse_dot};
pub use error::WorkloadError;
pub use scenario::ScenarioSpec;
pub use trace::{load_trace_json, parse_trace_json, IngestedTrace, TraceFormat};
