//! WfCommons-style JSON workflow ingestion.
//!
//! Accepts the common shape of WfCommons / Pegasus workflow dumps:
//!
//! ```json
//! {
//!   "name": "epigenomics-small",
//!   "workflow": {
//!     "tasks": [
//!       {"name": "fastqSplit_1", "runtime": 12.5, "children": ["filterContams_1"]},
//!       {"name": "filterContams_1", "runtimeInSeconds": 3.25, "parents": ["fastqSplit_1"]}
//!     ]
//!   }
//! }
//! ```
//!
//! - `workflow.tasks` or a top-level `tasks` array is required;
//! - each task needs a unique `name`/`id` and a non-negative finite
//!   `runtime` (alias `runtimeInSeconds`), which becomes the task
//!   weight;
//! - dependencies come from `parents` and/or `children` (both
//!   accepted, duplicates deduplicated), referencing task names.
//!
//! JSON syntax errors are located (line/column, recovered from the
//! parser's byte offset); semantic errors name the offending task or
//! dependency id. The resulting DAG is cycle-validated like every
//! other source.

use crate::error::WorkloadError;
use std::collections::HashMap;
use stochdag_dag::{validate_acyclic, Dag};

/// Which on-disk format a trace was ingested from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// Graphviz DOT (`.dot`), via [`crate::parse_dot`].
    Dot,
    /// WfCommons-style workflow JSON (`.json`), via
    /// [`crate::parse_trace_json`].
    WfJson,
}

impl TraceFormat {
    /// Stable lowercase identifier (`"dot"` / `"trace-json"`), used in
    /// provenance metadata and instance ids.
    pub fn id(&self) -> &'static str {
        match self {
            TraceFormat::Dot => "dot",
            TraceFormat::WfJson => "trace-json",
        }
    }
}

/// An ingested workflow trace: the validated DAG plus provenance.
///
/// The graph's WL structural hash — not `source` — is what the engine
/// keys caches on, so a moved or renamed trace file still hits.
#[derive(Clone, Debug)]
pub struct IngestedTrace {
    /// The validated task graph (weights = runtimes).
    pub dag: Dag,
    /// Workflow name from the trace (graph name / `name` field),
    /// `"trace"` when the file does not carry one.
    pub name: String,
    /// Format the trace was parsed from.
    pub format: TraceFormat,
    /// Path the trace was loaded from, when it came from a file.
    pub source: Option<String>,
}

/// Parse WfCommons-style workflow JSON into a validated DAG.
pub fn parse_trace_json(src: &str) -> Result<IngestedTrace, WorkloadError> {
    let root = serde::json::parse(src).map_err(|e| locate_json_error(src, &e))?;
    let tasks = root
        .get("workflow")
        .and_then(|w| w.get("tasks"))
        .or_else(|| root.get("tasks"))
        .ok_or_else(|| {
            WorkloadError::parse(1, 1, "no `workflow.tasks` or `tasks` array in the trace")
        })?;
    let serde::Value::Arr(tasks) = tasks else {
        return Err(WorkloadError::parse(1, 1, "`tasks` must be an array"));
    };
    if tasks.is_empty() {
        return Err(WorkloadError::parse(1, 1, "the trace has no tasks"));
    }
    let name = root
        .get("name")
        .and_then(|v| v.as_str())
        .unwrap_or("trace")
        .to_string();

    struct TaskRec {
        name: String,
        runtime: f64,
        parents: Vec<String>,
        children: Vec<String>,
    }
    let mut recs: Vec<TaskRec> = Vec::with_capacity(tasks.len());
    let mut index: HashMap<String, usize> = HashMap::new();
    for (i, t) in tasks.iter().enumerate() {
        let tname = t
            .get("name")
            .or_else(|| t.get("id"))
            .and_then(|v| v.as_str())
            .ok_or_else(|| {
                WorkloadError::parse_at(
                    1,
                    1,
                    format!("task #{i}"),
                    "missing a string `name` (or `id`) field",
                )
            })?
            .to_string();
        if index.contains_key(&tname) {
            return Err(WorkloadError::parse_at(
                1,
                1,
                format!("task {tname:?}"),
                "duplicate task name",
            ));
        }
        let runtime = t
            .get("runtime")
            .or_else(|| t.get("runtimeInSeconds"))
            .and_then(|v| v.as_f64())
            .ok_or_else(|| {
                WorkloadError::parse_at(
                    1,
                    1,
                    format!("task {tname:?}"),
                    "missing a numeric `runtime` (or `runtimeInSeconds`) field",
                )
            })?;
        if !runtime.is_finite() || runtime < 0.0 {
            return Err(WorkloadError::parse_at(
                1,
                1,
                format!("task {tname:?}"),
                format!("runtime {runtime} must be finite and non-negative"),
            ));
        }
        let list_of = |key: &str| -> Result<Vec<String>, WorkloadError> {
            match t.get(key) {
                None | Some(serde::Value::Null) => Ok(Vec::new()),
                Some(serde::Value::Arr(items)) => items
                    .iter()
                    .map(|v| {
                        v.as_str().map(str::to_string).ok_or_else(|| {
                            WorkloadError::parse_at(
                                1,
                                1,
                                format!("task {tname:?}"),
                                format!("`{key}` entries must be task-name strings"),
                            )
                        })
                    })
                    .collect(),
                Some(_) => Err(WorkloadError::parse_at(
                    1,
                    1,
                    format!("task {tname:?}"),
                    format!("`{key}` must be an array of task names"),
                )),
            }
        };
        let rec = TaskRec {
            parents: list_of("parents")?,
            children: list_of("children")?,
            name: tname,
            runtime,
        };
        index.insert(rec.name.clone(), recs.len());
        recs.push(rec);
    }

    let mut dag = Dag::new();
    for rec in &recs {
        dag.add_named_node(rec.runtime, Some(rec.name.clone()));
    }
    let ids: Vec<_> = dag.nodes().collect();
    let resolve = |owner: &str, referenced: &str| -> Result<usize, WorkloadError> {
        index.get(referenced).copied().ok_or_else(|| {
            WorkloadError::parse_at(
                1,
                1,
                format!("task {owner:?}"),
                format!("references unknown task {referenced:?}"),
            )
        })
    };
    for (i, rec) in recs.iter().enumerate() {
        for p in &rec.parents {
            let pi = resolve(&rec.name, p)?;
            dag.add_edge_dedup(ids[pi], ids[i]);
        }
        for c in &rec.children {
            let ci = resolve(&rec.name, c)?;
            dag.add_edge_dedup(ids[i], ids[ci]);
        }
    }
    validate_acyclic(&dag)?;
    Ok(IngestedTrace {
        dag,
        name,
        format: TraceFormat::WfJson,
        source: None,
    })
}

/// Read and parse a WfCommons-style JSON trace file.
pub fn load_trace_json(path: &std::path::Path) -> Result<IngestedTrace, WorkloadError> {
    let src = std::fs::read_to_string(path).map_err(|e| WorkloadError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    let mut trace = parse_trace_json(&src)?;
    trace.source = Some(path.display().to_string());
    Ok(trace)
}

/// Turn the JSON parser's `… at byte N` errors into located parse
/// errors by mapping the byte offset back to a line/column.
fn locate_json_error(src: &str, e: &serde::Error) -> WorkloadError {
    let msg = e.to_string();
    let byte = msg
        .rsplit("at byte ")
        .next()
        .and_then(|tail| {
            let digits: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
            digits.parse::<usize>().ok()
        })
        .unwrap_or(0);
    let (mut line, mut col) = (1usize, 1usize);
    for b in src.as_bytes().iter().take(byte) {
        if *b == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    WorkloadError::parse(line, col, format!("invalid JSON: {msg}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "name": "epi",
  "workflow": {
    "tasks": [
      {"name": "split", "runtime": 2.5, "children": ["filter_a", "filter_b"]},
      {"name": "filter_a", "runtime": 1.0},
      {"name": "filter_b", "runtimeInSeconds": 1.5},
      {"name": "merge", "runtime": 0.5, "parents": ["filter_a", "filter_b"]}
    ]
  }
}"#;

    #[test]
    fn parses_the_sample_workflow() {
        let t = parse_trace_json(SAMPLE).unwrap();
        assert_eq!(t.name, "epi");
        assert_eq!(t.format, TraceFormat::WfJson);
        assert_eq!(t.dag.node_count(), 4);
        assert_eq!(t.dag.edge_count(), 4);
        let ids: Vec<_> = t.dag.nodes().collect();
        assert_eq!(t.dag.display_name(ids[0]), "split");
        assert_eq!(t.dag.weight(ids[2]), 1.5);
    }

    #[test]
    fn top_level_tasks_array_is_accepted() {
        let t = parse_trace_json(r#"{"tasks": [{"name": "only", "runtime": 1.0}]}"#).unwrap();
        assert_eq!(t.name, "trace");
        assert_eq!(t.dag.node_count(), 1);
    }

    #[test]
    fn parents_and_children_are_merged_and_deduplicated() {
        let t = parse_trace_json(
            r#"{"tasks": [
                {"name": "a", "runtime": 1.0, "children": ["b"]},
                {"name": "b", "runtime": 1.0, "parents": ["a"]}
            ]}"#,
        )
        .unwrap();
        assert_eq!(t.dag.edge_count(), 1);
    }

    #[test]
    fn unknown_dependency_names_both_tasks() {
        let err = parse_trace_json(
            r#"{"tasks": [{"name": "a", "runtime": 1.0, "children": ["ghost"]}]}"#,
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("\"a\""), "{msg}");
        assert!(msg.contains("\"ghost\""), "{msg}");
    }

    #[test]
    fn missing_runtime_names_the_task() {
        let err = parse_trace_json(r#"{"tasks": [{"name": "lonely"}]}"#).unwrap_err();
        assert!(err.to_string().contains("\"lonely\""), "{err}");
        assert!(err.to_string().contains("runtime"), "{err}");
    }

    #[test]
    fn duplicate_task_name_is_rejected() {
        let err = parse_trace_json(
            r#"{"tasks": [{"name": "x", "runtime": 1.0}, {"name": "x", "runtime": 2.0}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn cyclic_workflow_is_rejected() {
        let err = parse_trace_json(
            r#"{"tasks": [
                {"name": "a", "runtime": 1.0, "children": ["b"]},
                {"name": "b", "runtime": 1.0, "children": ["a"]}
            ]}"#,
        )
        .unwrap_err();
        assert!(matches!(err, WorkloadError::Graph(_)), "{err}");
    }

    #[test]
    fn json_syntax_errors_carry_line_and_column() {
        let err = parse_trace_json("{\n  \"tasks\": [,]\n}").unwrap_err();
        match &err {
            WorkloadError::Parse { line, column, .. } => {
                assert_eq!(*line, 2, "{err}");
                assert!(*column > 1, "{err}");
            }
            other => panic!("expected a located parse error, got {other:?}"),
        }
    }

    #[test]
    fn empty_or_missing_tasks_is_actionable() {
        let err = parse_trace_json(r#"{"workflow": {"tasks": []}}"#).unwrap_err();
        assert!(err.to_string().contains("no tasks"), "{err}");
        let err = parse_trace_json(r#"{"noise": 1}"#).unwrap_err();
        assert!(err.to_string().contains("tasks"), "{err}");
    }
}
