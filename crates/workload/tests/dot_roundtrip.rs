//! DOT round-trip property: exporting any generated DAG with
//! [`stochdag_dag::dot_string`] and re-ingesting it through
//! [`stochdag_workload::parse_dot`] must reproduce the exact weight
//! bits and the WL structural hash — the invariant that makes
//! trace-sourced cache keys content-addressed.

use proptest::prelude::*;
use stochdag_dag::{dot_string, structural_hash, Dag};
use stochdag_taskgraphs::{
    cholesky_dag, erdos_renyi_dag, layered_random_dag, lu_dag, qr_dag, FactorizationClass,
    KernelTimings, LayeredConfig,
};
use stochdag_workload::parse_dot;

fn assert_round_trips(dag: &Dag, name: &str) {
    for show_weights in [true, false] {
        let dot = dot_string(dag, name, show_weights);
        let trace = parse_dot(&dot).unwrap_or_else(|e| panic!("{name}: {e}\n{dot}"));
        assert_eq!(
            structural_hash(&trace.dag),
            structural_hash(dag),
            "{name}: structural hash drifted (show_weights={show_weights})"
        );
        assert_eq!(trace.dag.node_count(), dag.node_count(), "{name}");
        assert_eq!(trace.dag.edge_count(), dag.edge_count(), "{name}");
        let (orig, back): (Vec<_>, Vec<_>) = (dag.nodes().collect(), trace.dag.nodes().collect());
        for (o, r) in orig.iter().zip(&back) {
            assert_eq!(
                dag.weight(*o).to_bits(),
                trace.dag.weight(*r).to_bits(),
                "{name}: weight bits drifted at node {o:?}"
            );
        }
    }
}

#[test]
fn factorization_exports_round_trip() {
    let timings = KernelTimings::paper_default();
    for k in 2..=5 {
        assert_round_trips(&cholesky_dag(k, &timings), &format!("chol_{k}"));
        assert_round_trips(&lu_dag(k, &timings), &format!("lu_{k}"));
        assert_round_trips(&qr_dag(k, &timings), &format!("qr_{k}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn factorization_class_round_trips(
        which in 0usize..3,
        k in 2usize..6,
        unit in 0.01f64..10.0,
    ) {
        let class = [
            FactorizationClass::Cholesky,
            FactorizationClass::Lu,
            FactorizationClass::Qr,
        ][which];
        let dag = class.generate(k, &KernelTimings::flop_proportional(unit));
        assert_round_trips(&dag, class.name());
    }

    #[test]
    fn layered_random_round_trips(seed in 0u64..1_000, layers in 2usize..6, width in 1usize..5) {
        let cfg = LayeredConfig {
            layers,
            width,
            ..LayeredConfig::default()
        };
        assert_round_trips(&layered_random_dag(&cfg, seed), "layered");
    }

    #[test]
    fn erdos_renyi_round_trips(seed in 0u64..1_000, n in 1usize..24, p in 0.0f64..1.0) {
        assert_round_trips(&erdos_renyi_dag(n, p, (0.1, 7.3), seed), "er");
    }
}
