//! # stochdag-taskgraphs — application DAG generators
//!
//! The paper evaluates its estimators on the task graphs of three tiled
//! dense linear-algebra factorizations of a `k × k` tile matrix:
//! Cholesky, LU, and QR (paper Figures 1–3 show the `k = 5` instances).
//! This crate generates those DAGs with the same task-naming scheme
//! (`POTRF_4`, `GEMM_4_2_1`, `TRSML_2_1`, `TSMQR_3_4_2`, …) and the same
//! dependency structure, plus a family of synthetic DAGs (layered
//! random, Erdős–Rényi, fork-join, chains, trees) used by tests and
//! examples.
//!
//! Task weights come from a [`KernelTimings`] table. The paper used BLAS
//! kernel times measured on an Nvidia Tesla M2070 with tile size
//! `b = 960` (unpublished); [`KernelTimings::paper_default`] substitutes
//! flop-proportional times scaled so the mean task weight matches the
//! paper's stated `ā ≈ 0.15 s` (see DESIGN.md §3 for why this preserves
//! the evaluation's behaviour).
//!
//! ```
//! use stochdag_taskgraphs::{cholesky_dag, lu_dag, KernelTimings};
//!
//! let t = KernelTimings::paper_default();
//! let chol = cholesky_dag(5, &t);
//! assert_eq!(chol.node_count(), 35); // matches the paper's Figure 1
//! let lu = lu_dag(12, &t);
//! assert_eq!(lu.node_count(), 650);  // paper: "up to 650 tasks"
//! ```

mod cholesky;
mod counts;
mod kernels;
mod lu;
mod qr;
mod synthetic;

pub use cholesky::cholesky_dag;
pub use counts::{cholesky_task_count, lu_task_count, qr_task_count};
pub use kernels::{Kernel, KernelTimings};
pub use lu::lu_dag;
pub use qr::qr_dag;
pub use synthetic::{
    chain_dag, diamond_mesh_dag, erdos_renyi_dag, fork_join_dag, in_tree_dag, layered_random_dag,
    out_tree_dag, LayeredConfig,
};

use stochdag_dag::Dag;

/// The three factorization families of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FactorizationClass {
    /// Tiled Cholesky factorization (paper Fig. 1).
    Cholesky,
    /// Tiled LU factorization (paper Fig. 2).
    Lu,
    /// Tiled QR factorization (paper Fig. 3).
    Qr,
}

impl FactorizationClass {
    /// All three classes, in the paper's presentation order.
    pub const ALL: [FactorizationClass; 3] = [
        FactorizationClass::Cholesky,
        FactorizationClass::Lu,
        FactorizationClass::Qr,
    ];

    /// Lower-case name as used on the CLI (`cholesky`, `lu`, `qr`).
    pub fn name(self) -> &'static str {
        match self {
            FactorizationClass::Cholesky => "cholesky",
            FactorizationClass::Lu => "lu",
            FactorizationClass::Qr => "qr",
        }
    }

    /// Parse a CLI name (case-insensitive).
    pub fn parse(s: &str) -> Option<FactorizationClass> {
        match s.to_ascii_lowercase().as_str() {
            "cholesky" | "chol" | "potrf" => Some(FactorizationClass::Cholesky),
            "lu" | "getrf" => Some(FactorizationClass::Lu),
            "qr" | "geqrf" => Some(FactorizationClass::Qr),
            _ => None,
        }
    }

    /// Generate the DAG for a `k × k` tile matrix.
    pub fn generate(self, k: usize, timings: &KernelTimings) -> Dag {
        match self {
            FactorizationClass::Cholesky => cholesky_dag(k, timings),
            FactorizationClass::Lu => lu_dag(k, timings),
            FactorizationClass::Qr => qr_dag(k, timings),
        }
    }

    /// Closed-form task count of the generated DAG.
    pub fn task_count(self, k: usize) -> usize {
        match self {
            FactorizationClass::Cholesky => cholesky_task_count(k),
            FactorizationClass::Lu => lu_task_count(k),
            FactorizationClass::Qr => qr_task_count(k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names_round_trip() {
        for c in FactorizationClass::ALL {
            assert_eq!(FactorizationClass::parse(c.name()), Some(c));
        }
        assert_eq!(
            FactorizationClass::parse("QR"),
            Some(FactorizationClass::Qr)
        );
        assert_eq!(FactorizationClass::parse("nope"), None);
    }

    #[test]
    fn generate_matches_counts() {
        let t = KernelTimings::paper_default();
        for c in FactorizationClass::ALL {
            for k in [2, 4, 6] {
                let dag = c.generate(k, &t);
                assert_eq!(dag.node_count(), c.task_count(k), "{} k={k}", c.name());
            }
        }
    }
}
