//! BLAS/LAPACK tile kernels and their execution-time table.

/// The eleven tile kernels appearing in the Cholesky, LU, and QR DAGs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Cholesky factorization of a diagonal tile.
    Potrf,
    /// Triangular solve against a Cholesky panel tile.
    Trsm,
    /// Symmetric rank-`b` update of a diagonal tile.
    Syrk,
    /// General tile-tile multiply-accumulate.
    Gemm,
    /// LU factorization of a diagonal tile.
    Getrf,
    /// Lower-triangular solve (LU column panel).
    TrsmL,
    /// Upper-triangular solve (LU row panel).
    TrsmU,
    /// QR factorization of a diagonal tile.
    Geqrt,
    /// Triangular-on-square QR of a panel tile pair.
    Tsqrt,
    /// Apply a GEQRT reflector block to a row tile.
    Unmqr,
    /// Apply a TSQRT reflector block to a tile pair.
    Tsmqr,
}

impl Kernel {
    /// All kernels.
    pub const ALL: [Kernel; 11] = [
        Kernel::Potrf,
        Kernel::Trsm,
        Kernel::Syrk,
        Kernel::Gemm,
        Kernel::Getrf,
        Kernel::TrsmL,
        Kernel::TrsmU,
        Kernel::Geqrt,
        Kernel::Tsqrt,
        Kernel::Unmqr,
        Kernel::Tsmqr,
    ];

    /// Kernel name as used in task labels (`POTRF`, `TRSML`, …).
    pub fn label(self) -> &'static str {
        match self {
            Kernel::Potrf => "POTRF",
            Kernel::Trsm => "TRSM",
            Kernel::Syrk => "SYRK",
            Kernel::Gemm => "GEMM",
            Kernel::Getrf => "GETRF",
            Kernel::TrsmL => "TRSML",
            Kernel::TrsmU => "TRSMU",
            Kernel::Geqrt => "GEQRT",
            Kernel::Tsqrt => "TSQRT",
            Kernel::Unmqr => "UNMQR",
            Kernel::Tsmqr => "TSMQR",
        }
    }

    /// Floating-point operation count for tile size `b`, in flops.
    ///
    /// Standard tile-algorithm counts (e.g. Buttari et al., *Parallel
    /// tiled QR factorization for multicore architectures*): in units of
    /// `b³/3` they are POTRF 1, TRSM/SYRK 3, GEMM 6, GETRF 2,
    /// TRSML/TRSMU 3, GEQRT 4, TSQRT/UNMQR 6, TSMQR 12. Note the QR
    /// kernels cost exactly twice their LU counterparts — the ratio the
    /// paper quotes ("tasks in QR entail, on average, twice as many
    /// floating-point operations as in LU").
    pub fn flops(self, b: usize) -> f64 {
        let b3_over_3 = (b as f64).powi(3) / 3.0;
        let units = match self {
            Kernel::Potrf => 1.0,
            Kernel::Trsm | Kernel::Syrk => 3.0,
            Kernel::Gemm => 6.0,
            Kernel::Getrf => 2.0,
            Kernel::TrsmL | Kernel::TrsmU => 3.0,
            Kernel::Geqrt => 4.0,
            Kernel::Tsqrt | Kernel::Unmqr => 6.0,
            Kernel::Tsmqr => 12.0,
        };
        units * b3_over_3
    }
}

/// Execution time (seconds) of each tile kernel.
///
/// The paper took these from real M2070/StarPU measurements at `b = 960`
/// (table not published). [`KernelTimings::paper_default`] provides the
/// documented flop-proportional substitute; users with measured kernel
/// times construct the table explicitly or via
/// [`KernelTimings::from_gflops`].
#[derive(Clone, Debug, PartialEq)]
pub struct KernelTimings {
    times: [f64; 11],
}

/// Seconds per `b³/3` flop-unit in [`KernelTimings::paper_default`],
/// chosen so the mean task weight over the paper's fifteen DAGs
/// (Cholesky/LU/QR × k ∈ {4, 6, 8, 10, 12}; 7.04 flop-units per task on
/// average) is the paper's reported ā ≈ 0.15 s.
pub(crate) const PAPER_UNIT_SECONDS: f64 = 0.0213;

impl KernelTimings {
    /// Build from an explicit per-kernel table (seconds).
    ///
    /// # Panics
    /// Panics if any time is negative or non-finite.
    pub fn from_times(f: impl Fn(Kernel) -> f64) -> KernelTimings {
        let mut times = [0.0f64; 11];
        for (i, k) in Kernel::ALL.iter().enumerate() {
            let t = f(*k);
            assert!(t.is_finite() && t >= 0.0, "bad time {t} for {k:?}");
            times[i] = t;
        }
        KernelTimings { times }
    }

    /// Flop-proportional times: `time(k) = unit_seconds × flops(k, b) / (b³/3)`.
    pub fn flop_proportional(unit_seconds: f64) -> KernelTimings {
        assert!(unit_seconds > 0.0 && unit_seconds.is_finite());
        // b cancels: flops(k, b) / (b³/3) is the integer unit count.
        KernelTimings::from_times(|k| unit_seconds * k.flops(3) / 9.0)
    }

    /// The workspace's substitute for the paper's measured table
    /// (see module/DESIGN.md discussion).
    pub fn paper_default() -> KernelTimings {
        KernelTimings::flop_proportional(PAPER_UNIT_SECONDS)
    }

    /// Derive times from tile size and a per-kernel sustained GFlop/s
    /// rate (useful when real measurements exist).
    pub fn from_gflops(b: usize, gflops: impl Fn(Kernel) -> f64) -> KernelTimings {
        KernelTimings::from_times(|k| {
            let rate = gflops(k);
            assert!(rate > 0.0 && rate.is_finite(), "bad rate {rate} for {k:?}");
            k.flops(b) / (rate * 1e9)
        })
    }

    /// Uniform unit times (weights 1.0 for every kernel); useful in
    /// structural tests.
    pub fn unit() -> KernelTimings {
        KernelTimings::from_times(|_| 1.0)
    }

    /// Execution time of `kernel`, seconds.
    #[inline]
    pub fn time(&self, kernel: Kernel) -> f64 {
        let idx = Kernel::ALL
            .iter()
            .position(|k| *k == kernel)
            .expect("kernel present in ALL");
        self.times[idx]
    }
}

impl Default for KernelTimings {
    fn default() -> Self {
        KernelTimings::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_kernels_cost_twice_lu() {
        for b in [64, 960] {
            assert_eq!(Kernel::Geqrt.flops(b), 2.0 * Kernel::Getrf.flops(b));
            assert_eq!(Kernel::Tsqrt.flops(b), 2.0 * Kernel::TrsmL.flops(b));
            assert_eq!(Kernel::Unmqr.flops(b), 2.0 * Kernel::TrsmU.flops(b));
            assert_eq!(Kernel::Tsmqr.flops(b), 2.0 * Kernel::Gemm.flops(b));
        }
    }

    #[test]
    fn gemm_is_2b3() {
        let b = 960usize;
        assert!((Kernel::Gemm.flops(b) - 2.0 * (b as f64).powi(3)).abs() < 1.0);
    }

    #[test]
    fn paper_default_ratios() {
        let t = KernelTimings::paper_default();
        assert!((t.time(Kernel::Gemm) / t.time(Kernel::Trsm) - 2.0).abs() < 1e-12);
        assert!((t.time(Kernel::Potrf) / t.time(Kernel::Gemm) - 1.0 / 6.0).abs() < 1e-12);
        assert!((t.time(Kernel::Tsmqr) / t.time(Kernel::Gemm) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn from_gflops_inverse_of_rate() {
        let t = KernelTimings::from_gflops(960, |_| 100.0);
        // GEMM: 2·960³ flops at 100 GF/s
        let want = 2.0 * 960f64.powi(3) / 1e11;
        assert!((t.time(Kernel::Gemm) - want).abs() < 1e-12);
    }

    #[test]
    fn unit_table() {
        let t = KernelTimings::unit();
        for k in Kernel::ALL {
            assert_eq!(t.time(k), 1.0);
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in Kernel::ALL {
            assert!(seen.insert(k.label()));
        }
    }
}
