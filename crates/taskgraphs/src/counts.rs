//! Closed-form task counts for the factorization DAGs.
//!
//! These formulas pin the generators to the paper's reported sizes:
//! the LU/QR count is **650 at k = 12** ("15 DAGs with up to 650
//! tasks") and **2 870 at k = 20** (Section V-E), which uniquely
//! identifies the dependency structure among the standard tiled
//! variants.

/// Number of tasks in the tiled Cholesky DAG:
/// `k` POTRF + `k(k−1)/2` TRSM + `k(k−1)/2` SYRK + `C(k,3)` GEMM.
pub fn cholesky_task_count(k: usize) -> usize {
    k + k * (k - 1) + binom3(k)
}

/// Number of tasks in the tiled LU DAG:
/// `k` GETRF + `k(k−1)/2` TRSML + `k(k−1)/2` TRSMU + `Σ_{j=1}^{k−1} j²` GEMM.
pub fn lu_task_count(k: usize) -> usize {
    k + k * (k - 1) + sum_of_squares(k - 1)
}

/// Number of tasks in the tiled QR DAG (same shape as LU):
/// `k` GEQRT + `k(k−1)/2` TSQRT + `k(k−1)/2` UNMQR + `Σ j²` TSMQR.
pub fn qr_task_count(k: usize) -> usize {
    lu_task_count(k)
}

fn binom3(k: usize) -> usize {
    if k < 3 {
        0
    } else {
        k * (k - 1) * (k - 2) / 6
    }
}

fn sum_of_squares(m: usize) -> usize {
    m * (m + 1) * (2 * m + 1) / 6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_sizes() {
        assert_eq!(lu_task_count(12), 650);
        assert_eq!(qr_task_count(12), 650);
        assert_eq!(lu_task_count(20), 2870);
        assert_eq!(cholesky_task_count(5), 35);
    }

    #[test]
    fn small_cases_by_hand() {
        assert_eq!(cholesky_task_count(1), 1);
        assert_eq!(cholesky_task_count(2), 4); // POTRF×2, TRSM, SYRK
        assert_eq!(cholesky_task_count(3), 10);
        assert_eq!(lu_task_count(1), 1);
        assert_eq!(lu_task_count(2), 5); // GETRF×2, TRSML, TRSMU, GEMM
        assert_eq!(lu_task_count(3), 14);
    }

    #[test]
    fn asymptotics() {
        // Cholesky ~ k³/6, LU/QR ~ k³/3 (leading order).
        let k = 200usize;
        let chol = cholesky_task_count(k) as f64;
        let lu = lu_task_count(k) as f64;
        let k3 = (k as f64).powi(3);
        assert!((chol / (k3 / 6.0) - 1.0).abs() < 0.05);
        assert!((lu / (k3 / 3.0) - 1.0).abs() < 0.05);
    }
}
