//! Synthetic DAG families for tests, examples, and robustness studies.
//!
//! None of these appear in the paper's evaluation, but they exercise the
//! estimators on structures with very different path statistics: chains
//! (pure series), fork-join (pure parallel), layered random DAGs (the
//! classical scheduling benchmark shape), Erdős–Rényi DAGs (unstructured
//! precedence), trees, and diamond meshes (grid-like pipelines, the
//! worst case for series-parallel approximations).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stochdag_dag::{Dag, NodeId};

/// Configuration for [`layered_random_dag`].
#[derive(Clone, Debug)]
pub struct LayeredConfig {
    /// Number of layers (≥ 1).
    pub layers: usize,
    /// Tasks per layer (≥ 1).
    pub width: usize,
    /// Probability of an edge between consecutive-layer task pairs.
    pub edge_prob: f64,
    /// Task weights drawn uniformly from this range.
    pub weight_range: (f64, f64),
}

impl Default for LayeredConfig {
    fn default() -> Self {
        LayeredConfig {
            layers: 5,
            width: 4,
            edge_prob: 0.5,
            weight_range: (0.5, 1.5),
        }
    }
}

fn draw_weight(rng: &mut StdRng, range: (f64, f64)) -> f64 {
    assert!(
        range.0 >= 0.0 && range.1 >= range.0,
        "invalid weight range {range:?}"
    );
    if range.0 == range.1 {
        range.0
    } else {
        rng.gen_range(range.0..range.1)
    }
}

/// Random layered DAG: `layers × width` tasks; edges go between
/// consecutive layers with probability `edge_prob`, and every non-first
/// layer task gets at least one predecessor so the layer structure is
/// real. Deterministic for a fixed `seed`.
pub fn layered_random_dag(cfg: &LayeredConfig, seed: u64) -> Dag {
    assert!(cfg.layers >= 1 && cfg.width >= 1, "need at least one task");
    assert!(
        (0.0..=1.0).contains(&cfg.edge_prob),
        "edge_prob out of range"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Dag::with_capacity(cfg.layers * cfg.width, cfg.layers * cfg.width * cfg.width);
    let mut prev: Vec<NodeId> = Vec::new();
    for layer in 0..cfg.layers {
        let mut cur = Vec::with_capacity(cfg.width);
        for w in 0..cfg.width {
            let id = g.add_named_node(
                draw_weight(&mut rng, cfg.weight_range),
                Some(format!("L{layer}_{w}")),
            );
            cur.push(id);
        }
        if layer > 0 {
            for &c in &cur {
                let mut has_pred = false;
                for &p in &prev {
                    if rng.gen_bool(cfg.edge_prob) {
                        g.add_edge(p, c);
                        has_pred = true;
                    }
                }
                if !has_pred {
                    let p = prev[rng.gen_range(0..prev.len())];
                    g.add_edge(p, c);
                }
            }
        }
        prev = cur;
    }
    g
}

/// Erdős–Rényi DAG: `n` tasks; each forward pair `(i, j)`, `i < j`, is an
/// edge with probability `p`. Acyclic by construction.
pub fn erdos_renyi_dag(n: usize, p: f64, weight_range: (f64, f64), seed: u64) -> Dag {
    assert!((0.0..=1.0).contains(&p), "edge probability out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Dag::with_capacity(n, (n * n / 4).max(1));
    let ids: Vec<NodeId> = (0..n)
        .map(|i| g.add_named_node(draw_weight(&mut rng, weight_range), Some(format!("T{i}"))))
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(ids[i], ids[j]);
            }
        }
    }
    g
}

/// Chain of `n` tasks with the given weights cycle (weights repeat if
/// fewer than `n` are provided).
pub fn chain_dag(n: usize, weights: &[f64]) -> Dag {
    assert!(n >= 1 && !weights.is_empty());
    let mut g = Dag::with_capacity(n, n.saturating_sub(1));
    let mut prev = None;
    for i in 0..n {
        let id = g.add_named_node(weights[i % weights.len()], Some(format!("C{i}")));
        if let Some(p) = prev {
            g.add_edge(p, id);
        }
        prev = Some(id);
    }
    g
}

/// Fork-join: a source, `width` parallel branches of `depth` tasks each,
/// and a sink. Weight `w` everywhere.
pub fn fork_join_dag(width: usize, depth: usize, w: f64) -> Dag {
    assert!(width >= 1 && depth >= 1);
    let mut g = Dag::with_capacity(width * depth + 2, width * (depth + 1));
    let src = g.add_named_node(w, Some("fork".to_string()));
    let sink = g.add_named_node(w, Some("join".to_string()));
    for b in 0..width {
        let mut prev = src;
        for d in 0..depth {
            let id = g.add_named_node(w, Some(format!("B{b}_{d}")));
            g.add_edge(prev, id);
            prev = id;
        }
        g.add_edge(prev, sink);
    }
    g
}

/// Complete out-tree (root at top) with the given branching factor and
/// depth (depth 0 = single node). Weight `w` everywhere.
pub fn out_tree_dag(branching: usize, depth: usize, w: f64) -> Dag {
    assert!(branching >= 1);
    let mut g = Dag::new();
    let root = g.add_named_node(w, Some("root".to_string()));
    let mut frontier = vec![root];
    for _ in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * branching);
        for &p in &frontier {
            for _ in 0..branching {
                let c = g.add_node(w);
                g.add_edge(p, c);
                next.push(c);
            }
        }
        frontier = next;
    }
    g
}

/// Complete in-tree (leaves at top, root at bottom): the reverse of
/// [`out_tree_dag`].
pub fn in_tree_dag(branching: usize, depth: usize, w: f64) -> Dag {
    let out = out_tree_dag(branching, depth, w);
    let mut g = Dag::with_capacity(out.node_count(), out.edge_count());
    for v in out.nodes() {
        g.add_named_node(out.weight(v), out.name(v));
    }
    for (a, b) in out.edges() {
        g.add_edge(b, a); // reverse
    }
    g
}

/// Diamond mesh (`rows × cols` grid where task `(r, c)` precedes
/// `(r+1, c)` and `(r, c+1)`), the classic non-series-parallel pipeline
/// shape — useful to stress Dodin's SP approximation.
pub fn diamond_mesh_dag(rows: usize, cols: usize, weight_range: (f64, f64), seed: u64) -> Dag {
    assert!(rows >= 1 && cols >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Dag::with_capacity(rows * cols, 2 * rows * cols);
    let mut ids = vec![Vec::with_capacity(cols); rows];
    for (r, row_ids) in ids.iter_mut().enumerate() {
        for c in 0..cols {
            let id = g.add_named_node(
                draw_weight(&mut rng, weight_range),
                Some(format!("M{r}_{c}")),
            );
            row_ids.push(id);
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            if r + 1 < rows {
                g.add_edge(ids[r][c], ids[r + 1][c]);
            }
            if c + 1 < cols {
                g.add_edge(ids[r][c], ids[r][c + 1]);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochdag_dag::{longest_path_length, topological_layers, topological_order};

    #[test]
    fn layered_structure() {
        let cfg = LayeredConfig {
            layers: 6,
            width: 3,
            edge_prob: 0.4,
            weight_range: (1.0, 2.0),
        };
        let g = layered_random_dag(&cfg, 42);
        assert_eq!(g.node_count(), 18);
        assert!(topological_order(&g).is_ok());
        let layers = topological_layers(&g).unwrap();
        assert_eq!(layers.len(), 6, "every layer must be populated");
        // Every non-source has a predecessor in the previous layer.
        for v in g.nodes() {
            if g.in_degree(v) == 0 {
                assert!(g.display_name(v).starts_with("L0_"));
            }
        }
    }

    #[test]
    fn layered_deterministic_by_seed() {
        let cfg = LayeredConfig::default();
        let a = layered_random_dag(&cfg, 7);
        let b = layered_random_dag(&cfg, 7);
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.weights(), b.weights());
        let c = layered_random_dag(&cfg, 8);
        assert!(
            a.weights() != c.weights(),
            "different seed, different weights"
        );
    }

    #[test]
    fn erdos_renyi_bounds() {
        let g = erdos_renyi_dag(20, 0.3, (1.0, 1.0), 1);
        assert_eq!(g.node_count(), 20);
        assert!(g.edge_count() <= 20 * 19 / 2);
        assert!(topological_order(&g).is_ok());
        let empty = erdos_renyi_dag(10, 0.0, (1.0, 1.0), 1);
        assert_eq!(empty.edge_count(), 0);
        let full = erdos_renyi_dag(10, 1.0, (1.0, 1.0), 1);
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn chain_is_serial() {
        let g = chain_dag(5, &[2.0]);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(longest_path_length(&g), 10.0);
    }

    #[test]
    fn chain_weights_cycle() {
        let g = chain_dag(4, &[1.0, 3.0]);
        assert_eq!(g.total_weight(), 8.0);
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join_dag(3, 2, 1.0);
        assert_eq!(g.node_count(), 3 * 2 + 2);
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
        // Critical path: fork + 2 + join = 4.
        assert_eq!(longest_path_length(&g), 4.0);
    }

    #[test]
    fn out_tree_and_in_tree() {
        let out = out_tree_dag(2, 3, 1.0);
        assert_eq!(out.node_count(), 15);
        assert_eq!(out.sources().len(), 1);
        assert_eq!(out.sinks().len(), 8);
        let inn = in_tree_dag(2, 3, 1.0);
        assert_eq!(inn.node_count(), 15);
        assert_eq!(inn.sources().len(), 8);
        assert_eq!(inn.sinks().len(), 1);
        assert_eq!(longest_path_length(&out), 4.0);
        assert_eq!(longest_path_length(&inn), 4.0);
    }

    #[test]
    fn diamond_mesh_longest_path() {
        let g = diamond_mesh_dag(3, 4, (1.0, 1.0), 0);
        assert_eq!(g.node_count(), 12);
        // Monotone lattice path: rows + cols − 1 nodes.
        assert_eq!(longest_path_length(&g), 6.0);
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
    }
}
