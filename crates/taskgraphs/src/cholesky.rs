//! Tiled Cholesky factorization DAG (paper Fig. 1).
//!
//! Right-looking tiled Cholesky of a `k × k` tile matrix. At elimination
//! step `j`:
//!
//! * `POTRF_j` factors the diagonal tile `A[j][j]`;
//! * `TRSM_i_j` (for `i > j`) solves the panel tile `A[i][j]`;
//! * `SYRK_i_j` (for `i > j`) updates the diagonal tile `A[i][i]` with
//!   the panel tile;
//! * `GEMM_i_l_j` (for `j < l < i`) updates the interior tile `A[i][l]`
//!   with panel tiles `A[i][j]` and `A[l][j]`.
//!
//! Dependencies follow tile read/write order: updates to a given tile
//! across steps are serialized, each consumer waits for the last write
//! to every tile it reads. Task names match the paper's Figure 1 labels
//! exactly (`POTRF_4`, `TRSM_4_2`, `SYRK_4_1`, `GEMM_4_2_1`).

use crate::kernels::{Kernel, KernelTimings};
use stochdag_dag::{Dag, DagBuilder};

/// Generate the Cholesky DAG for a `k × k` tile matrix.
///
/// Task count is `k + k(k−1) + C(k,3)` (see
/// [`crate::cholesky_task_count`]); `k = 5` gives the paper's 35-task
/// Figure 1.
///
/// # Panics
/// Panics if `k == 0`.
pub fn cholesky_dag(k: usize, timings: &KernelTimings) -> Dag {
    assert!(k > 0, "matrix must have at least one tile");
    let mut b = DagBuilder::with_capacity(crate::counts::cholesky_task_count(k), 4 * k * k * k / 3);
    let (t_potrf, t_trsm) = (timings.time(Kernel::Potrf), timings.time(Kernel::Trsm));
    let (t_syrk, t_gemm) = (timings.time(Kernel::Syrk), timings.time(Kernel::Gemm));

    for j in 0..k {
        let potrf = format!("POTRF_{j}");
        b.add_task(&potrf, t_potrf);
        if j > 0 {
            // Last update of A[j][j] was SYRK_j_{j-1}.
            b.add_dep_by_name(&format!("SYRK_{j}_{}", j - 1), &potrf)
                .expect("SYRK of previous step exists");
        }
        for i in (j + 1)..k {
            let trsm = format!("TRSM_{i}_{j}");
            b.add_task(&trsm, t_trsm);
            b.add_dep_by_name(&potrf, &trsm).expect("POTRF exists");
            if j > 0 {
                // Last update of A[i][j] was GEMM_i_j_{j-1}.
                b.add_dep_by_name(&format!("GEMM_{i}_{j}_{}", j - 1), &trsm)
                    .expect("GEMM of previous step exists");
            }
        }
        for i in (j + 1)..k {
            let syrk = format!("SYRK_{i}_{j}");
            b.add_task(&syrk, t_syrk);
            b.add_dep_by_name(&format!("TRSM_{i}_{j}"), &syrk)
                .expect("TRSM exists");
            if j > 0 {
                // Serialize updates of A[i][i].
                b.add_dep_by_name(&format!("SYRK_{i}_{}", j - 1), &syrk)
                    .expect("SYRK of previous step exists");
            }
            for l in (j + 1)..i {
                let gemm = format!("GEMM_{i}_{l}_{j}");
                b.add_task(&gemm, t_gemm);
                b.add_dep_by_name(&format!("TRSM_{i}_{j}"), &gemm)
                    .expect("row TRSM exists");
                b.add_dep_by_name(&format!("TRSM_{l}_{j}"), &gemm)
                    .expect("col TRSM exists");
                if j > 0 {
                    // Serialize updates of A[i][l].
                    b.add_dep_by_name(&format!("GEMM_{i}_{l}_{}", j - 1), &gemm)
                        .expect("GEMM of previous step exists");
                }
            }
        }
    }
    b.build().expect("generator produces a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::cholesky_task_count;
    use stochdag_dag::{topological_order, LevelInfo};

    fn unit_dag(k: usize) -> Dag {
        cholesky_dag(k, &KernelTimings::unit())
    }

    #[test]
    fn k5_matches_paper_figure1() {
        let g = unit_dag(5);
        assert_eq!(g.node_count(), 35);
        // Spot-check tasks named in the paper's figure.
        for name in [
            "POTRF_4",
            "GEMM_4_2_1",
            "SYRK_3_0",
            "TRSM_4_3",
            "GEMM_3_2_0",
        ] {
            assert!(g.find_by_name(name).is_some(), "missing task {name}");
        }
        // POTRF_0 is the unique entry task.
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.name(g.sources()[0]), Some("POTRF_0"));
        // POTRF_{k-1} is the unique exit task.
        assert_eq!(g.sinks().len(), 1);
        assert_eq!(g.name(g.sinks()[0]), Some("POTRF_4"));
    }

    #[test]
    fn counts_match_closed_form() {
        for k in 1..=12 {
            assert_eq!(unit_dag(k).node_count(), cholesky_task_count(k), "k={k}");
        }
    }

    #[test]
    fn is_acyclic_and_connected_through_steps() {
        let g = unit_dag(6);
        assert!(topological_order(&g).is_ok());
        // Every non-first POTRF depends (transitively) on the previous one.
        let tc = stochdag_dag::transitive_closure(&g);
        for j in 1..6 {
            let a = g.find_by_name(&format!("POTRF_{}", j - 1)).unwrap();
            let b = g.find_by_name(&format!("POTRF_{j}")).unwrap();
            assert!(tc.reaches(a, b), "POTRF_{} should reach POTRF_{j}", j - 1);
        }
    }

    #[test]
    fn dependency_structure_spot_checks() {
        let g = unit_dag(5);
        let idx = g.name_index();
        // TRSM_2_1 depends on POTRF_1 and GEMM_2_1_0.
        let trsm21 = idx["TRSM_2_1"];
        let preds: Vec<_> = g.preds(trsm21).iter().map(|&p| g.display_name(p)).collect();
        assert!(preds.contains(&"POTRF_1".to_string()), "preds = {preds:?}");
        assert!(
            preds.contains(&"GEMM_2_1_0".to_string()),
            "preds = {preds:?}"
        );
        // GEMM_4_2_1 reads TRSM_4_1 and TRSM_2_1, and follows GEMM_4_2_0.
        let gemm421 = idx["GEMM_4_2_1"];
        let preds: Vec<_> = g
            .preds(gemm421)
            .iter()
            .map(|&p| g.display_name(p))
            .collect();
        for want in ["TRSM_4_1", "TRSM_2_1", "GEMM_4_2_0"] {
            assert!(preds.contains(&want.to_string()), "preds = {preds:?}");
        }
        // SYRK chain: SYRK_4_1 follows SYRK_4_0.
        let syrk41 = idx["SYRK_4_1"];
        let preds: Vec<_> = g.preds(syrk41).iter().map(|&p| g.display_name(p)).collect();
        assert!(preds.contains(&"SYRK_4_0".to_string()), "preds = {preds:?}");
    }

    #[test]
    fn critical_path_with_unit_weights() {
        // With unit weights the critical path is
        // POTRF_0, TRSM_1_0, SYRK_1_0, POTRF_1, … = 3(k−1) + 1 tasks
        // … but GEMM chains can tie; length must be exactly 3k−2 for unit
        // weights (each step adds POTRF + TRSM + SYRK on the diagonal
        // path and GEMM paths are never longer).
        for k in 2..=8 {
            let g = unit_dag(k);
            let lv = LevelInfo::compute(&g);
            assert_eq!(lv.makespan, (3 * k - 2) as f64, "k={k}");
        }
    }

    #[test]
    fn weights_assigned_from_table() {
        let t = KernelTimings::paper_default();
        let g = cholesky_dag(4, &t);
        let idx = g.name_index();
        assert_eq!(g.weight(idx["POTRF_0"]), t.time(Kernel::Potrf));
        assert_eq!(g.weight(idx["TRSM_1_0"]), t.time(Kernel::Trsm));
        assert_eq!(g.weight(idx["SYRK_1_0"]), t.time(Kernel::Syrk));
        assert_eq!(g.weight(idx["GEMM_3_2_0"]), t.time(Kernel::Gemm));
    }

    #[test]
    fn k1_is_single_potrf() {
        let g = unit_dag(1);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }
}
