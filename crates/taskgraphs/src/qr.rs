//! Tiled QR factorization DAG (paper Fig. 3).
//!
//! Flat-tree (domino) tiled QR. At elimination step `j`:
//!
//! * `GEQRT_j` QR-factors the diagonal tile `A[j][j]`;
//! * `TSQRT_i_j` (for `i > j`, in increasing `i`) folds panel tile
//!   `A[i][j]` into the triangular factor — a *serial chain* down the
//!   panel (the flat-tree structure);
//! * `UNMQR_j_l` (for `l > j`) applies the `GEQRT_j` reflectors to row
//!   tile `A[j][l]`;
//! * `TSMQR_i_l_j` (for `i, l > j`) applies the `TSQRT_i_j` reflectors
//!   to the tile pair `(A[j][l], A[i][l])` — serialized down each column
//!   `l` in increasing `i` because each update rewrites the shared row
//!   tile `A[j][l]`.
//!
//! Names match the paper's Figure 3 (`GEQRT_2`, `TSQRT_3_2`,
//! `UNMQR_2_4`, `TSMQR_3_4_2`).

use crate::kernels::{Kernel, KernelTimings};
use stochdag_dag::{Dag, DagBuilder};

/// Generate the QR DAG for a `k × k` tile matrix.
///
/// Task count is identical to LU's (`k + k(k−1) + Σ j²`), but the QR
/// kernels each cost twice their LU counterparts.
///
/// # Panics
/// Panics if `k == 0`.
pub fn qr_dag(k: usize, timings: &KernelTimings) -> Dag {
    assert!(k > 0, "matrix must have at least one tile");
    let mut b = DagBuilder::with_capacity(crate::counts::qr_task_count(k), 3 * k * k * k);
    let (t_geqrt, t_tsqrt) = (timings.time(Kernel::Geqrt), timings.time(Kernel::Tsqrt));
    let (t_unmqr, t_tsmqr) = (timings.time(Kernel::Unmqr), timings.time(Kernel::Tsmqr));

    for j in 0..k {
        let geqrt = format!("GEQRT_{j}");
        b.add_task(&geqrt, t_geqrt);
        if j > 0 {
            // Last update of A[j][j] was TSMQR_j_j_{j-1} … but note the
            // TSMQR chain in column j ends at i = j? No: at step j−1 the
            // updates touch rows i ≥ j; the *first* of them (i = j)
            // rewrites the future diagonal tile A[j][j]; later chain
            // entries rewrite A[j-1][j]'s partner rows only. The tile
            // A[j][j] is last written by TSMQR_j_j_{j-1}.
            b.add_dep_by_name(&format!("TSMQR_{j}_{j}_{}", j - 1), &geqrt)
                .expect("TSMQR of previous step exists");
        }
        for l in (j + 1)..k {
            let unmqr = format!("UNMQR_{j}_{l}");
            b.add_task(&unmqr, t_unmqr);
            b.add_dep_by_name(&geqrt, &unmqr).expect("GEQRT exists");
            if j > 0 {
                // Row tile A[j][l] was last written by TSMQR_j_l_{j-1}.
                b.add_dep_by_name(&format!("TSMQR_{j}_{l}_{}", j - 1), &unmqr)
                    .expect("TSMQR of previous step exists");
            }
        }
        for i in (j + 1)..k {
            let tsqrt = format!("TSQRT_{i}_{j}");
            b.add_task(&tsqrt, t_tsqrt);
            if i == j + 1 {
                b.add_dep_by_name(&geqrt, &tsqrt).expect("GEQRT exists");
            } else {
                // Flat tree: panel chain.
                b.add_dep_by_name(&format!("TSQRT_{}_{j}", i - 1), &tsqrt)
                    .expect("previous TSQRT exists");
            }
            if j > 0 {
                // Panel tile A[i][j] was last written by TSMQR_i_j_{j-1}.
                b.add_dep_by_name(&format!("TSMQR_{i}_{j}_{}", j - 1), &tsqrt)
                    .expect("TSMQR of previous step exists");
            }
        }
        for i in (j + 1)..k {
            for l in (j + 1)..k {
                let tsmqr = format!("TSMQR_{i}_{l}_{j}");
                b.add_task(&tsmqr, t_tsmqr);
                b.add_dep_by_name(&format!("TSQRT_{i}_{j}"), &tsmqr)
                    .expect("TSQRT exists");
                if i == j + 1 {
                    // First update in column l consumes the UNMQR output
                    // (row tile A[j][l]).
                    b.add_dep_by_name(&format!("UNMQR_{j}_{l}"), &tsmqr)
                        .expect("UNMQR exists");
                } else {
                    // Chain down the column: shares row tile A[j][l].
                    b.add_dep_by_name(&format!("TSMQR_{}_{l}_{j}", i - 1), &tsmqr)
                        .expect("previous TSMQR exists");
                }
                if j > 0 {
                    // Tile A[i][l] last written at step j−1.
                    b.add_dep_by_name(&format!("TSMQR_{i}_{l}_{}", j - 1), &tsmqr)
                        .expect("TSMQR of previous step exists");
                }
            }
        }
    }
    b.build().expect("generator produces a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::qr_task_count;
    use stochdag_dag::{topological_order, LevelInfo};

    fn unit_dag(k: usize) -> Dag {
        qr_dag(k, &KernelTimings::unit())
    }

    #[test]
    fn counts_match_closed_form_and_lu() {
        for k in 1..=12 {
            assert_eq!(unit_dag(k).node_count(), qr_task_count(k), "k={k}");
            assert_eq!(qr_task_count(k), crate::counts::lu_task_count(k));
        }
        assert_eq!(unit_dag(12).node_count(), 650);
    }

    #[test]
    fn k5_contains_paper_figure3_tasks() {
        let g = unit_dag(5);
        for name in [
            "GEQRT_0",
            "GEQRT_4",
            "TSQRT_3_2",
            "UNMQR_2_4",
            "TSMQR_3_4_2",
            "TSMQR_1_1_0",
            "TSQRT_1_0",
            "UNMQR_0_1",
        ] {
            assert!(g.find_by_name(name).is_some(), "missing task {name}");
        }
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.name(g.sources()[0]), Some("GEQRT_0"));
        assert_eq!(g.sinks().len(), 1);
        assert_eq!(g.name(g.sinks()[0]), Some("GEQRT_4"));
    }

    #[test]
    fn is_acyclic() {
        assert!(topological_order(&unit_dag(8)).is_ok());
    }

    #[test]
    fn dependency_structure_spot_checks() {
        let g = unit_dag(5);
        let idx = g.name_index();
        // TSQRT chain: TSQRT_3_1 follows TSQRT_2_1.
        let t31 = idx["TSQRT_3_1"];
        let preds: Vec<_> = g.preds(t31).iter().map(|&p| g.display_name(p)).collect();
        assert!(
            preds.contains(&"TSQRT_2_1".to_string()),
            "preds = {preds:?}"
        );
        assert!(
            preds.contains(&"TSMQR_3_1_0".to_string()),
            "preds = {preds:?}"
        );
        // TSMQR column chain: TSMQR_3_4_2 needs TSQRT_3_2 and TSMQR_3_4_1
        // (same tile, previous step); it is the i=j+1 head of step 2's
        // chain in column 4, so it also consumes UNMQR_2_4.
        let tsm = idx["TSMQR_3_4_2"];
        let preds: Vec<_> = g.preds(tsm).iter().map(|&p| g.display_name(p)).collect();
        for want in ["TSQRT_3_2", "UNMQR_2_4", "TSMQR_3_4_1"] {
            assert!(preds.contains(&want.to_string()), "preds = {preds:?}");
        }
        // GEQRT_1 waits for TSMQR_1_1_0.
        let geqrt1 = idx["GEQRT_1"];
        let preds: Vec<_> = g.preds(geqrt1).iter().map(|&p| g.display_name(p)).collect();
        assert_eq!(preds, vec!["TSMQR_1_1_0".to_string()]);
    }

    #[test]
    fn critical_path_grows_linearly_in_k() {
        // The TSQRT/TSMQR chains make the QR critical path longer than
        // Cholesky's 3k−2 but still Θ(k) with unit weights.
        let g4 = unit_dag(4);
        let g8 = unit_dag(8);
        let m4 = LevelInfo::compute(&g4).makespan;
        let m8 = LevelInfo::compute(&g8).makespan;
        assert!(m8 > m4, "critical path grows");
        assert!(m8 < 2.5 * m4, "roughly linear growth (got {m4} -> {m8})");
    }

    #[test]
    fn weights_assigned_from_table() {
        let t = KernelTimings::paper_default();
        let g = qr_dag(4, &t);
        let idx = g.name_index();
        assert_eq!(g.weight(idx["GEQRT_0"]), t.time(Kernel::Geqrt));
        assert_eq!(g.weight(idx["TSQRT_1_0"]), t.time(Kernel::Tsqrt));
        assert_eq!(g.weight(idx["UNMQR_0_1"]), t.time(Kernel::Unmqr));
        assert_eq!(g.weight(idx["TSMQR_1_1_0"]), t.time(Kernel::Tsmqr));
    }

    #[test]
    fn qr_total_weight_is_twice_lu() {
        let t = KernelTimings::paper_default();
        for k in [4, 8] {
            let qr = qr_dag(k, &t);
            let lu = crate::lu::lu_dag(k, &t);
            assert!(
                ((qr.total_weight() / lu.total_weight()) - 2.0).abs() < 1e-9,
                "k={k}: QR work should be 2× LU"
            );
        }
    }
}
