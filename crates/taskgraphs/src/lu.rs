//! Tiled LU factorization DAG (paper Fig. 2).
//!
//! Right-looking tiled LU (tile pivoting only, as in the paper's figure).
//! At elimination step `j`:
//!
//! * `GETRF_j` factors the diagonal tile `A[j][j]`;
//! * `TRSML_i_j` (for `i > j`) solves the column-panel tile `A[i][j]`
//!   against `L`;
//! * `TRSMU_j_i` (for `i > j`) solves the row-panel tile `A[j][i]`
//!   against `U`;
//! * `GEMM_i_l_j` (for `i, l > j`) updates the trailing tile `A[i][l]`.
//!
//! Names match the paper's Figure 2 (`GETRF_1`, `TRSML_2_1`,
//! `TRSMU_1_2`, `GEMM_4_4_2`, including the diagonal `GEMM_1_1_0`).
//!
//! Task count: `k + k(k−1) + Σ_{j=1}^{k−1} j²`, which is **650 at
//! k = 12** and **2 870 at k = 20** — the exact numbers the paper
//! quotes, pinning this structure down.

use crate::kernels::{Kernel, KernelTimings};
use stochdag_dag::{Dag, DagBuilder};

/// Generate the LU DAG for a `k × k` tile matrix.
///
/// # Panics
/// Panics if `k == 0`.
pub fn lu_dag(k: usize, timings: &KernelTimings) -> Dag {
    assert!(k > 0, "matrix must have at least one tile");
    let mut b = DagBuilder::with_capacity(crate::counts::lu_task_count(k), 2 * k * k * k);
    let (t_getrf, t_trsml) = (timings.time(Kernel::Getrf), timings.time(Kernel::TrsmL));
    let (t_trsmu, t_gemm) = (timings.time(Kernel::TrsmU), timings.time(Kernel::Gemm));

    for j in 0..k {
        let getrf = format!("GETRF_{j}");
        b.add_task(&getrf, t_getrf);
        if j > 0 {
            // Last update of the diagonal tile A[j][j] was GEMM_j_j_{j-1}.
            b.add_dep_by_name(&format!("GEMM_{j}_{j}_{}", j - 1), &getrf)
                .expect("diagonal GEMM of previous step exists");
        }
        for i in (j + 1)..k {
            let trsml = format!("TRSML_{i}_{j}");
            b.add_task(&trsml, t_trsml);
            b.add_dep_by_name(&getrf, &trsml).expect("GETRF exists");
            if j > 0 {
                b.add_dep_by_name(&format!("GEMM_{i}_{j}_{}", j - 1), &trsml)
                    .expect("column GEMM of previous step exists");
            }
            let trsmu = format!("TRSMU_{j}_{i}");
            b.add_task(&trsmu, t_trsmu);
            b.add_dep_by_name(&getrf, &trsmu).expect("GETRF exists");
            if j > 0 {
                b.add_dep_by_name(&format!("GEMM_{j}_{i}_{}", j - 1), &trsmu)
                    .expect("row GEMM of previous step exists");
            }
        }
        for i in (j + 1)..k {
            for l in (j + 1)..k {
                let gemm = format!("GEMM_{i}_{l}_{j}");
                b.add_task(&gemm, t_gemm);
                b.add_dep_by_name(&format!("TRSML_{i}_{j}"), &gemm)
                    .expect("TRSML exists");
                b.add_dep_by_name(&format!("TRSMU_{j}_{l}"), &gemm)
                    .expect("TRSMU exists");
                if j > 0 {
                    // Serialize updates of A[i][l].
                    b.add_dep_by_name(&format!("GEMM_{i}_{l}_{}", j - 1), &gemm)
                        .expect("GEMM of previous step exists");
                }
            }
        }
    }
    b.build().expect("generator produces a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::lu_task_count;
    use stochdag_dag::{topological_order, LevelInfo};

    fn unit_dag(k: usize) -> Dag {
        lu_dag(k, &KernelTimings::unit())
    }

    #[test]
    fn paper_task_counts() {
        assert_eq!(
            unit_dag(12).node_count(),
            650,
            "paper: up to 650 tasks at k=12"
        );
        assert_eq!(
            unit_dag(20).node_count(),
            2870,
            "paper: 2,870 tasks at k=20"
        );
    }

    #[test]
    fn counts_match_closed_form() {
        for k in 1..=12 {
            assert_eq!(unit_dag(k).node_count(), lu_task_count(k), "k={k}");
        }
    }

    #[test]
    fn k5_contains_paper_figure2_tasks() {
        let g = unit_dag(5);
        for name in [
            "GETRF_0",
            "GETRF_4",
            "TRSML_2_1",
            "TRSMU_1_2",
            "GEMM_1_1_0",
            "GEMM_4_4_2",
            "TRSMU_0_4",
            "GEMM_1_2_0",
        ] {
            assert!(g.find_by_name(name).is_some(), "missing task {name}");
        }
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.name(g.sources()[0]), Some("GETRF_0"));
        assert_eq!(g.sinks().len(), 1);
        assert_eq!(g.name(g.sinks()[0]), Some("GETRF_4"));
    }

    #[test]
    fn is_acyclic() {
        assert!(topological_order(&unit_dag(8)).is_ok());
    }

    #[test]
    fn dependency_structure_spot_checks() {
        let g = unit_dag(5);
        let idx = g.name_index();
        // GEMM_3_2_1 reads TRSML_3_1 and TRSMU_1_2, follows GEMM_3_2_0.
        let gemm = idx["GEMM_3_2_1"];
        let preds: Vec<_> = g.preds(gemm).iter().map(|&p| g.display_name(p)).collect();
        for want in ["TRSML_3_1", "TRSMU_1_2", "GEMM_3_2_0"] {
            assert!(preds.contains(&want.to_string()), "preds = {preds:?}");
        }
        // GETRF_2 waits for the diagonal update GEMM_2_2_1.
        let getrf2 = idx["GETRF_2"];
        let preds: Vec<_> = g.preds(getrf2).iter().map(|&p| g.display_name(p)).collect();
        assert_eq!(preds, vec!["GEMM_2_2_1".to_string()]);
    }

    #[test]
    fn critical_path_with_unit_weights() {
        // Unit weights: each step contributes GETRF + TRSM + GEMM along
        // the diagonal chain ⇒ d(G) = 3(k−1) + 1.
        for k in 2..=8 {
            let g = unit_dag(k);
            let lv = LevelInfo::compute(&g);
            assert_eq!(lv.makespan, (3 * k - 2) as f64, "k={k}");
        }
    }

    #[test]
    fn weights_assigned_from_table() {
        let t = KernelTimings::paper_default();
        let g = lu_dag(4, &t);
        let idx = g.name_index();
        assert_eq!(g.weight(idx["GETRF_0"]), t.time(Kernel::Getrf));
        assert_eq!(g.weight(idx["TRSML_1_0"]), t.time(Kernel::TrsmL));
        assert_eq!(g.weight(idx["TRSMU_0_1"]), t.time(Kernel::TrsmU));
        assert_eq!(g.weight(idx["GEMM_1_1_0"]), t.time(Kernel::Gemm));
    }

    #[test]
    fn mean_weight_near_paper_value() {
        // The calibrated default should put ā in the vicinity of the
        // paper's 0.15 s for the k=12 instance.
        let g = lu_dag(12, &KernelTimings::paper_default());
        let abar = g.mean_weight();
        assert!((0.10..0.20).contains(&abar), "ā = {abar}");
    }
}
