//! Bit-identity of the merge-based distribution kernels against the
//! historical push-then-sort implementation.
//!
//! `convolve`/`max_independent` were rewritten from "materialize all
//! n·m pairs, stable-sort, fold" into a k-way sorted merge over a
//! reusable [`DistScratch`]. The contract is *bit*-identity — the same
//! `f64` additions in the same order — so the reference implementation
//! below reproduces the legacy kernel verbatim and every comparison is
//! on raw bits, not within a tolerance.

use proptest::prelude::*;
use stochdag_dist::{DiscreteDist, DistScratch};

/// The pre-rewrite kernel: row-major pair stream, stable sort by value
/// (`total_cmp`), then fold equal values left to right, skipping zero
/// probabilities.
fn legacy_op(
    xs: &DiscreteDist,
    ys: &DiscreteDist,
    op: impl Fn(f64, f64) -> f64,
) -> Vec<(f64, f64)> {
    let mut atoms = Vec::with_capacity(xs.len() * ys.len());
    for &(vx, px) in xs.atoms() {
        for &(vy, py) in ys.atoms() {
            atoms.push((op(vx, vy), px * py));
        }
    }
    atoms.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut merged: Vec<(f64, f64)> = Vec::with_capacity(atoms.len());
    for (v, p) in atoms {
        if p == 0.0 {
            continue;
        }
        match merged.last_mut() {
            Some(last) if last.0 == v => last.1 += p,
            _ => merged.push((v, p)),
        }
    }
    merged
}

fn assert_bits_eq(got: &DiscreteDist, want: &[(f64, f64)]) {
    assert_eq!(got.len(), want.len(), "atom counts differ");
    for (i, (&(gv, gp), &(wv, wp))) in got.atoms().iter().zip(want).enumerate() {
        assert_eq!(gv.to_bits(), wv.to_bits(), "value bits differ at atom {i}");
        assert_eq!(
            gp.to_bits(),
            wp.to_bits(),
            "probability bits differ at atom {i}"
        );
    }
}

/// A random distribution whose support values are drawn from a coarse
/// grid (multiples of 0.25), so cross products collide on equal values
/// often — the interesting path for the fold step.
fn arb_dist() -> impl Strategy<Value = DiscreteDist> {
    proptest::collection::vec((0u32..64, 1u32..100), 1..12).prop_map(|pairs| {
        let total: f64 = pairs.iter().map(|&(_, w)| w as f64).sum();
        let atoms: Vec<(f64, f64)> = pairs
            .iter()
            .map(|&(v, w)| (v as f64 * 0.25, w as f64 / total))
            .collect();
        DiscreteDist::from_atoms(atoms)
    })
}

proptest! {
    #[test]
    fn convolve_matches_legacy_bit_for_bit(x in arb_dist(), y in arb_dist()) {
        let mut scratch = DistScratch::new();
        let got = x.convolve_with(&y, &mut scratch);
        assert_bits_eq(&got, &legacy_op(&x, &y, |a, b| a + b));
        // The allocating entry point is the same kernel.
        assert_bits_eq(&x.convolve(&y), got.atoms());
    }

    #[test]
    fn max_independent_matches_legacy_bit_for_bit(x in arb_dist(), y in arb_dist()) {
        let mut scratch = DistScratch::new();
        let got = x.max_independent_with(&y, &mut scratch);
        assert_bits_eq(&got, &legacy_op(&x, &y, |a, b| a.max(b)));
        assert_bits_eq(&x.max_independent(&y), got.atoms());
    }

    #[test]
    fn scratch_reuse_is_stateless(x in arb_dist(), y in arb_dist(), z in arb_dist()) {
        // One arena across different operands and operations must give
        // the same bits as fresh arenas.
        let mut shared = DistScratch::new();
        let a = x.convolve_with(&y, &mut shared);
        let b = a.max_independent_with(&z, &mut shared);
        let c = b.convolve_with(&x, &mut shared);
        assert_bits_eq(&a, x.convolve(&y).atoms());
        assert_bits_eq(&b, a.max_independent(&z).atoms());
        assert_bits_eq(&c, b.convolve(&x).atoms());
    }

    #[test]
    fn from_sorted_atoms_matches_from_atoms(d in arb_dist()) {
        // A constructed support is sorted, so the sort-free constructor
        // must reproduce `from_atoms` exactly, merges and all.
        let fast = DiscreteDist::from_sorted_atoms(d.atoms().to_vec());
        assert_bits_eq(&fast, d.atoms());
    }

    #[test]
    fn reduce_support_in_place_matches_allocating(d in arb_dist(), cap in 1usize..8) {
        let reference = d.reduce_support(cap);
        let mut inplace = d.clone();
        inplace.reduce_support_in_place(cap);
        assert_bits_eq(&inplace, reference.atoms());
    }
}
