//! Finite discrete distributions over `f64` values.

/// Reusable scratch arena for the merge-based binary operations
/// ([`DiscreteDist::convolve_with`] /
/// [`DiscreteDist::max_independent_with`]).
///
/// Both operations combine an `n`-atom and an `m`-atom support into up
/// to `n·m` result atoms. The historical implementation materialized
/// all `n·m` pairs and sorted them (`O(nm log nm)` plus a second
/// allocation); the merge-based kernels instead treat the cross product
/// as `n` pre-sorted rows and k-way-merge them through a small binary
/// heap of per-row cursors. The heap lives here so a caller evaluating
/// thousands of series-parallel reductions (Dodin's forward pass, the
/// SP engine) performs **zero** intermediate allocations after the
/// first call: only the result vector of each operation is allocated.
///
/// The arena is plain state — create one with [`DistScratch::new`] (or
/// `Default`), hold it next to whatever long-lived evaluator owns the
/// hot loop, and pass it to every `*_with` call. Sharing one arena
/// across different distributions and operations is fine; the contents
/// carry no information between calls.
#[derive(Clone, Debug, Default)]
pub struct DistScratch {
    /// Min-heap of per-row merge cursors, keyed by `(value, row)`.
    heap: Vec<RowCursor>,
}

impl DistScratch {
    /// An empty arena; buffers grow on first use and are reused after.
    pub fn new() -> DistScratch {
        DistScratch::default()
    }
}

/// One row of the implicit `n × m` operand cross product: the next
/// not-yet-emitted element is `op(xs[row], ys[j])`, memoized in `v`.
#[derive(Clone, Copy, Debug)]
struct RowCursor {
    v: f64,
    row: u32,
    j: u32,
}

impl RowCursor {
    /// Heap order: smaller value first; ties broken by row index so the
    /// merged stream reproduces the stable sort of the row-major pair
    /// stream exactly (bit-identical accumulation order).
    #[inline]
    fn before(&self, other: &RowCursor) -> bool {
        match self.v.total_cmp(&other.v) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Equal => self.row < other.row,
            std::cmp::Ordering::Greater => false,
        }
    }
}

/// Restore the min-heap property downward from `i`.
fn sift_down(heap: &mut [RowCursor], mut i: usize) {
    loop {
        let l = 2 * i + 1;
        if l >= heap.len() {
            return;
        }
        let r = l + 1;
        let child = if r < heap.len() && heap[r].before(&heap[l]) {
            r
        } else {
            l
        };
        if heap[child].before(&heap[i]) {
            heap.swap(child, i);
            i = child;
        } else {
            return;
        }
    }
}

/// A finite discrete distribution: sorted support values with strictly
/// positive probabilities summing to 1 (up to rounding).
///
/// The in-place operations the series-parallel machinery needs —
/// convolution (sum of independent variables), independent maximum, and
/// mean-preserving support coarsening — are all closed over this
/// representation.
#[derive(Clone, Debug, PartialEq)]
pub struct DiscreteDist {
    /// `(value, probability)` pairs, sorted by value, probabilities > 0.
    atoms: Vec<(f64, f64)>,
}

impl DiscreteDist {
    /// Point mass at `v`.
    pub fn point(v: f64) -> DiscreteDist {
        assert!(v.is_finite(), "support value must be finite, got {v}");
        DiscreteDist {
            atoms: vec![(v, 1.0)],
        }
    }

    /// Build from `(value, probability)` pairs: sorts, merges equal
    /// values, drops zero-probability atoms.
    ///
    /// # Panics
    /// Panics on empty/invalid input or probabilities far from summing
    /// to 1.
    pub fn from_atoms(mut atoms: Vec<(f64, f64)>) -> DiscreteDist {
        assert!(!atoms.is_empty(), "a distribution needs at least one atom");
        for &(v, p) in &atoms {
            assert!(v.is_finite(), "support value must be finite, got {v}");
            assert!(
                p.is_finite() && p >= 0.0,
                "probability must be in [0, 1], got {p}"
            );
        }
        atoms.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(atoms.len());
        for (v, p) in atoms {
            if p == 0.0 {
                continue;
            }
            match merged.last_mut() {
                Some(last) if last.0 == v => last.1 += p,
                _ => merged.push((v, p)),
            }
        }
        assert!(!merged.is_empty(), "all atoms had zero probability");
        let total: f64 = merged.iter().map(|&(_, p)| p).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "probabilities sum to {total}, expected 1"
        );
        DiscreteDist { atoms: merged }
    }

    /// The `(value, probability)` atoms, sorted by value.
    #[inline]
    pub fn atoms(&self) -> &[(f64, f64)] {
        &self.atoms
    }

    /// Number of support atoms.
    #[inline]
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the support is empty (never true for a constructed
    /// distribution; present for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Whether this is a point mass.
    #[inline]
    pub fn is_point(&self) -> bool {
        self.atoms.len() == 1
    }

    /// Expectation.
    pub fn mean(&self) -> f64 {
        self.atoms.iter().map(|&(v, p)| v * p).sum()
    }

    /// Variance.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.atoms
            .iter()
            .map(|&(v, p)| p * (v - m) * (v - m))
            .sum::<f64>()
            .max(0.0)
    }

    /// Smallest support value.
    pub fn min_value(&self) -> f64 {
        self.atoms.first().expect("non-empty").0
    }

    /// Largest support value.
    pub fn max_value(&self) -> f64 {
        self.atoms.last().expect("non-empty").0
    }

    /// Total probability mass (≈ 1; drifts only by accumulated rounding).
    pub fn total_prob(&self) -> f64 {
        self.atoms.iter().map(|&(_, p)| p).sum()
    }

    /// `q`-quantile: the smallest support value `v` with
    /// `P(X ≤ v) ≥ q`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        let mut acc = 0.0;
        for &(v, p) in &self.atoms {
            acc += p;
            if acc >= q {
                return v;
            }
        }
        self.max_value()
    }

    /// `P(X ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        self.atoms
            .iter()
            .take_while(|&&(v, _)| v <= x)
            .map(|&(_, p)| p)
            .sum()
    }

    /// Build from `(value, probability)` pairs already sorted by value,
    /// skipping the `O(n log n)` sort of [`DiscreteDist::from_atoms`].
    /// Zero-probability atoms are still dropped and equal values are
    /// still merged, in place.
    ///
    /// Sortedness, finiteness, and the sum-to-one condition are checked
    /// only under `debug_assertions`; release builds trust the caller
    /// (this is the fast constructor for generators like `two_state`
    /// that emit sorted supports by construction).
    pub fn from_sorted_atoms(mut atoms: Vec<(f64, f64)>) -> DiscreteDist {
        debug_assert!(!atoms.is_empty(), "a distribution needs at least one atom");
        debug_assert!(
            atoms.windows(2).all(|w| w[0].0.total_cmp(&w[1].0).is_le()),
            "atoms must be sorted by value"
        );
        debug_assert!(
            atoms
                .iter()
                .all(|&(v, p)| v.is_finite() && p.is_finite() && p >= 0.0),
            "atoms must have finite values and probabilities in [0, 1]"
        );
        let mut w = 0usize;
        for r in 0..atoms.len() {
            let (v, p) = atoms[r];
            if p == 0.0 {
                continue;
            }
            if w > 0 && atoms[w - 1].0 == v {
                atoms[w - 1].1 += p;
            } else {
                atoms[w] = (v, p);
                w += 1;
            }
        }
        atoms.truncate(w);
        debug_assert!(!atoms.is_empty(), "all atoms had zero probability");
        debug_assert!(
            (atoms.iter().map(|&(_, p)| p).sum::<f64>() - 1.0).abs() < 1e-6,
            "probabilities must sum to 1"
        );
        DiscreteDist { atoms }
    }

    /// Distribution of `X + Y` for independent `X` (self), `Y` (other).
    pub fn convolve(&self, other: &DiscreteDist) -> DiscreteDist {
        self.convolve_with(other, &mut DistScratch::new())
    }

    /// [`convolve`](DiscreteDist::convolve) over a caller-provided
    /// [`DistScratch`]: no intermediate allocations once the arena is
    /// warm. Output is bit-identical to `convolve`.
    pub fn convolve_with(&self, other: &DiscreteDist, scratch: &mut DistScratch) -> DiscreteDist {
        self.merge_op(other, scratch, |vx, vy| vx + vy)
    }

    /// Distribution of `max(X, Y)` for independent `X`, `Y`.
    pub fn max_independent(&self, other: &DiscreteDist) -> DiscreteDist {
        self.max_independent_with(other, &mut DistScratch::new())
    }

    /// [`max_independent`](DiscreteDist::max_independent) over a
    /// caller-provided [`DistScratch`]: no intermediate allocations once
    /// the arena is warm. Output is bit-identical to `max_independent`.
    pub fn max_independent_with(
        &self,
        other: &DiscreteDist,
        scratch: &mut DistScratch,
    ) -> DiscreteDist {
        self.merge_op(other, scratch, |vx, vy| vx.max(vy))
    }

    /// Sorted-merge accumulation over the operand cross product.
    ///
    /// The historical kernel pushed all `n·m` pairs `(op(xᵢ, yⱼ),
    /// pᵢ·qⱼ)` in row-major order, stable-sorted them by value
    /// (`total_cmp`), and folded equal values left to right. Because
    /// each operand support is strictly increasing and `op` is
    /// monotone in its second argument, every row `i` of the cross
    /// product is already non-decreasing in `j` — so a k-way merge of
    /// the `n` rows through a min-heap keyed by `(value, row)` emits
    /// the elements in exactly the stable-sorted order (row index
    /// breaks value ties the way a stable sort of the row-major stream
    /// does, and equal values within a row are consecutive). The same
    /// skip-zeros/fold-equal accumulation over that stream therefore
    /// performs the identical sequence of `f64` additions and yields a
    /// bit-identical result in `O(nm log n)` with no intermediate
    /// buffer.
    fn merge_op(
        &self,
        other: &DiscreteDist,
        scratch: &mut DistScratch,
        op: impl Fn(f64, f64) -> f64,
    ) -> DiscreteDist {
        let xs = &self.atoms;
        let ys = &other.atoms;
        let (n, m) = (xs.len(), ys.len());
        let mut out: Vec<(f64, f64)> = Vec::with_capacity(n * m);
        let push = |v: f64, p: f64, out: &mut Vec<(f64, f64)>| {
            if p == 0.0 {
                return;
            }
            match out.last_mut() {
                Some(last) if last.0 == v => last.1 += p,
                _ => out.push((v, p)),
            }
        };
        if n == 1 {
            // One row: the row-major stream is already sorted.
            let (vx, px) = xs[0];
            for &(vy, py) in ys {
                push(op(vx, vy), px * py, &mut out);
            }
        } else if m == 1 {
            // One column: non-decreasing in the row index.
            let (vy, py) = ys[0];
            for &(vx, px) in xs {
                push(op(vx, vy), px * py, &mut out);
            }
        } else {
            let heap = &mut scratch.heap;
            heap.clear();
            heap.extend((0..n as u32).map(|row| RowCursor {
                v: op(xs[row as usize].0, ys[0].0),
                row,
                j: 0,
            }));
            for i in (0..n / 2).rev() {
                sift_down(heap, i);
            }
            while let Some(&top) = heap.first() {
                let px = xs[top.row as usize].1;
                let py = ys[top.j as usize].1;
                push(top.v, px * py, &mut out);
                let j = top.j + 1;
                if (j as usize) < m {
                    heap[0].j = j;
                    heap[0].v = op(xs[top.row as usize].0, ys[j as usize].0);
                } else {
                    let last = heap.pop().expect("heap is non-empty");
                    if let Some(slot) = heap.first_mut() {
                        *slot = last;
                    } else {
                        break;
                    }
                }
                sift_down(heap, 0);
            }
        }
        debug_assert!(!out.is_empty());
        DiscreteDist { atoms: out }
    }

    /// Coarsen the support to at most `max_atoms` atoms by repeatedly
    /// merging the adjacent pair whose merge introduces the least
    /// variance distortion (`p₁p₂/(p₁+p₂)·(v₂−v₁)²`), replacing the
    /// pair by its probability-weighted mean. The overall mean is
    /// preserved exactly (up to rounding); the support shrinks inward.
    pub fn reduce_support(&self, max_atoms: usize) -> DiscreteDist {
        let mut d = self.clone();
        d.reduce_support_in_place(max_atoms);
        d
    }

    /// In-place [`reduce_support`](DiscreteDist::reduce_support):
    /// allocation-free, and in particular a plain length check when the
    /// support is already within budget (the common case in capped
    /// series-parallel evaluation).
    pub fn reduce_support_in_place(&mut self, max_atoms: usize) {
        assert!(max_atoms >= 1, "need at least one atom");
        let atoms = &mut self.atoms;
        while atoms.len() > max_atoms {
            let mut best = 0usize;
            let mut best_cost = f64::INFINITY;
            for i in 0..atoms.len() - 1 {
                let (v1, p1) = atoms[i];
                let (v2, p2) = atoms[i + 1];
                let cost = p1 * p2 / (p1 + p2) * (v2 - v1) * (v2 - v1);
                if cost < best_cost {
                    best_cost = cost;
                    best = i;
                }
            }
            let (v1, p1) = atoms[best];
            let (v2, p2) = atoms[best + 1];
            let p = p1 + p2;
            atoms[best] = ((p1 * v1 + p2 * v2) / p, p);
            atoms.remove(best + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two(a: f64, p: f64) -> DiscreteDist {
        DiscreteDist::from_atoms(vec![(a, p), (2.0 * a, 1.0 - p)])
    }

    #[test]
    fn point_mass_basics() {
        let d = DiscreteDist::point(3.0);
        assert!(d.is_point());
        assert_eq!(d.mean(), 3.0);
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.min_value(), 3.0);
        assert_eq!(d.max_value(), 3.0);
        assert_eq!(d.quantile(0.5), 3.0);
    }

    #[test]
    fn from_atoms_sorts_and_merges() {
        let d = DiscreteDist::from_atoms(vec![(2.0, 0.25), (1.0, 0.5), (2.0, 0.25)]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.atoms(), &[(1.0, 0.5), (2.0, 0.5)]);
    }

    #[test]
    fn convolution_of_two_state() {
        // {1: .9, 2: .1} + {1: .9, 2: .1} = {2: .81, 3: .18, 4: .01}.
        let d = two(1.0, 0.9).convolve(&two(1.0, 0.9));
        assert_eq!(d.len(), 3);
        assert!((d.cdf(2.0) - 0.81).abs() < 1e-15);
        assert!((d.mean() - 2.2).abs() < 1e-15);
    }

    #[test]
    fn max_of_iid_two_state() {
        // max{1 w.p. .9, 2 w.p. .1}²: P(1) = .81, P(2) = .19.
        let d = two(1.0, 0.9).max_independent(&two(1.0, 0.9));
        assert_eq!(d.len(), 2);
        assert!((d.mean() - (0.81 + 2.0 * 0.19)).abs() < 1e-15);
    }

    #[test]
    fn convolve_with_point_shifts() {
        let d = two(1.0, 0.5).convolve(&DiscreteDist::point(10.0));
        assert_eq!(d.atoms(), &[(11.0, 0.5), (12.0, 0.5)]);
    }

    #[test]
    fn max_with_dominant_point() {
        let d = two(1.0, 0.5).max_independent(&DiscreteDist::point(10.0));
        assert!(d.is_point());
        assert_eq!(d.mean(), 10.0);
    }

    #[test]
    fn reduce_support_preserves_mean() {
        // Binomial-ish support from repeated convolutions.
        let a = two(0.15, 0.999);
        let mut big = a.clone();
        for _ in 0..7 {
            big = big.convolve(&a);
        }
        let before = big.mean();
        for cap in [64, 16, 4, 2, 1] {
            let red = big.reduce_support(cap);
            assert!(red.len() <= cap);
            assert!(
                (red.mean() - before).abs() < 1e-12 * (1.0 + before.abs()),
                "cap {cap}: {} vs {before}",
                red.mean()
            );
        }
    }

    #[test]
    fn reduce_support_noop_when_small() {
        let d = two(1.0, 0.5);
        assert_eq!(d.reduce_support(10), d);
    }

    #[test]
    fn quantiles_walk_the_cdf() {
        let d = DiscreteDist::from_atoms(vec![(1.0, 0.2), (2.0, 0.5), (5.0, 0.3)]);
        assert_eq!(d.quantile(0.0), 1.0);
        assert_eq!(d.quantile(0.2), 1.0);
        assert_eq!(d.quantile(0.21), 2.0);
        assert_eq!(d.quantile(0.7), 2.0);
        assert_eq!(d.quantile(0.71), 5.0);
        assert_eq!(d.quantile(1.0), 5.0);
    }

    #[test]
    fn variance_matches_closed_form() {
        let d = two(1.0, 0.9);
        assert!((d.variance() - 0.09).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn bad_mass_rejected() {
        DiscreteDist::from_atoms(vec![(1.0, 0.5), (2.0, 0.2)]);
    }
}
