//! Finite discrete distributions over `f64` values.

/// A finite discrete distribution: sorted support values with strictly
/// positive probabilities summing to 1 (up to rounding).
///
/// The in-place operations the series-parallel machinery needs —
/// convolution (sum of independent variables), independent maximum, and
/// mean-preserving support coarsening — are all closed over this
/// representation.
#[derive(Clone, Debug, PartialEq)]
pub struct DiscreteDist {
    /// `(value, probability)` pairs, sorted by value, probabilities > 0.
    atoms: Vec<(f64, f64)>,
}

impl DiscreteDist {
    /// Point mass at `v`.
    pub fn point(v: f64) -> DiscreteDist {
        assert!(v.is_finite(), "support value must be finite, got {v}");
        DiscreteDist {
            atoms: vec![(v, 1.0)],
        }
    }

    /// Build from `(value, probability)` pairs: sorts, merges equal
    /// values, drops zero-probability atoms.
    ///
    /// # Panics
    /// Panics on empty/invalid input or probabilities far from summing
    /// to 1.
    pub fn from_atoms(mut atoms: Vec<(f64, f64)>) -> DiscreteDist {
        assert!(!atoms.is_empty(), "a distribution needs at least one atom");
        for &(v, p) in &atoms {
            assert!(v.is_finite(), "support value must be finite, got {v}");
            assert!(
                p.is_finite() && p >= 0.0,
                "probability must be in [0, 1], got {p}"
            );
        }
        atoms.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(atoms.len());
        for (v, p) in atoms {
            if p == 0.0 {
                continue;
            }
            match merged.last_mut() {
                Some(last) if last.0 == v => last.1 += p,
                _ => merged.push((v, p)),
            }
        }
        assert!(!merged.is_empty(), "all atoms had zero probability");
        let total: f64 = merged.iter().map(|&(_, p)| p).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "probabilities sum to {total}, expected 1"
        );
        DiscreteDist { atoms: merged }
    }

    /// The `(value, probability)` atoms, sorted by value.
    #[inline]
    pub fn atoms(&self) -> &[(f64, f64)] {
        &self.atoms
    }

    /// Number of support atoms.
    #[inline]
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the support is empty (never true for a constructed
    /// distribution; present for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Whether this is a point mass.
    #[inline]
    pub fn is_point(&self) -> bool {
        self.atoms.len() == 1
    }

    /// Expectation.
    pub fn mean(&self) -> f64 {
        self.atoms.iter().map(|&(v, p)| v * p).sum()
    }

    /// Variance.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.atoms
            .iter()
            .map(|&(v, p)| p * (v - m) * (v - m))
            .sum::<f64>()
            .max(0.0)
    }

    /// Smallest support value.
    pub fn min_value(&self) -> f64 {
        self.atoms.first().expect("non-empty").0
    }

    /// Largest support value.
    pub fn max_value(&self) -> f64 {
        self.atoms.last().expect("non-empty").0
    }

    /// Total probability mass (≈ 1; drifts only by accumulated rounding).
    pub fn total_prob(&self) -> f64 {
        self.atoms.iter().map(|&(_, p)| p).sum()
    }

    /// `q`-quantile: the smallest support value `v` with
    /// `P(X ≤ v) ≥ q`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        let mut acc = 0.0;
        for &(v, p) in &self.atoms {
            acc += p;
            if acc >= q {
                return v;
            }
        }
        self.max_value()
    }

    /// `P(X ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        self.atoms
            .iter()
            .take_while(|&&(v, _)| v <= x)
            .map(|&(_, p)| p)
            .sum()
    }

    /// Distribution of `X + Y` for independent `X` (self), `Y` (other).
    pub fn convolve(&self, other: &DiscreteDist) -> DiscreteDist {
        let mut atoms = Vec::with_capacity(self.len() * other.len());
        for &(vx, px) in &self.atoms {
            for &(vy, py) in &other.atoms {
                atoms.push((vx + vy, px * py));
            }
        }
        Self::from_pairs_unchecked(atoms)
    }

    /// Distribution of `max(X, Y)` for independent `X`, `Y`.
    pub fn max_independent(&self, other: &DiscreteDist) -> DiscreteDist {
        let mut atoms = Vec::with_capacity(self.len() * other.len());
        for &(vx, px) in &self.atoms {
            for &(vy, py) in &other.atoms {
                atoms.push((vx.max(vy), px * py));
            }
        }
        Self::from_pairs_unchecked(atoms)
    }

    /// Coarsen the support to at most `max_atoms` atoms by repeatedly
    /// merging the adjacent pair whose merge introduces the least
    /// variance distortion (`p₁p₂/(p₁+p₂)·(v₂−v₁)²`), replacing the
    /// pair by its probability-weighted mean. The overall mean is
    /// preserved exactly (up to rounding); the support shrinks inward.
    pub fn reduce_support(&self, max_atoms: usize) -> DiscreteDist {
        assert!(max_atoms >= 1, "need at least one atom");
        if self.len() <= max_atoms {
            return self.clone();
        }
        let mut atoms = self.atoms.clone();
        while atoms.len() > max_atoms {
            let mut best = 0usize;
            let mut best_cost = f64::INFINITY;
            for i in 0..atoms.len() - 1 {
                let (v1, p1) = atoms[i];
                let (v2, p2) = atoms[i + 1];
                let cost = p1 * p2 / (p1 + p2) * (v2 - v1) * (v2 - v1);
                if cost < best_cost {
                    best_cost = cost;
                    best = i;
                }
            }
            let (v1, p1) = atoms[best];
            let (v2, p2) = atoms[best + 1];
            let p = p1 + p2;
            atoms[best] = ((p1 * v1 + p2 * v2) / p, p);
            atoms.remove(best + 1);
        }
        DiscreteDist { atoms }
    }

    /// Sort + merge without the sum-to-one assertion (products of many
    /// probabilities accumulate rounding; the operations themselves
    /// conserve mass).
    fn from_pairs_unchecked(mut atoms: Vec<(f64, f64)>) -> DiscreteDist {
        atoms.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(atoms.len());
        for (v, p) in atoms {
            if p == 0.0 {
                continue;
            }
            match merged.last_mut() {
                Some(last) if last.0 == v => last.1 += p,
                _ => merged.push((v, p)),
            }
        }
        debug_assert!(!merged.is_empty());
        DiscreteDist { atoms: merged }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two(a: f64, p: f64) -> DiscreteDist {
        DiscreteDist::from_atoms(vec![(a, p), (2.0 * a, 1.0 - p)])
    }

    #[test]
    fn point_mass_basics() {
        let d = DiscreteDist::point(3.0);
        assert!(d.is_point());
        assert_eq!(d.mean(), 3.0);
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.min_value(), 3.0);
        assert_eq!(d.max_value(), 3.0);
        assert_eq!(d.quantile(0.5), 3.0);
    }

    #[test]
    fn from_atoms_sorts_and_merges() {
        let d = DiscreteDist::from_atoms(vec![(2.0, 0.25), (1.0, 0.5), (2.0, 0.25)]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.atoms(), &[(1.0, 0.5), (2.0, 0.5)]);
    }

    #[test]
    fn convolution_of_two_state() {
        // {1: .9, 2: .1} + {1: .9, 2: .1} = {2: .81, 3: .18, 4: .01}.
        let d = two(1.0, 0.9).convolve(&two(1.0, 0.9));
        assert_eq!(d.len(), 3);
        assert!((d.cdf(2.0) - 0.81).abs() < 1e-15);
        assert!((d.mean() - 2.2).abs() < 1e-15);
    }

    #[test]
    fn max_of_iid_two_state() {
        // max{1 w.p. .9, 2 w.p. .1}²: P(1) = .81, P(2) = .19.
        let d = two(1.0, 0.9).max_independent(&two(1.0, 0.9));
        assert_eq!(d.len(), 2);
        assert!((d.mean() - (0.81 + 2.0 * 0.19)).abs() < 1e-15);
    }

    #[test]
    fn convolve_with_point_shifts() {
        let d = two(1.0, 0.5).convolve(&DiscreteDist::point(10.0));
        assert_eq!(d.atoms(), &[(11.0, 0.5), (12.0, 0.5)]);
    }

    #[test]
    fn max_with_dominant_point() {
        let d = two(1.0, 0.5).max_independent(&DiscreteDist::point(10.0));
        assert!(d.is_point());
        assert_eq!(d.mean(), 10.0);
    }

    #[test]
    fn reduce_support_preserves_mean() {
        // Binomial-ish support from repeated convolutions.
        let a = two(0.15, 0.999);
        let mut big = a.clone();
        for _ in 0..7 {
            big = big.convolve(&a);
        }
        let before = big.mean();
        for cap in [64, 16, 4, 2, 1] {
            let red = big.reduce_support(cap);
            assert!(red.len() <= cap);
            assert!(
                (red.mean() - before).abs() < 1e-12 * (1.0 + before.abs()),
                "cap {cap}: {} vs {before}",
                red.mean()
            );
        }
    }

    #[test]
    fn reduce_support_noop_when_small() {
        let d = two(1.0, 0.5);
        assert_eq!(d.reduce_support(10), d);
    }

    #[test]
    fn quantiles_walk_the_cdf() {
        let d = DiscreteDist::from_atoms(vec![(1.0, 0.2), (2.0, 0.5), (5.0, 0.3)]);
        assert_eq!(d.quantile(0.0), 1.0);
        assert_eq!(d.quantile(0.2), 1.0);
        assert_eq!(d.quantile(0.21), 2.0);
        assert_eq!(d.quantile(0.7), 2.0);
        assert_eq!(d.quantile(0.71), 5.0);
        assert_eq!(d.quantile(1.0), 5.0);
    }

    #[test]
    fn variance_matches_closed_form() {
        let d = two(1.0, 0.9);
        assert!((d.variance() - 0.09).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn bad_mass_rejected() {
        DiscreteDist::from_atoms(vec![(1.0, 0.5), (2.0, 0.2)]);
    }
}
