//! Per-task duration tables under an exponential silent-error rate.
//!
//! Every estimator derives the same per-node quantities from a weight
//! vector and a rate λ: the per-attempt success probability
//! `pᵢ = e^{−λaᵢ}`, its complement `1 − e^{−λaᵢ}` (computed via
//! `expm1` for accuracy at small rates), and the exact 2-state duration
//! moments `E = a(2 − p)`, `Var = a²p(1 − p)`. [`DurationTable`] hoists
//! those into one table built once per (graph, model) pair, so an
//! estimator's inner loops become plain array lookups and a prepared
//! estimator evaluating many models can rebuild the table in place
//! without reallocating.
//!
//! The formulas here are byte-for-byte the ones the estimators used
//! inline before the table existed — prepared and one-shot evaluation
//! paths must stay bit-identical.

use crate::dist::DiscreteDist;
use crate::normal::Normal;
use crate::{failure_probability, two_state_moments, TaskDurationModel};

/// Per-node duration quantities for one (weights, λ) pair.
#[derive(Clone, Debug, Default)]
pub struct DurationTable {
    lambda: f64,
    weights: Vec<f64>,
    psuccess: Vec<f64>,
    pfail: Vec<f64>,
    mean: Vec<f64>,
    var: Vec<f64>,
}

impl DurationTable {
    /// Build a table for the given weights under rate `lambda`.
    ///
    /// # Panics
    /// Panics if `lambda` is negative or non-finite.
    pub fn new(lambda: f64, weights: &[f64]) -> DurationTable {
        let mut t = DurationTable::default();
        t.rebuild(lambda, weights);
        t
    }

    /// Refill the table in place for new inputs, reusing the existing
    /// allocations (the prepared-estimator hot path: one scratch table
    /// per preparation, rebuilt per failure model).
    pub fn rebuild(&mut self, lambda: f64, weights: &[f64]) {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "lambda must be finite and non-negative, got {lambda}"
        );
        self.lambda = lambda;
        self.weights.clear();
        self.weights.extend_from_slice(weights);
        self.psuccess.clear();
        self.pfail.clear();
        self.mean.clear();
        self.var.clear();
        for &a in weights {
            let p = (-lambda * a).exp();
            let (m, v) = two_state_moments(a, p);
            self.psuccess.push(p);
            self.pfail.push(failure_probability(lambda, a));
            self.mean.push(m);
            self.var.push(v);
        }
    }

    /// The rate λ this table was built for.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Number of tasks.
    #[inline]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the table is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Weight `aᵢ` of task `i`.
    #[inline]
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Per-attempt success probability `e^{−λaᵢ}` of task `i`.
    #[inline]
    pub fn psuccess(&self, i: usize) -> f64 {
        self.psuccess[i]
    }

    /// Per-attempt failure probability `1 − e^{−λaᵢ}` of task `i`.
    #[inline]
    pub fn pfail(&self, i: usize) -> f64 {
        self.pfail[i]
    }

    /// All success probabilities, indexed by task.
    #[inline]
    pub fn psuccess_all(&self) -> &[f64] {
        &self.psuccess
    }

    /// All failure probabilities, indexed by task.
    #[inline]
    pub fn pfail_all(&self) -> &[f64] {
        &self.pfail
    }

    /// Mean of the 2-state duration of task `i`: `aᵢ(2 − pᵢ)`.
    #[inline]
    pub fn two_state_mean(&self, i: usize) -> f64 {
        self.mean[i]
    }

    /// Variance of the 2-state duration of task `i`: `aᵢ²pᵢ(1 − pᵢ)`.
    #[inline]
    pub fn two_state_var(&self, i: usize) -> f64 {
        self.var[i]
    }

    /// Normal of the same mean/variance as task `i`'s 2-state duration
    /// — the per-task input of the normal-propagation estimators.
    #[inline]
    pub fn two_state_normal(&self, i: usize) -> Normal {
        Normal::from_mean_var(self.mean[i], self.var[i])
    }

    /// Discrete duration distribution of task `i` under `model`.
    pub fn duration_dist(&self, i: usize, model: TaskDurationModel) -> DiscreteDist {
        model.duration_dist(self.weights[i], self.psuccess[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_inline_formulas() {
        let weights = [0.0, 0.5, 2.0];
        let lambda = 0.3;
        let t = DurationTable::new(lambda, &weights);
        assert_eq!(t.len(), 3);
        assert_eq!(t.lambda(), lambda);
        for (i, &a) in weights.iter().enumerate() {
            let p = (-lambda * a).exp();
            assert_eq!(t.weight(i), a);
            assert_eq!(t.psuccess(i), p, "psuccess must be the exp() value");
            assert_eq!(
                t.pfail(i),
                failure_probability(lambda, a),
                "pfail must be the expm1 value"
            );
            let (m, v) = two_state_moments(a, p);
            assert_eq!(t.two_state_mean(i), m);
            assert_eq!(t.two_state_var(i), v);
            let n = t.two_state_normal(i);
            assert_eq!(n.mean, m);
            assert_eq!(n.var(), Normal::from_mean_var(m, v).var());
        }
        assert_eq!(t.psuccess_all().len(), 3);
        assert_eq!(t.pfail_all().len(), 3);
    }

    #[test]
    fn rebuild_reuses_and_overwrites() {
        let mut t = DurationTable::new(0.1, &[1.0, 2.0, 3.0]);
        t.rebuild(0.2, &[4.0]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.weight(0), 4.0);
        assert_eq!(t.psuccess(0), (-0.2f64 * 4.0).exp());
        let fresh = DurationTable::new(0.2, &[4.0]);
        assert_eq!(t.pfail(0), fresh.pfail(0));
    }

    #[test]
    fn duration_dists_match_model_dispatch() {
        let t = DurationTable::new(0.4, &[1.5]);
        let two = t.duration_dist(0, TaskDurationModel::TwoState);
        assert_eq!(
            two,
            crate::two_state(1.5, (-0.4f64 * 1.5).exp()),
            "table dispatch must equal the inline construction"
        );
        let geo = t.duration_dist(0, TaskDurationModel::GeometricTruncated { tail_eps: 1e-9 });
        assert!(geo.len() > 2);
    }

    #[test]
    fn failure_free_is_deterministic() {
        let t = DurationTable::new(0.0, &[1.0, 2.0]);
        assert_eq!(t.psuccess(0), 1.0);
        assert_eq!(t.pfail(1), 0.0);
        assert_eq!(t.two_state_var(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn negative_lambda_rejected() {
        DurationTable::new(-1.0, &[1.0]);
    }
}
