//! Normal random variables, `Φ`/`φ`, and Clark's max-moment formulas.

/// The error function `erf(x)`, accurate to ~1e-15 relative.
///
/// Maclaurin series for `|x| ≤ 2` (terms decay fast there), modified
/// Lentz continued fraction for the complementary function beyond.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    if x == 0.0 {
        return 0.0;
    }
    if x <= 2.0 {
        // erf(x) = 2/√π · Σ_{n≥0} (−1)^n x^{2n+1} / (n! (2n+1))
        let x2 = x * x;
        let mut term = x;
        let mut sum = x;
        let mut n = 1u32;
        loop {
            term *= -x2 / n as f64;
            let contrib = term / (2 * n + 1) as f64;
            sum += contrib;
            if contrib.abs() < 1e-18 * sum.abs() {
                break;
            }
            n += 1;
            debug_assert!(n < 200, "series failed to converge at x = {x}");
        }
        sum * std::f64::consts::FRAC_2_SQRT_PI
    } else {
        1.0 - erfc_large(x)
    }
}

/// `erfc(x)` for `x > 2` via the continued fraction
/// `erfc(x) = e^{−x²}/√π · 1/(x + 1/2/(x + 1/(x + 3/2/(x + …))))`
/// evaluated with the modified Lentz algorithm.
fn erfc_large(x: f64) -> f64 {
    if x > 27.0 {
        return 0.0; // below the smallest positive f64 after scaling
    }
    const TINY: f64 = 1e-300;
    let mut f = TINY;
    let mut c = f;
    let mut d = 0.0f64;
    // Continued fraction K_{n≥1} with b_n = x for odd steps … easier in
    // the standard form: erfc(x)·√π·e^{x²} = 1/(x+) (1/2)/(x+) 1/(x+)
    // (3/2)/(x+) 2/(x+) …, i.e. a_1 = 1, a_{n+1} = n/2, b_n = x.
    let mut n = 0u32;
    loop {
        let (a, b) = if n == 0 {
            (1.0, x)
        } else {
            (n as f64 / 2.0, x)
        };
        d = b + a * d;
        if d == 0.0 {
            d = TINY;
        }
        c = b + a / c;
        if c == 0.0 {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
        n += 1;
        debug_assert!(n < 500, "continued fraction failed at x = {x}");
    }
    (-x * x).exp() / std::f64::consts::PI.sqrt() * f
}

/// Standard normal density `φ(z)`.
#[inline]
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF `Φ(z)`.
#[inline]
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// A (possibly degenerate) normal random variable.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal {
    /// Mean.
    pub mean: f64,
    /// Standard deviation (≥ 0; 0 is a point mass).
    pub sd: f64,
}

impl Normal {
    /// Normal with the given mean and standard deviation.
    ///
    /// # Panics
    /// Panics if `sd` is negative or either parameter is non-finite.
    pub fn new(mean: f64, sd: f64) -> Normal {
        assert!(
            mean.is_finite() && sd.is_finite() && sd >= 0.0,
            "bad normal parameters ({mean}, {sd})"
        );
        Normal { mean, sd }
    }

    /// Normal from mean and variance (negative variance from floating
    /// point cancellation is clamped to zero).
    pub fn from_mean_var(mean: f64, var: f64) -> Normal {
        Normal::new(mean, var.max(0.0).sqrt())
    }

    /// Variance `σ²`.
    #[inline]
    pub fn var(&self) -> f64 {
        self.sd * self.sd
    }

    /// CDF `P(X ≤ x)`; a step function when degenerate.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sd == 0.0 {
            if x >= self.mean {
                1.0
            } else {
                0.0
            }
        } else {
            normal_cdf((x - self.mean) / self.sd)
        }
    }
}

/// Moments of `max(X, Y)` from [`clark_max_moments`].
#[derive(Clone, Copy, Debug)]
pub struct ClarkMoments {
    /// `E[max(X, Y)]`.
    pub mean: f64,
    /// `Var[max(X, Y)]`.
    pub var: f64,
    /// `Φ(α) = P(X ≥ Y)` under the joint normal model — the weight of
    /// the first maximand (used by CorLCA's canonical-branch choice and
    /// by the covariance update `Cov(max(X,Y), Z) = Φ(α)·Cov(X,Z) +
    /// Φ(−α)·Cov(Y,Z)`).
    pub phi_alpha: f64,
}

/// Clark's 1961 formulas for the first two moments of `max(X, Y)` of
/// jointly normal `X`, `Y` with correlation `rho`.
///
/// The hot path is straight-line: one `erf` evaluation serves both
/// `Φ(α)` and `Φ(−α)` (the IEEE identities `−α/√2 = −(α/√2)`,
/// `erf(−z) = −erf(z)`, and `1 + (−e) = 1 − e` make the complement
/// exact, so the second transcendental call of the textbook form is
/// redundant bit-for-bit), and the degenerate case is an out-of-line
/// cold branch.
pub fn clark_max_moments(x: Normal, y: Normal, rho: f64) -> ClarkMoments {
    debug_assert!((-1.0..=1.0).contains(&rho), "correlation {rho}");
    let a2 = (x.var() + y.var() - 2.0 * rho * x.sd * y.sd).max(0.0);
    let a = a2.sqrt();
    if a < 1e-300 {
        return clark_degenerate(x, y);
    }
    let alpha = (x.mean - y.mean) / a;
    let e = erf(alpha / std::f64::consts::SQRT_2);
    let phi = 0.5 * (1.0 + e);
    let phi_neg = 0.5 * (1.0 - e);
    let pdf = normal_pdf(alpha);
    let m1 = x.mean * phi + y.mean * phi_neg + a * pdf;
    let m2 = (x.mean * x.mean + x.var()) * phi
        + (y.mean * y.mean + y.var()) * phi_neg
        + (x.mean + y.mean) * a * pdf;
    ClarkMoments {
        mean: m1,
        var: (m2 - m1 * m1).max(0.0),
        phi_alpha: phi,
    }
}

/// Degenerate difference: `X − Y` is (almost surely) constant, so the
/// max is just the larger-mean variable.
#[cold]
fn clark_degenerate(x: Normal, y: Normal) -> ClarkMoments {
    if x.mean >= y.mean {
        ClarkMoments {
            mean: x.mean,
            var: x.var(),
            phi_alpha: 1.0,
        }
    } else {
        ClarkMoments {
            mean: y.mean,
            var: y.var(),
            phi_alpha: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values (Abramowitz & Stegun / mpmath).
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778130465),
            (1.0, 0.8427007929497149),
            (1.5, 0.9661051464753107),
            (2.0, 0.9953222650189527),
            (2.5, 0.999593047982555),
            (3.0, 0.9999779095030014),
            (4.0, 0.9999999845827421),
        ];
        for (x, want) in cases {
            let got = erf(x);
            assert!((got - want).abs() < 1e-14, "erf({x}) = {got}, want {want}");
            assert!((erf(-x) + want).abs() < 1e-14, "odd symmetry at {x}");
        }
    }

    #[test]
    fn cdf_symmetry_and_tails() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-15);
        for z in [0.1, 0.7, 1.3, 2.9, 5.0] {
            assert!((normal_cdf(z) + normal_cdf(-z) - 1.0).abs() < 1e-14);
        }
        assert!(normal_cdf(-9.0) < 1e-18);
        assert!(normal_cdf(9.0) >= 1.0 - 1e-15);
        // Φ(1.96) ≈ 0.975.
        assert!((normal_cdf(1.959963984540054) - 0.975).abs() < 1e-12);
    }

    #[test]
    fn clark_independent_equal_normals() {
        // max of two iid N(0, 1): mean = 1/√π, var = 1 − 1/π.
        let n = Normal::new(0.0, 1.0);
        let m = clark_max_moments(n, n, 0.0);
        let pi = std::f64::consts::PI;
        assert!((m.mean - 1.0 / pi.sqrt()).abs() < 1e-14, "{}", m.mean);
        assert!((m.var - (1.0 - 1.0 / pi)).abs() < 1e-14, "{}", m.var);
        assert!((m.phi_alpha - 0.5).abs() < 1e-15);
    }

    #[test]
    fn clark_dominant_maximand() {
        // Far-apart means: max ≈ the larger one.
        let x = Normal::new(10.0, 0.1);
        let y = Normal::new(0.0, 0.1);
        let m = clark_max_moments(x, y, 0.0);
        assert!((m.mean - 10.0).abs() < 1e-12);
        assert!((m.var - x.var()).abs() < 1e-12);
        assert!(m.phi_alpha > 1.0 - 1e-12);
    }

    #[test]
    fn clark_degenerate_point_masses() {
        let x = Normal::new(3.0, 0.0);
        let y = Normal::new(5.0, 0.0);
        let m = clark_max_moments(x, y, 0.0);
        assert_eq!(m.mean, 5.0);
        assert_eq!(m.var, 0.0);
        assert_eq!(m.phi_alpha, 0.0);
    }

    #[test]
    fn clark_perfect_correlation_same_sd() {
        // rho = 1 with equal sd: X − Y constant ⇒ max is the larger mean.
        let x = Normal::new(1.0, 0.5);
        let y = Normal::new(2.0, 0.5);
        let m = clark_max_moments(x, y, 1.0);
        assert!((m.mean - 2.0).abs() < 1e-12);
        assert!((m.var - 0.25).abs() < 1e-12);
    }

    #[test]
    fn clark_monte_carlo_cross_check() {
        // Correlated case against a quick deterministic lattice
        // integration of E[max] over the joint density.
        let x = Normal::new(1.0, 0.8);
        let y = Normal::new(1.5, 0.4);
        let rho: f64 = 0.6;
        let m = clark_max_moments(x, y, rho);
        // 2-D Gauss quadrature over independent (z1, z2), with
        // y = μy + σy(ρ z1 + √(1−ρ²) z2).
        let steps = 400;
        let (mut e, mut e2, mut wsum) = (0.0f64, 0.0f64, 0.0f64);
        for i in 0..steps {
            let z1 = -5.0 + 10.0 * (i as f64 + 0.5) / steps as f64;
            let w1 = normal_pdf(z1);
            for j in 0..steps {
                let z2 = -5.0 + 10.0 * (j as f64 + 0.5) / steps as f64;
                let w = w1 * normal_pdf(z2);
                let xv = x.mean + x.sd * z1;
                let yv = y.mean + y.sd * (rho * z1 + (1.0 - rho * rho).sqrt() * z2);
                let mx = xv.max(yv);
                e += w * mx;
                e2 += w * mx * mx;
                wsum += w;
            }
        }
        e /= wsum;
        e2 /= wsum;
        assert!((m.mean - e).abs() < 1e-3, "clark {} vs quad {e}", m.mean);
        assert!((m.var - (e2 - e * e)).abs() < 1e-3);
    }

    #[test]
    fn normal_cdf_method_handles_degenerate() {
        let p = Normal::new(2.0, 0.0);
        assert_eq!(p.cdf(1.9), 0.0);
        assert_eq!(p.cdf(2.0), 1.0);
        let n = Normal::new(0.0, 2.0);
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn from_mean_var_clamps_negative() {
        let n = Normal::from_mean_var(1.0, -1e-18);
        assert_eq!(n.sd, 0.0);
    }
}
