//! # stochdag-dist — probability substrate
//!
//! The numeric layer under every estimator in the workspace:
//!
//! * [`DiscreteDist`] — finite discrete distributions with convolution,
//!   independent maximum, and mean-preserving support coarsening (the
//!   primitives of Dodin's series-parallel evaluation).
//! * [`Normal`] + [`clark_max_moments`] — normal random variables, the
//!   `Φ`/`φ` special functions, and Clark's 1961 moment formulas for
//!   `max(X, Y)` of correlated normals (the Sculli/CorLCA/covariance
//!   estimators).
//! * [`two_state`] / [`geometric_truncated`] / [`TaskDurationModel`] —
//!   task-duration models under silent errors: a task of weight `a`
//!   succeeds an attempt with probability `p`, so its duration is `a`
//!   w.p. `p` and `2a` otherwise (2-state), or `k·a` w.p.
//!   `p(1−p)^{k−1}` (geometric re-execution).
//! * [`DurationTable`] — the per-node success/failure probabilities and
//!   2-state moments for a whole weight vector, built once per
//!   (graph, model) pair and shared by an estimator's inner loops.
//! * [`failure_probability`] / [`lambda_for_failure_probability`] /
//!   [`mtbf`] — the paper's exponential-rate calibration (Section V-C).

mod dist;
mod duration;
mod normal;

pub use dist::{DiscreteDist, DistScratch};
pub use duration::DurationTable;
pub use normal::{clark_max_moments, erf, normal_cdf, normal_pdf, ClarkMoments, Normal};

/// Per-attempt failure probability `1 − e^{−λa}` of a task of weight
/// `a` under error rate `λ`.
#[inline]
pub fn failure_probability(lambda: f64, a: f64) -> f64 {
    debug_assert!(lambda >= 0.0 && a >= 0.0);
    -(-lambda * a).exp_m1()
}

/// The rate `λ` at which a task of weight `mean_weight` fails with
/// probability `pfail`: `λ = −ln(1 − pfail) / mean_weight`.
///
/// # Panics
/// Panics unless `0 ≤ pfail < 1` and `mean_weight > 0`.
pub fn lambda_for_failure_probability(pfail: f64, mean_weight: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&pfail),
        "pfail must be in [0, 1), got {pfail}"
    );
    assert!(
        mean_weight > 0.0 && mean_weight.is_finite(),
        "mean weight must be positive, got {mean_weight}"
    );
    -(-pfail).ln_1p() / mean_weight
}

/// Mean time between failures `1/λ` (`+∞` for a failure-free model).
#[inline]
pub fn mtbf(lambda: f64) -> f64 {
    if lambda == 0.0 {
        f64::INFINITY
    } else {
        1.0 / lambda
    }
}

/// 2-state duration of a task of weight `a` with per-attempt success
/// probability `p`: `a` w.p. `p`, `2a` w.p. `1 − p` (at most one
/// re-execution — the first-order model's own truncation).
pub fn two_state(a: f64, p_success: f64) -> DiscreteDist {
    assert!(
        (0.0..=1.0).contains(&p_success),
        "success probability {p_success} out of range"
    );
    if a == 0.0 || p_success >= 1.0 {
        return DiscreteDist::point(a);
    }
    if p_success <= 0.0 {
        return DiscreteDist::point(2.0 * a);
    }
    // `a < 2a` for every positive weight, so the support is sorted by
    // construction — take the sort-free constructor.
    DiscreteDist::from_sorted_atoms(vec![(a, p_success), (2.0 * a, 1.0 - p_success)])
}

/// Mean and variance of the 2-state duration:
/// `E = a(2 − p)`, `Var = a²p(1 − p)`.
#[inline]
pub fn two_state_moments(a: f64, p_success: f64) -> (f64, f64) {
    (a * (2.0 - p_success), a * a * p_success * (1.0 - p_success))
}

/// Truncated-geometric duration: `k·a` w.p. `p(1−p)^{k−1}`, truncated
/// at the first `k` whose remaining tail mass drops below `tail_eps`
/// (the tail mass is folded into the last atom so the distribution
/// still sums to 1).
pub fn geometric_truncated(a: f64, p_success: f64, tail_eps: f64) -> DiscreteDist {
    assert!(
        (0.0..=1.0).contains(&p_success),
        "success probability {p_success} out of range"
    );
    assert!(tail_eps > 0.0, "tail_eps must be positive");
    if a == 0.0 || p_success >= 1.0 {
        return DiscreteDist::point(a);
    }
    assert!(
        p_success > 0.0,
        "geometric durations need a positive success probability"
    );
    let q = 1.0 - p_success;
    let mut atoms = Vec::new();
    let mut k = 1u32;
    let mut tail = 1.0f64; // P(attempts >= k)
                           // Hard cap mirrors the Monte-Carlo sampler's clamp.
    while tail > tail_eps && k <= 10_000 {
        let pk = tail * p_success;
        atoms.push((k as f64 * a, pk));
        tail *= q;
        k += 1;
    }
    // Fold the residual tail into the final atom.
    if let Some(last) = atoms.last_mut() {
        last.1 += tail;
    }
    // `k·a` is strictly increasing in `k` up to rounding; the sort-free
    // constructor still merges the (pathological) colliding neighbors.
    DiscreteDist::from_sorted_atoms(atoms)
}

/// Which duration model renders a task's weight + success probability
/// into a discrete distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TaskDurationModel {
    /// At most one re-execution (the paper's probabilistic 2-state DAG).
    TwoState,
    /// Geometric attempts truncated at `tail_eps` residual mass.
    GeometricTruncated {
        /// Residual tail mass at which the support is truncated.
        tail_eps: f64,
    },
}

impl TaskDurationModel {
    /// Duration distribution of a task of weight `a` with per-attempt
    /// success probability `p_success`.
    pub fn duration_dist(&self, a: f64, p_success: f64) -> DiscreteDist {
        match *self {
            TaskDurationModel::TwoState => two_state(a, p_success),
            TaskDurationModel::GeometricTruncated { tail_eps } => {
                geometric_truncated(a, p_success, tail_eps)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_inverts_failure_probability() {
        for (pfail, w) in [(0.01, 0.15), (0.001, 1.0), (0.1, 3.5)] {
            let lambda = lambda_for_failure_probability(pfail, w);
            assert!((failure_probability(lambda, w) - pfail).abs() < 1e-14);
        }
    }

    #[test]
    fn paper_section_vc_lambda() {
        // ā = 0.15, pfail = 0.01 ⇒ λ ≈ 0.067 (paper Section V-C).
        let lambda = lambda_for_failure_probability(0.01, 0.15);
        assert!((lambda - 0.067).abs() < 1e-3, "{lambda}");
    }

    #[test]
    fn mtbf_inverts_rate() {
        assert_eq!(mtbf(0.0), f64::INFINITY);
        assert!((mtbf(0.1) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn two_state_shape_and_moments() {
        let d = two_state(1.0, 0.9);
        assert_eq!(d.len(), 2);
        assert!((d.mean() - 1.1).abs() < 1e-15);
        let (m, v) = two_state_moments(1.0, 0.9);
        assert!((m - 1.1).abs() < 1e-15);
        assert!((v - 0.09).abs() < 1e-15);
        assert!((d.mean() - m).abs() < 1e-15);
        assert!(two_state(0.0, 0.5).is_point());
        assert!(two_state(1.0, 1.0).is_point());
    }

    #[test]
    fn geometric_mean_approaches_closed_form() {
        // E[duration] = a/p for the untruncated geometric.
        let (a, p) = (2.0, 0.7);
        let d = geometric_truncated(a, p, 1e-14);
        assert!((d.mean() - a / p).abs() < 1e-9, "mean {}", d.mean());
        assert!((d.total_prob() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_exceeds_two_state() {
        let (a, p) = (1.0, 0.6);
        let geo = geometric_truncated(a, p, 1e-12).mean();
        let two = two_state(a, p).mean();
        assert!(geo > two, "geo {geo} two {two}");
    }

    #[test]
    fn duration_model_dispatch() {
        let two = TaskDurationModel::TwoState.duration_dist(1.0, 0.9);
        assert_eq!(two.len(), 2);
        let geo = TaskDurationModel::GeometricTruncated { tail_eps: 1e-6 }.duration_dist(1.0, 0.9);
        assert!(geo.len() > 2);
    }
}
