//! Shared helpers for the Criterion benches (see `benches/`).
//!
//! Each bench regenerates a runtime aspect of the paper's evaluation:
//! `table1_runtime` times the Table I estimators, `estimator_runtimes`
//! sweeps graph size, and the `*_ablation` benches sweep the design
//! knobs called out in DESIGN.md. The [`gate`] module holds the
//! perf-regression gate that `bench-report --gate` (and through it the
//! CI `bench-trajectory` job) runs over `BENCH_sweep.json` artifacts.

use stochdag::prelude::*;

pub mod gate;

/// The paper's evaluation sizes.
pub const PAPER_KS: [usize; 5] = [4, 6, 8, 10, 12];

/// Build a paper workload with the calibrated weight table.
pub fn paper_dag(class: FactorizationClass, k: usize) -> Dag {
    class.generate(k, &KernelTimings::paper_default())
}

/// The paper's λ calibration for a DAG.
pub fn paper_model(dag: &Dag, pfail: f64) -> FailureModel {
    FailureModel::from_pfail_for_dag(pfail, dag)
}
