//! Perf-regression gate over `BENCH_sweep.json` artifacts.
//!
//! The CI `bench-trajectory` job runs `bench-report --gate
//! BENCH_sweep.json`: the freshly measured records are compared against
//! the committed baseline, and any *pinned kernel label* whose median
//! regresses by more than [`REGRESSION_THRESHOLD`] fails the job. Only
//! kernel-shaped labels are pinned (see [`is_pinned`]); end-to-end
//! labels with real I/O and process-spawn noise stay informational, so
//! the gate is strict exactly where timings are stable enough to be
//! strict.

use serde::{json, Value};

/// Maximum tolerated median slowdown on a pinned label: fresh medians
/// above `baseline · (1 + threshold)` are regressions. 25% is wide
/// enough to absorb shared-runner noise on µs-scale kernels while still
/// catching an accidentally de-optimized hot loop.
pub const REGRESSION_THRESHOLD: f64 = 0.25;

/// One `(bench, label, median_ns)` measurement from a bench-report
/// artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Bench target name (`kernel_hotloop`, `prepared_pipeline`, …).
    pub bench: String,
    /// Criterion label within the bench.
    pub label: String,
    /// Median wall time in nanoseconds.
    pub median_ns: u64,
}

/// Whether a `(bench, label)` pair is held to the regression threshold.
///
/// Pinned: every `kernel_hotloop` label (pure in-process kernels) and
/// the `prepared_pipeline` grid-path labels (the PR-level acceptance
/// numbers). Everything else — cache benches that touch disk, shard
/// benches that spawn processes — is tracked in the artifact but not
/// gated.
pub fn is_pinned(bench: &str, label: &str) -> bool {
    bench == "kernel_hotloop"
        || (bench == "prepared_pipeline" && label.ends_with("prepared_grid/8models"))
}

/// One pinned label whose fresh median exceeded the threshold.
#[derive(Clone, Debug)]
pub struct Regression {
    /// `bench/label` key.
    pub key: String,
    /// Committed baseline median (ns).
    pub baseline_ns: u64,
    /// Freshly measured median (ns).
    pub fresh_ns: u64,
    /// `fresh / baseline`.
    pub ratio: f64,
}

/// Outcome of a gate run.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    /// Pinned labels present in both artifacts and compared.
    pub checked: usize,
    /// Pinned labels that regressed past the threshold.
    pub regressions: Vec<Regression>,
    /// Pinned baseline labels missing from the fresh run (a renamed or
    /// deleted kernel bench must come with a baseline refresh).
    pub missing: Vec<String>,
    /// Pinned fresh labels with no baseline yet (newly added kernels;
    /// informational — they gate from the next baseline refresh on).
    pub new_labels: Vec<String>,
}

impl GateReport {
    /// A gate passes when nothing regressed and nothing pinned
    /// disappeared.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }

    /// Human-readable multi-line summary (stable ordering).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "perf gate: {} pinned label(s) checked, {} regression(s), {} missing, {} new\n",
            self.checked,
            self.regressions.len(),
            self.missing.len(),
            self.new_labels.len()
        ));
        for r in &self.regressions {
            out.push_str(&format!(
                "  REGRESSION {}: {} ns -> {} ns ({:.2}x, threshold {:.2}x)\n",
                r.key,
                r.baseline_ns,
                r.fresh_ns,
                r.ratio,
                1.0 + REGRESSION_THRESHOLD
            ));
        }
        for key in &self.missing {
            out.push_str(&format!(
                "  MISSING {key}: pinned in the baseline but absent from this run\n"
            ));
        }
        for key in &self.new_labels {
            out.push_str(&format!("  new {key}: no baseline yet, not gated\n"));
        }
        out
    }
}

/// Compare `fresh` against `baseline` over the pinned labels.
///
/// Pure and deterministic: records are matched by `(bench, label)`,
/// unpinned labels are ignored entirely, and result vectors are sorted
/// by key.
pub fn check(baseline: &[BenchRecord], fresh: &[BenchRecord], threshold: f64) -> GateReport {
    let key = |r: &BenchRecord| format!("{}/{}", r.bench, r.label);
    let fresh_by_key: std::collections::BTreeMap<String, &BenchRecord> = fresh
        .iter()
        .filter(|r| is_pinned(&r.bench, &r.label))
        .map(|r| (key(r), r))
        .collect();
    let mut report = GateReport::default();
    let mut seen = std::collections::BTreeSet::new();
    let mut pinned_baseline: Vec<&BenchRecord> = baseline
        .iter()
        .filter(|r| is_pinned(&r.bench, &r.label))
        .collect();
    pinned_baseline.sort_by_key(|r| key(r));
    for b in pinned_baseline {
        let k = key(b);
        seen.insert(k.clone());
        match fresh_by_key.get(&k) {
            None => report.missing.push(k),
            Some(f) => {
                report.checked += 1;
                let ratio = if b.median_ns == 0 {
                    if f.median_ns == 0 {
                        1.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    f.median_ns as f64 / b.median_ns as f64
                };
                if ratio > 1.0 + threshold {
                    report.regressions.push(Regression {
                        key: k,
                        baseline_ns: b.median_ns,
                        fresh_ns: f.median_ns,
                        ratio,
                    });
                }
            }
        }
    }
    report.new_labels = fresh_by_key
        .keys()
        .filter(|k| !seen.contains(*k))
        .cloned()
        .collect();
    report
}

/// Parse the `benches` array of a `BENCH_sweep.json` document into
/// records.
pub fn parse_report(text: &str) -> Result<Vec<BenchRecord>, String> {
    let root = json::parse(text).map_err(|e| format!("bad bench report: {e}"))?;
    let benches = root
        .require("benches")
        .ok()
        .and_then(|b| b.as_arr().map(<[Value]>::to_vec))
        .ok_or("bench report has no benches array")?;
    benches
        .iter()
        .map(|v| {
            let s = |k: &str| {
                v.require(k)
                    .ok()
                    .and_then(|x| x.as_str().map(str::to_string))
                    .ok_or_else(|| format!("bench record missing string {k}"))
            };
            let median_ns = v
                .require("median_ns")
                .ok()
                .and_then(Value::as_u64)
                .ok_or("bench record missing integer median_ns")?;
            Ok(BenchRecord {
                bench: s("bench")?,
                label: s("label")?,
                median_ns,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(bench: &str, label: &str, median_ns: u64) -> BenchRecord {
        BenchRecord {
            bench: bench.to_string(),
            label: label.to_string(),
            median_ns,
        }
    }

    #[test]
    fn pinning_covers_kernels_not_end_to_end_benches() {
        assert!(is_pinned("kernel_hotloop", "dist_ops/256/convolve_scratch"));
        assert!(is_pinned(
            "prepared_pipeline",
            "prepared_pipeline/full5/prepared_grid/8models"
        ));
        assert!(!is_pinned(
            "prepared_pipeline",
            "prepared_pipeline/full5/legacy_per_cell/8models"
        ));
        assert!(!is_pinned(
            "sweep_cache",
            "sweep_18cells_cold/single_process"
        ));
        assert!(!is_pinned(
            "distributed_shard",
            "shard_protocol/encode_cell_event"
        ));
    }

    #[test]
    fn within_threshold_passes() {
        let base = vec![rec("kernel_hotloop", "dist_ops/64/convolve_scratch", 1000)];
        let fresh = vec![rec("kernel_hotloop", "dist_ops/64/convolve_scratch", 1240)];
        let report = check(&base, &fresh, REGRESSION_THRESHOLD);
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.checked, 1);
        assert!(report.regressions.is_empty());
    }

    #[test]
    fn past_threshold_fails_with_the_offending_label() {
        let base = vec![
            rec("kernel_hotloop", "dist_ops/64/convolve_scratch", 1000),
            rec(
                "kernel_hotloop",
                "grid_kernels/dodin/grid_batched/8models",
                2000,
            ),
        ];
        let fresh = vec![
            rec("kernel_hotloop", "dist_ops/64/convolve_scratch", 1100),
            rec(
                "kernel_hotloop",
                "grid_kernels/dodin/grid_batched/8models",
                2600,
            ),
        ];
        let report = check(&base, &fresh, REGRESSION_THRESHOLD);
        assert!(!report.passed());
        assert_eq!(report.regressions.len(), 1);
        let r = &report.regressions[0];
        assert_eq!(
            r.key,
            "kernel_hotloop/grid_kernels/dodin/grid_batched/8models"
        );
        assert!((r.ratio - 1.3).abs() < 1e-9);
        assert!(
            report.render().contains("REGRESSION"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn unpinned_regressions_do_not_gate() {
        let base = vec![rec(
            "sweep_cache",
            "sweep_18cells_cold/single_process",
            1000,
        )];
        let fresh = vec![rec(
            "sweep_cache",
            "sweep_18cells_cold/single_process",
            9000,
        )];
        let report = check(&base, &fresh, REGRESSION_THRESHOLD);
        assert!(report.passed());
        assert_eq!(report.checked, 0);
    }

    #[test]
    fn vanished_pinned_label_fails_new_label_informs() {
        let base = vec![rec("kernel_hotloop", "dist_ops/64/convolve_scratch", 1000)];
        let fresh = vec![rec("kernel_hotloop", "dist_ops/64/max_scratch", 900)];
        let report = check(&base, &fresh, REGRESSION_THRESHOLD);
        assert!(!report.passed());
        assert_eq!(
            report.missing,
            ["kernel_hotloop/dist_ops/64/convolve_scratch"]
        );
        assert_eq!(
            report.new_labels,
            ["kernel_hotloop/dist_ops/64/max_scratch"]
        );
    }

    #[test]
    fn zero_baseline_is_handled() {
        let base = vec![rec("kernel_hotloop", "dist_ops/64/convolve_scratch", 0)];
        let fresh = vec![rec("kernel_hotloop", "dist_ops/64/convolve_scratch", 1)];
        let report = check(&base, &fresh, REGRESSION_THRESHOLD);
        assert!(
            !report.passed(),
            "0 -> 1 ns is an infinite-ratio regression"
        );
    }

    #[test]
    fn parse_round_trips_the_artifact_schema() {
        let text = r#"{"benches":[
            {"bench":"kernel_hotloop","label":"dist_ops/64/convolve_scratch","median_ns":1234,"samples":10},
            {"bench":"sweep_cache","label":"sweep_18cells_cold/single_process","median_ns":99,"samples":5}
        ],"schema_version":1,"suite":"sweep"}"#;
        let records = parse_report(text).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(
            records[0],
            rec("kernel_hotloop", "dist_ops/64/convolve_scratch", 1234)
        );
        assert!(parse_report("{}").is_err());
        assert!(parse_report(r#"{"benches":[{"bench":"x"}]}"#).is_err());
    }
}
