//! `bench-report` — assemble the sweep bench trajectory artifact.
//!
//! Runs the engine-facing criterion benches (`sweep_cache`,
//! `prepared_pipeline`, `distributed_shard`) with the criterion shim's
//! `CRITERION_JSON` hook enabled, collects the per-benchmark JSONL
//! records each run appends, and writes one machine-readable
//! `BENCH_sweep.json`:
//!
//! ```json
//! {"schema_version":1,"suite":"sweep","benches":[
//!   {"bench":"distributed_shard","label":"shard_protocol/encode_cell_event",
//!    "median_ns":1234,"samples":10}, …]}
//! ```
//!
//! Entries are sorted by (bench, label) so two runs differ only in the
//! timing numbers — diffing successive artifacts IS the perf
//! trajectory. CI runs this binary and uploads the artifact on every
//! push (see `.github/workflows/ci.yml`, job `bench-trajectory`).
//!
//! With `--gate BASELINE.json` the fresh numbers are additionally
//! compared against a committed baseline through
//! [`stochdag_bench::gate`]: a pinned kernel label whose median
//! regressed by more than 25% fails the run (exit 1) after the fresh
//! artifact is written, so the regression evidence is always uploaded.
//!
//! Usage: `cargo run -p stochdag-bench --release --bin bench-report
//! [-- [--gate BASELINE.json] OUT.json]` (default `BENCH_sweep.json`).

use serde::{json, Value};
use std::process::Command;
use stochdag_bench::gate;

/// The benches that exercise the sweep engine end to end, plus the
/// `kernel_hotloop` microbenches the perf gate pins. Ablation benches
/// (estimators, MC convergence, …) are excluded on purpose: the
/// trajectory tracks the engine's moving parts and its hot kernels,
/// not every experiment.
const BENCHES: &[&str] = &[
    "sweep_cache",
    "prepared_pipeline",
    "distributed_shard",
    "kernel_hotloop",
];

fn main() {
    if let Err(e) = run() {
        eprintln!("bench-report: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let mut out_path = "BENCH_sweep.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--gate" {
            baseline_path = Some(args.next().ok_or("--gate needs a baseline path")?);
        } else {
            out_path = arg;
        }
    }
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());

    // (bench, label, median_ns, samples), sorted before rendering.
    let mut records: Vec<(String, String, u64, u64)> = Vec::new();
    for bench in BENCHES {
        let tmp =
            std::env::temp_dir().join(format!("criterion-{bench}-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&tmp);
        let status = Command::new(&cargo)
            .args(["bench", "-p", "stochdag-bench", "--bench", bench])
            .env("CRITERION_JSON", &tmp)
            .status()
            .map_err(|e| format!("spawning cargo bench --bench {bench}: {e}"))?;
        if !status.success() {
            return Err(format!("cargo bench --bench {bench} failed: {status}"));
        }
        let text = std::fs::read_to_string(&tmp).map_err(|e| {
            format!(
                "reading {} (did the bench emit records?): {e}",
                tmp.display()
            )
        })?;
        let _ = std::fs::remove_file(&tmp);
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let v = json::parse(line).map_err(|e| format!("bad record from {bench}: {e}"))?;
            let label = v
                .require("label")
                .and_then(|l| {
                    l.as_str()
                        .ok_or_else(|| serde::Error::new("label is not a string"))
                })
                .map_err(|e| format!("bad record from {bench}: {e}"))?;
            let num = |key: &str| {
                v.require(key)
                    .ok()
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("bad record from {bench}: missing integer {key}"))
            };
            records.push((
                bench.to_string(),
                label.to_string(),
                num("median_ns")?,
                num("samples")?,
            ));
        }
    }
    records.sort();

    let fresh: Vec<gate::BenchRecord> = records
        .iter()
        .map(|(bench, label, median_ns, _)| gate::BenchRecord {
            bench: bench.clone(),
            label: label.clone(),
            median_ns: *median_ns,
        })
        .collect();

    let benches = Value::Arr(
        records
            .into_iter()
            .map(|(bench, label, median_ns, samples)| {
                Value::obj([
                    ("bench", Value::Str(bench)),
                    ("label", Value::Str(label)),
                    ("median_ns", Value::Num(median_ns as f64)),
                    ("samples", Value::Num(samples as f64)),
                ])
            })
            .collect(),
    );
    let root = Value::obj([
        ("benches", benches),
        ("schema_version", Value::Num(1.0)),
        ("suite", Value::Str("sweep".to_string())),
    ]);
    let mut out = String::new();
    json::write_value(&root, &mut out);
    out.push('\n');
    std::fs::write(&out_path, out).map_err(|e| format!("writing {out_path}: {e}"))?;
    println!("wrote {out_path}");

    // The gate runs after the artifact is written so CI uploads the
    // regression evidence either way.
    if let Some(baseline_path) = baseline_path {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("reading baseline {baseline_path}: {e}"))?;
        let baseline = gate::parse_report(&text)?;
        let report = gate::check(&baseline, &fresh, gate::REGRESSION_THRESHOLD);
        print!("{}", report.render());
        if !report.passed() {
            return Err(format!(
                "perf gate vs {baseline_path} failed: {} regression(s), {} missing pinned label(s)",
                report.regressions.len(),
                report.missing.len()
            ));
        }
    }
    Ok(())
}
