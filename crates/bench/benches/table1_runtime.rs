//! The execution-time row of the paper's Table I: LU with k = 20
//! (2 870 tasks), pfail = 0.0001.
//!
//! Monte Carlo is benchmarked at 10 000 trials and scales linearly to
//! the paper's 300 000 (the `mc_convergence` bench demonstrates the
//! linearity).

use criterion::{criterion_group, criterion_main, Criterion};
use stochdag::prelude::*;
use stochdag_bench::{paper_dag, paper_model};

fn bench_table1(c: &mut Criterion) {
    let dag = paper_dag(FactorizationClass::Lu, 20);
    assert_eq!(dag.node_count(), 2870, "paper's Table I instance");
    let model = paper_model(&dag, 0.0001);

    let mut group = c.benchmark_group("table1_lu_k20");
    group.sample_size(10);
    group.bench_function("first_order_fast", |b| {
        b.iter(|| FirstOrderEstimator::fast().expected_makespan(&dag, &model))
    });
    group.bench_function("first_order_naive", |b| {
        b.iter(|| FirstOrderEstimator::naive().expected_makespan(&dag, &model))
    });
    group.bench_function("sculli", |b| {
        b.iter(|| SculliEstimator.expected_makespan(&dag, &model))
    });
    group.bench_function("corlca", |b| {
        b.iter(|| CorLcaEstimator.expected_makespan(&dag, &model))
    });
    group.bench_function("normal_cov", |b| {
        b.iter(|| CovarianceNormalEstimator.expected_makespan(&dag, &model))
    });
    group.bench_function("dodin_fwd", |b| {
        b.iter(|| DodinEstimator::scalable().expected_makespan(&dag, &model))
    });
    group.bench_function("monte_carlo_10k", |b| {
        b.iter(|| {
            MonteCarloEstimator::new(10_000)
                .with_seed(0)
                .expected_makespan(&dag, &model)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
