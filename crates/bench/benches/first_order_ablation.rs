//! Fast `O(V+E)` vs naive `O(V(V+E))` first-order implementation —
//! the paper's closing remark of Section IV ("lower complexity can be
//! achieved by exploiting the fact that G and the G_i's differ in only
//! the weight of one task") quantified.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stochdag::prelude::*;
use stochdag_bench::{paper_dag, paper_model, PAPER_KS};

fn bench_first_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("first_order_fast_vs_naive");
    group.sample_size(10);
    for class in FactorizationClass::ALL {
        for &k in &PAPER_KS {
            let dag = paper_dag(class, k);
            let model = paper_model(&dag, 0.001);
            let id = format!("{}_{k}", class.name());
            group.bench_with_input(BenchmarkId::new("fast", &id), &k, |b, _| {
                b.iter(|| first_order_expected_makespan_fast(&dag, &model))
            });
            group.bench_with_input(BenchmarkId::new("naive", &id), &k, |b, _| {
                b.iter(|| first_order_expected_makespan_naive(&dag, &model))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_first_order);
criterion_main!(benches);
