//! Scenario-sweep engine benchmarks: cold (computed) vs warm (fully
//! cached) campaign throughput, and the content-hash primitives.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use stochdag::prelude::*;
use stochdag_bench::paper_dag;
use stochdag_engine::{Campaign, DagSpec, EstimatorSpec};

fn small_campaign() -> SweepSpec {
    SweepSpec {
        name: "bench".into(),
        seed: 1,
        pfails: vec![0.01, 0.001],
        lambdas: vec![],
        estimators: vec![
            EstimatorSpec::FirstOrder,
            EstimatorSpec::Sculli,
            EstimatorSpec::CorLca,
        ],
        reference_trials: 5_000,
        reference_sampling: stochdag::core::SamplingModel::Geometric,
        jobs: None,
        scenarios: vec![],
        dags: vec![DagSpec::Factorization {
            class: FactorizationClass::Cholesky,
            ks: vec![4, 6, 8],
        }],
    }
}

fn run_campaign(spec: &SweepSpec, cache: &Arc<ResultCache>) -> SweepOutcome {
    Campaign::builder(spec.clone())
        .cache(cache.clone())
        .build()
        .expect("valid campaign")
        .run()
        .expect("sweep runs")
}

fn bench_sweep(c: &mut Criterion) {
    let spec = small_campaign();
    let mut group = c.benchmark_group("sweep_cholesky_18cells");
    group.sample_size(3);
    group.bench_function("cold_cache", |b| {
        b.iter(|| {
            let cache = Arc::new(ResultCache::in_memory());
            run_campaign(&spec, &cache).cells
        })
    });
    let warm = Arc::new(ResultCache::in_memory());
    run_campaign(&spec, &warm);
    group.bench_function("warm_cache", |b| {
        b.iter(|| {
            let outcome = run_campaign(&spec, &warm);
            assert!(outcome.fully_cached());
            outcome.cells
        })
    });
    group.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let dag = paper_dag(FactorizationClass::Lu, 12);
    let mut group = c.benchmark_group("content_hash");
    group.bench_function("structural_hash_lu12", |b| {
        b.iter(|| structural_hash(black_box(&dag)))
    });
    group.finish();
}

criterion_group!(benches, bench_sweep, bench_hashing);
criterion_main!(benches);
