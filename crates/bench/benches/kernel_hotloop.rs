//! Hot-kernel microbenches: the distribution ops and grid passes that
//! the sweep engine spends its time in, measured in isolation.
//!
//! Two panels:
//!
//! * `dist_ops/{n}` — convolve / max / reduce_support at several
//!   support sizes, with the allocating entry points next to their
//!   scratch-arena variants so the arena's win stays visible.
//! * `grid_kernels/{family}` — the batched `estimate_grid` override of
//!   each optimized estimator family against the sequential
//!   per-model default it must match bit for bit.
//!
//! These labels are pinned by the CI perf-regression gate
//! (`bench-report --gate`): a >25% median regression on any of them
//! fails the `bench-trajectory` job. Records flow into
//! `BENCH_sweep.json` via the criterion shim's `CRITERION_JSON` hook.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use stochdag::dist::{DiscreteDist, DistScratch};
use stochdag::prelude::*;

/// Deterministic synthetic distribution with `n` strictly increasing
/// atoms and normalized probabilities (splitmix64-style jitter so the
/// support is irregular like a real makespan distribution).
fn synthetic_dist(n: usize, seed: u64) -> DiscreteDist {
    let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
    let mut next = || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    };
    let mut atoms: Vec<(f64, f64)> = Vec::with_capacity(n);
    let mut v = 0.0f64;
    let mut total = 0.0f64;
    for _ in 0..n {
        v += 0.25 + next();
        let p = 0.05 + next();
        total += p;
        atoms.push((v, p));
    }
    for a in &mut atoms {
        a.1 /= total;
    }
    DiscreteDist::from_sorted_atoms(atoms)
}

fn bench_dist_ops(c: &mut Criterion) {
    for n in [64usize, 256, 1024] {
        let x = synthetic_dist(n, 1);
        let y = synthetic_dist(n, 2);
        // Twice-over-budget support to coarsen back down to n atoms —
        // the capped series-parallel evaluator's steady state (the
        // kernel is quadratic in the overshoot, so a realistic small
        // overshoot is the representative load).
        let wide = synthetic_dist(2 * n, 3);

        let mut g = c.benchmark_group(format!("dist_ops/{n}"));
        g.sample_size(10);
        g.bench_function("convolve_alloc", |b| {
            b.iter(|| black_box(&x).convolve(black_box(&y)))
        });
        let mut scratch = DistScratch::new();
        g.bench_function("convolve_scratch", |b| {
            b.iter(|| black_box(&x).convolve_with(black_box(&y), &mut scratch))
        });
        g.bench_function("max_scratch", |b| {
            b.iter(|| black_box(&x).max_independent_with(black_box(&y), &mut scratch))
        });
        g.bench_function("reduce_support", |b| {
            // The clone is part of the measured loop (the in-place
            // kernel consumes its input); it is the same constant on
            // both sides of a baseline comparison.
            b.iter(|| {
                let mut d = black_box(&wide).clone();
                d.reduce_support_in_place(black_box(n));
                d
            })
        });
        g.finish();
    }
}

fn bench_grid_kernels(c: &mut Criterion) {
    let dag = lu_dag(6, &KernelTimings::paper_default());
    let models: Vec<FailureModel> = [1e-1, 5e-2, 2e-2, 1e-2, 5e-3, 2e-3, 1e-3, 1e-4]
        .iter()
        .map(|&p| FailureModel::from_pfail_for_dag(p, &dag))
        .collect();
    let prepared = PreparedDag::new(dag.clone());

    let families: Vec<(&str, Box<dyn Estimator>)> = vec![
        ("first_order", Box::new(FirstOrderEstimator::fast())),
        ("second_order", Box::new(SecondOrderEstimator)),
        ("spelde32", Box::new(SpeldeEstimator::new(32))),
        ("dodin", Box::new(DodinEstimator::scalable())),
    ];
    for (label, est) in families {
        // The override must agree with the sequential default bit for
        // bit — the same contract the grid_parity tests enforce.
        let mut prep = est.prepare(&prepared);
        let grid: Vec<f64> = prep
            .estimate_grid(&models)
            .iter()
            .map(|e| e.value)
            .collect();
        let seq: Vec<f64> = models.iter().map(|m| prep.estimate_for(m).value).collect();
        assert_eq!(
            grid.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            seq.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "{label}: grid override must be bit-identical"
        );

        let mut g = c.benchmark_group(format!("grid_kernels/{label}"));
        g.sample_size(10);
        g.bench_function("per_model/8models", |b| {
            b.iter(|| {
                models
                    .iter()
                    .map(|m| prep.estimate_for(black_box(m)).value)
                    .sum::<f64>()
            })
        });
        g.bench_function("grid_batched/8models", |b| {
            b.iter(|| {
                prep.estimate_grid(black_box(&models))
                    .iter()
                    .map(|e| e.value)
                    .sum::<f64>()
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_dist_ops, bench_grid_kernels);
criterion_main!(benches);
