//! Estimator runtime vs graph size — the scalability story behind the
//! paper's Section V-E ("First Order can be computed within one second,
//! while Normal requires about 20 minutes").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stochdag::prelude::*;
use stochdag_bench::{paper_dag, paper_model, PAPER_KS};

fn bench_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_runtimes_lu");
    group.sample_size(10);
    for &k in &PAPER_KS {
        let dag = paper_dag(FactorizationClass::Lu, k);
        let model = paper_model(&dag, 0.0001);
        group.bench_with_input(BenchmarkId::new("first_order_fast", k), &k, |b, _| {
            b.iter(|| FirstOrderEstimator::fast().expected_makespan(&dag, &model))
        });
        group.bench_with_input(BenchmarkId::new("second_order", k), &k, |b, _| {
            b.iter(|| SecondOrderEstimator.expected_makespan(&dag, &model))
        });
        group.bench_with_input(BenchmarkId::new("sculli", k), &k, |b, _| {
            b.iter(|| SculliEstimator.expected_makespan(&dag, &model))
        });
        group.bench_with_input(BenchmarkId::new("corlca", k), &k, |b, _| {
            b.iter(|| CorLcaEstimator.expected_makespan(&dag, &model))
        });
        group.bench_with_input(BenchmarkId::new("normal_cov", k), &k, |b, _| {
            b.iter(|| CovarianceNormalEstimator.expected_makespan(&dag, &model))
        });
        group.bench_with_input(BenchmarkId::new("dodin_fwd", k), &k, |b, _| {
            b.iter(|| DodinEstimator::scalable().expected_makespan(&dag, &model))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
