//! Distributed-executor primitives: the per-cell cost of deterministic
//! shard assignment, the wire-protocol encode/decode round trip, a
//! full in-process shard execution vs the in-process campaign backend
//! on the same campaign (both cold — the shard path's overhead is the
//! partition scan plus event emission), and the overhead of the
//! telemetry layer (disabled vs enabled on an identical campaign; the
//! disabled case is the acceptance gate — it must be indistinguishable
//! from a build without telemetry).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use stochdag::prelude::*;
use stochdag_engine::{
    decode_event, encode_event, Campaign, CampaignEvent, DagSpec, EstimatorSpec, FnObserver,
    SweepRow, Telemetry,
};

fn campaign() -> SweepSpec {
    SweepSpec {
        name: "bench-dist".into(),
        seed: 1,
        pfails: vec![0.01, 0.001],
        lambdas: vec![],
        estimators: vec![
            EstimatorSpec::FirstOrder,
            EstimatorSpec::Sculli,
            EstimatorSpec::CorLca,
        ],
        reference_trials: 5_000,
        reference_sampling: stochdag::core::SamplingModel::Geometric,
        jobs: None,
        scenarios: vec![],
        dags: vec![DagSpec::Factorization {
            class: FactorizationClass::Cholesky,
            ks: vec![4, 6, 8],
        }],
    }
}

fn bench_shard_assignment(c: &mut Criterion) {
    let keys: Vec<String> = (0..4096).map(|i| format!("{i:032x}")).collect();
    let mut group = c.benchmark_group("shard_assignment");
    group.bench_function("shard_of_4096_keys_mod8", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for k in &keys {
                acc += stochdag_engine::shard_of(black_box(k), 8);
            }
            acc
        })
    });
    group.finish();
}

fn bench_protocol(c: &mut Criterion) {
    let event = CampaignEvent::Cell {
        index: 1234,
        cached: false,
        tier: None,
        row: SweepRow {
            dag: "cholesky:k=8".into(),
            tasks: 120,
            edges: 354,
            model: "pfail=0.01".into(),
            lambda: 0.00213,
            estimator: "first-order".into(),
            value: 412.75,
            reference: 411.9,
            reference_std_error: 0.11,
            rel_error: 0.00206,
            elapsed_s: 0.0031,
            seed: 991,
        },
    };
    let line = encode_event(&event);
    let mut group = c.benchmark_group("shard_protocol");
    group.bench_function("encode_cell_event", |b| {
        b.iter(|| encode_event(black_box(&event)))
    });
    group.bench_function("decode_cell_event", |b| {
        b.iter(|| decode_event(black_box(&line)).expect("round trip"))
    });
    group.finish();
}

fn bench_shard_vs_single(c: &mut Criterion) {
    let spec = campaign();
    let mut group = c.benchmark_group("sweep_18cells_cold");
    group.sample_size(3);
    group.bench_function("single_process", |b| {
        b.iter(|| {
            Campaign::builder(spec.clone())
                .cache(Arc::new(ResultCache::in_memory()))
                .build()
                .expect("valid campaign")
                .run()
                .expect("sweep runs")
                .cells
        })
    });
    group.bench_function("one_shard_of_one", |b| {
        b.iter(|| {
            Campaign::builder(spec.clone())
                .cache(Arc::new(ResultCache::in_memory()))
                .observer(FnObserver(|ev: &CampaignEvent| {
                    black_box(ev);
                }))
                .build()
                .expect("valid campaign")
                .run_shard(0, 1)
                .expect("shard runs")
                .cells
        })
    });
    group.finish();
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let spec = campaign();
    let run = |telemetry: Telemetry| {
        Campaign::builder(spec.clone())
            .cache(Arc::new(ResultCache::in_memory()))
            .telemetry(telemetry)
            .build()
            .expect("valid campaign")
            .run()
            .expect("sweep runs")
            .cells
    };
    let mut group = c.benchmark_group("telemetry_overhead_18cells");
    group.sample_size(3);
    group.bench_function("disabled", |b| b.iter(|| run(Telemetry::disabled())));
    group.bench_function("enabled", |b| b.iter(|| run(Telemetry::enabled())));
    group.finish();
}

criterion_group!(
    benches,
    bench_shard_assignment,
    bench_protocol,
    bench_shard_vs_single,
    bench_telemetry_overhead
);
criterion_main!(benches);
