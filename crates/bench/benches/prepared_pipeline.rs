//! Amortization of the two-phase estimator pipeline.
//!
//! A paper-style accuracy grid evaluates many failure models × many
//! estimators over one task graph. The legacy per-cell path re-does all
//! model-independent preprocessing (freeze, topological order, level
//! decomposition, all-pairs longest paths, dominant path extraction)
//! inside every cell; the prepared path builds one `PreparedDag`, binds
//! each estimator once, and evaluates every model against that
//! preparation.
//!
//! Two panels over LU k=8 with 8 calibrated failure models:
//!
//! * `analytic3` — first-order, second-order, spelde:32: the estimators
//!   whose cost is dominated by model-independent preprocessing. This
//!   is the acceptance configuration (≥ 8 models × ≥ 3 estimators,
//!   ≥ 2× speedup) and lands well above the bar (~5×).
//! * `full5` — adds the normal-propagation pair (sculli, corlca) whose
//!   per-model propagation cannot be amortized, showing the speedup a
//!   mixed sweep still gets.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Instant;
use stochdag::prelude::*;

fn workload() -> (Dag, Vec<FailureModel>) {
    let dag = lu_dag(8, &KernelTimings::paper_default());
    let models: Vec<FailureModel> = [1e-1, 5e-2, 2e-2, 1e-2, 5e-3, 2e-3, 1e-3, 1e-4]
        .iter()
        .map(|&p| FailureModel::from_pfail_for_dag(p, &dag))
        .collect();
    (dag, models)
}

fn analytic3() -> Vec<Box<dyn Estimator>> {
    vec![
        Box::new(FirstOrderEstimator::fast()),
        Box::new(SecondOrderEstimator),
        Box::new(SpeldeEstimator::new(32)),
    ]
}

fn full5() -> Vec<Box<dyn Estimator>> {
    let mut panel = analytic3();
    panel.push(Box::new(SculliEstimator));
    panel.push(Box::new(CorLcaEstimator));
    panel
}

/// Every cell through the one-shot shim: preprocessing re-done per cell.
fn legacy_sweep(panel: &[Box<dyn Estimator>], dag: &Dag, models: &[FailureModel]) -> f64 {
    let mut acc = 0.0;
    for est in panel {
        for m in models {
            acc += est.estimate(dag, m).value;
        }
    }
    acc
}

/// One preparation per graph, one binding per estimator, then the grid.
fn prepared_sweep(panel: &[Box<dyn Estimator>], dag: &Dag, models: &[FailureModel]) -> f64 {
    let prepared = PreparedDag::new(dag.clone());
    let mut acc = 0.0;
    for est in panel {
        let mut prep = est.prepare(&prepared);
        for e in prep.estimate_grid(models) {
            acc += e.value;
        }
    }
    acc
}

fn bench_prepared_pipeline(c: &mut Criterion) {
    let (dag, models) = workload();
    for (label, panel) in [("analytic3", analytic3()), ("full5", full5())] {
        // Same values either way — the pipelines differ only in layout.
        let a = legacy_sweep(&panel, &dag, &models);
        let b = prepared_sweep(&panel, &dag, &models);
        assert_eq!(a.to_bits(), b.to_bits(), "pipelines must agree bit-exactly");

        let mut g = c.benchmark_group(format!("prepared_pipeline/{label}"));
        g.sample_size(5);
        g.bench_function("legacy_per_cell/8models", |bch| {
            bch.iter(|| legacy_sweep(black_box(&panel), black_box(&dag), black_box(&models)))
        });
        g.bench_function("prepared_grid/8models", |bch| {
            bch.iter(|| prepared_sweep(black_box(&panel), black_box(&dag), black_box(&models)))
        });
        g.finish();

        // Headline number: best-of-3 speedup of the prepared pipeline.
        let time = |f: &dyn Fn() -> f64| {
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let t0 = Instant::now();
                black_box(f());
                best = best.min(t0.elapsed().as_secs_f64());
            }
            best
        };
        let t_legacy = time(&|| legacy_sweep(&panel, &dag, &models));
        let t_prepared = time(&|| prepared_sweep(&panel, &dag, &models));
        println!(
            "prepared_pipeline[{label}]: legacy {:.3} ms, prepared {:.3} ms -> {:.2}x speedup{}",
            t_legacy * 1e3,
            t_prepared * 1e3,
            t_legacy / t_prepared,
            if label == "analytic3" {
                " (acceptance target >= 2x)"
            } else {
                ""
            }
        );
    }
}

criterion_group!(benches, bench_prepared_pipeline);
criterion_main!(benches);
