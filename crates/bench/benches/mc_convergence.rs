//! Monte Carlo cost scaling: runtime vs trial count (linear — which is
//! why the paper's 300 000-trial ground truth is "prohibitively
//! expensive in practice") and parallel vs sequential execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use stochdag::prelude::*;
use stochdag_bench::{paper_dag, paper_model};

fn bench_trials(c: &mut Criterion) {
    let dag = paper_dag(FactorizationClass::Lu, 8);
    let model = paper_model(&dag, 0.001);
    let mut group = c.benchmark_group("mc_trials_lu8");
    group.sample_size(10);
    for trials in [1_000usize, 10_000, 100_000] {
        group.throughput(Throughput::Elements(trials as u64));
        group.bench_with_input(BenchmarkId::from_parameter(trials), &trials, |b, &t| {
            b.iter(|| {
                MonteCarloEstimator::new(t)
                    .with_seed(0)
                    .expected_makespan(&dag, &model)
            })
        });
    }
    group.finish();
}

fn bench_parallelism(c: &mut Criterion) {
    let dag = paper_dag(FactorizationClass::Lu, 8);
    let model = paper_model(&dag, 0.001);
    let mut group = c.benchmark_group("mc_parallel_vs_sequential_lu8");
    group.sample_size(10);
    let trials = 20_000;
    group.bench_function("parallel", |b| {
        b.iter(|| {
            MonteCarloEstimator::new(trials)
                .with_seed(0)
                .expected_makespan(&dag, &model)
        })
    });
    group.bench_function("sequential", |b| {
        b.iter(|| {
            MonteCarloEstimator::new(trials)
                .with_seed(0)
                .sequential()
                .expected_makespan(&dag, &model)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_trials, bench_parallelism);
criterion_main!(benches);
