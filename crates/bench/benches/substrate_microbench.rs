//! Substrate microbenchmarks: the primitives all estimators sit on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use stochdag::dag::LevelInfo;
use stochdag::prelude::*;
use stochdag_bench::paper_dag;

fn bench_longest_path(c: &mut Criterion) {
    let dag = paper_dag(FactorizationClass::Lu, 12);
    let frozen = dag.freeze();
    let weights = frozen.weights.clone();
    let mut group = c.benchmark_group("substrate_lu12");
    group.bench_function("levels_compute", |b| {
        b.iter(|| LevelInfo::compute(black_box(&dag)).makespan)
    });
    group.bench_function("frozen_longest_path", |b| {
        let mut scratch = Vec::new();
        b.iter(|| frozen.longest_path_with_weights(black_box(&weights), &mut scratch))
    });
    group.bench_function("freeze", |b| {
        b.iter(|| black_box(&dag).freeze().node_count())
    });
    group.finish();
}

fn bench_dist_ops(c: &mut Criterion) {
    let a = two_state(0.15, 0.999);
    // A 128-atom distribution from repeated convolution.
    let mut big = a.clone();
    for _ in 0..7 {
        big = big.convolve(&a);
    }
    let big = big.reduce_support(128);
    let mut group = c.benchmark_group("dist_ops");
    group.bench_function("convolve_128x2", |b| {
        b.iter(|| big.convolve(black_box(&a)).len())
    });
    group.bench_function("max_128x128", |b| {
        b.iter(|| big.max_independent(black_box(&big)).len())
    });
    group.bench_function("reduce_support_256_to_64", |b| {
        let wide = big.convolve(&a).convolve(&a);
        b.iter(|| wide.reduce_support(64).len())
    });
    group.finish();
}

fn bench_normal_math(c: &mut Criterion) {
    let x = Normal::new(1.0, 0.2);
    let y = Normal::new(1.1, 0.3);
    let mut group = c.benchmark_group("normal_math");
    group.bench_function("clark_max", |b| {
        b.iter(|| clark_max_moments(black_box(x), black_box(y), 0.3).mean)
    });
    group.bench_function("normal_cdf", |b| {
        b.iter(|| black_box(x).cdf(black_box(1.3)))
    });
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let t = KernelTimings::paper_default();
    let mut group = c.benchmark_group("generators");
    group.bench_function("lu_k12", |b| b.iter(|| lu_dag(12, &t).node_count()));
    group.bench_function("cholesky_k12", |b| {
        b.iter(|| cholesky_dag(12, &t).node_count())
    });
    group.bench_function("qr_k12", |b| b.iter(|| qr_dag(12, &t).node_count()));
    group.finish();
}

criterion_group!(
    benches,
    bench_longest_path,
    bench_dist_ops,
    bench_normal_math,
    bench_generators
);
criterion_main!(benches);
