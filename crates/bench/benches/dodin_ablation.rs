//! Dodin design-knob ablations:
//! * support cap (`max_atoms`) sweep for the scalable forward strategy —
//!   runtime cost of finer distributions;
//! * faithful duplication engine vs the forward surrogate on sizes the
//!   engine can handle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stochdag::core::dodin::DodinStrategy;
use stochdag::prelude::*;
use stochdag_bench::{paper_dag, paper_model};

fn bench_atom_cap(c: &mut Criterion) {
    let dag = paper_dag(FactorizationClass::Lu, 10);
    let model = paper_model(&dag, 0.001);
    let mut group = c.benchmark_group("dodin_forward_atom_cap_lu10");
    group.sample_size(10);
    for cap in [8usize, 32, 128, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| {
                DodinEstimator::scalable()
                    .with_max_atoms(cap)
                    .expected_makespan(&dag, &model)
            })
        });
    }
    group.finish();
}

fn bench_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("dodin_strategy");
    group.sample_size(10);
    for k in [4usize, 6] {
        let dag = paper_dag(FactorizationClass::Cholesky, k);
        let model = paper_model(&dag, 0.001);
        group.bench_with_input(BenchmarkId::new("duplication", k), &k, |b, _| {
            b.iter(|| {
                DodinEstimator::new()
                    .with_strategy(DodinStrategy::Duplication)
                    .with_max_atoms(64)
                    .expected_makespan(&dag, &model)
            })
        });
        group.bench_with_input(BenchmarkId::new("forward", k), &k, |b, _| {
            b.iter(|| {
                DodinEstimator::scalable()
                    .with_max_atoms(64)
                    .expected_makespan(&dag, &model)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_atom_cap, bench_strategy);
criterion_main!(benches);
