//! Static list scheduling on identical processors (failure-free).

use crate::policy::{compute_priorities, Priority};
use crate::schedule::{Schedule, ScheduleEntry};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use stochdag_core::FailureModel;
use stochdag_dag::{Dag, NodeId};

/// Total-ordering wrapper for `f64` heap keys (`total_cmp`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct OrdF64(pub f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Event-driven list scheduling: whenever a processor is free, start the
/// ready task with the highest priority (ties broken by node id, so the
/// schedule is deterministic).
///
/// The resulting [`Schedule`] is validated in debug builds.
///
/// # Panics
/// Panics if `processors == 0` or the DAG is cyclic.
pub fn list_schedule(
    dag: &Dag,
    processors: usize,
    model: &FailureModel,
    policy: Priority,
) -> Schedule {
    assert!(processors > 0, "need at least one processor");
    let n = dag.node_count();
    let prio = compute_priorities(dag, model, policy);
    let mut indeg: Vec<u32> = dag.nodes().map(|v| dag.in_degree(v) as u32).collect();

    // Ready queue: max-heap on (priority, Reverse(node id)).
    let mut ready: BinaryHeap<(OrdF64, Reverse<u32>)> = BinaryHeap::new();
    for v in dag.nodes() {
        if indeg[v.index()] == 0 {
            ready.push((OrdF64(prio[v.index()]), Reverse(v.index() as u32)));
        }
    }

    // Idle processors and the time each becomes free: min-heap.
    let mut free_procs: Vec<usize> = (0..processors).rev().collect();
    // Running tasks: min-heap on (finish time, node).
    let mut running: BinaryHeap<Reverse<(OrdF64, u32, usize)>> = BinaryHeap::new();

    let mut entries = vec![
        ScheduleEntry {
            processor: 0,
            start: 0.0,
            finish: 0.0
        };
        n
    ];
    let mut remaining = n;
    let mut now = 0.0f64;

    while remaining > 0 {
        // Start ready tasks on idle processors at the current time.
        while !free_procs.is_empty() && !ready.is_empty() {
            let proc_id = free_procs.pop().expect("non-empty");
            let (_, Reverse(vidx)) = ready.pop().expect("non-empty");
            let v = NodeId::from_index(vidx as usize);
            let finish = now + dag.weight(v);
            entries[vidx as usize] = ScheduleEntry {
                processor: proc_id,
                start: now,
                finish,
            };
            running.push(Reverse((OrdF64(finish), vidx, proc_id)));
        }
        // Advance to the next completion (and all ties), release
        // successors and processors.
        let Some(Reverse((OrdF64(t), vidx, proc_id))) = running.pop() else {
            panic!("deadlock: no running task but {remaining} tasks unscheduled (cyclic DAG?)");
        };
        now = t;
        let mut finished = vec![(vidx, proc_id)];
        while let Some(&Reverse((OrdF64(t2), _, _))) = running.peek() {
            if t2 > now {
                break;
            }
            let Reverse((_, w, p)) = running.pop().expect("peeked");
            finished.push((w, p));
        }
        for (widx, p) in finished {
            remaining -= 1;
            free_procs.push(p);
            let w = NodeId::from_index(widx as usize);
            for &s in dag.succs(w) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    ready.push((OrdF64(prio[s.index()]), Reverse(s.index() as u32)));
                }
            }
        }
    }

    let schedule = Schedule {
        processors,
        entries,
    };
    debug_assert!(
        schedule.validate(dag).is_ok(),
        "{:?}",
        schedule.validate(dag)
    );
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochdag_dag::longest_path_length;

    fn ff() -> FailureModel {
        FailureModel::failure_free()
    }

    #[test]
    fn single_processor_serializes() {
        let mut g = Dag::new();
        g.add_node(1.0);
        g.add_node(2.0);
        g.add_node(3.0);
        let s = list_schedule(&g, 1, &ff(), Priority::BottomLevel);
        assert!(s.validate(&g).is_ok());
        assert!((s.makespan() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn unlimited_processors_reach_critical_path() {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        let c = g.add_node(3.0);
        let d = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        let s = list_schedule(&g, 4, &ff(), Priority::BottomLevel);
        assert!(s.validate(&g).is_ok());
        assert!((s.makespan() - longest_path_length(&g)).abs() < 1e-12);
    }

    #[test]
    fn two_processors_fork_join() {
        // fork(0) -> 2 branches of weight 3 -> join(0): on 2 procs the
        // branches run in parallel: makespan 3.
        let mut g = Dag::new();
        let f = g.add_node(0.0);
        let b1 = g.add_node(3.0);
        let b2 = g.add_node(3.0);
        let j = g.add_node(0.0);
        g.add_edge(f, b1);
        g.add_edge(f, b2);
        g.add_edge(b1, j);
        g.add_edge(b2, j);
        let s = list_schedule(&g, 2, &ff(), Priority::BottomLevel);
        assert!((s.makespan() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn priority_orders_ready_tasks() {
        // Three independent tasks on one processor: highest priority
        // (bottom level = weight here) runs first.
        let mut g = Dag::new();
        g.add_node(1.0);
        g.add_node(5.0);
        g.add_node(2.0);
        let s = list_schedule(&g, 1, &ff(), Priority::BottomLevel);
        assert_eq!(s.entries[1].start, 0.0, "heaviest first under bottom-level");
        assert!(s.entries[0].start > s.entries[2].start);
    }

    #[test]
    fn makespan_bounds_hold() {
        // Graham bounds: d(G) <= makespan <= total weight.
        let mut g = Dag::new();
        let mut prev = None;
        for i in 0..20 {
            let v = g.add_node(1.0 + (i % 3) as f64);
            if i % 4 != 0 {
                if let Some(p) = prev {
                    g.add_edge(p, v);
                }
            }
            prev = Some(v);
        }
        for procs in [1, 2, 4, 8] {
            let s = list_schedule(&g, procs, &ff(), Priority::BottomLevel);
            assert!(s.validate(&g).is_ok());
            assert!(s.makespan() + 1e-9 >= longest_path_length(&g));
            assert!(s.makespan() <= g.total_weight() + 1e-9);
        }
    }

    #[test]
    fn more_processors_never_hurt_here() {
        let mut g = Dag::new();
        for i in 0..12 {
            let v = g.add_node(1.0 + (i % 4) as f64);
            if i >= 4 {
                // connect to an earlier node to create structure
                g.add_edge(NodeId::from_index(i - 4), v);
            }
        }
        let m2 = list_schedule(&g, 2, &ff(), Priority::BottomLevel).makespan();
        let m8 = list_schedule(&g, 8, &ff(), Priority::BottomLevel).makespan();
        assert!(m8 <= m2 + 1e-9);
    }

    #[test]
    fn deterministic() {
        let mut g = Dag::new();
        for i in 0..10 {
            g.add_node(1.0 + i as f64 * 0.1);
        }
        let a = list_schedule(&g, 3, &ff(), Priority::Weight);
        let b = list_schedule(&g, 3, &ff(), Priority::Weight);
        assert_eq!(a.entries, b.entries);
    }
}
