//! # stochdag-sched — failure-aware list scheduling
//!
//! The paper's stated motivation (Section I) is that silent errors break
//! classical list-scheduling heuristics: CP-scheduling and HEFT
//! prioritize tasks by *bottom level* (longest path to the exit), and
//! under re-executions the bottom level becomes a random variable whose
//! expectation is #P-complete to compute — hence the first-order
//! approximation. This crate closes the loop by actually building the
//! scheduling stack the paper points at:
//!
//! * [`Priority`] — task priority policies: classical failure-free
//!   bottom level, the first-order *expected* bottom level (per-task
//!   weights inflated to their expected durations `aᵢ(2 − pᵢ)`), the
//!   first-order criticality (bottom level plus the task's contribution
//!   to `E(G) − d(G)`), plus trivial baselines.
//! * [`list_schedule`] — static list scheduling on `P` identical
//!   processors (failure-free), producing a validated [`Schedule`].
//! * [`simulate_execution`] — discrete-event execution under silent
//!   errors: dynamic list scheduling where each completed attempt is
//!   verified and re-executed from scratch on failure (geometric
//!   attempts), with deterministic seeding.
//! * [`heft_schedule`] — HEFT on heterogeneous (speed-scaled)
//!   processors, with the same failure-aware simulation.
//! * [`compare_policies`] — replicated simulations (Rayon-parallel)
//!   comparing policies, as exercised by the `scheduling_under_errors`
//!   example and the `sched` CLI subcommand.

mod heft;
mod list;
mod policy;
mod schedule;
mod sim;
mod stats;

pub use heft::{heft_schedule, HeftSchedule};
pub use list::list_schedule;
pub use policy::{compute_priorities, Priority};
pub use schedule::{Schedule, ScheduleEntry};
pub use sim::{simulate_execution, ExecutionOutcome, SimConfig};
pub use stats::{compare_policies, PolicyComparison, PolicyStats};
