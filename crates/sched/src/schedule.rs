//! Schedule representation and validation.

use stochdag_dag::{Dag, NodeId};

/// Placement of one task (or one *successful* task execution, for
/// simulated schedules — re-executed attempts are folded into the
/// interval).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduleEntry {
    /// Processor index in `0..P`.
    pub processor: usize,
    /// Start time of the task's first attempt.
    pub start: f64,
    /// Completion time of the successful attempt.
    pub finish: f64,
}

/// A complete schedule of a DAG on `P` processors.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Number of processors.
    pub processors: usize,
    /// Per-task placement, indexed by `NodeId::index()`.
    pub entries: Vec<ScheduleEntry>,
}

impl Schedule {
    /// Schedule makespan: the latest finish time (0 for empty).
    pub fn makespan(&self) -> f64 {
        self.entries.iter().map(|e| e.finish).fold(0.0, f64::max)
    }

    /// Entry of a task.
    pub fn entry(&self, i: NodeId) -> ScheduleEntry {
        self.entries[i.index()]
    }

    /// Sum of busy time divided by `P × makespan` (1.0 = perfectly
    /// packed).
    pub fn utilization(&self) -> f64 {
        let m = self.makespan();
        if m == 0.0 {
            return 1.0;
        }
        let busy: f64 = self.entries.iter().map(|e| e.finish - e.start).sum();
        busy / (self.processors as f64 * m)
    }

    /// Check the schedule is feasible for `dag`:
    /// * every task assigned to a valid processor,
    /// * no two tasks overlap on a processor,
    /// * every task starts at/after all its predecessors finish.
    ///
    /// Returns a human-readable violation description, or `Ok(())`.
    pub fn validate(&self, dag: &Dag) -> Result<(), String> {
        if self.entries.len() != dag.node_count() {
            return Err(format!(
                "schedule covers {} tasks, DAG has {}",
                self.entries.len(),
                dag.node_count()
            ));
        }
        const EPS: f64 = 1e-9;
        for (idx, e) in self.entries.iter().enumerate() {
            if e.processor >= self.processors {
                return Err(format!("task #{idx} on invalid processor {}", e.processor));
            }
            if e.finish < e.start - EPS {
                return Err(format!("task #{idx} finishes before it starts"));
            }
        }
        // Precedence.
        for (s, d) in dag.edges() {
            let fs = self.entries[s.index()].finish;
            let sd = self.entries[d.index()].start;
            if sd + EPS < fs {
                return Err(format!(
                    "precedence violated: {} finishes at {fs} but {} starts at {sd}",
                    dag.display_name(s),
                    dag.display_name(d)
                ));
            }
        }
        // No overlap per processor.
        let mut by_proc: Vec<Vec<(f64, f64, usize)>> = vec![Vec::new(); self.processors];
        for (idx, e) in self.entries.iter().enumerate() {
            by_proc[e.processor].push((e.start, e.finish, idx));
        }
        for (p, intervals) in by_proc.iter_mut().enumerate() {
            intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in intervals.windows(2) {
                if w[1].0 + EPS < w[0].1 {
                    return Err(format!(
                        "overlap on processor {p}: task #{} ({}..{}) and task #{} ({}..{})",
                        w[0].2, w[0].0, w[0].1, w[1].2, w[1].0, w[1].1
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Dag {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        g.add_edge(a, b);
        g
    }

    fn ok_schedule() -> Schedule {
        Schedule {
            processors: 1,
            entries: vec![
                ScheduleEntry {
                    processor: 0,
                    start: 0.0,
                    finish: 1.0,
                },
                ScheduleEntry {
                    processor: 0,
                    start: 1.0,
                    finish: 3.0,
                },
            ],
        }
    }

    #[test]
    fn valid_schedule_passes() {
        let g = chain();
        let s = ok_schedule();
        assert!(s.validate(&g).is_ok());
        assert_eq!(s.makespan(), 3.0);
        assert!((s.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn precedence_violation_detected() {
        let g = chain();
        let mut s = ok_schedule();
        s.entries[1].start = 0.5;
        s.entries[1].finish = 2.5;
        let err = s.validate(&g).unwrap_err();
        assert!(err.contains("precedence"), "{err}");
    }

    #[test]
    fn overlap_detected() {
        let mut g = Dag::new();
        g.add_node(1.0);
        g.add_node(1.0);
        let s = Schedule {
            processors: 1,
            entries: vec![
                ScheduleEntry {
                    processor: 0,
                    start: 0.0,
                    finish: 1.0,
                },
                ScheduleEntry {
                    processor: 0,
                    start: 0.5,
                    finish: 1.5,
                },
            ],
        };
        let err = s.validate(&g).unwrap_err();
        assert!(err.contains("overlap"), "{err}");
    }

    #[test]
    fn bad_processor_detected() {
        let g = chain();
        let mut s = ok_schedule();
        s.entries[0].processor = 5;
        assert!(s.validate(&g).is_err());
    }

    #[test]
    fn utilization_with_idle_processor() {
        let mut g = Dag::new();
        g.add_node(2.0);
        let s = Schedule {
            processors: 2,
            entries: vec![ScheduleEntry {
                processor: 0,
                start: 0.0,
                finish: 2.0,
            }],
        };
        assert!((s.utilization() - 0.5).abs() < 1e-12);
    }
}
