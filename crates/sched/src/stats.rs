//! Replicated policy comparison under silent errors.

use crate::policy::Priority;
use crate::sim::{simulate_execution, SimConfig};
use rayon::prelude::*;
use stochdag_core::FailureModel;
use stochdag_dag::Dag;

/// Statistics of one policy over many simulated executions.
#[derive(Clone, Debug)]
pub struct PolicyStats {
    /// The policy.
    pub policy: Priority,
    /// Mean realized makespan.
    pub mean_makespan: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Mean number of failed attempts per execution.
    pub mean_failures: f64,
    /// Number of replicas.
    pub replicas: usize,
}

/// Result of [`compare_policies`].
#[derive(Clone, Debug)]
pub struct PolicyComparison {
    /// Per-policy statistics, in the order given to `compare_policies`.
    pub stats: Vec<PolicyStats>,
    /// Number of processors used.
    pub processors: usize,
}

impl PolicyComparison {
    /// The policy with the lowest mean makespan.
    pub fn best(&self) -> &PolicyStats {
        self.stats
            .iter()
            .min_by(|a, b| a.mean_makespan.total_cmp(&b.mean_makespan))
            .expect("at least one policy")
    }
}

/// Run `replicas` independent simulated executions per policy (parallel
/// across replicas) and collect makespan statistics.
///
/// Replica `r` of every policy shares the same base seed, so the
/// comparison is paired: differences reflect the policy, not sampling
/// luck.
pub fn compare_policies(
    dag: &Dag,
    model: &FailureModel,
    processors: usize,
    policies: &[Priority],
    replicas: usize,
    seed: u64,
) -> PolicyComparison {
    assert!(replicas > 0, "need at least one replica");
    let stats = policies
        .iter()
        .map(|&policy| {
            let (sum, sum_sq, fail_sum) = (0..replicas as u64)
                .into_par_iter()
                .map(|r| {
                    let cfg = SimConfig {
                        seed: seed.wrapping_add(r),
                        ..SimConfig::identical(processors, policy, 0)
                    };
                    let out = simulate_execution(dag, model, &cfg);
                    let m = out.makespan();
                    (m, m * m, out.failures as f64)
                })
                .reduce(|| (0.0, 0.0, 0.0), |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2));
            let n = replicas as f64;
            let mean = sum / n;
            let var = (sum_sq / n - mean * mean).max(0.0);
            PolicyStats {
                policy,
                mean_makespan: mean,
                std_error: (var / n).sqrt(),
                mean_failures: fail_sum / n,
                replicas,
            }
        })
        .collect();
    PolicyComparison { stats, processors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wide_dag() -> Dag {
        // Two long chains plus filler tasks: bottom-level-aware policies
        // should beat insertion order on few processors.
        let mut g = Dag::new();
        for _ in 0..2 {
            let mut prev = None;
            for _ in 0..6 {
                let v = g.add_node(2.0);
                if let Some(p) = prev {
                    g.add_edge(p, v);
                }
                prev = Some(v);
            }
        }
        for _ in 0..10 {
            g.add_node(0.5);
        }
        g
    }

    #[test]
    fn comparison_shapes() {
        let g = wide_dag();
        let model = FailureModel::new(0.02);
        let cmp = compare_policies(
            &g,
            &model,
            2,
            &[Priority::BottomLevel, Priority::InsertionOrder],
            50,
            1,
        );
        assert_eq!(cmp.stats.len(), 2);
        assert!(cmp.stats.iter().all(|s| s.mean_makespan > 0.0));
        assert!(cmp.stats.iter().all(|s| s.replicas == 50));
    }

    #[test]
    fn bottom_level_beats_insertion_order_here() {
        let g = wide_dag();
        let model = FailureModel::new(0.01);
        let cmp = compare_policies(
            &g,
            &model,
            2,
            &[Priority::BottomLevel, Priority::InsertionOrder],
            100,
            42,
        );
        let bl = &cmp.stats[0];
        let fifo = &cmp.stats[1];
        assert!(
            bl.mean_makespan <= fifo.mean_makespan + 1e-9,
            "bottom level {} vs insertion order {}",
            bl.mean_makespan,
            fifo.mean_makespan
        );
        assert_eq!(cmp.best().policy, Priority::BottomLevel);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = wide_dag();
        let model = FailureModel::new(0.05);
        let a = compare_policies(&g, &model, 2, &[Priority::Weight], 30, 9);
        let b = compare_policies(&g, &model, 2, &[Priority::Weight], 30, 9);
        assert_eq!(a.stats[0].mean_makespan, b.stats[0].mean_makespan);
    }

    #[test]
    fn failures_counted_at_high_rate() {
        let g = wide_dag();
        let model = FailureModel::new(0.3);
        let cmp = compare_policies(&g, &model, 4, &[Priority::BottomLevel], 50, 3);
        assert!(cmp.stats[0].mean_failures > 0.0);
    }
}
