//! HEFT (Heterogeneous Earliest Finish Time, Topcuoglu et al. 2002) on
//! speed-scaled processors.
//!
//! Ranking uses the *upward rank* on mean execution costs; placement
//! greedily minimizes earliest finish time with insertion-based gap
//! filling. The produced assignment can be replayed under silent errors
//! via [`crate::simulate_execution`] with
//! [`crate::SimConfig::assignment`].

use crate::schedule::{Schedule, ScheduleEntry};
use stochdag_dag::{topological_order, Dag, NodeId};

/// A HEFT schedule: placement plus the rank-ordered task list.
#[derive(Clone, Debug)]
pub struct HeftSchedule {
    /// The failure-free schedule.
    pub schedule: Schedule,
    /// Tasks in scheduling order (decreasing upward rank).
    pub order: Vec<NodeId>,
    /// Upward rank per task (mean-cost bottom level), indexed by
    /// `NodeId::index()`.
    pub upward_rank: Vec<f64>,
}

/// Compute a HEFT schedule of `dag` on processors with the given speed
/// factors (task `i` takes `aᵢ / speeds[p]` on processor `p`).
///
/// Failure-aware variants are obtained by handing `rank_weights`
/// inflated expected durations (e.g. `aᵢ(2 − pᵢ)`); pass `None` to use
/// the plain weights.
///
/// # Panics
/// Panics if `speeds` is empty or contains non-positive entries.
pub fn heft_schedule(dag: &Dag, speeds: &[f64], rank_weights: Option<&[f64]>) -> HeftSchedule {
    assert!(!speeds.is_empty(), "need at least one processor");
    assert!(
        speeds.iter().all(|&s| s > 0.0 && s.is_finite()),
        "speeds must be positive"
    );
    let n = dag.node_count();
    let p = speeds.len();
    let mean_inv_speed: f64 = speeds.iter().map(|&s| 1.0 / s).sum::<f64>() / p as f64;

    // Upward rank on mean costs: rank(i) = w̄ᵢ + max_succ rank(s).
    let weights: Vec<f64> = match rank_weights {
        Some(w) => {
            assert_eq!(w.len(), n, "rank weight vector length mismatch");
            w.to_vec()
        }
        None => dag.weights(),
    };
    let topo = topological_order(dag).expect("HEFT requires an acyclic graph");
    let mut rank = vec![0.0f64; n];
    for &v in topo.iter().rev() {
        let best_succ = dag
            .succs(v)
            .iter()
            .map(|s| rank[s.index()])
            .fold(0.0f64, f64::max);
        rank[v.index()] = weights[v.index()] * mean_inv_speed + best_succ;
    }
    let mut order: Vec<NodeId> = dag.nodes().collect();
    // Decreasing rank, ties by id — but HEFT must also respect
    // precedence; decreasing upward rank guarantees that (a predecessor
    // always has strictly larger rank when weights are positive; equal
    // ranks are broken by id which matches insertion order of the
    // generators). A final stable topological repair pass below makes
    // this robust to zero-weight tasks.
    order.sort_by(|a, b| {
        rank[b.index()]
            .total_cmp(&rank[a.index()])
            .then_with(|| a.index().cmp(&b.index()))
    });
    // Topological repair: stable-move any task after its predecessors.
    let mut position = vec![0usize; n];
    for (i, v) in order.iter().enumerate() {
        position[v.index()] = i;
    }
    let mut repaired: Vec<NodeId> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let mut pending = order.clone();
    while repaired.len() < n {
        let mut progressed = false;
        pending.retain(|&v| {
            if placed[v.index()] {
                return false;
            }
            if dag.preds(v).iter().all(|p| placed[p.index()]) {
                placed[v.index()] = true;
                repaired.push(v);
                progressed = true;
                false
            } else {
                true
            }
        });
        assert!(progressed, "cyclic DAG in HEFT ordering");
    }
    let order = repaired;

    // Insertion-based EFT placement.
    let mut proc_busy: Vec<Vec<(f64, f64)>> = vec![Vec::new(); p]; // sorted intervals
    let mut entries = vec![
        ScheduleEntry {
            processor: 0,
            start: 0.0,
            finish: 0.0
        };
        n
    ];
    for &v in &order {
        let ready: f64 = dag
            .preds(v)
            .iter()
            .map(|q| entries[q.index()].finish)
            .fold(0.0, f64::max);
        let mut best: Option<(f64, f64, usize)> = None; // (finish, start, proc)
        for q in 0..p {
            let dur = dag.weight(v) / speeds[q];
            let (start, finish) = earliest_slot(&proc_busy[q], ready, dur);
            if best.is_none_or(|(bf, _, _)| finish < bf - 1e-15) {
                best = Some((finish, start, q));
            }
        }
        let (finish, start, q) = best.expect("at least one processor");
        entries[v.index()] = ScheduleEntry {
            processor: q,
            start,
            finish,
        };
        let pos = proc_busy[q].partition_point(|&(s, _)| s < start);
        proc_busy[q].insert(pos, (start, finish));
    }
    let schedule = Schedule {
        processors: p,
        entries,
    };
    debug_assert!(
        schedule.validate(dag).is_ok(),
        "{:?}",
        schedule.validate(dag)
    );
    HeftSchedule {
        schedule,
        order,
        upward_rank: rank,
    }
}

/// Earliest `(start, finish)` of a `dur`-long job on a processor with
/// the given sorted busy intervals, not earlier than `ready`.
fn earliest_slot(busy: &[(f64, f64)], ready: f64, dur: f64) -> (f64, f64) {
    let mut t = ready;
    for &(s, f) in busy {
        if t + dur <= s + 1e-15 {
            break; // fits in the gap before this interval
        }
        if f > t {
            t = f;
        }
    }
    (t, t + dur)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        let c = g.add_node(3.0);
        let d = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        g
    }

    #[test]
    fn identical_processors_reach_critical_path() {
        let g = diamond();
        let h = heft_schedule(&g, &[1.0, 1.0], None);
        assert!(h.schedule.validate(&g).is_ok());
        assert!((h.schedule.makespan() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn order_respects_rank_and_precedence() {
        let g = diamond();
        let h = heft_schedule(&g, &[1.0], None);
        assert_eq!(h.order[0].index(), 0, "source ranks highest");
        // rank(a) = 1 + max(rank b, rank c) = 1 + 4 = 5 on unit speeds.
        assert!((h.upward_rank[0] - 5.0).abs() < 1e-12);
        assert!((h.upward_rank[2] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fast_processor_attracts_work() {
        let mut g = Dag::new();
        g.add_node(6.0);
        let h = heft_schedule(&g, &[1.0, 3.0], None);
        assert_eq!(h.schedule.entries[0].processor, 1);
        assert!((h.schedule.makespan() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn insertion_fills_gaps() {
        // b (long) and c (short) fork from a; d joins; one fast and one
        // slow processor: HEFT must not serialize everything.
        let g = diamond();
        let h = heft_schedule(&g, &[1.0, 2.0], None);
        assert!(h.schedule.validate(&g).is_ok());
        // Lower bound: critical path on fastest processor.
        assert!(h.schedule.makespan() >= 5.0 / 2.0 - 1e-12);
        // Strictly better than single slow processor.
        assert!(h.schedule.makespan() <= 7.0 + 1e-12);
    }

    #[test]
    fn inflated_rank_weights_accepted() {
        let g = diamond();
        let inflated: Vec<f64> = g.weights().iter().map(|w| w * 1.1).collect();
        let h = heft_schedule(&g, &[1.0, 1.0], Some(&inflated));
        assert!(h.schedule.validate(&g).is_ok());
    }

    #[test]
    fn zero_weight_tasks_handled() {
        let mut g = Dag::new();
        let a = g.add_node(0.0);
        let b = g.add_node(1.0);
        g.add_edge(a, b);
        let h = heft_schedule(&g, &[1.0], None);
        assert!(h.schedule.validate(&g).is_ok());
        assert!((h.schedule.makespan() - 1.0).abs() < 1e-12);
    }
}
