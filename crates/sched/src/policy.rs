//! Task priority policies for list scheduling.

use stochdag_core::{first_order_detailed, FailureModel};
use stochdag_dag::{Dag, LevelInfo};

/// Which scalar priority to assign each task (larger = scheduled
/// earlier among ready tasks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Priority {
    /// Classical CP-scheduling: failure-free bottom level `bl(i)`.
    BottomLevel,
    /// Bottom level computed on *expected* task durations
    /// `E[wᵢ] = aᵢ(2 − pᵢ)` — the natural first-order failure-aware
    /// refinement the paper's approximation enables.
    ExpectedBottomLevel,
    /// Failure-free bottom level plus the task's first-order
    /// contribution `λaᵢ(d(Gᵢ) − d(G))` to the expected makespan —
    /// boosts tasks whose re-execution would actually lengthen the
    /// schedule.
    FirstOrderCriticality,
    /// Task weight (largest-processing-time); failure-oblivious
    /// baseline.
    Weight,
    /// Arrival order (FIFO by node id); the weakest baseline.
    InsertionOrder,
}

impl Priority {
    /// All policies, for sweeps.
    pub const ALL: [Priority; 5] = [
        Priority::BottomLevel,
        Priority::ExpectedBottomLevel,
        Priority::FirstOrderCriticality,
        Priority::Weight,
        Priority::InsertionOrder,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::BottomLevel => "bottom-level",
            Priority::ExpectedBottomLevel => "expected-bottom-level",
            Priority::FirstOrderCriticality => "first-order-criticality",
            Priority::Weight => "weight",
            Priority::InsertionOrder => "insertion-order",
        }
    }
}

/// Compute the priority of every task under `policy`.
///
/// Returned vector is indexed by `NodeId::index()`.
pub fn compute_priorities(dag: &Dag, model: &FailureModel, policy: Priority) -> Vec<f64> {
    match policy {
        Priority::BottomLevel => LevelInfo::compute(dag).bot,
        Priority::ExpectedBottomLevel => {
            let mut inflated = dag.clone();
            for i in dag.nodes() {
                let a = dag.weight(i);
                let p = model.psuccess_of_weight(a);
                inflated.set_weight(i, a * (2.0 - p));
            }
            LevelInfo::compute(&inflated).bot
        }
        Priority::FirstOrderCriticality => {
            let levels = LevelInfo::compute(dag);
            let detail = first_order_detailed(dag, model).task_contribution;
            dag.nodes()
                .map(|i| levels.bot[i.index()] + detail[i.index()])
                .collect()
        }
        Priority::Weight => dag.weights(),
        Priority::InsertionOrder => dag.nodes().map(|i| -(i.index() as f64)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Dag {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        g.add_edge(a, b);
        g
    }

    #[test]
    fn bottom_level_priorities() {
        let g = chain();
        let p = compute_priorities(&g, &FailureModel::failure_free(), Priority::BottomLevel);
        assert_eq!(p, vec![3.0, 2.0]);
    }

    #[test]
    fn expected_bottom_level_inflates() {
        let g = chain();
        let model = FailureModel::new(0.1);
        let p = compute_priorities(&g, &model, Priority::ExpectedBottomLevel);
        let pf = compute_priorities(&g, &model, Priority::BottomLevel);
        assert!(p[0] > pf[0], "expected durations must inflate levels");
        // Exact: bl(a) = E[w_a] + E[w_b].
        let ew: Vec<f64> = [1.0f64, 2.0]
            .iter()
            .map(|&a| a * (2.0 - model.psuccess_of_weight(a)))
            .collect();
        assert!((p[0] - (ew[0] + ew[1])).abs() < 1e-12);
    }

    #[test]
    fn first_order_criticality_boosts_critical_tasks() {
        // Diamond with a heavy critical branch.
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(0.5);
        let c = g.add_node(3.0);
        let d = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        let model = FailureModel::new(0.05);
        let crit = compute_priorities(&g, &model, Priority::FirstOrderCriticality);
        let plain = compute_priorities(&g, &model, Priority::BottomLevel);
        // c is critical: its boost must exceed b's.
        let boost_c = crit[2] - plain[2];
        let boost_b = crit[1] - plain[1];
        assert!(boost_c > boost_b, "boost_c={boost_c} boost_b={boost_b}");
    }

    #[test]
    fn all_policies_produce_finite_priorities() {
        let g = chain();
        let model = FailureModel::new(0.01);
        for policy in Priority::ALL {
            let p = compute_priorities(&g, &model, policy);
            assert_eq!(p.len(), 2, "{}", policy.name());
            assert!(p.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for p in Priority::ALL {
            assert!(seen.insert(p.name()));
        }
    }
}
