//! Discrete-event execution simulation under silent errors.
//!
//! Dynamic list scheduling: whenever a processor frees up, the
//! highest-priority ready task starts. Each execution attempt of task
//! `i` on processor `p` takes `aᵢ / speed(p)` and is verified at
//! completion; the verification flags a silent error with probability
//! `1 − e^{−λ·aᵢ/speed(p)}` (error exposure scales with the time the
//! computation was exposed, matching the paper's model on unit-speed
//! processors), in which case the task restarts *on the same processor*
//! immediately. Attempts repeat until success.

use crate::list::OrdF64;
use crate::policy::{compute_priorities, Priority};
use crate::schedule::{Schedule, ScheduleEntry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use stochdag_core::FailureModel;
use stochdag_dag::{Dag, NodeId};

/// Simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Per-processor speed factors; length = processor count. Use
    /// `vec![1.0; p]` for identical processors.
    pub speeds: Vec<f64>,
    /// Priority policy for the dynamic ready queue.
    pub policy: Priority,
    /// RNG seed (the simulation is deterministic given the seed).
    pub seed: u64,
    /// Optional fixed task→processor assignment (e.g. from HEFT); when
    /// set, a ready task waits for *its* processor instead of taking any
    /// idle one.
    pub assignment: Option<Vec<usize>>,
}

impl SimConfig {
    /// Identical unit-speed processors with the given policy.
    pub fn identical(processors: usize, policy: Priority, seed: u64) -> SimConfig {
        assert!(processors > 0);
        SimConfig {
            speeds: vec![1.0; processors],
            policy,
            seed,
            assignment: None,
        }
    }
}

/// Result of one simulated execution.
#[derive(Clone, Debug)]
pub struct ExecutionOutcome {
    /// The realized schedule (start = first attempt start, finish =
    /// successful completion).
    pub schedule: Schedule,
    /// Total number of failed attempts across all tasks.
    pub failures: usize,
    /// Total wasted time (duration of failed attempts).
    pub wasted_time: f64,
}

impl ExecutionOutcome {
    /// Realized makespan.
    pub fn makespan(&self) -> f64 {
        self.schedule.makespan()
    }
}

/// Simulate one execution of `dag` under `model` with the given
/// configuration. See module docs for the semantics.
///
/// # Panics
/// Panics on empty processor lists, non-positive speeds, or cyclic DAGs.
pub fn simulate_execution(dag: &Dag, model: &FailureModel, cfg: &SimConfig) -> ExecutionOutcome {
    let processors = cfg.speeds.len();
    assert!(processors > 0, "need at least one processor");
    assert!(
        cfg.speeds.iter().all(|&s| s > 0.0 && s.is_finite()),
        "speeds must be positive"
    );
    if let Some(a) = &cfg.assignment {
        assert_eq!(a.len(), dag.node_count(), "assignment must cover all tasks");
        assert!(
            a.iter().all(|&p| p < processors),
            "assignment targets a valid processor"
        );
    }
    let n = dag.node_count();
    let prio = compute_priorities(dag, model, cfg.policy);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut indeg: Vec<u32> = dag.nodes().map(|v| dag.in_degree(v) as u32).collect();

    let mut ready: BinaryHeap<(OrdF64, Reverse<u32>)> = BinaryHeap::new();
    for v in dag.nodes() {
        if indeg[v.index()] == 0 {
            ready.push((OrdF64(prio[v.index()]), Reverse(v.index() as u32)));
        }
    }
    let mut proc_free = vec![true; processors];
    // (finish time, node, processor) of running attempts.
    let mut running: BinaryHeap<Reverse<(OrdF64, u32, usize)>> = BinaryHeap::new();
    let mut entries = vec![
        ScheduleEntry {
            processor: 0,
            start: 0.0,
            finish: 0.0
        };
        n
    ];
    let mut started = vec![false; n];
    let mut remaining = n;
    let mut now = 0.0f64;
    let mut failures = 0usize;
    let mut wasted = 0.0f64;

    // Re-queue of ready tasks that could not start (assignment busy).
    let mut stash: Vec<(OrdF64, Reverse<u32>)> = Vec::new();

    while remaining > 0 {
        // Launch ready tasks.
        stash.clear();
        while let Some((p, Reverse(vidx))) = ready.pop() {
            let v = NodeId::from_index(vidx as usize);
            let proc = match &cfg.assignment {
                Some(assign) => {
                    let target = assign[vidx as usize];
                    if proc_free[target] {
                        Some(target)
                    } else {
                        None
                    }
                }
                None => {
                    // Fastest idle processor.
                    (0..processors)
                        .filter(|&q| proc_free[q])
                        .max_by(|&a, &b| cfg.speeds[a].total_cmp(&cfg.speeds[b]))
                }
            };
            match proc {
                Some(q) => {
                    proc_free[q] = false;
                    let dur = dag.weight(v) / cfg.speeds[q];
                    if !started[vidx as usize] {
                        entries[vidx as usize].processor = q;
                        entries[vidx as usize].start = now;
                        started[vidx as usize] = true;
                    }
                    running.push(Reverse((OrdF64(now + dur), vidx, q)));
                }
                None => stash.push((p, Reverse(vidx))),
            }
        }
        for item in stash.drain(..) {
            ready.push(item);
        }

        let Some(Reverse((OrdF64(t), vidx, q))) = running.pop() else {
            panic!("deadlock: nothing running with {remaining} tasks left");
        };
        now = t;
        let v = NodeId::from_index(vidx as usize);
        let dur = dag.weight(v) / cfg.speeds[q];
        // Verification: silent error detected?
        let pfail = model.pfail_of_weight(dur);
        if dur > 0.0 && rng.gen::<f64>() < pfail {
            // Failed attempt: restart on the same processor immediately.
            failures += 1;
            wasted += dur;
            running.push(Reverse((OrdF64(now + dur), vidx, q)));
            continue;
        }
        // Success.
        proc_free[q] = true;
        entries[vidx as usize].finish = now;
        remaining -= 1;
        for &s in dag.succs(v) {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                ready.push((OrdF64(prio[s.index()]), Reverse(s.index() as u32)));
            }
        }
    }

    let schedule = Schedule {
        processors,
        entries,
    };
    debug_assert!(
        schedule.validate(dag).is_ok(),
        "{:?}",
        schedule.validate(dag)
    );
    ExecutionOutcome {
        schedule,
        failures,
        wasted_time: wasted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochdag_dag::longest_path_length;

    fn diamond() -> Dag {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        let c = g.add_node(3.0);
        let d = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        g
    }

    #[test]
    fn failure_free_matches_list_schedule_makespan() {
        let g = diamond();
        let model = FailureModel::failure_free();
        let cfg = SimConfig::identical(2, Priority::BottomLevel, 0);
        let out = simulate_execution(&g, &model, &cfg);
        assert_eq!(out.failures, 0);
        assert_eq!(out.wasted_time, 0.0);
        let s = crate::list::list_schedule(&g, 2, &model, Priority::BottomLevel);
        assert!((out.makespan() - s.makespan()).abs() < 1e-12);
    }

    #[test]
    fn failures_extend_makespan() {
        let g = diamond();
        let model = FailureModel::new(0.5);
        let cfg = SimConfig::identical(2, Priority::BottomLevel, 12345);
        // Average over seeds: with λ=0.5 failures are frequent.
        let mut total_failures = 0usize;
        let mut mean = 0.0;
        let reps = 200;
        for seed in 0..reps {
            let out = simulate_execution(
                &g,
                &model,
                &SimConfig {
                    seed,
                    ..cfg.clone()
                },
            );
            assert!(out.schedule.validate(&g).is_ok());
            total_failures += out.failures;
            mean += out.makespan();
        }
        mean /= reps as f64;
        assert!(total_failures > 0, "failures must occur at λ=0.5");
        assert!(
            mean > longest_path_length(&g),
            "re-executions lengthen the run"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = diamond();
        let model = FailureModel::new(0.3);
        let cfg = SimConfig::identical(2, Priority::BottomLevel, 7);
        let a = simulate_execution(&g, &model, &cfg);
        let b = simulate_execution(&g, &model, &cfg);
        assert_eq!(a.makespan(), b.makespan());
        assert_eq!(a.failures, b.failures);
    }

    #[test]
    fn wasted_time_consistency() {
        let g = diamond();
        let model = FailureModel::new(0.4);
        let out = simulate_execution(&g, &model, &SimConfig::identical(1, Priority::Weight, 3));
        // On one unit-speed processor every failed attempt wastes its
        // full task weight.
        assert!(out.wasted_time >= out.failures as f64 * 0.9); // min weight 1.0
    }

    #[test]
    fn fixed_assignment_respected() {
        let mut g = Dag::new();
        g.add_node(1.0);
        g.add_node(1.0);
        let cfg = SimConfig {
            speeds: vec![1.0, 1.0],
            policy: Priority::BottomLevel,
            seed: 0,
            assignment: Some(vec![1, 1]),
        };
        let out = simulate_execution(&g, &FailureModel::failure_free(), &cfg);
        assert_eq!(out.schedule.entries[0].processor, 1);
        assert_eq!(out.schedule.entries[1].processor, 1);
        // Serialized on processor 1.
        assert!((out.makespan() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_speeds_scale_durations() {
        let mut g = Dag::new();
        g.add_node(4.0);
        let cfg = SimConfig {
            speeds: vec![2.0],
            policy: Priority::BottomLevel,
            seed: 0,
            assignment: None,
        };
        let out = simulate_execution(&g, &FailureModel::failure_free(), &cfg);
        assert!((out.makespan() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fastest_idle_processor_preferred() {
        let mut g = Dag::new();
        g.add_node(6.0);
        let cfg = SimConfig {
            speeds: vec![1.0, 3.0],
            policy: Priority::BottomLevel,
            seed: 0,
            assignment: None,
        };
        let out = simulate_execution(&g, &FailureModel::failure_free(), &cfg);
        assert_eq!(out.schedule.entries[0].processor, 1);
        assert!((out.makespan() - 2.0).abs() < 1e-12);
    }
}
