//! DVFS speed-scaling model — the paper's equation (1).
//!
//! The paper's Section II-B motivates silent errors via Dynamic Voltage
//! and Frequency Scaling: lowering the processor speed `s` lowers the
//! circuit's critical charge, and many works (Zhu–Melhem–Mossé 2004 and
//! follow-ups) model the resulting error rate as
//!
//! ```text
//! λ(s) = λ₀ · 10^( d·(s_max − s) / (s_max − s_min) )
//! ```
//!
//! — exponential growth as the speed drops. Combined with the expected-
//! makespan machinery this yields the energy/resilience/time trade-off
//! the paper alludes to: running slower saves dynamic power (`∝ s³`) but
//! stretches every task (`aᵢ/s`) *and* raises the chance of
//! re-executions, all three of which feed back into the expected
//! makespan and the expected energy.

use crate::first_order::first_order_expected_makespan_fast;
use crate::model::FailureModel;
use stochdag_dag::Dag;

/// The exponential DVFS error-rate model of the paper's eq. (1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DvfsModel {
    /// Error rate λ₀ at the maximum speed.
    pub lambda0: f64,
    /// Sensitivity exponent `d > 0`.
    pub d: f64,
    /// Minimum speed `s_min > 0` (normalized units).
    pub s_min: f64,
    /// Maximum speed `s_max > s_min`.
    pub s_max: f64,
}

impl DvfsModel {
    /// Construct a model; see field docs for the parameter meanings.
    ///
    /// # Panics
    /// Panics unless `0 < s_min < s_max`, `d > 0`, `λ₀ ≥ 0`.
    pub fn new(lambda0: f64, d: f64, s_min: f64, s_max: f64) -> DvfsModel {
        assert!(
            lambda0 >= 0.0 && lambda0.is_finite(),
            "bad lambda0 {lambda0}"
        );
        assert!(
            d > 0.0 && d.is_finite(),
            "sensitivity must be positive, got {d}"
        );
        assert!(
            0.0 < s_min && s_min < s_max && s_max.is_finite(),
            "need 0 < s_min < s_max, got [{s_min}, {s_max}]"
        );
        DvfsModel {
            lambda0,
            d,
            s_min,
            s_max,
        }
    }

    /// Error rate at speed `s` (paper eq. (1)).
    ///
    /// # Panics
    /// Panics if `s` is outside `[s_min, s_max]`.
    pub fn lambda_at(&self, s: f64) -> f64 {
        assert!(
            (self.s_min..=self.s_max).contains(&s),
            "speed {s} outside [{}, {}]",
            self.s_min,
            self.s_max
        );
        self.lambda0 * 10f64.powf(self.d * (self.s_max - s) / (self.s_max - self.s_min))
    }

    /// The failure model seen by a DAG executed at speed `s`.
    pub fn failure_model_at(&self, s: f64) -> FailureModel {
        FailureModel::new(self.lambda_at(s))
    }
}

/// Simple power model: `P(s) = p_static + p_dyn · s³` (normalized
/// units), the standard cubic dynamic-power approximation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerModel {
    /// Static (leakage) power, paid for the whole makespan.
    pub p_static: f64,
    /// Dynamic power coefficient (per `s³`), paid while computing.
    pub p_dyn: f64,
}

/// One operating point of the speed sweep.
#[derive(Clone, Copy, Debug)]
pub struct TradeoffPoint {
    /// Operating speed.
    pub speed: f64,
    /// Error rate λ(s).
    pub lambda: f64,
    /// First-order expected makespan at this speed (unlimited
    /// processors).
    pub expected_makespan: f64,
    /// First-order expected *computation work* time, `Σ aᵢ/s · (1 + λaᵢ/s)`
    /// (failure-free work plus expected re-executed work).
    pub expected_work: f64,
    /// Expected energy: `p_static · E[makespan] + p_dyn·s³ · E[work]`.
    pub expected_energy: f64,
}

/// Sweep operating speeds and evaluate the resilience/time/energy
/// trade-off with the first-order approximation.
///
/// Task weights in `dag` are the durations *at `s_max`*; at speed `s`
/// every weight scales by `s_max / s`.
pub fn speed_tradeoff(
    dag: &Dag,
    dvfs: &DvfsModel,
    power: &PowerModel,
    speeds: &[f64],
) -> Vec<TradeoffPoint> {
    speeds
        .iter()
        .map(|&s| {
            let lambda = dvfs.lambda_at(s);
            let model = FailureModel::new(lambda);
            // Scale the DAG to speed s.
            let mut scaled = dag.clone();
            let factor = dvfs.s_max / s;
            for v in dag.nodes() {
                scaled.set_weight(v, dag.weight(v) * factor);
            }
            let expected_makespan = first_order_expected_makespan_fast(&scaled, &model);
            let expected_work: f64 = scaled
                .nodes()
                .map(|v| {
                    let a = scaled.weight(v);
                    a * (1.0 + lambda * a)
                })
                .sum();
            let expected_energy =
                power.p_static * expected_makespan + power.p_dyn * s * s * s * expected_work;
            TradeoffPoint {
                speed: s,
                lambda,
                expected_makespan,
                expected_work,
                expected_energy,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DvfsModel {
        DvfsModel::new(1e-4, 3.0, 0.5, 1.0)
    }

    #[test]
    fn lambda_at_extremes() {
        let m = model();
        assert!((m.lambda_at(1.0) - 1e-4).abs() < 1e-18, "λ(s_max) = λ0");
        // At s_min the rate is λ0·10^d = 0.1.
        assert!((m.lambda_at(0.5) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn lambda_monotone_decreasing_in_speed() {
        let m = model();
        let mut prev = f64::INFINITY;
        for i in 0..=10 {
            let s = 0.5 + 0.05 * i as f64;
            let l = m.lambda_at(s);
            assert!(l < prev);
            prev = l;
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_speed_rejected() {
        model().lambda_at(0.4);
    }

    #[test]
    fn tradeoff_shapes() {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        g.add_edge(a, b);
        let dvfs = model();
        let power = PowerModel {
            p_static: 0.2,
            p_dyn: 1.0,
        };
        let pts = speed_tradeoff(&g, &dvfs, &power, &[0.5, 0.7, 0.9, 1.0]);
        assert_eq!(pts.len(), 4);
        // Makespan decreases with speed (twice: shorter tasks, fewer
        // failures).
        for w in pts.windows(2) {
            assert!(w[1].expected_makespan < w[0].expected_makespan);
        }
        // At full speed, expected makespan ≈ d(G) since λ0 tiny.
        let full = pts.last().unwrap();
        assert!((full.expected_makespan - 3.0).abs() < 1e-3);
        // Energy accounting is self-consistent.
        for p in &pts {
            let want = 0.2 * p.expected_makespan + p.speed.powi(3) * p.expected_work;
            assert!((p.expected_energy - want).abs() < 1e-12);
        }
    }

    #[test]
    fn slow_speed_can_cost_more_energy_despite_cubic_saving() {
        // With a strong error sensitivity, running at s_min triggers so
        // many re-executions that the energy advantage shrinks: verify
        // expected work at s_min exceeds the failure-free work at s_min.
        let mut g = Dag::new();
        for _ in 0..5 {
            g.add_node(2.0);
        }
        let dvfs = DvfsModel::new(1e-3, 4.0, 0.5, 1.0);
        let power = PowerModel {
            p_static: 0.0,
            p_dyn: 1.0,
        };
        let pts = speed_tradeoff(&g, &dvfs, &power, &[0.5]);
        let p = &pts[0];
        let failure_free_work = 5.0 * 2.0 * (1.0 / 0.5);
        assert!(
            p.expected_work > 1.5 * failure_free_work,
            "re-executions must inflate expected work: {} vs {failure_free_work}",
            p.expected_work
        );
    }
}
