//! Correlated failure scenarios layered over the i.i.d. [`FailureModel`].
//!
//! The paper (and every estimator family in this crate) assumes task
//! failures are independent with per-task probability `pfail(a_i) =
//! 1 − e^{−λ a_i}`. Real platforms violate that in two canonical ways:
//! a shared fault domain (a rack, a PDU, a switch) takes a *group* of
//! tasks down together, and failure rates drift over *time* (bursts).
//! [`ScenarioModel`] captures both as resolved, per-node data so the
//! sampling and analytic layers stay ignorant of how groups or windows
//! were specified (that lives in `stochdag-workload`):
//!
//! - [`ScenarioModel::Iid`] — the paper's baseline; estimators treat it
//!   exactly like a plain [`FailureModel`] (bit-identical results).
//! - [`ScenarioModel::GroupHazard`] — every node belongs to one group;
//!   per trial each group is independently "hot" with probability `q`,
//!   and a hot member's failure hazard is multiplied by `m` (its
//!   per-attempt success probability becomes `psucc^m`). This is the
//!   rack-correlated mixture: failures of same-group tasks are
//!   positively correlated through the shared hot/cold draw.
//! - [`ScenarioModel::NodeHazard`] — a fixed hazard multiplier per
//!   node (bursty/temporal windows resolve to this). No cross-task
//!   correlation, but the inhomogeneity alone already breaks the
//!   identical-distribution assumption analytic families lean on.
//!
//! The *marginal* hazard multiplier `h̄_i` (expectation over the group
//! draw) is what first-order analysis needs: to first order in λ, the
//! expected makespan under a scenario is `d(G) + Σ_i λ h̄_i a_i Δ_i`,
//! because correlation between tasks only enters at `O(λ²)`.
//! [`ScenarioModel::marginal_hazard`] returns exactly that multiplier.
//!
//! Estimators that cannot honor a scenario return a structured
//! [`UnsupportedScenario`] error instead of silently ignoring the
//! correlation; see `PreparedEstimator::estimate_scenario`.

use std::fmt;

/// A resolved correlated-failure scenario: per-node data only, no file
/// paths, window specs, or group labels (those live in
/// `stochdag-workload`, which resolves a user-facing spec against a
/// concrete DAG into this form).
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioModel {
    /// Independent, identically-modulated failures — the paper's
    /// baseline. Estimators must treat this exactly like the plain
    /// [`FailureModel`](crate::FailureModel) path (bit-identical).
    Iid,
    /// Rack-correlated mixture: node `i` belongs to group
    /// `group_of[i]`; each group is independently hot with probability
    /// `group_prob`, and hot members' failure hazard is multiplied by
    /// `hazard` (per-attempt success probability `psucc^hazard`).
    GroupHazard {
        /// Group index per node, in node-id order; values `< n_groups`.
        group_of: Vec<u32>,
        /// Number of groups (≥ 1).
        n_groups: usize,
        /// Probability a group is hot in a given trial, in `[0, 1]`.
        group_prob: f64,
        /// Hazard multiplier applied to hot members (≥ 1, finite).
        hazard: f64,
    },
    /// Deterministic per-node hazard multipliers (bursty/temporal
    /// windows resolve to this): node `i`'s failure hazard is scaled by
    /// `hazard[i]` in every trial.
    NodeHazard {
        /// Hazard multiplier per node, in node-id order (each ≥ 1,
        /// finite).
        hazard: Vec<f64>,
    },
}

impl ScenarioModel {
    /// Whether this is the i.i.d. baseline (estimators take the plain
    /// [`FailureModel`](crate::FailureModel) path).
    pub fn is_iid(&self) -> bool {
        matches!(self, ScenarioModel::Iid)
    }

    /// Short stable kind name, used in error messages and telemetry.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ScenarioModel::Iid => "iid",
            ScenarioModel::GroupHazard { .. } => "group-hazard",
            ScenarioModel::NodeHazard { .. } => "node-hazard",
        }
    }

    /// Marginal hazard multiplier `h̄_i` for node `node`: the expected
    /// multiplier on the node's failure hazard over the scenario's
    /// randomness. First-order analysis is exact in this marginal
    /// (cross-task correlation enters only at `O(λ²)`).
    ///
    /// For [`ScenarioModel::GroupHazard`] this is `1 + q (m − 1)`; for
    /// [`ScenarioModel::NodeHazard`] it is `hazard[node]`; for
    /// [`ScenarioModel::Iid`] it is `1`.
    pub fn marginal_hazard(&self, node: usize) -> f64 {
        match self {
            ScenarioModel::Iid => 1.0,
            ScenarioModel::GroupHazard {
                group_prob, hazard, ..
            } => 1.0 + group_prob * (hazard - 1.0),
            ScenarioModel::NodeHazard { hazard } => hazard[node],
        }
    }

    /// Validate internal consistency against a graph of `n_nodes`
    /// nodes. Returns a human-readable description of the first
    /// problem found.
    pub fn validate(&self, n_nodes: usize) -> Result<(), String> {
        match self {
            ScenarioModel::Iid => Ok(()),
            ScenarioModel::GroupHazard {
                group_of,
                n_groups,
                group_prob,
                hazard,
            } => {
                if *n_groups == 0 {
                    return Err("group-hazard scenario needs at least one group".into());
                }
                if group_of.len() != n_nodes {
                    return Err(format!(
                        "group assignment covers {} nodes but the graph has {n_nodes}",
                        group_of.len()
                    ));
                }
                if let Some(g) = group_of.iter().find(|&&g| g as usize >= *n_groups) {
                    return Err(format!(
                        "group index {g} out of range (n_groups={n_groups})"
                    ));
                }
                if !(0.0..=1.0).contains(group_prob) {
                    return Err(format!("group probability {group_prob} must be in [0, 1]"));
                }
                if !hazard.is_finite() || *hazard < 1.0 {
                    return Err(format!(
                        "hazard multiplier {hazard} must be finite and >= 1"
                    ));
                }
                Ok(())
            }
            ScenarioModel::NodeHazard { hazard } => {
                if hazard.len() != n_nodes {
                    return Err(format!(
                        "hazard vector covers {} nodes but the graph has {n_nodes}",
                        hazard.len()
                    ));
                }
                if let Some(h) = hazard.iter().find(|h| !h.is_finite() || **h < 1.0) {
                    return Err(format!("hazard multiplier {h} must be finite and >= 1"));
                }
                Ok(())
            }
        }
    }
}

/// Structured "this estimator cannot honor that scenario" error.
///
/// Returned by `PreparedEstimator::estimate_scenario` for estimator
/// families whose math assumes independent failures and has no sound
/// extension to the requested correlation structure. Callers (the sweep
/// engine) reject such (estimator, scenario) pairs at spec-validation
/// time; this error is the defense in depth behind that check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnsupportedScenario {
    /// Display name of the estimator that refused.
    pub estimator: String,
    /// Kind name of the scenario it refused (see
    /// [`ScenarioModel::kind_name`]).
    pub scenario: String,
}

impl UnsupportedScenario {
    /// Build the error from an estimator name and the refused scenario.
    pub fn new(estimator: &str, scenario: &ScenarioModel) -> Self {
        UnsupportedScenario {
            estimator: estimator.to_string(),
            scenario: scenario.kind_name().to_string(),
        }
    }
}

impl fmt::Display for UnsupportedScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "estimator {} does not support {} failure scenarios \
             (supported: mc, first-order, first-order-naive)",
            self.estimator, self.scenario
        )
    }
}

impl std::error::Error for UnsupportedScenario {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marginal_hazard_matches_mixture_expectation() {
        let s = ScenarioModel::GroupHazard {
            group_of: vec![0, 1, 0],
            n_groups: 2,
            group_prob: 0.25,
            hazard: 3.0,
        };
        // E[multiplier] = (1 − q)·1 + q·m = 1 + q(m − 1).
        assert!((s.marginal_hazard(0) - 1.5).abs() < 1e-15);
        assert!((s.marginal_hazard(2) - 1.5).abs() < 1e-15);
        assert_eq!(ScenarioModel::Iid.marginal_hazard(0), 1.0);
        let n = ScenarioModel::NodeHazard {
            hazard: vec![1.0, 4.0],
        };
        assert_eq!(n.marginal_hazard(1), 4.0);
    }

    #[test]
    fn validate_catches_shape_and_range_errors() {
        let bad_len = ScenarioModel::GroupHazard {
            group_of: vec![0, 0],
            n_groups: 1,
            group_prob: 0.1,
            hazard: 2.0,
        };
        assert!(bad_len.validate(3).unwrap_err().contains("covers 2 nodes"));
        let bad_group = ScenarioModel::GroupHazard {
            group_of: vec![0, 5],
            n_groups: 2,
            group_prob: 0.1,
            hazard: 2.0,
        };
        assert!(bad_group.validate(2).unwrap_err().contains("out of range"));
        let bad_hazard = ScenarioModel::NodeHazard {
            hazard: vec![1.0, 0.5],
        };
        assert!(bad_hazard.validate(2).unwrap_err().contains(">= 1"));
        let ok = ScenarioModel::NodeHazard {
            hazard: vec![1.0, 2.0],
        };
        assert!(ok.validate(2).is_ok());
        assert!(ScenarioModel::Iid.validate(99).is_ok());
    }

    #[test]
    fn unsupported_error_names_both_sides() {
        let err = UnsupportedScenario::new("Sculli", &ScenarioModel::NodeHazard { hazard: vec![] });
        let msg = err.to_string();
        assert!(msg.contains("Sculli"), "{msg}");
        assert!(msg.contains("node-hazard"), "{msg}");
    }
}
