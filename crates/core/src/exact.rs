//! Exhaustive exact expected makespan for the 2-state model.
//!
//! Enumerates all `2^|V|` failure subsets; usable for `|V| ≤ ~24`. The
//! problem is #P-complete (Hagstrom 1988), so this is strictly a
//! validation oracle: tests use it to check the Monte Carlo sampler and
//! the `O(λ²)` error bound of the first-order approximation on small
//! graphs.

use crate::estimator::{Estimator, PreparedEstimator};
use crate::model::FailureModel;
use stochdag_dag::{Dag, FrozenDag, PreparedDag};
use stochdag_dist::DurationTable;

/// Largest node count accepted by the exhaustive evaluator.
pub const MAX_EXACT_NODES: usize = 24;

/// Reusable buffers of the exhaustive mask loop.
#[derive(Default)]
struct ExactScratch {
    weights: Vec<f64>,
    completion: Vec<f64>,
}

/// The `2^n`-mask expectation over a frozen view — the shared core of
/// the one-shot and prepared paths.
fn exact_with(frozen: &FrozenDag, pfail: &[f64], scratch: &mut ExactScratch) -> f64 {
    let n = frozen.node_count();
    let base = &frozen.weights;
    scratch.weights.clear();
    scratch.weights.extend_from_slice(base);
    let weights = &mut scratch.weights;
    let completion = &mut scratch.completion;
    let mut expectation = 0.0f64;
    for mask in 0u64..(1u64 << n) {
        let mut prob = 1.0f64;
        for i in 0..n {
            if mask >> i & 1 == 1 {
                prob *= pfail[i];
                weights[i] = 2.0 * base[i];
            } else {
                prob *= 1.0 - pfail[i];
                weights[i] = base[i];
            }
        }
        if prob == 0.0 {
            continue;
        }
        expectation += prob * frozen.longest_path_with_weights(weights, completion);
    }
    expectation
}

/// Exact expected makespan under the **2-state** model (every task runs
/// once with probability `pᵢ = e^{−λaᵢ}`, else exactly twice).
///
/// # Panics
/// Panics if the DAG has more than [`MAX_EXACT_NODES`] nodes.
pub fn exact_expected_makespan_two_state(dag: &Dag, model: &FailureModel) -> f64 {
    let n = dag.node_count();
    assert!(
        n <= MAX_EXACT_NODES,
        "exhaustive evaluation needs |V| <= {MAX_EXACT_NODES}, got {n}"
    );
    if n == 0 {
        return 0.0;
    }
    let frozen = dag.freeze();
    let table = DurationTable::new(model.lambda, &frozen.weights);
    exact_with(&frozen, table.pfail_all(), &mut ExactScratch::default())
}

/// The exhaustive 2-state estimator (validation oracle).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactEstimator;

/// Exact estimator bound to one prepared graph: the frozen view is
/// shared with the preparation and the mask-loop buffers are reused
/// across models.
struct PreparedExact {
    prepared: PreparedDag,
    table: DurationTable,
    scratch: ExactScratch,
}

impl PreparedEstimator for PreparedExact {
    fn name(&self) -> &'static str {
        "Exact(2-state)"
    }

    fn expected_makespan_for(&mut self, model: &FailureModel) -> f64 {
        if self.prepared.node_count() == 0 {
            return 0.0;
        }
        self.table.rebuild(model.lambda, self.prepared.weights());
        exact_with(
            self.prepared.frozen(),
            self.table.pfail_all(),
            &mut self.scratch,
        )
    }
}

impl Estimator for ExactEstimator {
    fn name(&self) -> &'static str {
        "Exact(2-state)"
    }

    fn prepare(&self, prepared: &PreparedDag) -> Box<dyn PreparedEstimator> {
        assert!(
            prepared.node_count() <= MAX_EXACT_NODES,
            "exhaustive evaluation needs |V| <= {MAX_EXACT_NODES}, got {}",
            prepared.node_count()
        );
        Box::new(PreparedExact {
            prepared: prepared.clone(),
            table: DurationTable::default(),
            scratch: ExactScratch::default(),
        })
    }

    fn expected_makespan(&self, dag: &Dag, model: &FailureModel) -> f64 {
        exact_expected_makespan_two_state(dag, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monte_carlo::{MonteCarloEstimator, SamplingModel};

    #[test]
    fn single_task_closed_form() {
        let mut g = Dag::new();
        g.add_node(2.0);
        let lambda = 0.1;
        let model = FailureModel::new(lambda);
        let q = model.pfail_of_weight(2.0);
        let want = (1.0 - q) * 2.0 + q * 4.0;
        let e = exact_expected_makespan_two_state(&g, &model);
        assert!((e - want).abs() < 1e-14);
    }

    #[test]
    fn two_parallel_tasks_closed_form() {
        // max of two independent 2-state variables with equal a.
        let a = 1.0;
        let mut g = Dag::new();
        g.add_node(a);
        g.add_node(a);
        let model = FailureModel::new(0.3);
        let q = model.pfail_of_weight(a);
        let p = 1.0 - q;
        // P(max = a) = p², else max = 2a.
        let want = p * p * a + (1.0 - p * p) * 2.0 * a;
        let e = exact_expected_makespan_two_state(&g, &model);
        assert!((e - want).abs() < 1e-14);
    }

    #[test]
    fn matches_monte_carlo_two_state() {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        let c = g.add_node(1.5);
        let d = g.add_node(0.5);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        let model = FailureModel::new(0.15);
        let exact = exact_expected_makespan_two_state(&g, &model);
        let mc = MonteCarloEstimator::new(500_000)
            .with_seed(9)
            .with_sampling(SamplingModel::TwoState)
            .run(&g, &model);
        assert!(
            (exact - mc.mean).abs() < 4.0 * mc.std_error,
            "exact {exact} vs MC {} ± {}",
            mc.mean,
            mc.std_error
        );
    }

    #[test]
    fn failure_free_is_longest_path() {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(3.0);
        g.add_edge(a, b);
        let e = exact_expected_makespan_two_state(&g, &FailureModel::failure_free());
        assert_eq!(e, 4.0);
    }

    #[test]
    #[should_panic(expected = "exhaustive evaluation")]
    fn too_large_rejected() {
        let mut g = Dag::new();
        for _ in 0..(MAX_EXACT_NODES + 1) {
            g.add_node(1.0);
        }
        exact_expected_makespan_two_state(&g, &FailureModel::new(0.1));
    }

    #[test]
    fn bounded_below_by_failure_free_makespan() {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        g.add_edge(a, b);
        for lam in [0.01, 0.1, 0.5] {
            let e = exact_expected_makespan_two_state(&g, &FailureModel::new(lam));
            assert!(e >= 3.0);
            assert!(e <= 6.0, "at most everything doubled");
        }
    }
}
