//! Second-order approximation — the extension sketched in the paper's
//! conclusion ("our general approach … can be used to obtain a (more
//! complicated but still tractable) second order approximation").
//!
//! Expanding the per-task attempt-count probabilities to `O(λ²)` with
//! `xᵢ = λaᵢ`:
//!
//! ```text
//! P(1 attempt)  = 1 − xᵢ + xᵢ²/2       (value aᵢ)
//! P(2 attempts) = xᵢ − (3/2)xᵢ²        (value 2aᵢ)
//! P(3 attempts) = xᵢ²                  (value 3aᵢ)
//! ```
//!
//! so the `O(λ²)`-exact expansion of `E(G)` needs four families of
//! longest paths:
//!
//! ```text
//! E(G) = c∅·d(G) + Σᵢ cᵢ·d(Gᵢ) + Σᵢ xᵢ²·d(Gᵢ³) + Σ_{i<j} xᵢxⱼ·d(G_{ij}) + O(λ³)
//!   c∅ = 1 − Σxᵢ + Σxᵢ²/2 + Σ_{i<j} xᵢxⱼ
//!   cᵢ = xᵢ − (3/2)xᵢ² − xᵢ·Σ_{j≠i} xⱼ
//! ```
//!
//! with `Gᵢ` doubling task `i`, `Gᵢ³` tripling it, and `G_{ij}` doubling
//! both `i` and `j`. The coefficients sum to `1 + O(λ³)` (asserted in
//! tests). `d(Gᵢ)`/`d(Gᵢ³)` come from the level decomposition in `O(1)`;
//! `d(G_{ij})` from all-pairs longest paths:
//!
//! ```text
//! d(G_{ij}) = max( d(G), through-i, through-j,
//!                  top(i) + pa(i,j) + bot(j) + aᵢ )   [if i ⇝ j]
//! ```
//!
//! Total cost `O(|V|·(|V| + |E|))` time and `O(|V|²)` memory.

use crate::estimator::{Estimate, Estimator, PreparedEstimator};
use crate::model::FailureModel;
use std::time::Instant;
use stochdag_dag::{AllPairsLongestPaths, Dag, LevelInfo, PreparedDag};

/// Second-order approximation of the expected makespan under the
/// geometric re-execution model.
pub fn second_order_expected_makespan(dag: &Dag, model: &FailureModel) -> f64 {
    if dag.node_count() == 0 {
        return 0.0;
    }
    second_order_with(
        dag,
        &LevelInfo::compute(dag),
        &AllPairsLongestPaths::compute(dag),
        model,
    )
}

/// [`second_order_expected_makespan`] with the level decomposition and
/// the all-pairs longest paths supplied by the caller — the shared core
/// of the one-shot and prepared paths. Both inputs are
/// model-independent and dominate the cost (`O(|V|·(|V| + |E|))`), so a
/// prepared estimator computes them once per graph.
pub fn second_order_with(
    dag: &Dag,
    levels: &LevelInfo,
    ap: &AllPairsLongestPaths,
    model: &FailureModel,
) -> f64 {
    if dag.node_count() == 0 {
        return 0.0;
    }
    second_order_from_tables(dag, &SecondOrderTables::compute(dag, levels, ap), model)
}

/// The model-independent half of the second-order expansion: every
/// longest-path value the coefficient sums touch, precomputed once per
/// graph. `O(|V|²)` memory (like the all-pairs matrix it is derived
/// from, which can be dropped afterwards); evaluation against any λ is
/// then pure coefficient arithmetic ([`second_order_from_tables`]).
pub struct SecondOrderTables {
    /// `d(G)`.
    d_g: f64,
    /// `d(Gᵢ)` per node (task `i` doubled).
    d_gi: Vec<f64>,
    /// `d(Gᵢ³)` per node (task `i` tripled).
    d_gi3: Vec<f64>,
    /// `d(G_{ij})` for `i < j`, packed upper triangle in row-major
    /// order: entry `(i, j)` lives at `i·n − i(i+1)/2 + (j − i − 1)`.
    d_gij: Vec<f64>,
}

impl SecondOrderTables {
    /// Precompute all longest-path values of the expansion.
    pub fn compute(dag: &Dag, levels: &LevelInfo, ap: &AllPairsLongestPaths) -> SecondOrderTables {
        let n = dag.node_count();
        let d_g = levels.makespan;
        let mut d_gi = Vec::with_capacity(n);
        let mut d_gi3 = Vec::with_capacity(n);
        for i in dag.nodes() {
            d_gi.push(levels.makespan_with_scaled_node(dag, i, 2.0));
            d_gi3.push(levels.makespan_with_scaled_node(dag, i, 3.0));
        }
        let mut d_gij = Vec::with_capacity(n.saturating_sub(1) * n / 2);
        for i in dag.nodes() {
            let through_i = levels.path_through(i) + dag.weight(i);
            for j in dag.nodes().skip(i.index() + 1) {
                let through_j = levels.path_through(j) + dag.weight(j);
                let mut d = d_g.max(through_i).max(through_j);
                // Path through both, i before j (or j before i).
                if ap.reaches(i, j) {
                    let both = levels.top[i.index()]
                        + ap.get(i, j)
                        + levels.bot[j.index()]
                        + dag.weight(i);
                    d = d.max(both);
                } else if ap.reaches(j, i) {
                    let both = levels.top[j.index()]
                        + ap.get(j, i)
                        + levels.bot[i.index()]
                        + dag.weight(j);
                    d = d.max(both);
                }
                d_gij.push(d);
            }
        }
        SecondOrderTables {
            d_g,
            d_gi,
            d_gi3,
            d_gij,
        }
    }

    /// Packed index of pair `(i, j)` with `i < j`.
    #[inline]
    fn pair(&self, n: usize, i: usize, j: usize) -> f64 {
        self.d_gij[i * n - i * (i + 1) / 2 + (j - i - 1)]
    }
}

/// The model-dependent half of the second-order expansion: coefficient
/// sums over precomputed [`SecondOrderTables`], `O(|V|²)` multiply-adds
/// with no graph traversal. The summation order is identical to the
/// historical single-pass implementation, so results are bit-identical.
pub fn second_order_from_tables(
    dag: &Dag,
    tables: &SecondOrderTables,
    model: &FailureModel,
) -> f64 {
    second_order_from_tables_in(dag, tables, model, &mut Vec::new())
}

/// [`second_order_from_tables`] over a caller-provided `x = λ·a` scratch
/// vector — the hot-loop form used by the prepared estimator, which
/// reuses one vector across every failure model of a grid. Output is
/// bit-identical to the allocating entry point.
fn second_order_from_tables_in(
    dag: &Dag,
    tables: &SecondOrderTables,
    model: &FailureModel,
    x: &mut Vec<f64>,
) -> f64 {
    let n = dag.node_count();
    if n == 0 {
        return 0.0;
    }
    let d_g = tables.d_g;
    let lambda = model.lambda;

    x.clear();
    x.extend(dag.nodes().map(|i| lambda * dag.weight(i)));
    let sum_x: f64 = x.iter().sum();
    let sum_x2: f64 = x.iter().map(|v| v * v).sum();
    // Σ_{i<j} x_i x_j = ((Σx)² − Σx²)/2
    let sum_cross = 0.5 * (sum_x * sum_x - sum_x2);

    let c_empty = 1.0 - sum_x + 0.5 * sum_x2 + sum_cross;
    let mut e = c_empty * d_g;

    // Single-failure and double-failure-of-one-task terms.
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        let c_i = xi - 1.5 * xi * xi - xi * (sum_x - xi);
        e += c_i * tables.d_gi[i] + xi * xi * tables.d_gi3[i];
    }

    // Distinct-pair single failures.
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        for (j, &xj) in x.iter().enumerate().skip(i + 1) {
            if xj == 0.0 {
                continue;
            }
            e += xi * xj * tables.pair(n, i, j);
        }
    }
    e
}

/// One register-blocked pass of the pair-table sweep covering models
/// `mo..mo + L` of a node-major `x` matrix. Accumulators are seeded
/// from (and written back to) `e`, so each lane's additions happen in
/// exactly the sequential `(i, j)` order starting from its prefix
/// value — bit-identical to the scalar loop, just `L` models per
/// table read. Returns `L` so the dispatcher can advance its offset.
#[inline]
fn pair_sweep_lanes<const L: usize>(
    grid_x: &[f64],
    d_gij: &[f64],
    n: usize,
    m_count: usize,
    mo: usize,
    e: &mut [f64],
) -> usize {
    let mut acc = [0.0f64; L];
    acc.copy_from_slice(&e[mo..mo + L]);
    for i in 0..n {
        let mut xi = [0.0f64; L];
        xi.copy_from_slice(&grid_x[i * m_count + mo..i * m_count + mo + L]);
        let base = i * n - i * (i + 1) / 2;
        let prow = &d_gij[base..base + (n - i - 1)];
        for (pj, &pair) in prow.iter().enumerate() {
            let j = i + 1 + pj;
            let xj = &grid_x[j * m_count + mo..j * m_count + mo + L];
            for l in 0..L {
                acc[l] += xi[l] * xj[l] * pair;
            }
        }
    }
    e[mo..mo + L].copy_from_slice(&acc);
    L
}

/// The second-order estimator.
#[derive(Clone, Copy, Debug, Default)]
pub struct SecondOrderEstimator;

/// Second-order estimator bound to one prepared graph: the
/// `O(|V|·(|V| + |E|))` all-pairs computation and every longest-path
/// value of the expansion are hoisted into [`SecondOrderTables`] at
/// prepare time (the all-pairs matrix itself is dropped immediately),
/// leaving only the λ-dependent coefficient sums per model.
struct PreparedSecondOrder {
    prepared: PreparedDag,
    tables: SecondOrderTables,
    /// Reused `x = λ·a` vector (sequential path).
    x: Vec<f64>,
    /// Reused node-major `x` matrix (grid path): row `i` holds node
    /// `i`'s `λ·a_i` across the grid's models.
    grid_x: Vec<f64>,
}

impl PreparedEstimator for PreparedSecondOrder {
    fn name(&self) -> &'static str {
        "SecondOrder"
    }

    fn expected_makespan_for(&mut self, model: &FailureModel) -> f64 {
        second_order_from_tables_in(self.prepared.dag(), &self.tables, model, &mut self.x)
    }

    /// Batched grid pass: the `O(|V|²)` packed pair table — by far the
    /// largest input of the evaluation — is swept **once** for the whole
    /// grid, with every model's accumulator updated per pair, instead of
    /// once per model. Per model, terms are added in exactly the
    /// sequential order (empty-set, single/triple failures in node
    /// order, then pairs in `(i, j)` order), so values are bit-identical
    /// to [`PreparedEstimator::estimate_for`]; `elapsed` is each model's
    /// amortized share of the batched pass.
    fn estimate_grid(&mut self, models: &[FailureModel]) -> Vec<Estimate> {
        let n = self.prepared.node_count();
        if models.is_empty() || n == 0 {
            return models.iter().map(|m| self.estimate_for(m)).collect();
        }
        let start = Instant::now();
        let dag = self.prepared.dag();
        let m_count = models.len();
        // Node-major `x` matrix: row `i` holds node i's `λ·a_i` for
        // every model, so the per-pair model loop below reads two
        // contiguous rows instead of striding across model vectors.
        self.grid_x.clear();
        self.grid_x.resize(n * m_count, 0.0);
        for (ni, node) in dag.nodes().enumerate() {
            let w = dag.weight(node);
            let row = &mut self.grid_x[ni * m_count..(ni + 1) * m_count];
            for (mi, m) in models.iter().enumerate() {
                row[mi] = m.lambda * w;
            }
        }
        // Model-independent prefix: empty-set plus single/triple terms,
        // per model (cheap, O(|V|) each).
        let mut e: Vec<f64> = Vec::with_capacity(m_count);
        for mi in 0..m_count {
            let x = |i: usize| self.grid_x[i * m_count + mi];
            let sum_x: f64 = (0..n).map(&x).sum();
            let sum_x2: f64 = (0..n).map(|i| x(i) * x(i)).sum();
            let sum_cross = 0.5 * (sum_x * sum_x - sum_x2);
            let c_empty = 1.0 - sum_x + 0.5 * sum_x2 + sum_cross;
            let mut acc = c_empty * self.tables.d_g;
            for i in 0..n {
                let xi = x(i);
                if xi == 0.0 {
                    continue;
                }
                let c_i = xi - 1.5 * xi * xi - xi * (sum_x - xi);
                acc += c_i * self.tables.d_gi[i] + xi * xi * self.tables.d_gi3[i];
            }
            e.push(acc);
        }
        // One shared sweep of the pair table for every model: the
        // packed row of pairs `(i, ·)` is sliced once per `i`, and each
        // pair value updates all models off two contiguous `x` rows.
        // When no `x` entry is zero (every real calibration: positive
        // λ, positive weights) the zero-skip tests are dead, and
        // dropping them leaves independent accumulator lanes per pair —
        // branch-free, vectorizable, and bit-identical because skips
        // only alter the sum when a zero exists. The lanes run in
        // fixed-width register blocks (8/4/2/1 models at a time);
        // per-lane addition order is untouched by the blocking, so bits
        // still match the sequential path exactly.
        let has_zero = self.grid_x.contains(&0.0);
        if has_zero {
            for i in 0..n {
                let xi_row = &self.grid_x[i * m_count..(i + 1) * m_count];
                let base = i * n - i * (i + 1) / 2;
                let prow = &self.tables.d_gij[base..base + (n - i - 1)];
                for (pj, &pair) in prow.iter().enumerate() {
                    let j = i + 1 + pj;
                    let xj_row = &self.grid_x[j * m_count..(j + 1) * m_count];
                    for (mi, acc) in e.iter_mut().enumerate() {
                        let xi = xi_row[mi];
                        if xi == 0.0 {
                            continue;
                        }
                        let xj = xj_row[mi];
                        if xj == 0.0 {
                            continue;
                        }
                        *acc += xi * xj * pair;
                    }
                }
            }
        } else {
            let mut mo = 0;
            while mo < m_count {
                let left = m_count - mo;
                let step = if left >= 8 {
                    pair_sweep_lanes::<8>(&self.grid_x, &self.tables.d_gij, n, m_count, mo, &mut e)
                } else if left >= 4 {
                    pair_sweep_lanes::<4>(&self.grid_x, &self.tables.d_gij, n, m_count, mo, &mut e)
                } else if left >= 2 {
                    pair_sweep_lanes::<2>(&self.grid_x, &self.tables.d_gij, n, m_count, mo, &mut e)
                } else {
                    pair_sweep_lanes::<1>(&self.grid_x, &self.tables.d_gij, n, m_count, mo, &mut e)
                };
                mo += step;
            }
        }
        let elapsed = start.elapsed() / models.len() as u32;
        e.into_iter()
            .map(|value| Estimate {
                value,
                elapsed,
                name: self.name().to_string(),
                std_error: self.std_error_hint(),
            })
            .collect()
    }
}

impl Estimator for SecondOrderEstimator {
    fn name(&self) -> &'static str {
        "SecondOrder"
    }

    fn prepare(&self, prepared: &PreparedDag) -> Box<dyn PreparedEstimator> {
        let ap = AllPairsLongestPaths::compute(prepared.dag());
        Box::new(PreparedSecondOrder {
            tables: SecondOrderTables::compute(prepared.dag(), prepared.levels(), &ap),
            prepared: prepared.clone(),
            x: Vec::new(),
            grid_x: Vec::new(),
        })
    }

    fn expected_makespan(&self, dag: &Dag, model: &FailureModel) -> f64 {
        second_order_expected_makespan(dag, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::first_order::first_order_expected_makespan_fast;
    use crate::monte_carlo::MonteCarloEstimator;

    fn diamond() -> Dag {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        let c = g.add_node(3.0);
        let d = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        g
    }

    #[test]
    fn zero_lambda_gives_failure_free() {
        let g = diamond();
        let e = second_order_expected_makespan(&g, &FailureModel::failure_free());
        assert_eq!(e, 5.0);
    }

    #[test]
    fn single_task_closed_form() {
        // E[N·a] to O(λ²): a·(1·(1−x+x²/2) + 2·(x−1.5x²) + 3·x²)
        // = a·(1 + x + x²/2) — the O(x²) truncation of a·eˣ = a/p.
        let a = 2.0;
        let lambda = 0.03;
        let x: f64 = lambda * a;
        let mut g = Dag::new();
        g.add_node(a);
        let e = second_order_expected_makespan(&g, &FailureModel::new(lambda));
        let want = a * (1.0 + x + 0.5 * x * x);
        assert!((e - want).abs() < 1e-12, "{e} vs {want}");
    }

    #[test]
    fn agrees_with_first_order_at_order_lambda() {
        // E2 − E1 must be O(λ²): shrink λ by 10 ⇒ difference by ~100.
        let g = diamond();
        let d1 = {
            let m = FailureModel::new(1e-2);
            (second_order_expected_makespan(&g, &m) - first_order_expected_makespan_fast(&g, &m))
                .abs()
        };
        let d2 = {
            let m = FailureModel::new(1e-3);
            (second_order_expected_makespan(&g, &m) - first_order_expected_makespan_fast(&g, &m))
                .abs()
        };
        assert!(d2 < d1 / 50.0, "d(1e-2)={d1} d(1e-3)={d2}: not quadratic");
    }

    #[test]
    fn beats_first_order_at_high_failure_rate() {
        let g = diamond();
        let model = FailureModel::new(0.08); // pfail(ā=1.75) ≈ 13%
        let mc = MonteCarloEstimator::new(400_000)
            .with_seed(4)
            .run(&g, &model);
        let e1 = first_order_expected_makespan_fast(&g, &model);
        let e2 = second_order_expected_makespan(&g, &model);
        let err1 = (e1 - mc.mean).abs();
        let err2 = (e2 - mc.mean).abs();
        assert!(
            err2 < err1,
            "second order ({e2}, err {err2}) should beat first order ({e1}, err {err1}) vs MC {}",
            mc.mean
        );
    }

    #[test]
    fn pair_term_uses_joint_paths() {
        // Chain a→b: both on one path; doubling both lengthens the path
        // by a+b. Verify the closed form for a 2-task chain.
        let (a, b) = (1.0f64, 2.0f64);
        let lambda = 0.05f64;
        let (xa, xb) = (lambda * a, lambda * b);
        let mut g = Dag::new();
        let na = g.add_node(a);
        let nb = g.add_node(b);
        g.add_edge(na, nb);
        let d = a + b;
        let want = (1.0 - xa - xb + 0.5 * (xa * xa + xb * xb) + xa * xb) * d
            + (xa - 1.5 * xa * xa - xa * xb) * (d + a)
            + (xb - 1.5 * xb * xb - xa * xb) * (d + b)
            + xa * xa * (d + 2.0 * a)
            + xb * xb * (d + 2.0 * b)
            + xa * xb * (d + a + b);
        let e = second_order_expected_makespan(&g, &FailureModel::new(lambda));
        assert!((e - want).abs() < 1e-12, "{e} vs {want}");
    }

    #[test]
    fn parallel_pair_term() {
        // Two independent tasks of equal weight w: doubling both gives
        // makespan 2w only when at least one fails (through-i terms),
        // d(G_ij) = 2w as well.
        let w = 1.0;
        let lambda = 0.1;
        let x: f64 = lambda * w;
        let mut g = Dag::new();
        g.add_node(w);
        g.add_node(w);
        let want = (1.0 - 2.0 * x + x * x + x * x) * w
            + 2.0 * (x - 1.5 * x * x - x * x) * (2.0 * w)
            + 2.0 * (x * x) * (3.0 * w)
            + x * x * (2.0 * w);
        let e = second_order_expected_makespan(&g, &FailureModel::new(lambda));
        assert!((e - want).abs() < 1e-12, "{e} vs {want}");
    }

    #[test]
    fn estimator_name() {
        assert_eq!(SecondOrderEstimator.name(), "SecondOrder");
    }
}
