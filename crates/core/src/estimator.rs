//! The common estimator interface.
//!
//! Estimation is **two-phase**:
//!
//! 1. [`Estimator::prepare`] consumes a shared [`PreparedDag`] and
//!    returns a [`PreparedEstimator`] holding every model-independent
//!    artifact the estimator needs (level decompositions, all-pairs
//!    longest paths, dominant path sets, frozen CSR views, scratch
//!    buffers, …) — computed once per graph.
//! 2. [`PreparedEstimator::estimate_for`] (or the batched
//!    [`PreparedEstimator::estimate_grid`]) evaluates one failure model
//!    against that preparation, as many times as the caller likes.
//!
//! One-shot callers keep the thin [`Estimator::estimate`] /
//! [`Estimator::expected_makespan`] shims, which prepare internally and
//! evaluate once. Sweep-style callers (the `stochdag-engine` runner,
//! the accuracy-grid examples) prepare once per (graph, estimator) pair
//! and amortize the preprocessing across every failure model.

use crate::model::FailureModel;
use crate::scenario::{ScenarioModel, UnsupportedScenario};
use std::time::{Duration, Instant};
use stochdag_dag::{Dag, PreparedDag};

/// Result of one expected-makespan estimation.
#[derive(Clone, Debug)]
pub struct Estimate {
    /// Estimated expected makespan `E(G)`, in the task-weight time unit.
    pub value: f64,
    /// Wall-clock time the estimation took.
    pub elapsed: Duration,
    /// Estimator display name (e.g. `"FirstOrder"`). Owned so estimates
    /// survive serialization round trips (result caches, sinks).
    pub name: String,
    /// Optional standard error of `value` (Monte Carlo only).
    pub std_error: Option<f64>,
}

impl serde::Serialize for Estimate {
    fn serialize(&self) -> serde::Value {
        serde::Value::obj([
            ("value", self.value.serialize()),
            ("elapsed", self.elapsed.serialize()),
            ("name", self.name.serialize()),
            ("std_error", self.std_error.serialize()),
        ])
    }
}

impl serde::Deserialize for Estimate {
    fn deserialize(v: &serde::Value) -> Result<Estimate, serde::Error> {
        Ok(Estimate {
            value: f64::deserialize(v.require("value")?)?,
            elapsed: Duration::deserialize(v.require("elapsed")?)?,
            name: String::deserialize(v.require("name")?)?,
            std_error: Option::deserialize(v.get("std_error").unwrap_or(&serde::Value::Null))?,
        })
    }
}

impl Estimate {
    /// Relative difference of this estimate against a reference value
    /// (the paper's "normalized difference with Monte-Carlo"):
    /// `(value − reference) / reference`. Negative ⇒ underestimate.
    pub fn relative_error(&self, reference: f64) -> f64 {
        assert!(reference != 0.0, "reference makespan must be non-zero");
        (self.value - reference) / reference
    }
}

/// An estimator bound to one prepared graph (phase two of the
/// lifecycle; see the module docs).
///
/// Implementations own their model-independent precomputation plus any
/// scratch buffers, which is why evaluation takes `&mut self`: buffers
/// are reused across calls instead of reallocated. Evaluation must
/// still be *pure with respect to the model*: calling
/// [`PreparedEstimator::expected_makespan_for`] twice with the same
/// model (and, for statistical estimators, the same seed) returns the
/// same value, regardless of which other models were evaluated in
/// between. The `prepared_parity` property tests enforce this against
/// the one-shot path bit for bit.
pub trait PreparedEstimator: Send {
    /// Short display name (same as the estimator that produced this).
    fn name(&self) -> &'static str;

    /// Expected makespan of the prepared graph under `model`.
    fn expected_makespan_for(&mut self, model: &FailureModel) -> f64;

    /// Standard error of the most recent evaluation, if the estimator
    /// is statistical. Default: `None`.
    fn std_error_hint(&self) -> Option<f64> {
        None
    }

    /// Replace the random seed used by subsequent evaluations.
    /// Deterministic estimators ignore this (default no-op); the sweep
    /// engine calls it before every cell so one preparation can serve
    /// many deterministically-seeded cells.
    fn reseed(&mut self, _seed: u64) {}

    /// Timed wrapper around [`PreparedEstimator::expected_makespan_for`].
    fn estimate_for(&mut self, model: &FailureModel) -> Estimate {
        let start = Instant::now();
        let value = self.expected_makespan_for(model);
        Estimate {
            value,
            elapsed: start.elapsed(),
            name: self.name().to_string(),
            std_error: self.std_error_hint(),
        }
    }

    /// Evaluate one failure model under a correlated-failure
    /// [`ScenarioModel`].
    ///
    /// The i.i.d. scenario always delegates to
    /// [`PreparedEstimator::estimate_for`], so it is bit-identical to
    /// the plain path. Non-i.i.d. scenarios are supported only by the
    /// families whose math extends soundly: Monte Carlo samples the
    /// mixture directly, and the first-order pair evaluates the
    /// marginal-hazard expansion (exact to first order in λ). Every
    /// other family returns a structured [`UnsupportedScenario`] error
    /// rather than silently ignoring the correlation — that is this
    /// default.
    fn estimate_scenario(
        &mut self,
        model: &FailureModel,
        scenario: &ScenarioModel,
    ) -> Result<Estimate, UnsupportedScenario> {
        if scenario.is_iid() {
            Ok(self.estimate_for(model))
        } else {
            Err(UnsupportedScenario::new(self.name(), scenario))
        }
    }

    /// Evaluate a whole grid of failure models against this one
    /// preparation, in order.
    ///
    /// The default maps [`PreparedEstimator::estimate_for`]. Hot
    /// estimator families override it with a *batched* pass that hoists
    /// whatever is shared across the grid (sensitivity vectors, pair
    /// tables, scratch arenas) out of the per-model loop. Overrides
    /// must return the same `value` bits as the sequential default for
    /// every model — the `grid_parity` integration tests enforce this
    /// for every registered family — because the sweep engine mixes the
    /// two paths freely (cache hits replay single-cell evaluations
    /// against grid-computed neighbors). Only `elapsed` may differ: a
    /// batched pass reports each model's amortized share.
    fn estimate_grid(&mut self, models: &[FailureModel]) -> Vec<Estimate> {
        models.iter().map(|m| self.estimate_for(m)).collect()
    }
}

/// An expected-makespan estimator for task graphs under silent errors.
///
/// The required method is [`Estimator::prepare`]; the one-shot
/// [`Estimator::expected_makespan`] / [`Estimator::estimate`] shims
/// have default implementations that prepare internally. Implementors
/// must be pure: preparing the same graph twice and evaluating the same
/// model returns the same value (Monte Carlo is deterministic given its
/// configured seed).
pub trait Estimator {
    /// Short display name (stable; used in reports and CSV headers).
    fn name(&self) -> &'static str;

    /// Bind this estimator to a prepared graph, hoisting all
    /// model-independent work (phase one; see the module docs).
    fn prepare(&self, prepared: &PreparedDag) -> Box<dyn PreparedEstimator>;

    /// Compute the expected makespan of `dag` under `model`.
    ///
    /// One-shot shim: prepares internally and evaluates once. Callers
    /// that evaluate several models (or several estimators) on one
    /// graph should [`Estimator::prepare`] once instead.
    fn expected_makespan(&self, dag: &Dag, model: &FailureModel) -> f64 {
        self.prepare(&PreparedDag::new(dag.clone()))
            .expected_makespan_for(model)
    }

    /// Standard error of the last kind of estimate this estimator
    /// produces, if it is statistical. Default: `None`.
    fn std_error_hint(&self) -> Option<f64> {
        None
    }

    /// Timed wrapper around [`Estimator::expected_makespan`].
    fn estimate(&self, dag: &Dag, model: &FailureModel) -> Estimate {
        let start = Instant::now();
        let value = self.expected_makespan(dag, model);
        Estimate {
            value,
            elapsed: start.elapsed(),
            name: self.name().to_string(),
            std_error: self.std_error_hint(),
        }
    }
}

/// An owned, thread-safe estimator handle — the currency of the
/// scenario-sweep engine's name-addressable registry. `Estimator` is
/// dyn-compatible by construction (no generic methods, no `Self`
/// returns), so trait objects work directly.
pub type BoxedEstimator = Box<dyn Estimator + Send + Sync>;

impl Estimator for BoxedEstimator {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn prepare(&self, prepared: &PreparedDag) -> Box<dyn PreparedEstimator> {
        self.as_ref().prepare(prepared)
    }

    fn expected_makespan(&self, dag: &Dag, model: &FailureModel) -> f64 {
        self.as_ref().expected_makespan(dag, model)
    }

    fn std_error_hint(&self) -> Option<f64> {
        self.as_ref().std_error_hint()
    }

    fn estimate(&self, dag: &Dag, model: &FailureModel) -> Estimate {
        self.as_ref().estimate(dag, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f64);
    struct PreparedFixed(f64);

    impl PreparedEstimator for PreparedFixed {
        fn name(&self) -> &'static str {
            "Fixed"
        }
        fn expected_makespan_for(&mut self, _model: &FailureModel) -> f64 {
            self.0
        }
    }

    impl Estimator for Fixed {
        fn name(&self) -> &'static str {
            "Fixed"
        }
        fn prepare(&self, _prepared: &PreparedDag) -> Box<dyn PreparedEstimator> {
            Box::new(PreparedFixed(self.0))
        }
    }

    #[test]
    fn estimate_wraps_value_and_name() {
        let mut g = Dag::new();
        g.add_node(1.0);
        let e = Fixed(42.0).estimate(&g, &FailureModel::failure_free());
        assert_eq!(e.value, 42.0);
        assert_eq!(e.name, "Fixed");
        assert!(e.std_error.is_none());
    }

    #[test]
    fn relative_error_signs() {
        let mut g = Dag::new();
        g.add_node(1.0);
        let e = Fixed(11.0).estimate(&g, &FailureModel::failure_free());
        assert!((e.relative_error(10.0) - 0.1).abs() < 1e-12);
        assert!((e.relative_error(12.0) + 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn estimate_grid_evaluates_in_order() {
        let mut g = Dag::new();
        g.add_node(1.0);
        let prepared = PreparedDag::new(g);
        let mut p = Fixed(7.0).prepare(&prepared);
        let grid = p.estimate_grid(&[FailureModel::new(0.1), FailureModel::failure_free()]);
        assert_eq!(grid.len(), 2);
        assert!(grid.iter().all(|e| e.value == 7.0 && e.name == "Fixed"));
    }
}
