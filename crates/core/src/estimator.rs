//! The common estimator interface.

use crate::model::FailureModel;
use std::time::{Duration, Instant};
use stochdag_dag::Dag;

/// Result of one expected-makespan estimation.
#[derive(Clone, Debug)]
pub struct Estimate {
    /// Estimated expected makespan `E(G)`, in the task-weight time unit.
    pub value: f64,
    /// Wall-clock time the estimation took.
    pub elapsed: Duration,
    /// Estimator display name (e.g. `"FirstOrder"`). Owned so estimates
    /// survive serialization round trips (result caches, sinks).
    pub name: String,
    /// Optional standard error of `value` (Monte Carlo only).
    pub std_error: Option<f64>,
}

impl serde::Serialize for Estimate {
    fn serialize(&self) -> serde::Value {
        serde::Value::obj([
            ("value", self.value.serialize()),
            ("elapsed", self.elapsed.serialize()),
            ("name", self.name.serialize()),
            ("std_error", self.std_error.serialize()),
        ])
    }
}

impl serde::Deserialize for Estimate {
    fn deserialize(v: &serde::Value) -> Result<Estimate, serde::Error> {
        Ok(Estimate {
            value: f64::deserialize(v.require("value")?)?,
            elapsed: Duration::deserialize(v.require("elapsed")?)?,
            name: String::deserialize(v.require("name")?)?,
            std_error: Option::deserialize(v.get("std_error").unwrap_or(&serde::Value::Null))?,
        })
    }
}

impl Estimate {
    /// Relative difference of this estimate against a reference value
    /// (the paper's "normalized difference with Monte-Carlo"):
    /// `(value − reference) / reference`. Negative ⇒ underestimate.
    pub fn relative_error(&self, reference: f64) -> f64 {
        assert!(reference != 0.0, "reference makespan must be non-zero");
        (self.value - reference) / reference
    }
}

/// An expected-makespan estimator for task graphs under silent errors.
///
/// Implementors must be pure: calling [`Estimator::expected_makespan`]
/// twice with the same inputs returns the same value (Monte Carlo is
/// deterministic given its configured seed).
pub trait Estimator {
    /// Short display name (stable; used in reports and CSV headers).
    fn name(&self) -> &'static str;

    /// Compute the expected makespan of `dag` under `model`.
    fn expected_makespan(&self, dag: &Dag, model: &FailureModel) -> f64;

    /// Standard error of the last kind of estimate this estimator
    /// produces, if it is statistical. Default: `None`.
    fn std_error_hint(&self) -> Option<f64> {
        None
    }

    /// Timed wrapper around [`Estimator::expected_makespan`].
    fn estimate(&self, dag: &Dag, model: &FailureModel) -> Estimate {
        let start = Instant::now();
        let value = self.expected_makespan(dag, model);
        Estimate {
            value,
            elapsed: start.elapsed(),
            name: self.name().to_string(),
            std_error: self.std_error_hint(),
        }
    }
}

/// An owned, thread-safe estimator handle — the currency of the
/// scenario-sweep engine's name-addressable registry. `Estimator` is
/// dyn-compatible by construction (no generic methods, no `Self`
/// returns), so trait objects work directly.
pub type BoxedEstimator = Box<dyn Estimator + Send + Sync>;

impl Estimator for BoxedEstimator {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn expected_makespan(&self, dag: &Dag, model: &FailureModel) -> f64 {
        self.as_ref().expected_makespan(dag, model)
    }

    fn std_error_hint(&self) -> Option<f64> {
        self.as_ref().std_error_hint()
    }

    fn estimate(&self, dag: &Dag, model: &FailureModel) -> Estimate {
        self.as_ref().estimate(dag, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f64);
    impl Estimator for Fixed {
        fn name(&self) -> &'static str {
            "Fixed"
        }
        fn expected_makespan(&self, _dag: &Dag, _model: &FailureModel) -> f64 {
            self.0
        }
    }

    #[test]
    fn estimate_wraps_value_and_name() {
        let mut g = Dag::new();
        g.add_node(1.0);
        let e = Fixed(42.0).estimate(&g, &FailureModel::failure_free());
        assert_eq!(e.value, 42.0);
        assert_eq!(e.name, "Fixed");
        assert!(e.std_error.is_none());
    }

    #[test]
    fn relative_error_signs() {
        let mut g = Dag::new();
        g.add_node(1.0);
        let e = Fixed(11.0).estimate(&g, &FailureModel::failure_free());
        assert!((e.relative_error(10.0) - 0.1).abs() < 1e-12);
        assert!((e.relative_error(12.0) + 1.0 / 12.0).abs() < 1e-12);
    }
}
