//! Dodin-baseline estimator: the series-parallel approximation of
//! Section II-A2, wired to the reduction engine of `stochdag-sp`.

use crate::estimator::{Estimate, Estimator, PreparedEstimator};
use crate::model::FailureModel;
use std::time::Instant;
use stochdag_dag::{Dag, PreparedDag};
use stochdag_dist::{DurationTable, TaskDurationModel};
use stochdag_sp::{
    dodin_evaluate, dodin_forward_evaluate, dodin_forward_evaluate_in, ForwardScratch,
    ReduceConfig, ReduceOutcome,
};

/// How the series-parallel approximation is computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DodinStrategy {
    /// Literature-faithful node duplication (Dodin 1985). Exact on SP
    /// inputs, but the duplication count grows combinatorially on dense
    /// non-SP DAGs — usable up to a few hundred tasks.
    Duplication,
    /// Forward independence propagation
    /// ([`stochdag_sp::dodin_forward_evaluate`]): one topological pass
    /// with independent maxima, `O(|V| + |E|)` distribution operations.
    /// A scalable surrogate that makes the *same kind* of independence
    /// error as duplication (the two agree within a fraction of their
    /// common bias on the paper's DAG families; see EXPERIMENTS.md) and
    /// is what the experiment harness runs at the paper's k = 12 and
    /// k = 20 scales.
    Forward,
}

/// Dodin's series-parallel bound on the expected makespan.
///
/// Task durations are rendered as discrete distributions (2-state by
/// default, matching the paper's probabilistic 2-state DAG framing;
/// optionally truncated-geometric), the DAG is transformed into an
/// approximately equivalent series-parallel network, and that network is
/// evaluated exactly by convolutions/independent maxima with support
/// capped at [`DodinEstimator::with_max_atoms`] atoms.
#[derive(Clone, Debug)]
pub struct DodinEstimator {
    max_atoms: usize,
    duration_model: TaskDurationModel,
    strategy: DodinStrategy,
}

impl Default for DodinEstimator {
    fn default() -> Self {
        DodinEstimator {
            max_atoms: 128,
            duration_model: TaskDurationModel::TwoState,
            strategy: DodinStrategy::Duplication,
        }
    }
}

impl DodinEstimator {
    /// Faithful configuration (duplication engine, 2-state durations,
    /// 128-atom support cap).
    pub fn new() -> DodinEstimator {
        DodinEstimator::default()
    }

    /// Scalable configuration (forward propagation; see
    /// [`DodinStrategy::Forward`]).
    pub fn scalable() -> DodinEstimator {
        DodinEstimator {
            strategy: DodinStrategy::Forward,
            ..Default::default()
        }
    }

    /// Select the strategy explicitly.
    pub fn with_strategy(mut self, strategy: DodinStrategy) -> DodinEstimator {
        self.strategy = strategy;
        self
    }

    /// Set the support cap used after every convolution/max.
    pub fn with_max_atoms(mut self, max_atoms: usize) -> DodinEstimator {
        assert!(
            max_atoms >= 2,
            "need at least two atoms to represent randomness"
        );
        self.max_atoms = max_atoms;
        self
    }

    /// Use truncated-geometric task durations instead of 2-state.
    pub fn with_duration_model(mut self, m: TaskDurationModel) -> DodinEstimator {
        self.duration_model = m;
        self
    }

    /// The configured strategy.
    pub fn strategy(&self) -> DodinStrategy {
        self.strategy
    }

    /// Per-node duration renderer over a prebuilt [`DurationTable`].
    fn dist_of_table<'a>(
        &'a self,
        table: &'a DurationTable,
    ) -> impl FnMut(stochdag_dag::NodeId) -> stochdag_dist::DiscreteDist + 'a {
        move |i| table.duration_dist(i.index(), self.duration_model)
    }

    /// Duplication evaluation over an explicit duration table.
    fn run_with(&self, dag: &Dag, table: &DurationTable) -> ReduceOutcome {
        let cfg = ReduceConfig {
            max_atoms: self.max_atoms,
            ..Default::default()
        };
        dodin_evaluate(dag, self.dist_of_table(table), &cfg)
            .expect("Dodin reduction failed (operation limit)")
    }

    /// Makespan distribution over an explicit duration table.
    fn makespan_dist_with(&self, dag: &Dag, table: &DurationTable) -> stochdag_dist::DiscreteDist {
        match self.strategy {
            DodinStrategy::Duplication => self.run_with(dag, table).dist,
            DodinStrategy::Forward => {
                dodin_forward_evaluate(dag, self.dist_of_table(table), self.max_atoms)
            }
        }
    }

    /// Run the duplication engine, exposing the approximate makespan
    /// *distribution* and the reduction statistics (duplication count
    /// etc.). Always uses [`DodinStrategy::Duplication`] regardless of
    /// the configured strategy.
    pub fn run(&self, dag: &Dag, model: &FailureModel) -> ReduceOutcome {
        self.run_with(dag, &DurationTable::new(model.lambda, &dag.weights()))
    }

    /// The approximate makespan distribution under the configured
    /// strategy.
    pub fn makespan_dist(&self, dag: &Dag, model: &FailureModel) -> stochdag_dist::DiscreteDist {
        self.makespan_dist_with(dag, &DurationTable::new(model.lambda, &dag.weights()))
    }
}

/// Dodin estimator bound to one prepared graph: the per-node duration
/// table is rebuilt in place per failure model instead of re-rendered
/// atom by atom inside the reduction, and the forward strategy runs the
/// hot-loop form of the propagation — the preparation's shared
/// topological order plus a per-preparation [`ForwardScratch`], so the
/// topo walk and the merge arena are both hoisted out of the per-model
/// call ([`dodin_forward_evaluate_in`] is bit-identical to the one-shot
/// [`dodin_forward_evaluate`]).
struct PreparedDodin {
    est: DodinEstimator,
    prepared: PreparedDag,
    table: DurationTable,
    scratch: ForwardScratch,
}

impl PreparedDodin {
    fn eval(&mut self, model: &FailureModel) -> f64 {
        self.table.rebuild(model.lambda, self.prepared.weights());
        match self.est.strategy {
            DodinStrategy::Duplication => self
                .est
                .run_with(self.prepared.dag(), &self.table)
                .dist
                .mean(),
            DodinStrategy::Forward => {
                let table = &self.table;
                let duration_model = self.est.duration_model;
                dodin_forward_evaluate_in(
                    self.prepared.dag(),
                    self.prepared.topo_order(),
                    |i| table.duration_dist(i.index(), duration_model),
                    self.est.max_atoms,
                    &mut self.scratch,
                )
                .mean()
            }
        }
    }
}

impl PreparedEstimator for PreparedDodin {
    fn name(&self) -> &'static str {
        match self.est.strategy {
            DodinStrategy::Duplication => "Dodin",
            DodinStrategy::Forward => "Dodin(fwd)",
        }
    }

    fn expected_makespan_for(&mut self, model: &FailureModel) -> f64 {
        self.eval(model)
    }

    /// Grid pass: the duration table depends on λ at every node, so
    /// models cannot share work beyond the hoisted topological order and
    /// the reused scratch — which the sequential path already uses; this
    /// override just streams the models through them.
    fn estimate_grid(&mut self, models: &[FailureModel]) -> Vec<Estimate> {
        models
            .iter()
            .map(|model| {
                let start = Instant::now();
                let value = self.eval(model);
                Estimate {
                    value,
                    elapsed: start.elapsed(),
                    name: self.name().to_string(),
                    std_error: self.std_error_hint(),
                }
            })
            .collect()
    }
}

impl Estimator for DodinEstimator {
    fn name(&self) -> &'static str {
        match self.strategy {
            DodinStrategy::Duplication => "Dodin",
            DodinStrategy::Forward => "Dodin(fwd)",
        }
    }

    fn prepare(&self, prepared: &PreparedDag) -> Box<dyn PreparedEstimator> {
        Box::new(PreparedDodin {
            est: self.clone(),
            prepared: prepared.clone(),
            table: DurationTable::default(),
            scratch: ForwardScratch::new(),
        })
    }

    fn expected_makespan(&self, dag: &Dag, model: &FailureModel) -> f64 {
        self.makespan_dist(dag, model).mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        let c = g.add_node(3.0);
        let d = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        g
    }

    #[test]
    fn failure_free_reduces_to_makespan() {
        let g = diamond();
        let v = DodinEstimator::new().expected_makespan(&g, &FailureModel::failure_free());
        assert!((v - 5.0).abs() < 1e-9);
    }

    #[test]
    fn sp_graph_is_exact_vs_exhaustive() {
        // The diamond is SP, so Dodin (with unbounded support) equals
        // the exhaustive 2-state expectation.
        let g = diamond();
        let model = FailureModel::new(0.1);
        let dodin = DodinEstimator::new()
            .with_max_atoms(usize::MAX)
            .expected_makespan(&g, &model);
        let exact = crate::exact::exact_expected_makespan_two_state(&g, &model);
        assert!((dodin - exact).abs() < 1e-9, "dodin {dodin} exact {exact}");
    }

    #[test]
    fn duplication_overestimates_on_shared_prefix() {
        // Non-SP: shared task feeds two join points. Duplication treats
        // the copies as independent, so Dodin ≥ exact here.
        let mut g = Dag::new();
        let s1 = g.add_node(1.0);
        let s2 = g.add_node(1.0);
        let t1 = g.add_node(1.0);
        let t2 = g.add_node(1.0);
        g.add_edge(s1, t1);
        g.add_edge(s1, t2);
        g.add_edge(s2, t2);
        let model = FailureModel::new(0.4);
        let dodin = DodinEstimator::new()
            .with_max_atoms(usize::MAX)
            .expected_makespan(&g, &model);
        let exact = crate::exact::exact_expected_makespan_two_state(&g, &model);
        assert!(
            dodin >= exact - 1e-9,
            "dodin {dodin} must not fall below exact {exact}"
        );
    }

    #[test]
    fn geometric_durations_increase_estimate() {
        let g = diamond();
        let model = FailureModel::new(0.3);
        let two = DodinEstimator::new().expected_makespan(&g, &model);
        let geo = DodinEstimator::new()
            .with_duration_model(TaskDurationModel::GeometricTruncated { tail_eps: 1e-10 })
            .expected_makespan(&g, &model);
        assert!(geo > two, "geometric tail mass must raise the mean");
    }

    #[test]
    fn atom_cap_controls_support() {
        let g = diamond();
        let model = FailureModel::new(0.2);
        let out = DodinEstimator::new().with_max_atoms(4).run(&g, &model);
        assert!(out.dist.len() <= 4);
    }
}
