//! Normal-approximation estimators (paper Section II-A3).
//!
//! All three share the same skeleton, due to Sculli (1983): propagate
//! each task's completion time through the DAG as a *normal* random
//! variable — sums are exact on normals, maxima are re-normalized via
//! Clark's moment formulas — and differ only in how the correlation
//! between the two maximands is obtained:
//!
//! * [`SculliEstimator`] — assumes every max is over independent
//!   variables (ρ = 0). `O(|V| + |E|)`.
//! * [`CorLcaEstimator`] — the Canon–Jeannot heuristic: each node keeps
//!   a *canonical* predecessor (the branch most likely to realize its
//!   start-time max), forming a tree; `Cov(C_u, C_v)` is approximated by
//!   `Var(C_a)` where `a` is the lowest common ancestor of `u`, `v` in
//!   that tree. `O(|E| · depth)`.
//! * [`CovarianceNormalEstimator`] — propagates the full covariance
//!   matrix of all completion times through Clark's covariance update
//!   (`Cov(max(X,Y), Z) = Φ(α)·Cov(X,Z) + Φ(−α)·Cov(Y,Z)`).
//!   `O(|E|·|V|)` time, `O(|V|²)` memory — the expensive, accurate
//!   variant whose cost profile matches the paper's "Normal" column in
//!   Table I.
//!
//! Task durations enter as their exact 2-state mean/variance
//! (`E = a(2−p)`, `Var = a²p(1−p)`), matching the paper's description of
//! approximating the *discrete* 2-state duration by a normal of the same
//! mean and variance. The per-node moments come from a
//! [`DurationTable`] built once per (graph, model) pair; prepared
//! estimators rebuild the table in place per model, reuse the shared
//! topological order of their [`PreparedDag`], and walk the graph
//! through per-preparation scratch buffers (completion vectors, the
//! canonical tree, the covariance matrix), so evaluating a whole grid
//! of failure models allocates nothing after the first call.

use crate::estimator::{Estimator, PreparedEstimator};
use crate::model::FailureModel;
use stochdag_dag::{topological_order, Dag, NodeId, PreparedDag};
use stochdag_dist::{clark_max_moments, DurationTable, Normal};

/// Duration table for `dag` under `model` — the one-shot path's
/// per-call construction (prepared paths rebuild a scratch table).
fn duration_table(dag: &Dag, model: &FailureModel) -> DurationTable {
    DurationTable::new(model.lambda, &dag.weights())
}

// ---------------------------------------------------------------------
// Sculli (ρ = 0)
// ---------------------------------------------------------------------

/// Sculli's normal-approximation estimator with independence assumed at
/// every maximum.
#[derive(Clone, Copy, Debug, Default)]
pub struct SculliEstimator;

fn sculli_with(dag: &Dag, topo: &[NodeId], sinks: &[NodeId], table: &DurationTable) -> f64 {
    sculli_into(dag, topo, sinks, table, &mut Vec::new())
}

/// [`sculli_with`] over a caller-provided completion buffer — the
/// hot-loop form. The prepared estimator owns one buffer per
/// preparation, so evaluating a whole grid of failure models allocates
/// nothing after the first call. Output is bit-identical to the
/// allocating entry point (the buffer is cleared and refilled with the
/// same zero normals the fresh vector would hold).
fn sculli_into(
    dag: &Dag,
    topo: &[NodeId],
    sinks: &[NodeId],
    table: &DurationTable,
    completion: &mut Vec<Normal>,
) -> f64 {
    if dag.node_count() == 0 {
        return 0.0;
    }
    completion.clear();
    completion.resize(dag.node_count(), Normal::new(0.0, 0.0));
    for &v in topo {
        let mut start = Normal::new(0.0, 0.0);
        let mut first = true;
        for &p in dag.preds(v) {
            let c = completion[p.index()];
            start = if first {
                first = false;
                c
            } else {
                let m = clark_max_moments(start, c, 0.0);
                Normal::from_mean_var(m.mean, m.var)
            };
        }
        let d = table.two_state_normal(v.index());
        completion[v.index()] = Normal::from_mean_var(start.mean + d.mean, start.var() + d.var());
    }
    let mut makespan = Normal::new(0.0, 0.0);
    let mut first = true;
    for &v in sinks {
        let c = completion[v.index()];
        makespan = if first {
            first = false;
            c
        } else {
            let m = clark_max_moments(makespan, c, 0.0);
            Normal::from_mean_var(m.mean, m.var)
        };
    }
    makespan.mean
}

struct PreparedSculli {
    prepared: PreparedDag,
    table: DurationTable,
    completion: Vec<Normal>,
}

impl PreparedEstimator for PreparedSculli {
    fn name(&self) -> &'static str {
        "Sculli"
    }

    fn expected_makespan_for(&mut self, model: &FailureModel) -> f64 {
        self.table.rebuild(model.lambda, self.prepared.weights());
        sculli_into(
            self.prepared.dag(),
            self.prepared.topo_order(),
            self.prepared.sinks(),
            &self.table,
            &mut self.completion,
        )
    }
}

impl Estimator for SculliEstimator {
    fn name(&self) -> &'static str {
        "Sculli"
    }

    fn prepare(&self, prepared: &PreparedDag) -> Box<dyn PreparedEstimator> {
        Box::new(PreparedSculli {
            prepared: prepared.clone(),
            table: DurationTable::default(),
            completion: Vec::new(),
        })
    }

    fn expected_makespan(&self, dag: &Dag, model: &FailureModel) -> f64 {
        let topo = topological_order(dag).expect("estimators require acyclic graphs");
        sculli_with(dag, &topo, &dag.sinks(), &duration_table(dag, model))
    }
}

// ---------------------------------------------------------------------
// CorLCA (Canon–Jeannot)
// ---------------------------------------------------------------------

/// Correlation-aware normal estimator using the canonical-ancestor
/// covariance heuristic of Canon & Jeannot.
#[derive(Clone, Copy, Debug, Default)]
pub struct CorLcaEstimator;

#[derive(Default)]
struct CanonicalTree {
    parent: Vec<Option<u32>>,
    depth: Vec<u32>,
    /// Var(C_v) for every processed node.
    var_c: Vec<f64>,
}

impl CanonicalTree {
    /// Clear and resize for a fresh walk, reusing the allocations. The
    /// resulting state is indistinguishable from a freshly built tree.
    fn reset(&mut self, n: usize) {
        self.parent.clear();
        self.parent.resize(n, None);
        self.depth.clear();
        self.depth.resize(n, 0);
        self.var_c.clear();
        self.var_c.resize(n, 0.0);
    }

    /// Covariance estimate `Var(C_lca(u, v))`; 0 when the two nodes have
    /// no common canonical ancestor.
    fn cov(&self, u: u32, v: u32) -> f64 {
        let (mut a, mut b) = (u, v);
        while self.depth[a as usize] > self.depth[b as usize] {
            a = match self.parent[a as usize] {
                Some(p) => p,
                None => return 0.0,
            };
        }
        while self.depth[b as usize] > self.depth[a as usize] {
            b = match self.parent[b as usize] {
                Some(p) => p,
                None => return 0.0,
            };
        }
        while a != b {
            match (self.parent[a as usize], self.parent[b as usize]) {
                (Some(pa), Some(pb)) => {
                    a = pa;
                    b = pb;
                }
                _ => return 0.0,
            }
        }
        self.var_c[a as usize]
    }

    fn attach(&mut self, v: u32, parent: Option<u32>, var_c: f64) {
        self.parent[v as usize] = parent;
        self.depth[v as usize] = parent.map_or(0, |p| self.depth[p as usize] + 1);
        self.var_c[v as usize] = var_c;
    }
}

fn corlca_with(dag: &Dag, topo: &[NodeId], sinks: &[NodeId], table: &DurationTable) -> f64 {
    corlca_into(
        dag,
        topo,
        sinks,
        table,
        &mut Vec::new(),
        &mut CanonicalTree::default(),
    )
}

/// [`corlca_with`] over caller-provided completion and canonical-tree
/// buffers — the hot-loop form used by the prepared estimator (see
/// [`sculli_into`] for the contract: bit-identical output, zero
/// allocation after the first call).
fn corlca_into(
    dag: &Dag,
    topo: &[NodeId],
    sinks: &[NodeId],
    table: &DurationTable,
    completion: &mut Vec<Normal>,
    tree: &mut CanonicalTree,
) -> f64 {
    if dag.node_count() == 0 {
        return 0.0;
    }
    let n = dag.node_count();
    completion.clear();
    completion.resize(n, Normal::new(0.0, 0.0));
    tree.reset(n);
    for &v in topo {
        let mut start = Normal::new(0.0, 0.0);
        let mut rep: Option<u32> = None;
        for &p in dag.preds(v) {
            let c = completion[p.index()];
            match rep {
                None => {
                    start = c;
                    rep = Some(p.index() as u32);
                }
                Some(r) => {
                    let cov = tree.cov(r, p.index() as u32);
                    let denom = start.sd * c.sd;
                    let rho = if denom > 0.0 {
                        (cov / denom).clamp(-1.0, 1.0)
                    } else {
                        0.0
                    };
                    let m = clark_max_moments(start, c, rho);
                    // Canonical branch: the maximand more likely to
                    // realize the max.
                    if m.phi_alpha < 0.5 {
                        rep = Some(p.index() as u32);
                    }
                    start = Normal::from_mean_var(m.mean, m.var);
                }
            }
        }
        let d = table.two_state_normal(v.index());
        let c_v = Normal::from_mean_var(start.mean + d.mean, start.var() + d.var());
        completion[v.index()] = c_v;
        tree.attach(v.index() as u32, rep, c_v.var());
    }
    // Final max over exit tasks, with the same covariance heuristic.
    let mut makespan = Normal::new(0.0, 0.0);
    let mut rep: Option<u32> = None;
    for &v in sinks {
        let c = completion[v.index()];
        match rep {
            None => {
                makespan = c;
                rep = Some(v.index() as u32);
            }
            Some(r) => {
                let cov = tree.cov(r, v.index() as u32);
                let denom = makespan.sd * c.sd;
                let rho = if denom > 0.0 {
                    (cov / denom).clamp(-1.0, 1.0)
                } else {
                    0.0
                };
                let m = clark_max_moments(makespan, c, rho);
                if m.phi_alpha < 0.5 {
                    rep = Some(v.index() as u32);
                }
                makespan = Normal::from_mean_var(m.mean, m.var);
            }
        }
    }
    makespan.mean
}

struct PreparedCorLca {
    prepared: PreparedDag,
    table: DurationTable,
    completion: Vec<Normal>,
    tree: CanonicalTree,
}

impl PreparedEstimator for PreparedCorLca {
    fn name(&self) -> &'static str {
        "CorLCA"
    }

    fn expected_makespan_for(&mut self, model: &FailureModel) -> f64 {
        self.table.rebuild(model.lambda, self.prepared.weights());
        corlca_into(
            self.prepared.dag(),
            self.prepared.topo_order(),
            self.prepared.sinks(),
            &self.table,
            &mut self.completion,
            &mut self.tree,
        )
    }
}

impl Estimator for CorLcaEstimator {
    fn name(&self) -> &'static str {
        "CorLCA"
    }

    fn prepare(&self, prepared: &PreparedDag) -> Box<dyn PreparedEstimator> {
        Box::new(PreparedCorLca {
            prepared: prepared.clone(),
            table: DurationTable::default(),
            completion: Vec::new(),
            tree: CanonicalTree::default(),
        })
    }

    fn expected_makespan(&self, dag: &Dag, model: &FailureModel) -> f64 {
        let topo = topological_order(dag).expect("estimators require acyclic graphs");
        corlca_with(dag, &topo, &dag.sinks(), &duration_table(dag, model))
    }
}

// ---------------------------------------------------------------------
// Full covariance propagation
// ---------------------------------------------------------------------

/// Normal estimator propagating the complete covariance matrix of task
/// completion times (see module docs). Accuracy is the best of the
/// normal family; memory is `O(|V|²)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct CovarianceNormalEstimator;

/// Reusable `O(|V|²)` workspace of the covariance propagation.
#[derive(Default)]
struct CovScratch {
    /// `cov[i*n + j] = Cov(C_i, C_j)`, filled in topological order.
    cov: Vec<f64>,
    /// `mean[i] = E[C_i]`.
    mean: Vec<f64>,
    /// Scratch row: `Cov(partial max M, C_z)` for all `z`.
    row: Vec<f64>,
}

fn covariance_with(
    dag: &Dag,
    topo: &[NodeId],
    sinks: &[NodeId],
    table: &DurationTable,
    scratch: &mut CovScratch,
) -> f64 {
    if dag.node_count() == 0 {
        return 0.0;
    }
    let n = dag.node_count();
    scratch.cov.clear();
    scratch.cov.resize(n * n, 0.0);
    scratch.mean.clear();
    scratch.mean.resize(n, 0.0);
    scratch.row.clear();
    scratch.row.resize(n, 0.0);
    let (cov, mean, row) = (&mut scratch.cov, &mut scratch.mean, &mut scratch.row);
    for &v in topo {
        let vi = v.index();
        // Sequential Clark max over predecessors.
        let mut m = Normal::new(0.0, 0.0);
        let mut first = true;
        row.iter_mut().for_each(|x| *x = 0.0);
        for &p in dag.preds(v) {
            let pi = p.index();
            let c = Normal::from_mean_var(mean[pi], cov[pi * n + pi]);
            if first {
                first = false;
                m = c;
                row.copy_from_slice(&cov[pi * n..(pi + 1) * n]);
            } else {
                let cov_mc = row[pi];
                let denom = m.sd * c.sd;
                let rho = if denom > 0.0 {
                    (cov_mc / denom).clamp(-1.0, 1.0)
                } else {
                    0.0
                };
                let mm = clark_max_moments(m, c, rho);
                let (w1, w2) = (mm.phi_alpha, 1.0 - mm.phi_alpha);
                let crow = &cov[pi * n..(pi + 1) * n];
                for (r, &cz) in row.iter_mut().zip(crow.iter()) {
                    *r = w1 * *r + w2 * cz;
                }
                m = Normal::from_mean_var(mm.mean, mm.var);
            }
        }
        let d = table.two_state_normal(vi);
        mean[vi] = m.mean + d.mean;
        let var_v = m.var() + d.var();
        // Write Cov(C_v, ·): the duration is independent of
        // everything else, so it contributes only to the diagonal.
        for z in 0..n {
            let c = row[z];
            cov[vi * n + z] = c;
            cov[z * n + vi] = c;
        }
        cov[vi * n + vi] = var_v;
    }
    // Max over exit tasks with the same covariance updates.
    let s0 = sinks[0].index();
    let mut m = Normal::from_mean_var(mean[s0], cov[s0 * n + s0]);
    row.copy_from_slice(&cov[s0 * n..(s0 + 1) * n]);
    for &s in &sinks[1..] {
        let si = s.index();
        let c = Normal::from_mean_var(mean[si], cov[si * n + si]);
        let cov_mc = row[si];
        let denom = m.sd * c.sd;
        let rho = if denom > 0.0 {
            (cov_mc / denom).clamp(-1.0, 1.0)
        } else {
            0.0
        };
        let mm = clark_max_moments(m, c, rho);
        let (w1, w2) = (mm.phi_alpha, 1.0 - mm.phi_alpha);
        let crow = &cov[si * n..(si + 1) * n];
        for (r, &cz) in row.iter_mut().zip(crow.iter()) {
            *r = w1 * *r + w2 * cz;
        }
        m = Normal::from_mean_var(mm.mean, mm.var);
    }
    m.mean
}

struct PreparedCovariance {
    prepared: PreparedDag,
    table: DurationTable,
    scratch: CovScratch,
}

impl PreparedEstimator for PreparedCovariance {
    fn name(&self) -> &'static str {
        "Normal(cov)"
    }

    fn expected_makespan_for(&mut self, model: &FailureModel) -> f64 {
        self.table.rebuild(model.lambda, self.prepared.weights());
        covariance_with(
            self.prepared.dag(),
            self.prepared.topo_order(),
            self.prepared.sinks(),
            &self.table,
            &mut self.scratch,
        )
    }
}

impl Estimator for CovarianceNormalEstimator {
    fn name(&self) -> &'static str {
        "Normal(cov)"
    }

    fn prepare(&self, prepared: &PreparedDag) -> Box<dyn PreparedEstimator> {
        Box::new(PreparedCovariance {
            prepared: prepared.clone(),
            table: DurationTable::default(),
            scratch: CovScratch::default(),
        })
    }

    fn expected_makespan(&self, dag: &Dag, model: &FailureModel) -> f64 {
        let topo = topological_order(dag).expect("estimators require acyclic graphs");
        covariance_with(
            dag,
            &topo,
            &dag.sinks(),
            &duration_table(dag, model),
            &mut CovScratch::default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monte_carlo::{MonteCarloEstimator, SamplingModel};

    fn diamond() -> Dag {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        let c = g.add_node(3.0);
        let d = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        g
    }

    fn all_normals() -> Vec<(&'static str, Box<dyn Estimator>)> {
        vec![
            ("sculli", Box::new(SculliEstimator)),
            ("corlca", Box::new(CorLcaEstimator)),
            ("cov", Box::new(CovarianceNormalEstimator)),
        ]
    }

    #[test]
    fn failure_free_reduces_to_deterministic_makespan() {
        let g = diamond();
        let m = FailureModel::failure_free();
        for (name, est) in all_normals() {
            let v = est.expected_makespan(&g, &m);
            assert!((v - 5.0).abs() < 1e-9, "{name}: {v}");
        }
    }

    #[test]
    fn chain_is_exact_for_all_variants() {
        // No maxima on a chain ⇒ the normal methods are exact: E = Σ a(2−p).
        let mut g = Dag::new();
        let mut prev = None;
        for w in [1.0, 2.0, 0.5] {
            let v = g.add_node(w);
            if let Some(p) = prev {
                g.add_edge(p, v);
            }
            prev = Some(v);
        }
        let model = FailureModel::new(0.1);
        let want: f64 = [1.0, 2.0, 0.5]
            .iter()
            .map(|&a| {
                let p = model.psuccess_of_weight(a);
                a * (2.0 - p)
            })
            .sum();
        for (name, est) in all_normals() {
            let v = est.expected_makespan(&g, &model);
            assert!((v - want).abs() < 1e-9, "{name}: {v} want {want}");
        }
    }

    #[test]
    fn independent_forks_agree_across_variants() {
        // Maxima over genuinely independent branches: ρ = 0 is the true
        // correlation, so all three must coincide.
        let mut g = Dag::new();
        g.add_node(1.0);
        g.add_node(1.0);
        g.add_node(1.5);
        let model = FailureModel::new(0.2);
        let s = SculliEstimator.expected_makespan(&g, &model);
        let c = CorLcaEstimator.expected_makespan(&g, &model);
        let f = CovarianceNormalEstimator.expected_makespan(&g, &model);
        assert!((s - c).abs() < 1e-9, "sculli {s} corlca {c}");
        assert!((s - f).abs() < 1e-9, "sculli {s} cov {f}");
    }

    #[test]
    fn correlated_branches_sculli_overestimates() {
        // Shared prefix a feeding two branches that rejoin: Sculli treats
        // the branch completions as independent although both contain
        // C_a, overestimating E[max]. The correlation-aware variants
        // must be at or below Sculli and closer to Monte Carlo.
        let mut g = Dag::new();
        let a = g.add_node(4.0);
        let b = g.add_node(1.0);
        let c = g.add_node(1.0);
        let d = g.add_node(0.5);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        let model = FailureModel::new(0.25);
        let s = SculliEstimator.expected_makespan(&g, &model);
        let l = CorLcaEstimator.expected_makespan(&g, &model);
        let f = CovarianceNormalEstimator.expected_makespan(&g, &model);
        let mc = MonteCarloEstimator::new(400_000)
            .with_seed(1)
            .with_sampling(SamplingModel::TwoState)
            .run(&g, &model);
        assert!(l <= s + 1e-9, "CorLCA {l} must not exceed Sculli {s}");
        assert!(f <= s + 1e-9, "Cov {f} must not exceed Sculli {s}");
        assert!(
            (f - mc.mean).abs() <= (s - mc.mean).abs() + 3.0 * mc.std_error,
            "cov {f} should be at least as close to MC {} as Sculli {s}",
            mc.mean
        );
    }

    #[test]
    fn normal_estimates_track_monte_carlo_on_diamond() {
        let g = diamond();
        let model = FailureModel::from_pfail_for_dag(0.01, &g);
        let mc = MonteCarloEstimator::new(300_000)
            .with_seed(2)
            .with_sampling(SamplingModel::TwoState)
            .run(&g, &model);
        for (name, est) in all_normals() {
            let v = est.expected_makespan(&g, &model);
            let rel = ((v - mc.mean) / mc.mean).abs();
            assert!(rel < 0.01, "{name}: {v} vs MC {} (rel {rel})", mc.mean);
        }
    }

    #[test]
    fn prepared_matches_one_shot_across_models() {
        let g = diamond();
        let prepared = PreparedDag::new(g.clone());
        let models = [
            FailureModel::new(0.05),
            FailureModel::failure_free(),
            FailureModel::new(0.2),
        ];
        for (name, est) in all_normals() {
            let mut prep = est.prepare(&prepared);
            for m in &models {
                let a = prep.expected_makespan_for(m);
                let b = est.expected_makespan(&g, m);
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{name}: prepared {a} vs one-shot {b}"
                );
            }
        }
    }

    #[test]
    fn estimator_names() {
        assert_eq!(SculliEstimator.name(), "Sculli");
        assert_eq!(CorLcaEstimator.name(), "CorLCA");
        assert_eq!(CovarianceNormalEstimator.name(), "Normal(cov)");
    }
}
