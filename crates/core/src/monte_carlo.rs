//! Monte Carlo ground truth (paper Section II-A1 / V-C).
//!
//! Each trial samples, per task, the number of execution attempts until
//! the verification passes, sets the task's duration to
//! `attempts × aᵢ`, and computes one longest path. The estimate is the
//! mean over trials (the paper uses 300 000).
//!
//! Trials are embarrassingly parallel and run under Rayon with one
//! deterministic RNG per trial (`splitmix64(seed, trial)`), so results
//! are bit-reproducible regardless of thread count — the property the
//! hpc-parallel guides call out for parallel iterators with independent
//! work items.

use crate::estimator::{Estimate, Estimator, PreparedEstimator};
use crate::model::FailureModel;
use crate::scenario::{ScenarioModel, UnsupportedScenario};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::time::Instant;
use stochdag_dag::{Dag, FrozenDag, PreparedDag};

/// How task durations are sampled in each trial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplingModel {
    /// The paper's ground-truth model: re-execute until success
    /// (geometric number of attempts).
    Geometric,
    /// At most one re-execution (`aᵢ` or `2aᵢ`) — the first-order
    /// model's own assumption; used to validate the analytical expansion
    /// separately from the model truncation.
    TwoState,
}

/// Monte Carlo statistics.
#[derive(Clone, Copy, Debug)]
pub struct MonteCarloResult {
    /// Mean makespan over all trials — the expected-makespan estimate.
    pub mean: f64,
    /// Sample variance of the makespan.
    pub variance: f64,
    /// Standard error of `mean` (`sd / √trials`).
    pub std_error: f64,
    /// Smallest makespan observed.
    pub min: f64,
    /// Largest makespan observed.
    pub max: f64,
    /// Number of trials.
    pub trials: usize,
}

impl MonteCarloResult {
    /// Half-width of the ~99.7% (3σ) confidence interval on the mean.
    pub fn ci3_half_width(&self) -> f64 {
        3.0 * self.std_error
    }
}

/// The brute-force Monte Carlo estimator.
#[derive(Clone, Copy, Debug)]
pub struct MonteCarloEstimator {
    trials: usize,
    seed: u64,
    sampling: SamplingModel,
    parallel: bool,
    antithetic: bool,
}

impl MonteCarloEstimator {
    /// Estimator with the given trial count (paper: 300 000), seed 0,
    /// geometric sampling, parallel execution.
    pub fn new(trials: usize) -> MonteCarloEstimator {
        assert!(trials > 0, "need at least one trial");
        MonteCarloEstimator {
            trials,
            seed: 0,
            sampling: SamplingModel::Geometric,
            parallel: true,
            antithetic: false,
        }
    }

    /// The paper's configuration: 300 000 trials.
    pub fn paper_default() -> MonteCarloEstimator {
        MonteCarloEstimator::new(300_000)
    }

    /// Set the master seed (each trial derives its own stream from it).
    pub fn with_seed(mut self, seed: u64) -> MonteCarloEstimator {
        self.seed = seed;
        self
    }

    /// Choose the sampling model.
    pub fn with_sampling(mut self, sampling: SamplingModel) -> MonteCarloEstimator {
        self.sampling = sampling;
        self
    }

    /// Force sequential execution (profiling/debugging).
    pub fn sequential(mut self) -> MonteCarloEstimator {
        self.parallel = false;
        self
    }

    /// Enable antithetic variates: trials are generated in mirrored
    /// pairs (`u` / `1 − u` per task). The makespan is monotone in every
    /// task duration, so the pair members are negatively correlated and
    /// the estimator's variance drops at equal cost (quantified by the
    /// `mc_convergence` bench and the variance-reduction unit test).
    pub fn antithetic(mut self) -> MonteCarloEstimator {
        self.antithetic = true;
        self
    }

    /// Number of configured trials.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Run the simulation and return full statistics.
    pub fn run(&self, dag: &Dag, model: &FailureModel) -> MonteCarloResult {
        self.run_on(&dag.freeze(), model, &mut Vec::new())
    }

    /// [`MonteCarloEstimator::run`] over an already-frozen view, with a
    /// caller-owned success-probability buffer — the shared core of the
    /// one-shot and prepared paths (a prepared estimator freezes once
    /// and reuses `psucc` across every model it evaluates).
    fn run_on(
        &self,
        frozen: &FrozenDag,
        model: &FailureModel,
        psucc: &mut Vec<f64>,
    ) -> MonteCarloResult {
        let n = frozen.node_count();
        if n == 0 {
            return MonteCarloResult {
                mean: 0.0,
                variance: 0.0,
                std_error: 0.0,
                min: 0.0,
                max: 0.0,
                trials: self.trials,
            };
        }
        // Per-task success probabilities, hoisted out of the trial loop.
        psucc.clear();
        psucc.extend(frozen.weights.iter().map(|&a| model.psuccess_of_weight(a)));
        self.run_trials_with(frozen, psucc)
    }

    /// Run the configured trial budget against an already-filled
    /// per-task success-probability vector and summarize. This is the
    /// i.i.d. kernel; inhomogeneous scenarios reuse it with effective
    /// per-task probabilities (hazard-scaled), which leaves the
    /// baseline path bit-identical.
    fn run_trials_with(&self, frozen: &FrozenDag, psucc: &[f64]) -> MonteCarloResult {
        let n = frozen.node_count();
        let sampling = self.sampling;
        let seed = self.seed;
        let antithetic = self.antithetic;

        // Per-trial makespans are collected *in trial order* and reduced
        // sequentially, so the result is bit-identical regardless of
        // thread count (a parallel tree reduction would reorder the
        // floating-point sums). 8 bytes per trial is negligible next to
        // the sampling work.
        let makespans: Vec<f64> = if self.parallel {
            (0..self.trials as u64)
                .into_par_iter()
                .map_init(
                    || TrialScratch::new(n),
                    |scratch, t| scratch.run_trial(frozen, psucc, sampling, seed, t, antithetic),
                )
                .collect()
        } else {
            let mut scratch = TrialScratch::new(n);
            (0..self.trials as u64)
                .map(|t| scratch.run_trial(frozen, psucc, sampling, seed, t, antithetic))
                .collect()
        };
        self.summarize(&makespans)
    }

    /// Run the simulation under a correlated [`ScenarioModel`].
    ///
    /// `Iid` takes exactly the [`MonteCarloEstimator::run_on`] path.
    /// `NodeHazard` reduces to inhomogeneous i.i.d. sampling with
    /// per-task success probability `psucc_i^{h_i}` (a hazard
    /// multiplier on λ, since `psucc_i = e^{−λ a_i}`). `GroupHazard`
    /// draws the per-group hot/cold Bernoullis *first* from the same
    /// per-trial RNG stream, then samples tasks with `psucc_i^m` when
    /// their group is hot — so same-group tasks fail in a correlated
    /// way while trials stay deterministic per (seed, trial). The
    /// antithetic-variates knob is ignored on the group-correlated
    /// path (mirroring the group draw would bias the mixture weights).
    ///
    /// Panics if the scenario's shape does not match the graph (the
    /// engine validates scenarios at spec-resolution time).
    fn run_scenario_on(
        &self,
        frozen: &FrozenDag,
        model: &FailureModel,
        scenario: &ScenarioModel,
        psucc: &mut Vec<f64>,
    ) -> MonteCarloResult {
        let n = frozen.node_count();
        if n == 0 {
            return MonteCarloResult {
                mean: 0.0,
                variance: 0.0,
                std_error: 0.0,
                min: 0.0,
                max: 0.0,
                trials: self.trials,
            };
        }
        if let Err(msg) = scenario.validate(n) {
            panic!("invalid failure scenario: {msg}");
        }
        match scenario {
            ScenarioModel::Iid => self.run_on(frozen, model, psucc),
            ScenarioModel::NodeHazard { hazard } => {
                psucc.clear();
                psucc.extend(
                    frozen
                        .weights
                        .iter()
                        .zip(hazard.iter())
                        .map(|(&a, &h)| model.psuccess_of_weight(a).powf(h)),
                );
                self.run_trials_with(frozen, psucc)
            }
            ScenarioModel::GroupHazard {
                group_of,
                n_groups,
                group_prob,
                hazard,
            } => {
                psucc.clear();
                psucc.extend(frozen.weights.iter().map(|&a| model.psuccess_of_weight(a)));
                // Hot-member per-attempt success probability, hoisted so
                // the trial loop never calls powf.
                let psucc_hot: Vec<f64> = psucc.iter().map(|p| p.powf(*hazard)).collect();
                let psucc: &[f64] = psucc;
                let psucc_hot: &[f64] = &psucc_hot;
                let group_of: &[u32] = group_of;
                let (n_groups, group_prob) = (*n_groups, *group_prob);
                let sampling = self.sampling;
                let seed = self.seed;
                let makespans: Vec<f64> = if self.parallel {
                    (0..self.trials as u64)
                        .into_par_iter()
                        .map_init(
                            || TrialScratch::new(n),
                            |scratch, t| {
                                scratch.run_group_trial(
                                    frozen, psucc, psucc_hot, group_of, n_groups, group_prob,
                                    sampling, seed, t,
                                )
                            },
                        )
                        .collect()
                } else {
                    let mut scratch = TrialScratch::new(n);
                    (0..self.trials as u64)
                        .map(|t| {
                            scratch.run_group_trial(
                                frozen, psucc, psucc_hot, group_of, n_groups, group_prob, sampling,
                                seed, t,
                            )
                        })
                        .collect()
                };
                self.summarize(&makespans)
            }
        }
    }

    /// Sequential trial-order reduction shared by every sampling path.
    fn summarize(&self, makespans: &[f64]) -> MonteCarloResult {
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &m in makespans {
            sum += m;
            sum_sq += m * m;
            min = min.min(m);
            max = max.max(m);
        }
        let t = self.trials as f64;
        let mean = sum / t;
        let variance = (sum_sq / t - mean * mean).max(0.0);
        MonteCarloResult {
            mean,
            variance,
            std_error: (variance / t).sqrt(),
            min,
            max,
            trials: self.trials,
        }
    }
}

/// Monte-Carlo estimator bound to one prepared graph: the frozen CSR
/// view is shared with the preparation and the per-task success
/// probabilities live in a per-prep scratch buffer refilled per model
/// instead of allocated per call. [`PreparedEstimator::reseed`] swaps
/// the master seed, so one preparation serves many deterministically
/// seeded sweep cells.
struct PreparedMonteCarlo {
    est: MonteCarloEstimator,
    prepared: PreparedDag,
    psucc: Vec<f64>,
    last_std_error: Option<f64>,
}

impl PreparedEstimator for PreparedMonteCarlo {
    fn name(&self) -> &'static str {
        "MonteCarlo"
    }

    fn expected_makespan_for(&mut self, model: &FailureModel) -> f64 {
        let r = self
            .est
            .run_on(self.prepared.frozen(), model, &mut self.psucc);
        self.last_std_error = Some(r.std_error);
        r.mean
    }

    fn std_error_hint(&self) -> Option<f64> {
        self.last_std_error
    }

    fn reseed(&mut self, seed: u64) {
        self.est.seed = seed;
    }

    fn estimate_scenario(
        &mut self,
        model: &FailureModel,
        scenario: &ScenarioModel,
    ) -> Result<Estimate, UnsupportedScenario> {
        if scenario.is_iid() {
            return Ok(self.estimate_for(model));
        }
        let start = Instant::now();
        let r = self
            .est
            .run_scenario_on(self.prepared.frozen(), model, scenario, &mut self.psucc);
        self.last_std_error = Some(r.std_error);
        Ok(Estimate {
            value: r.mean,
            elapsed: start.elapsed(),
            name: self.name().to_string(),
            std_error: Some(r.std_error),
        })
    }
}

impl Estimator for MonteCarloEstimator {
    fn name(&self) -> &'static str {
        "MonteCarlo"
    }

    fn prepare(&self, prepared: &PreparedDag) -> Box<dyn PreparedEstimator> {
        Box::new(PreparedMonteCarlo {
            est: *self,
            prepared: prepared.clone(),
            psucc: Vec::new(),
            last_std_error: None,
        })
    }

    fn expected_makespan(&self, dag: &Dag, model: &FailureModel) -> f64 {
        self.run(dag, model).mean
    }

    fn estimate(&self, dag: &Dag, model: &FailureModel) -> Estimate {
        let start = Instant::now();
        let r = self.run(dag, model);
        Estimate {
            value: r.mean,
            elapsed: start.elapsed(),
            name: self.name().to_string(),
            std_error: Some(r.std_error),
        }
    }
}

/// Per-thread reusable scratch buffers for one trial.
struct TrialScratch {
    weights: Vec<f64>,
    completion: Vec<f64>,
    /// Per-group hot flags (group-correlated scenarios only).
    hot: Vec<bool>,
}

impl TrialScratch {
    fn new(n: usize) -> TrialScratch {
        TrialScratch {
            weights: vec![0.0; n],
            completion: Vec::with_capacity(n),
            hot: Vec::new(),
        }
    }

    /// Sample one failure scenario and return its makespan.
    ///
    /// Each task consumes exactly one uniform `u`: the 2-state model
    /// fails iff `u ≥ p`, the geometric model inverts the attempt-count
    /// CDF (`N = 1 + ⌊ln(1−u)/ln(1−p)⌋`). One-uniform-per-task is what
    /// makes antithetic mirroring (`u → 1−u`) well defined: mirrored
    /// trials share the RNG stream of their pair.
    fn run_trial(
        &mut self,
        frozen: &FrozenDag,
        psucc: &[f64],
        sampling: SamplingModel,
        seed: u64,
        trial: u64,
        antithetic: bool,
    ) -> f64 {
        let (stream, mirror) = if antithetic {
            (trial >> 1, trial & 1 == 1)
        } else {
            (trial, false)
        };
        let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ splitmix64(stream)));
        for (i, (&a, &p)) in frozen.weights.iter().zip(psucc.iter()).enumerate() {
            let mut u: f64 = rng.gen(); // [0, 1)
            if mirror {
                u = 1.0 - u; // (0, 1]
            }
            self.weights[i] = attempts_for(sampling, p, u) as f64 * a;
        }
        frozen.longest_path_with_weights(&self.weights, &mut self.completion)
    }

    /// Sample one group-correlated trial and return its makespan.
    ///
    /// The per-group hot/cold Bernoullis are drawn *before* the task
    /// uniforms from the same per-trial stream, so a trial's outcome is
    /// a pure function of `(seed, trial)` exactly like the i.i.d.
    /// kernel. Hot members use the precomputed `psucc_hot` vector
    /// (`psucc^m`); cold members use the baseline `psucc`.
    #[allow(clippy::too_many_arguments)]
    fn run_group_trial(
        &mut self,
        frozen: &FrozenDag,
        psucc: &[f64],
        psucc_hot: &[f64],
        group_of: &[u32],
        n_groups: usize,
        group_prob: f64,
        sampling: SamplingModel,
        seed: u64,
        trial: u64,
    ) -> f64 {
        let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ splitmix64(trial)));
        self.hot.clear();
        self.hot
            .extend((0..n_groups).map(|_| rng.gen::<f64>() < group_prob));
        for (i, &a) in frozen.weights.iter().enumerate() {
            let p = if self.hot[group_of[i] as usize] {
                psucc_hot[i]
            } else {
                psucc[i]
            };
            let u: f64 = rng.gen();
            self.weights[i] = attempts_for(sampling, p, u) as f64 * a;
        }
        frozen.longest_path_with_weights(&self.weights, &mut self.completion)
    }
}

/// Number of execution attempts implied by success probability `p` and
/// uniform draw `u` — the shared inner step of every trial kernel.
#[inline]
fn attempts_for(sampling: SamplingModel, p: f64, u: f64) -> u32 {
    match sampling {
        SamplingModel::TwoState => {
            if p >= 1.0 || u < p {
                1u32
            } else {
                2u32
            }
        }
        SamplingModel::Geometric => {
            if p >= 1.0 || u < p {
                1u32
            } else {
                // Inversion: P(N > k) = (1−p)^k.
                let q = 1.0 - p;
                let k = 1.0 + ((1.0 - u).max(f64::MIN_POSITIVE)).ln() / q.ln();
                (k.floor() as u32).clamp(1, 10_000)
            }
        }
    }
}

/// SplitMix64 finalizer — decorrelates per-trial seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochdag_dag::Dag;

    fn single(a: f64) -> Dag {
        let mut g = Dag::new();
        g.add_node(a);
        g
    }

    #[test]
    fn failure_free_is_exact() {
        let g = single(3.0);
        let mc = MonteCarloEstimator::new(1000);
        let r = mc.run(&g, &FailureModel::failure_free());
        assert_eq!(r.mean, 3.0);
        assert_eq!(r.variance, 0.0);
        assert_eq!(r.min, 3.0);
        assert_eq!(r.max, 3.0);
    }

    #[test]
    fn single_task_two_state_matches_closed_form() {
        let a = 1.0;
        let lambda = 0.2231435513; // pfail = 1 − e^{−λ} = 0.2
        let g = single(a);
        let mc = MonteCarloEstimator::new(200_000)
            .with_seed(7)
            .with_sampling(SamplingModel::TwoState);
        let r = mc.run(&g, &FailureModel::new(lambda));
        let want = 0.8 * 1.0 + 0.2 * 2.0;
        assert!(
            (r.mean - want).abs() < 4.0 * r.std_error + 1e-9,
            "mean {} want {want} (se {})",
            r.mean,
            r.std_error
        );
    }

    #[test]
    fn single_task_geometric_matches_closed_form() {
        // E[attempts] = 1/p ⇒ E[duration] = a/p.
        let a = 1.0;
        let p = 0.8f64;
        let lambda = -(p.ln()) / a;
        let g = single(a);
        let mc = MonteCarloEstimator::new(200_000).with_seed(3);
        let r = mc.run(&g, &FailureModel::new(lambda));
        let want = a / p;
        assert!(
            (r.mean - want).abs() < 4.0 * r.std_error,
            "mean {} want {want} (se {})",
            r.mean,
            r.std_error
        );
    }

    #[test]
    fn deterministic_given_seed_and_parallel() {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        let c = g.add_node(1.5);
        g.add_edge(a, b);
        g.add_edge(a, c);
        let m = FailureModel::new(0.1);
        let mc = MonteCarloEstimator::new(50_000).with_seed(99);
        let r1 = mc.run(&g, &m);
        let r2 = mc.run(&g, &m);
        let r3 = mc.sequential().run(&g, &m);
        assert_eq!(r1.mean, r2.mean, "parallel runs are reproducible");
        assert_eq!(r1.mean, r3.mean, "thread count does not change the result");
        assert_eq!(r1.min, r3.min);
        assert_eq!(r1.max, r3.max);
    }

    #[test]
    fn different_seeds_differ() {
        let g = single(1.0);
        let m = FailureModel::new(0.3);
        let r1 = MonteCarloEstimator::new(10_000).with_seed(1).run(&g, &m);
        let r2 = MonteCarloEstimator::new(10_000).with_seed(2).run(&g, &m);
        assert_ne!(r1.mean, r2.mean);
    }

    #[test]
    fn mean_bounded_by_min_max() {
        let g = single(1.0);
        let r = MonteCarloEstimator::new(5_000).run(&g, &FailureModel::new(0.5));
        assert!(r.min <= r.mean && r.mean <= r.max);
        assert!(r.min >= 1.0, "a task takes at least one attempt");
    }

    #[test]
    fn std_error_shrinks_with_trials() {
        let g = single(1.0);
        let m = FailureModel::new(0.5);
        let small = MonteCarloEstimator::new(1_000).with_seed(5).run(&g, &m);
        let large = MonteCarloEstimator::new(100_000).with_seed(5).run(&g, &m);
        assert!(large.std_error < small.std_error);
    }

    #[test]
    fn estimate_carries_std_error() {
        let g = single(1.0);
        let e = MonteCarloEstimator::new(1_000).estimate(&g, &FailureModel::new(0.1));
        assert!(e.std_error.is_some());
        assert_eq!(e.name, "MonteCarlo");
    }

    #[test]
    fn geometric_exceeds_two_state_mean() {
        // Geometric allows >1 re-execution, so its mean is strictly
        // larger at high failure rates.
        let g = single(1.0);
        let m = FailureModel::new(0.7);
        let geo = MonteCarloEstimator::new(100_000).with_seed(11).run(&g, &m);
        let two = MonteCarloEstimator::new(100_000)
            .with_seed(11)
            .with_sampling(SamplingModel::TwoState)
            .run(&g, &m);
        assert!(geo.mean > two.mean);
    }
}

#[cfg(test)]
mod antithetic_tests {
    use super::*;
    use stochdag_dag::Dag;

    fn chain(n: usize) -> Dag {
        let mut g = Dag::new();
        let mut prev = None;
        for _ in 0..n {
            let v = g.add_node(1.0);
            if let Some(p) = prev {
                g.add_edge(p, v);
            }
            prev = Some(v);
        }
        g
    }

    #[test]
    fn antithetic_mean_is_unbiased() {
        // Single task closed form: E = a/p under geometric sampling.
        let mut g = Dag::new();
        g.add_node(1.0);
        let p = 0.8f64;
        let model = FailureModel::new(-(p.ln()));
        let r = MonteCarloEstimator::new(200_000)
            .with_seed(4)
            .antithetic()
            .run(&g, &model);
        assert!(
            (r.mean - 1.0 / p).abs() < 4.0 * r.std_error.max(1e-4),
            "antithetic mean {} want {}",
            r.mean,
            1.0 / p
        );
    }

    #[test]
    fn antithetic_reduces_empirical_estimator_variance() {
        // The makespan of a chain is Σ durations — monotone in every
        // uniform, so pairing must reduce the variance of the *mean*.
        // Measure by bootstrapping over independent seeds.
        // p = e^{-0.7} ~ 0.50 makes the duration-vs-uniform map steep, so
        // mirrored pairs are strongly negatively correlated; at tiny
        // failure rates the reduction exists but drowns in bootstrap
        // noise.
        let g = chain(10);
        let model = FailureModel::new(0.7);
        let trials = 2_000;
        let reps = 80;
        let spread = |anti: bool| -> f64 {
            let means: Vec<f64> = (0..reps)
                .map(|s| {
                    let mut mc = MonteCarloEstimator::new(trials).with_seed(1000 + s);
                    if anti {
                        mc = mc.antithetic();
                    }
                    mc.run(&g, &model).mean
                })
                .collect();
            let m = means.iter().sum::<f64>() / reps as f64;
            means.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / reps as f64
        };
        let plain = spread(false);
        let anti = spread(true);
        assert!(
            anti < plain,
            "antithetic variance {anti:.3e} not below plain {plain:.3e}"
        );
    }

    #[test]
    fn mirrored_pairs_share_stream() {
        // With antithetic sampling and 2 trials, the two makespans come
        // from mirrored uniforms: for a single task their attempt counts
        // straddle the mean whenever one of them failed.
        let mut g = Dag::new();
        g.add_node(1.0);
        let model = FailureModel::new(0.5);
        let r = MonteCarloEstimator::new(2)
            .with_seed(9)
            .antithetic()
            .run(&g, &model);
        assert!(r.trials == 2);
        assert!(r.min >= 1.0);
    }
}

#[cfg(test)]
mod scenario_tests {
    use super::*;
    use crate::scenario::ScenarioModel;
    use stochdag_dag::Dag;

    fn diamond() -> Dag {
        let mut g = Dag::new();
        let s = g.add_node(1.0);
        let a = g.add_node(2.0);
        let b = g.add_node(3.0);
        let t = g.add_node(1.0);
        g.add_edge(s, a);
        g.add_edge(s, b);
        g.add_edge(a, t);
        g.add_edge(b, t);
        g
    }

    fn scenario_mean(g: &Dag, model: &FailureModel, scenario: &ScenarioModel, seed: u64) -> f64 {
        let mc = MonteCarloEstimator::new(20_000).with_seed(seed);
        mc.run_scenario_on(&g.freeze(), model, scenario, &mut Vec::new())
            .mean
    }

    #[test]
    fn iid_scenario_is_bit_identical_to_plain_run() {
        let g = diamond();
        let m = FailureModel::new(0.1);
        let mc = MonteCarloEstimator::new(5_000).with_seed(17);
        let plain = mc.run(&g, &m);
        let via = mc.run_scenario_on(&g.freeze(), &m, &ScenarioModel::Iid, &mut Vec::new());
        assert_eq!(plain.mean, via.mean);
        assert_eq!(plain.variance, via.variance);
    }

    #[test]
    fn never_hot_group_scenario_matches_iid_statistically() {
        // q = 0 ⇒ the mixture collapses to i.i.d. (the trial streams
        // differ because group uniforms are drawn first, so compare
        // means, not bits).
        let g = diamond();
        let m = FailureModel::new(0.2);
        let scenario = ScenarioModel::GroupHazard {
            group_of: vec![0, 1, 0, 1],
            n_groups: 2,
            group_prob: 0.0,
            hazard: 5.0,
        };
        let corr = scenario_mean(&g, &m, &scenario, 3);
        let iid = MonteCarloEstimator::new(20_000).with_seed(4).run(&g, &m);
        assert!(
            (corr - iid.mean).abs() < 6.0 * iid.std_error.max(1e-3),
            "q=0 mixture {corr} vs iid {}",
            iid.mean
        );
    }

    #[test]
    fn always_hot_group_matches_uniform_node_hazard() {
        // q = 1 ⇒ every task runs at hazard m, which is exactly the
        // uniform NodeHazard scenario.
        let g = diamond();
        let m = FailureModel::new(0.15);
        let hot = ScenarioModel::GroupHazard {
            group_of: vec![0, 0, 1, 1],
            n_groups: 2,
            group_prob: 1.0,
            hazard: 3.0,
        };
        let node = ScenarioModel::NodeHazard {
            hazard: vec![3.0; 4],
        };
        let a = scenario_mean(&g, &m, &hot, 5);
        let b = scenario_mean(&g, &m, &node, 6);
        assert!(
            (a - b).abs() / b < 0.02,
            "always-hot {a} vs node-hazard {b}"
        );
    }

    #[test]
    fn correlation_raises_the_expected_makespan() {
        let g = diamond();
        let m = FailureModel::new(0.1);
        let scenario = ScenarioModel::GroupHazard {
            group_of: vec![0, 0, 0, 0],
            n_groups: 1,
            group_prob: 0.3,
            hazard: 6.0,
        };
        let corr = scenario_mean(&g, &m, &scenario, 9);
        let iid = MonteCarloEstimator::new(20_000).with_seed(9).run(&g, &m);
        assert!(
            corr > iid.mean,
            "hot racks must hurt: {corr} vs {}",
            iid.mean
        );
    }

    #[test]
    fn group_trials_are_deterministic_per_seed() {
        let g = diamond();
        let m = FailureModel::new(0.25);
        let scenario = ScenarioModel::GroupHazard {
            group_of: vec![0, 1, 0, 1],
            n_groups: 2,
            group_prob: 0.4,
            hazard: 2.0,
        };
        let a = scenario_mean(&g, &m, &scenario, 42);
        let b = scenario_mean(&g, &m, &scenario, 42);
        let c = scenario_mean(&g, &m, &scenario, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn prepared_estimate_scenario_reports_std_error() {
        let g = diamond();
        let prepared = PreparedDag::new(g);
        let mut p = MonteCarloEstimator::new(2_000).prepare(&prepared);
        let est = p
            .estimate_scenario(
                &FailureModel::new(0.1),
                &ScenarioModel::NodeHazard {
                    hazard: vec![1.0, 2.0, 1.0, 2.0],
                },
            )
            .unwrap();
        assert!(est.value > 0.0);
        assert!(est.std_error.is_some());
        assert_eq!(est.name, "MonteCarlo");
    }
}
