//! The paper's first-order approximation of the expected makespan
//! (Section IV) — **the primary contribution**.
//!
//! With per-attempt success probability `pᵢ = e^{−λaᵢ} = 1 − λaᵢ + O(λ²)`,
//! expanding `E(G) = Σ_{S⊆V} P(S)·L(S)` and dropping `O(λ²)` terms
//! (i.e. states with two or more failures) leaves
//!
//! ```text
//! E(G) = d(G) + λ · Σ_{i∈V} aᵢ · ( d(Gᵢ) − d(G) ) + O(λ²)
//! ```
//!
//! where `Gᵢ` doubles task `i`'s weight. Two implementations:
//!
//! * [`first_order_expected_makespan_naive`] recomputes the longest path
//!   of each `Gᵢ` from scratch — the `O(|V|² + |V||E|)` bound quoted in
//!   the paper.
//! * [`first_order_expected_makespan_fast`] exploits the paper's closing
//!   remark ("lower complexity can be achieved by exploiting the fact
//!   that G and the Gᵢ's differ in only the weight of one task"):
//!   `d(Gᵢ) = max(d(G), top(i) + aᵢ + bot(i))` from one pair of DP
//!   passes, giving `O(|V| + |E|)` total.
//!
//! Both are exposed; their equality is enforced by unit and property
//! tests, and the `first_order_ablation` bench measures the speedup.

use crate::estimator::{Estimate, Estimator, PreparedEstimator};
use crate::model::FailureModel;
use crate::scenario::{ScenarioModel, UnsupportedScenario};
use std::time::Instant;
use stochdag_dag::{Dag, LevelInfo, PreparedDag};

/// Detailed first-order result.
#[derive(Clone, Debug)]
pub struct FirstOrderResult {
    /// The approximation of `E(G)`.
    pub expected_makespan: f64,
    /// Failure-free makespan `d(G)` (lower bound on `E(G)`).
    pub failure_free_makespan: f64,
    /// Per-task contribution `λ·aᵢ·(d(Gᵢ) − d(G))`, indexed by
    /// `NodeId::index()`. Summing these recovers
    /// `expected_makespan − failure_free_makespan`. Useful as a
    /// *criticality* measure for failure-aware scheduling.
    pub task_contribution: Vec<f64>,
}

/// Fast `O(|V| + |E|)` first-order approximation with per-task detail.
pub fn first_order_detailed(dag: &Dag, model: &FailureModel) -> FirstOrderResult {
    first_order_detailed_with(dag, &LevelInfo::compute(dag), model)
}

/// [`first_order_detailed`] with the level decomposition supplied by
/// the caller — the shared core of the one-shot and prepared paths
/// (the levels are model-independent, so a prepared estimator computes
/// them once and reuses them for every failure model).
pub fn first_order_detailed_with(
    dag: &Dag,
    levels: &LevelInfo,
    model: &FailureModel,
) -> FirstOrderResult {
    let d_g = levels.makespan;
    let mut contributions = Vec::with_capacity(dag.node_count());
    let mut sum = 0.0f64;
    for i in dag.nodes() {
        let a_i = dag.weight(i);
        let delta = levels.reexecution_sensitivity(dag, i); // d(G_i) − d(G)
        let c = model.lambda * a_i * delta;
        contributions.push(c);
        sum += c;
    }
    FirstOrderResult {
        expected_makespan: d_g + sum,
        failure_free_makespan: d_g,
        task_contribution: contributions,
    }
}

/// Fast `O(|V| + |E|)` first-order approximation (value only).
pub fn first_order_expected_makespan_fast(dag: &Dag, model: &FailureModel) -> f64 {
    first_order_detailed(dag, model).expected_makespan
}

/// Naive `O(|V|·(|V| + |E|))` first-order approximation: recomputes
/// `d(Gᵢ)` with a fresh longest-path pass per task, exactly as the
/// complexity bound quoted in the paper's Section IV.
pub fn first_order_expected_makespan_naive(dag: &Dag, model: &FailureModel) -> f64 {
    let d_g = dag.longest_path_length();
    let mut sum = 0.0f64;
    for i in dag.nodes() {
        let a_i = dag.weight(i);
        let d_gi = dag.with_scaled_weight(i, 2.0).longest_path_length();
        sum += model.lambda * a_i * (d_gi - d_g);
    }
    d_g + sum
}

/// The first-order estimator of the paper ("First Order" in the
/// figures).
#[derive(Clone, Copy, Debug, Default)]
pub struct FirstOrderEstimator {
    use_naive: bool,
}

impl FirstOrderEstimator {
    /// The `O(|V| + |E|)` implementation (default).
    pub fn fast() -> FirstOrderEstimator {
        FirstOrderEstimator { use_naive: false }
    }

    /// The `O(|V|·(|V| + |E|))` reference implementation.
    pub fn naive() -> FirstOrderEstimator {
        FirstOrderEstimator { use_naive: true }
    }
}

/// First-order estimator bound to one prepared graph. The fast variant
/// hoists the per-task re-execution sensitivities
/// `sens[i] = d(Gᵢ) − d(G)` out of the model loop at prepare time (they
/// only depend on the level decomposition), so each model evaluation is
/// one multiply-add pass over two contiguous arrays — and a whole grid
/// of models is one structure-of-arrays sweep over the node axis
/// ([`PreparedEstimator::estimate_grid`]).
struct PreparedFirstOrder {
    prepared: PreparedDag,
    use_naive: bool,
    /// Hoisted `d(Gᵢ) − d(G)` per node (fast variant; empty for naive).
    sens: Vec<f64>,
    /// Hoisted failure-free makespan `d(G)`.
    d_g: f64,
}

impl PreparedFirstOrder {
    /// The fast evaluation: `d(G) + Σᵢ (λ·aᵢ)·sens[i]` with the same
    /// association and summation order as
    /// [`first_order_detailed_with`], hence bit-identical to it.
    fn fast_value(&self, lambda: f64) -> f64 {
        let mut sum = 0.0f64;
        for (&a_i, &delta) in self.prepared.weights().iter().zip(&self.sens) {
            sum += lambda * a_i * delta;
        }
        self.d_g + sum
    }
}

impl PreparedEstimator for PreparedFirstOrder {
    fn name(&self) -> &'static str {
        if self.use_naive {
            "FirstOrder(naive)"
        } else {
            "FirstOrder"
        }
    }

    fn expected_makespan_for(&mut self, model: &FailureModel) -> f64 {
        if self.use_naive {
            first_order_expected_makespan_naive(self.prepared.dag(), model)
        } else {
            self.fast_value(model.lambda)
        }
    }

    /// First-order evaluation over the scenario *mixture*: the
    /// correction term becomes `Σᵢ λ·h̄ᵢ·aᵢ·(d(Gᵢ) − d(G))` where
    /// `h̄ᵢ` is the scenario's marginal hazard multiplier for node `i`
    /// ([`ScenarioModel::marginal_hazard`]). This is *exact to first
    /// order in λ*: a group-correlated mixture only perturbs the
    /// single-failure states through their marginal probability —
    /// cross-task correlation enters at `O(λ²)`, which the expansion
    /// drops anyway. Summation runs in node order like the i.i.d. fast
    /// path, and the i.i.d. scenario delegates to
    /// [`PreparedEstimator::estimate_for`] bit-identically.
    fn estimate_scenario(
        &mut self,
        model: &FailureModel,
        scenario: &ScenarioModel,
    ) -> Result<Estimate, UnsupportedScenario> {
        if scenario.is_iid() {
            return Ok(self.estimate_for(model));
        }
        let start = Instant::now();
        let value = if self.use_naive {
            let dag = self.prepared.dag();
            let d_g = dag.longest_path_length();
            let mut sum = 0.0f64;
            for i in dag.nodes() {
                let a_i = dag.weight(i);
                let d_gi = dag.with_scaled_weight(i, 2.0).longest_path_length();
                sum += model.lambda * scenario.marginal_hazard(i.index()) * a_i * (d_gi - d_g);
            }
            d_g + sum
        } else {
            let mut sum = 0.0f64;
            for (i, (&a_i, &delta)) in self.prepared.weights().iter().zip(&self.sens).enumerate() {
                sum += model.lambda * scenario.marginal_hazard(i) * a_i * delta;
            }
            self.d_g + sum
        };
        Ok(Estimate {
            value,
            elapsed: start.elapsed(),
            name: self.name().to_string(),
            std_error: self.std_error_hint(),
        })
    }

    /// Batched grid pass (fast variant): one sweep over the node axis
    /// updating every model's accumulator, so the weight and sensitivity
    /// arrays are read once for the whole grid instead of once per
    /// model. Each model's additions happen in node order exactly as in
    /// the sequential path, so values are bit-identical to
    /// [`PreparedEstimator::estimate_for`]; the reported `elapsed` is
    /// each model's amortized share of the batched pass.
    fn estimate_grid(&mut self, models: &[FailureModel]) -> Vec<Estimate> {
        if self.use_naive || models.is_empty() {
            return models.iter().map(|m| self.estimate_for(m)).collect();
        }
        let start = Instant::now();
        let mut sums = vec![0.0f64; models.len()];
        for (&a_i, &delta) in self.prepared.weights().iter().zip(&self.sens) {
            for (s, m) in sums.iter_mut().zip(models) {
                *s += m.lambda * a_i * delta;
            }
        }
        let elapsed = start.elapsed() / models.len() as u32;
        sums.into_iter()
            .map(|sum| Estimate {
                value: self.d_g + sum,
                elapsed,
                name: self.name().to_string(),
                std_error: self.std_error_hint(),
            })
            .collect()
    }
}

impl Estimator for FirstOrderEstimator {
    fn name(&self) -> &'static str {
        if self.use_naive {
            "FirstOrder(naive)"
        } else {
            "FirstOrder"
        }
    }

    fn prepare(&self, prepared: &PreparedDag) -> Box<dyn PreparedEstimator> {
        let (sens, d_g) = if self.use_naive {
            (Vec::new(), 0.0)
        } else {
            let dag = prepared.dag();
            let levels = prepared.levels();
            let sens = dag
                .nodes()
                .map(|i| levels.reexecution_sensitivity(dag, i))
                .collect();
            (sens, levels.makespan)
        };
        Box::new(PreparedFirstOrder {
            prepared: prepared.clone(),
            use_naive: self.use_naive,
            sens,
            d_g,
        })
    }

    fn expected_makespan(&self, dag: &Dag, model: &FailureModel) -> f64 {
        if self.use_naive {
            first_order_expected_makespan_naive(dag, model)
        } else {
            first_order_expected_makespan_fast(dag, model)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochdag_dag::Dag;

    fn diamond() -> Dag {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        let c = g.add_node(3.0);
        let d = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        g
    }

    #[test]
    fn fast_equals_naive_on_diamond() {
        let g = diamond();
        let m = FailureModel::new(0.01);
        let fast = first_order_expected_makespan_fast(&g, &m);
        let naive = first_order_expected_makespan_naive(&g, &m);
        assert!((fast - naive).abs() < 1e-12, "fast {fast} vs naive {naive}");
    }

    #[test]
    fn single_task_closed_form() {
        // E ≈ a + λ·a·a (d(G_i) − d(G) = a).
        let mut g = Dag::new();
        g.add_node(2.0);
        let m = FailureModel::new(0.05);
        let e = first_order_expected_makespan_fast(&g, &m);
        assert!((e - (2.0 + 0.05 * 2.0 * 2.0)).abs() < 1e-12);
    }

    #[test]
    fn chain_closed_form() {
        // Chain of weights a_j: every task is critical, d(G_i) − d(G) = a_i,
        // E = Σa + λΣa².
        let mut g = Dag::new();
        let mut prev = None;
        for w in [1.0, 2.0, 3.0] {
            let v = g.add_node(w);
            if let Some(p) = prev {
                g.add_edge(p, v);
            }
            prev = Some(v);
        }
        let m = FailureModel::new(0.01);
        let e = first_order_expected_makespan_fast(&g, &m);
        assert!((e - (6.0 + 0.01 * (1.0 + 4.0 + 9.0))).abs() < 1e-12);
    }

    #[test]
    fn noncritical_task_contributes_only_above_slack() {
        let g = diamond();
        let m = FailureModel::new(0.1);
        let r = first_order_detailed(&g, &m);
        // b has weight 2, slack 1: d(G_b) − d(G) = 1 ⇒ contribution λ·2·1.
        assert!((r.task_contribution[1] - 0.1 * 2.0 * 1.0).abs() < 1e-12);
        // c is critical with weight 3: contribution λ·3·3.
        assert!((r.task_contribution[2] - 0.1 * 3.0 * 3.0).abs() < 1e-12);
        let sum: f64 = r.task_contribution.iter().sum();
        assert!(
            (r.expected_makespan - r.failure_free_makespan - sum).abs() < 1e-12,
            "contributions must decompose the correction"
        );
    }

    #[test]
    fn zero_lambda_gives_failure_free_makespan() {
        let g = diamond();
        let e = first_order_expected_makespan_fast(&g, &FailureModel::failure_free());
        assert_eq!(e, 5.0);
    }

    #[test]
    fn estimate_is_at_least_failure_free() {
        let g = diamond();
        for lam in [0.0, 0.001, 0.1, 1.0] {
            let e = first_order_expected_makespan_fast(&g, &FailureModel::new(lam));
            assert!(e >= 5.0 - 1e-12);
        }
    }

    #[test]
    fn estimator_trait_names() {
        assert_eq!(FirstOrderEstimator::fast().name(), "FirstOrder");
        assert_eq!(FirstOrderEstimator::naive().name(), "FirstOrder(naive)");
    }

    #[test]
    fn monotone_in_lambda() {
        let g = diamond();
        let mut prev = 0.0;
        for lam in [0.0, 0.01, 0.05, 0.2] {
            let e = first_order_expected_makespan_fast(&g, &FailureModel::new(lam));
            assert!(e >= prev);
            prev = e;
        }
    }

    #[test]
    fn scenario_iid_is_bit_identical_to_plain_path() {
        let g = diamond();
        let m = FailureModel::new(0.03);
        let prepared = PreparedDag::new(g);
        let mut p = FirstOrderEstimator::fast().prepare(&prepared);
        let plain = p.estimate_for(&m).value;
        let via = p.estimate_scenario(&m, &ScenarioModel::Iid).unwrap().value;
        assert_eq!(plain, via);
    }

    #[test]
    fn scenario_fast_equals_naive() {
        let g = diamond();
        let m = FailureModel::new(0.02);
        let scenario = ScenarioModel::NodeHazard {
            hazard: vec![1.0, 3.0, 2.0, 1.5],
        };
        let prepared = PreparedDag::new(g);
        let fast = FirstOrderEstimator::fast()
            .prepare(&prepared)
            .estimate_scenario(&m, &scenario)
            .unwrap()
            .value;
        let naive = FirstOrderEstimator::naive()
            .prepare(&prepared)
            .estimate_scenario(&m, &scenario)
            .unwrap()
            .value;
        assert!((fast - naive).abs() < 1e-12, "fast {fast} vs naive {naive}");
    }

    #[test]
    fn group_scenario_uses_the_marginal_hazard() {
        // rack mixture with q, m: every node's marginal multiplier is
        // 1 + q(m − 1), so the correction scales by exactly that factor.
        let g = diamond();
        let m = FailureModel::new(0.01);
        let prepared = PreparedDag::new(g);
        let mut p = FirstOrderEstimator::fast().prepare(&prepared);
        let base = p.estimate_for(&m).value;
        let d_g = 5.0;
        let scenario = ScenarioModel::GroupHazard {
            group_of: vec![0, 1, 0, 1],
            n_groups: 2,
            group_prob: 0.25,
            hazard: 5.0,
        };
        let mixed = p.estimate_scenario(&m, &scenario).unwrap().value;
        let factor = 1.0 + 0.25 * (5.0 - 1.0);
        assert!(
            (mixed - d_g - factor * (base - d_g)).abs() < 1e-12,
            "mixed {mixed} base {base}"
        );
    }

    #[test]
    fn scenario_matches_monte_carlo_mixture() {
        // MC samples the rack mixture directly; first-order evaluates
        // the marginal-hazard expansion. At small λ they must agree to
        // within sampling noise + O(λ²).
        use crate::monte_carlo::MonteCarloEstimator;
        let g = diamond();
        let m = FailureModel::new(0.01);
        let scenario = ScenarioModel::GroupHazard {
            group_of: vec![0, 0, 1, 1],
            n_groups: 2,
            group_prob: 0.2,
            hazard: 4.0,
        };
        let prepared = PreparedDag::new(g);
        let fo = FirstOrderEstimator::fast()
            .prepare(&prepared)
            .estimate_scenario(&m, &scenario)
            .unwrap()
            .value;
        let mut mc = MonteCarloEstimator::new(150_000)
            .with_seed(11)
            .prepare(&prepared);
        let mce = mc.estimate_scenario(&m, &scenario).unwrap();
        let tol = 4.0 * mce.std_error.unwrap() + 0.01;
        assert!(
            (fo - mce.value).abs() < tol,
            "first-order {fo} vs MC {} (tol {tol})",
            mce.value
        );
    }
}
