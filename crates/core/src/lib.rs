//! # stochdag-core — expected-makespan estimators under silent errors
//!
//! The paper's primary contribution and every comparator it is evaluated
//! against, behind one trait:
//!
//! | Estimator | Paper role | Cost | Module |
//! |-----------|------------|------|--------|
//! | [`FirstOrderEstimator`] | **the contribution** (Section IV) | `O(V + E)` (fast) or `O(V(V+E))` (naive) | `first_order` |
//! | [`SecondOrderEstimator`] | the paper's "future work" `O(λ²)`-exact extension | `O(V·(V+E))` | `second_order` |
//! | [`MonteCarloEstimator`] | ground truth (Section II-A1) | `trials × O(V+E)`, parallel | `monte_carlo` |
//! | [`DodinEstimator`] | baseline #1 (Section II-A2) | pseudo-polynomial | `dodin` |
//! | [`SculliEstimator`] | baseline #2, ρ = 0 variant (Section II-A3) | `O(V + E)` | `normal` |
//! | [`CorLcaEstimator`] | correlation-aware normal (Canon–Jeannot) | `O(V·E)` worst case | `normal` |
//! | [`CovarianceNormalEstimator`] | full covariance propagation (the paper's slow "Normal" profile) | `O(V²·deg)` | `normal` |
//! | [`ExactEstimator`] | exhaustive 2-state exact (tests/small DAGs) | `O(2^V · (V+E))` | `exact` |
//!
//! All estimators consume a task DAG ([`stochdag_dag::Dag`], weights =
//! failure-free durations) plus a [`FailureModel`] (rate λ, calibrated
//! from a target per-task failure probability as in the paper's
//! Section V-C).
//!
//! ## Quick example
//!
//! ```
//! use stochdag_core::{Estimator, FailureModel, FirstOrderEstimator, MonteCarloEstimator};
//! use stochdag_dag::DagBuilder;
//!
//! let mut b = DagBuilder::new();
//! let s = b.add_task("setup", 1.0);
//! let w = b.add_task("work", 4.0);
//! b.add_dep(s, w);
//! let dag = b.build().unwrap();
//!
//! let model = FailureModel::from_pfail(0.001, dag.mean_weight());
//! let first_order = FirstOrderEstimator::fast().estimate(&dag, &model);
//! let mc = MonteCarloEstimator::new(100_000).with_seed(42).estimate(&dag, &model);
//! let rel = (first_order.value - mc.value).abs() / mc.value;
//! assert!(rel < 1e-3, "first order within {rel} of Monte Carlo");
//! ```

mod estimator;
mod exact;
mod first_order;
mod model;
mod monte_carlo;
mod normal;
mod second_order;
mod spelde;

pub mod dvfs;

pub mod dodin;

pub use dodin::DodinEstimator;
pub use dvfs::{speed_tradeoff, DvfsModel, PowerModel, TradeoffPoint};
pub use estimator::{BoxedEstimator, Estimate, Estimator};
pub use exact::{exact_expected_makespan_two_state, ExactEstimator, MAX_EXACT_NODES};
pub use first_order::{
    first_order_detailed, first_order_expected_makespan_fast, first_order_expected_makespan_naive,
    FirstOrderEstimator, FirstOrderResult,
};
pub use model::FailureModel;
pub use monte_carlo::{MonteCarloEstimator, MonteCarloResult, SamplingModel};
pub use normal::{CorLcaEstimator, CovarianceNormalEstimator, SculliEstimator};
pub use second_order::{second_order_expected_makespan, SecondOrderEstimator};
pub use spelde::SpeldeEstimator;
