//! # stochdag-core — expected-makespan estimators under silent errors
//!
//! The paper's primary contribution and every comparator it is evaluated
//! against, behind one trait:
//!
//! | Estimator | Paper role | Cost | Module |
//! |-----------|------------|------|--------|
//! | [`FirstOrderEstimator`] | **the contribution** (Section IV) | `O(V + E)` (fast) or `O(V(V+E))` (naive) | `first_order` |
//! | [`SecondOrderEstimator`] | the paper's "future work" `O(λ²)`-exact extension | `O(V·(V+E))` | `second_order` |
//! | [`MonteCarloEstimator`] | ground truth (Section II-A1) | `trials × O(V+E)`, parallel | `monte_carlo` |
//! | [`DodinEstimator`] | baseline #1 (Section II-A2) | pseudo-polynomial | `dodin` |
//! | [`SculliEstimator`] | baseline #2, ρ = 0 variant (Section II-A3) | `O(V + E)` | `normal` |
//! | [`CorLcaEstimator`] | correlation-aware normal (Canon–Jeannot) | `O(V·E)` worst case | `normal` |
//! | [`CovarianceNormalEstimator`] | full covariance propagation (the paper's slow "Normal" profile) | `O(V²·deg)` | `normal` |
//! | [`ExactEstimator`] | exhaustive 2-state exact (tests/small DAGs) | `O(2^V · (V+E))` | `exact` |
//!
//! All estimators consume a task DAG ([`stochdag_dag::Dag`], weights =
//! failure-free durations) plus a [`FailureModel`] (rate λ, calibrated
//! from a target per-task failure probability as in the paper's
//! Section V-C).
//!
//! ## Two-phase estimator lifecycle
//!
//! Estimation splits into a per-graph **prepare** step and a per-model
//! **evaluate** step:
//!
//! 1. Wrap the graph once in a [`stochdag_dag::PreparedDag`] — this
//!    freezes the CSR adjacency, fixes a topological order, and (lazily)
//!    computes the level decomposition and the structural hash, all
//!    shared by every estimator.
//! 2. [`Estimator::prepare`] binds an estimator to that preparation and
//!    hoists its own model-independent work (all-pairs longest paths for
//!    `SecondOrder`, dominant path sets for `Spelde`, scratch buffers
//!    for `MonteCarlo`/`Exact`, …).
//! 3. [`PreparedEstimator::estimate_for`] — or the batched
//!    [`PreparedEstimator::estimate_grid`] — evaluates one failure model
//!    against that preparation, as many times as needed.
//!
//! **When to use which path:** evaluating one (graph, model) pair — a
//! CLI `analyze` call, a scheduler probing a candidate DAG — should use
//! the thin one-shot shims [`Estimator::estimate`] /
//! [`Estimator::expected_makespan`], which prepare internally.
//! Evaluating a *grid* (many failure models, many estimators, one
//! graph) — the sweep engine, the paper's accuracy studies — should
//! prepare once per (graph, estimator) pair; the `prepared_pipeline`
//! bench measures the resulting amortization. Both paths return
//! bit-identical values (enforced by the `prepared_parity` property
//! tests).
//!
//! ## Quick example
//!
//! ```
//! use stochdag_core::{Estimator, FailureModel, FirstOrderEstimator, MonteCarloEstimator};
//! use stochdag_dag::{DagBuilder, PreparedDag};
//!
//! let mut b = DagBuilder::new();
//! let s = b.add_task("setup", 1.0);
//! let w = b.add_task("work", 4.0);
//! b.add_dep(s, w);
//! let dag = b.build().unwrap();
//!
//! let model = FailureModel::from_pfail(0.001, dag.mean_weight());
//! // One-shot shim: prepare-and-evaluate in one call.
//! let first_order = FirstOrderEstimator::fast().estimate(&dag, &model);
//! let mc = MonteCarloEstimator::new(100_000).with_seed(42).estimate(&dag, &model);
//! let rel = (first_order.value - mc.value).abs() / mc.value;
//! assert!(rel < 1e-3, "first order within {rel} of Monte Carlo");
//!
//! // Grid evaluation: prepare once, evaluate many models against it.
//! let prepared = PreparedDag::new(dag);
//! let mut fo = FirstOrderEstimator::fast().prepare(&prepared);
//! let models: Vec<FailureModel> =
//!     [0.01, 0.001].iter().map(|&p| FailureModel::from_pfail(p, 2.5)).collect();
//! let grid = fo.estimate_grid(&models);
//! assert_eq!(grid.len(), 2);
//! assert_eq!(grid[1].value, first_order.value);
//! ```

mod estimator;
mod exact;
mod first_order;
mod model;
mod monte_carlo;
mod normal;
mod scenario;
mod second_order;
mod spec;
mod spelde;

pub mod dvfs;

pub mod dodin;

pub use dodin::DodinEstimator;
pub use dvfs::{speed_tradeoff, DvfsModel, PowerModel, TradeoffPoint};
pub use estimator::{BoxedEstimator, Estimate, Estimator, PreparedEstimator};
pub use exact::{exact_expected_makespan_two_state, ExactEstimator, MAX_EXACT_NODES};
pub use first_order::{
    first_order_detailed, first_order_detailed_with, first_order_expected_makespan_fast,
    first_order_expected_makespan_naive, FirstOrderEstimator, FirstOrderResult,
};
pub use model::FailureModel;
pub use monte_carlo::{MonteCarloEstimator, MonteCarloResult, SamplingModel};
pub use normal::{CorLcaEstimator, CovarianceNormalEstimator, SculliEstimator};
pub use scenario::{ScenarioModel, UnsupportedScenario};
pub use second_order::{
    second_order_expected_makespan, second_order_from_tables, second_order_with,
    SecondOrderEstimator, SecondOrderTables,
};
pub use spec::{
    EstimatorSpec, DEFAULT_DODIN_ATOMS, DEFAULT_MC_TRIALS, DEFAULT_SPELDE_PATHS, ESTIMATOR_FAMILIES,
};
pub use spelde::SpeldeEstimator;
