//! The silent-error failure model.

use stochdag_dag::{Dag, NodeId};
use stochdag_dist::{failure_probability, lambda_for_failure_probability, mtbf};

/// Exponential silent-error model: a task of weight `a` fails any single
/// execution attempt with probability `1 − e^{−λa}`, independently
/// across tasks and attempts; a failed task is detected by the
/// end-of-task verification and re-executed from scratch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FailureModel {
    /// Error rate λ (failures per second of work).
    pub lambda: f64,
}

impl FailureModel {
    /// Model with an explicit rate λ.
    ///
    /// # Panics
    /// Panics if `lambda` is negative or non-finite.
    pub fn new(lambda: f64) -> FailureModel {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "lambda must be finite and non-negative, got {lambda}"
        );
        FailureModel { lambda }
    }

    /// The paper's calibration (Section V-C): pick λ so a task of mean
    /// weight `mean_weight` fails with probability `pfail`.
    pub fn from_pfail(pfail: f64, mean_weight: f64) -> FailureModel {
        FailureModel::new(lambda_for_failure_probability(pfail, mean_weight))
    }

    /// Calibrate against a DAG's own mean task weight.
    pub fn from_pfail_for_dag(pfail: f64, dag: &Dag) -> FailureModel {
        FailureModel::from_pfail(pfail, dag.mean_weight())
    }

    /// Per-attempt failure probability of a task with weight `a`.
    #[inline]
    pub fn pfail_of_weight(&self, a: f64) -> f64 {
        failure_probability(self.lambda, a)
    }

    /// Per-attempt success probability `e^{−λa}` of a task with weight `a`.
    #[inline]
    pub fn psuccess_of_weight(&self, a: f64) -> f64 {
        (-self.lambda * a).exp()
    }

    /// Per-attempt failure probability of task `i` of `dag`.
    #[inline]
    pub fn pfail_of(&self, dag: &Dag, i: NodeId) -> f64 {
        self.pfail_of_weight(dag.weight(i))
    }

    /// Mean time between failures `1/λ`.
    pub fn mtbf(&self) -> f64 {
        mtbf(self.lambda)
    }

    /// A failure-free model (λ = 0).
    pub fn failure_free() -> FailureModel {
        FailureModel { lambda: 0.0 }
    }
}

impl serde::Serialize for FailureModel {
    fn serialize(&self) -> serde::Value {
        serde::Value::obj([("lambda", self.lambda.serialize())])
    }
}

impl serde::Deserialize for FailureModel {
    fn deserialize(v: &serde::Value) -> Result<FailureModel, serde::Error> {
        let lambda = f64::deserialize(v.require("lambda")?)?;
        if !(lambda.is_finite() && lambda >= 0.0) {
            return Err(serde::Error::new(format!("bad lambda {lambda}")));
        }
        Ok(FailureModel::new(lambda))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stochdag_dag::Dag;

    #[test]
    fn calibration_matches_paper_protocol() {
        let mut g = Dag::new();
        g.add_node(0.1);
        g.add_node(0.2);
        let m = FailureModel::from_pfail_for_dag(0.01, &g);
        // mean weight 0.15 -> the paper's λ ≈ 0.067
        assert!((m.lambda - 0.067).abs() < 1e-3);
        assert!((m.pfail_of_weight(0.15) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn success_and_failure_complement() {
        let m = FailureModel::new(0.3);
        for a in [0.0, 0.5, 2.0] {
            assert!((m.pfail_of_weight(a) + m.psuccess_of_weight(a) - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn failure_free_never_fails() {
        let m = FailureModel::failure_free();
        assert_eq!(m.pfail_of_weight(100.0), 0.0);
        assert_eq!(m.psuccess_of_weight(100.0), 1.0);
    }

    #[test]
    fn pfail_of_node() {
        let mut g = Dag::new();
        let a = g.add_node(2.0);
        let m = FailureModel::new(0.1);
        assert!((m.pfail_of(&g, a) - (1.0 - (-0.2f64).exp())).abs() < 1e-15);
    }
}
