//! Typed estimator specifications.
//!
//! [`EstimatorSpec`] is the closed set of estimator configurations the
//! workspace knows how to build — each variant one estimator family,
//! with the family's single numeric knob (if any) as a typed field
//! instead of a `":arg"` suffix on a string.
//!
//! The string form is not gone: [`Display`](std::fmt::Display) renders
//! the **canonical id** (`"dodin:128"`, `"first-order"`, `"mc:10000"`,
//! …) and [`FromStr`](std::str::FromStr) parses any legacy spelling
//! (`"dodin"`, `"dodin:128"`) back, filling defaults. The canonical id
//! is byte-identical to what the stringly-typed registry produced
//! before this type existed, so cache keys, CSV/JSONL columns, and
//! seed derivations are stable across the migration (the engine's
//! `spec_compat` tests pin this against golden hashes).
//!
//! | Canonical id | Variant |
//! |--------------|---------|
//! | `first-order` | [`EstimatorSpec::FirstOrder`] |
//! | `first-order-naive` | [`EstimatorSpec::FirstOrderNaive`] |
//! | `second-order` | [`EstimatorSpec::SecondOrder`] |
//! | `sculli` | [`EstimatorSpec::Sculli`] |
//! | `corlca` | [`EstimatorSpec::CorLca`] |
//! | `normal-cov` | [`EstimatorSpec::NormalCov`] |
//! | `dodin:ATOMS` | [`EstimatorSpec::Dodin`] |
//! | `dodin-dup:ATOMS` | [`EstimatorSpec::DodinDup`] |
//! | `spelde:PATHS` | [`EstimatorSpec::Spelde`] |
//! | `exact` | [`EstimatorSpec::Exact`] |
//! | `mc:TRIALS` | [`EstimatorSpec::Mc`] |

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::str::FromStr;

/// Default support-atom cap of the Dodin estimators.
pub const DEFAULT_DODIN_ATOMS: usize = 128;
/// Default dominant-path count of the Spelde bound.
pub const DEFAULT_SPELDE_PATHS: usize = 16;
/// Default trial count of the `mc` sweep estimator.
pub const DEFAULT_MC_TRIALS: usize = 10_000;

/// A typed, serde-round-trippable estimator configuration (see the
/// module docs above).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum EstimatorSpec {
    /// The paper's `O(V+E)` first-order approximation.
    FirstOrder,
    /// First-order via per-task longest-path recomputation.
    FirstOrderNaive,
    /// `O(λ²)`-exact second-order extension.
    SecondOrder,
    /// Sculli's independent-normal propagation.
    Sculli,
    /// Canon–Jeannot canonical-ancestor correlation heuristic.
    CorLca,
    /// Full covariance-propagating normal estimator.
    NormalCov,
    /// Dodin forward surrogate.
    Dodin {
        /// Support-atom cap (≥ 2).
        atoms: usize,
    },
    /// Faithful Dodin duplication engine.
    DodinDup {
        /// Support-atom cap (≥ 2).
        atoms: usize,
    },
    /// Spelde path-based bound.
    Spelde {
        /// Number of dominant paths (≥ 1).
        paths: usize,
    },
    /// Exhaustive 2-state oracle (small DAGs only).
    Exact,
    /// Monte Carlo with the cell's deterministic seed.
    Mc {
        /// Trial count (≥ 1).
        trials: usize,
    },
}

/// Estimator family base names, sorted (the registry's listing order).
pub const ESTIMATOR_FAMILIES: &[&str] = &[
    "corlca",
    "dodin",
    "dodin-dup",
    "exact",
    "first-order",
    "first-order-naive",
    "mc",
    "normal-cov",
    "sculli",
    "second-order",
    "spelde",
];

impl EstimatorSpec {
    /// The family base name (canonical id minus the `:arg` suffix).
    pub fn family(&self) -> &'static str {
        match self {
            EstimatorSpec::FirstOrder => "first-order",
            EstimatorSpec::FirstOrderNaive => "first-order-naive",
            EstimatorSpec::SecondOrder => "second-order",
            EstimatorSpec::Sculli => "sculli",
            EstimatorSpec::CorLca => "corlca",
            EstimatorSpec::NormalCov => "normal-cov",
            EstimatorSpec::Dodin { .. } => "dodin",
            EstimatorSpec::DodinDup { .. } => "dodin-dup",
            EstimatorSpec::Spelde { .. } => "spelde",
            EstimatorSpec::Exact => "exact",
            EstimatorSpec::Mc { .. } => "mc",
        }
    }

    /// The family's numeric knob, if it has one.
    pub fn arg(&self) -> Option<usize> {
        match self {
            EstimatorSpec::Dodin { atoms } | EstimatorSpec::DodinDup { atoms } => Some(*atoms),
            EstimatorSpec::Spelde { paths } => Some(*paths),
            EstimatorSpec::Mc { trials } => Some(*trials),
            _ => None,
        }
    }

    /// One spec per family, with default arguments — the full closed
    /// set, for registries and exhaustiveness tests.
    pub fn all_default() -> Vec<EstimatorSpec> {
        ESTIMATOR_FAMILIES
            .iter()
            .map(|f| f.parse().expect("every family parses bare"))
            .collect()
    }

    /// Check the argument constraints a builder will enforce, so a
    /// programmatically-constructed spec fails here instead of at
    /// estimator-build time deep inside a campaign.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            EstimatorSpec::Dodin { atoms } | EstimatorSpec::DodinDup { atoms } if *atoms < 2 => {
                Err("dodin needs at least two support atoms".into())
            }
            EstimatorSpec::Spelde { paths } if *paths == 0 => {
                Err("spelde needs at least one path".into())
            }
            EstimatorSpec::Mc { trials } if *trials == 0 => {
                Err("mc needs at least one trial".into())
            }
            _ => Ok(()),
        }
    }
}

impl fmt::Display for EstimatorSpec {
    /// The canonical id: the family name, plus `:arg` for families
    /// that have a knob (defaults are spelled out, so `"dodin"` and
    /// `"dodin:128"` both render as `dodin:128`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.arg() {
            None => f.write_str(self.family()),
            Some(arg) => write!(f, "{}:{arg}", self.family()),
        }
    }
}

impl FromStr for EstimatorSpec {
    type Err = String;

    /// Parse a spec string (`family[:arg]`), filling defaults and
    /// validating the argument. Accepts every spelling the stringly
    /// registry accepted, with the same error messages.
    fn from_str(spec: &str) -> Result<EstimatorSpec, String> {
        let (base, arg) = match spec.split_once(':') {
            None => (spec, None),
            Some((base, arg)) => {
                let n: u64 = arg
                    .parse()
                    .map_err(|_| format!("estimator spec {spec:?}: bad argument {arg:?}"))?;
                (base, Some(n as usize))
            }
        };
        let no_arg = |parsed: EstimatorSpec| match arg {
            None => Ok(parsed),
            Some(_) => Err(format!("estimator {base:?} takes no argument")),
        };
        let parsed = match base {
            "first-order" => no_arg(EstimatorSpec::FirstOrder)?,
            "first-order-naive" => no_arg(EstimatorSpec::FirstOrderNaive)?,
            "second-order" => no_arg(EstimatorSpec::SecondOrder)?,
            "sculli" => no_arg(EstimatorSpec::Sculli)?,
            "corlca" => no_arg(EstimatorSpec::CorLca)?,
            "normal-cov" => no_arg(EstimatorSpec::NormalCov)?,
            "exact" => no_arg(EstimatorSpec::Exact)?,
            "dodin" => EstimatorSpec::Dodin {
                atoms: arg.unwrap_or(DEFAULT_DODIN_ATOMS),
            },
            "dodin-dup" => EstimatorSpec::DodinDup {
                atoms: arg.unwrap_or(DEFAULT_DODIN_ATOMS),
            },
            "spelde" => EstimatorSpec::Spelde {
                paths: arg.unwrap_or(DEFAULT_SPELDE_PATHS),
            },
            "mc" => EstimatorSpec::Mc {
                trials: arg.unwrap_or(DEFAULT_MC_TRIALS),
            },
            other => {
                return Err(format!(
                    "unknown estimator {other:?} (known: {})",
                    ESTIMATOR_FAMILIES.join(", ")
                ))
            }
        };
        parsed.validate()?;
        Ok(parsed)
    }
}

impl Serialize for EstimatorSpec {
    /// Serialized as the canonical id string, so spec files stay the
    /// familiar `estimators = ["first-order", "dodin:64"]` shape.
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for EstimatorSpec {
    fn deserialize(v: &Value) -> Result<EstimatorSpec, serde::Error> {
        let s = String::deserialize(v)?;
        s.parse().map_err(serde::Error::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_ids_match_the_stringly_registry() {
        let cases = [
            ("first-order", "first-order"),
            ("first-order-naive", "first-order-naive"),
            ("second-order", "second-order"),
            ("sculli", "sculli"),
            ("corlca", "corlca"),
            ("normal-cov", "normal-cov"),
            ("dodin", "dodin:128"),
            ("dodin:64", "dodin:64"),
            ("dodin-dup", "dodin-dup:128"),
            ("spelde", "spelde:16"),
            ("spelde:8", "spelde:8"),
            ("exact", "exact"),
            ("mc", "mc:10000"),
            ("mc:2500", "mc:2500"),
        ];
        for (input, canonical) in cases {
            let spec: EstimatorSpec = input.parse().unwrap();
            assert_eq!(spec.to_string(), canonical, "{input}");
        }
    }

    #[test]
    fn display_from_str_round_trips() {
        for spec in EstimatorSpec::all_default() {
            let back: EstimatorSpec = spec.to_string().parse().unwrap();
            assert_eq!(back, spec, "{spec}");
        }
        let custom = EstimatorSpec::Mc { trials: 777 };
        assert_eq!(custom.to_string().parse::<EstimatorSpec>(), Ok(custom));
    }

    #[test]
    fn serde_round_trips_as_canonical_string() {
        for spec in EstimatorSpec::all_default() {
            let v = spec.serialize();
            assert_eq!(v.as_str(), Some(spec.to_string().as_str()));
            assert_eq!(EstimatorSpec::deserialize(&v).unwrap(), spec);
        }
    }

    #[test]
    fn bad_specs_are_rejected_with_legacy_messages() {
        let err = "warp-drive".parse::<EstimatorSpec>().unwrap_err();
        assert!(err.contains("unknown estimator"), "{err}");
        assert!(err.contains("first-order"), "lists known families: {err}");
        let err = "sculli:3".parse::<EstimatorSpec>().unwrap_err();
        assert!(err.contains("takes no argument"), "{err}");
        let err = "mc:x".parse::<EstimatorSpec>().unwrap_err();
        assert!(err.contains("bad argument"), "{err}");
        assert!("mc:0".parse::<EstimatorSpec>().is_err());
        assert!("dodin:1".parse::<EstimatorSpec>().is_err());
        assert!("spelde:0".parse::<EstimatorSpec>().is_err());
        assert!(EstimatorSpec::Mc { trials: 0 }.validate().is_err());
        assert!(EstimatorSpec::Dodin { atoms: 1 }.validate().is_err());
    }

    #[test]
    fn families_list_is_sorted_and_complete() {
        let mut sorted = ESTIMATOR_FAMILIES.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, ESTIMATOR_FAMILIES);
        assert_eq!(EstimatorSpec::all_default().len(), ESTIMATOR_FAMILIES.len());
    }
}
