//! Spelde-style path-based bounds on the expected makespan.
//!
//! A classical family of PERT heuristics (Spelde 1977; surveyed by
//! Möhring and by Canon–Jeannot, both cited by the paper): the makespan
//! is the maximum over all source→sink paths of the path sums; keeping
//! only the `K` *dominant* paths and treating them as **independent
//! normal** variables (CLT over the tasks of each path) gives
//!
//! * a **lower bound flavour** for small `K` (paths are dropped), and
//! * an over-independence error like Dodin's (shared tasks between the
//!   kept paths are treated as independent).
//!
//! `K = 1` degenerates to the expected *critical path* length
//! `Σ_{i∈CP} aᵢ(2 − pᵢ)` — the cheapest failure-aware estimate of all
//! and a true lower bound on `E(G)` (Jensen).
//!
//! Included as an extension baseline: it completes the classical-bounds
//! picture next to Dodin and the normal-propagation family, and it
//! exercises the `k_longest_paths` substrate.

use crate::estimator::{Estimate, Estimator, PreparedEstimator};
use crate::model::FailureModel;
use std::time::Instant;
use stochdag_dag::{k_longest_paths, CriticalPath, Dag, PreparedDag};
use stochdag_dist::{clark_max_moments, DurationTable, Normal};

/// Path-based estimator: independent-normal max over the `K` longest
/// (failure-free) paths, with per-task 2-state moments.
#[derive(Clone, Copy, Debug)]
pub struct SpeldeEstimator {
    paths: usize,
}

impl Default for SpeldeEstimator {
    fn default() -> Self {
        SpeldeEstimator { paths: 16 }
    }
}

impl SpeldeEstimator {
    /// Estimator over the `paths` longest paths.
    ///
    /// # Panics
    /// Panics if `paths == 0`.
    pub fn new(paths: usize) -> SpeldeEstimator {
        assert!(paths > 0, "need at least one path");
        SpeldeEstimator { paths }
    }

    /// The `K = 1` variant: expected critical-path length (a lower
    /// bound on the expected makespan).
    pub fn critical_path_only() -> SpeldeEstimator {
        SpeldeEstimator { paths: 1 }
    }

    /// Number of paths considered.
    pub fn paths(&self) -> usize {
        self.paths
    }
}

/// Independent-normal max over an already-extracted path set — the
/// shared core of the one-shot and prepared paths. The path extraction
/// is model-independent (it uses failure-free weights), so a prepared
/// estimator computes it once per graph; only this cheap per-path
/// moment summation runs per model.
fn spelde_with(paths: &[CriticalPath], table: &DurationTable) -> f64 {
    let mut max: Option<Normal> = None;
    for path in paths {
        let mut mean = 0.0;
        let mut var = 0.0;
        for &v in &path.nodes {
            mean += table.two_state_mean(v.index());
            var += table.two_state_var(v.index());
        }
        let n = Normal::from_mean_var(mean, var);
        max = Some(match max {
            None => n,
            Some(cur) => {
                let m = clark_max_moments(cur, n, 0.0);
                Normal::from_mean_var(m.mean, m.var)
            }
        });
    }
    max.expect("a non-empty DAG has at least one path").mean
}

/// [`spelde_with`] over a flattened path layout: all path node indices
/// in one contiguous array, delimited by an offsets table. Same
/// per-path sums in the same order as the nested representation
/// (bit-identical), but the per-model pass touches one linear buffer
/// instead of chasing a `Vec<Vec<_>>`.
fn spelde_flat(flat: &[u32], offsets: &[u32], table: &DurationTable) -> f64 {
    let mut max: Option<Normal> = None;
    for w in offsets.windows(2) {
        let mut mean = 0.0;
        let mut var = 0.0;
        for &v in &flat[w[0] as usize..w[1] as usize] {
            mean += table.two_state_mean(v as usize);
            var += table.two_state_var(v as usize);
        }
        let n = Normal::from_mean_var(mean, var);
        max = Some(match max {
            None => n,
            Some(cur) => {
                let m = clark_max_moments(cur, n, 0.0);
                Normal::from_mean_var(m.mean, m.var)
            }
        });
    }
    max.expect("a non-empty DAG has at least one path").mean
}

struct PreparedSpelde {
    prepared: PreparedDag,
    /// Flattened node indices of the K dominant paths, in path order.
    flat: Vec<u32>,
    /// `flat[offsets[p]..offsets[p+1]]` is path `p`.
    offsets: Vec<u32>,
    table: DurationTable,
}

impl PreparedEstimator for PreparedSpelde {
    fn name(&self) -> &'static str {
        "Spelde"
    }

    fn expected_makespan_for(&mut self, model: &FailureModel) -> f64 {
        if self.prepared.node_count() == 0 {
            return 0.0;
        }
        self.table.rebuild(model.lambda, self.prepared.weights());
        spelde_flat(&self.flat, &self.offsets, &self.table)
    }

    /// Grid pass. Every moment in the evaluation depends on λ through
    /// `p = e^{−λa}`, so there is nothing to share *across* models — the
    /// batching here is keeping the duration table and the flattened
    /// path layout warm while the models stream through them.
    fn estimate_grid(&mut self, models: &[FailureModel]) -> Vec<Estimate> {
        models
            .iter()
            .map(|model| {
                let start = Instant::now();
                let value = self.expected_makespan_for(model);
                Estimate {
                    value,
                    elapsed: start.elapsed(),
                    name: self.name().to_string(),
                    std_error: self.std_error_hint(),
                }
            })
            .collect()
    }
}

impl Estimator for SpeldeEstimator {
    fn name(&self) -> &'static str {
        "Spelde"
    }

    fn prepare(&self, prepared: &PreparedDag) -> Box<dyn PreparedEstimator> {
        let paths = if prepared.node_count() == 0 {
            Vec::new()
        } else {
            k_longest_paths(prepared.dag(), self.paths)
        };
        let mut flat = Vec::new();
        let mut offsets = vec![0u32];
        for p in &paths {
            flat.extend(p.nodes.iter().map(|v| v.index() as u32));
            offsets.push(flat.len() as u32);
        }
        Box::new(PreparedSpelde {
            prepared: prepared.clone(),
            flat,
            offsets,
            table: DurationTable::default(),
        })
    }

    fn expected_makespan(&self, dag: &Dag, model: &FailureModel) -> f64 {
        if dag.node_count() == 0 {
            return 0.0;
        }
        let paths = k_longest_paths(dag, self.paths);
        let table = DurationTable::new(model.lambda, &dag.weights());
        spelde_with(&paths, &table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monte_carlo::{MonteCarloEstimator, SamplingModel};
    use stochdag_dist::two_state_moments;

    fn diamond() -> Dag {
        let mut g = Dag::new();
        let a = g.add_node(1.0);
        let b = g.add_node(2.0);
        let c = g.add_node(3.0);
        let d = g.add_node(1.0);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        g
    }

    #[test]
    fn critical_path_only_closed_form() {
        let g = diamond();
        let model = FailureModel::new(0.05);
        let want: f64 = [1.0, 3.0, 1.0]
            .iter()
            .map(|&a| two_state_moments(a, model.psuccess_of_weight(a)).0)
            .sum();
        let got = SpeldeEstimator::critical_path_only().expected_makespan(&g, &model);
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn more_paths_never_decrease_the_estimate() {
        let g = diamond();
        let model = FailureModel::new(0.1);
        let mut prev = 0.0;
        for k in [1usize, 2, 4, 8] {
            let v = SpeldeEstimator::new(k).expected_makespan(&g, &model);
            assert!(v + 1e-12 >= prev, "k={k}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn single_path_lower_bounds_monte_carlo() {
        let g = diamond();
        let model = FailureModel::new(0.1);
        let mc = MonteCarloEstimator::new(300_000)
            .with_seed(5)
            .with_sampling(SamplingModel::TwoState)
            .run(&g, &model);
        let lb = SpeldeEstimator::critical_path_only().expected_makespan(&g, &model);
        assert!(
            lb <= mc.mean + 3.0 * mc.std_error,
            "critical-path bound {lb} above MC {}",
            mc.mean
        );
    }

    #[test]
    fn failure_free_equals_longest_path() {
        let g = diamond();
        let v = SpeldeEstimator::new(8).expected_makespan(&g, &FailureModel::failure_free());
        assert!((v - 5.0).abs() < 1e-9);
    }

    #[test]
    fn tracks_monte_carlo_at_low_rate() {
        let g = diamond();
        let model = FailureModel::new(0.01);
        let mc = MonteCarloEstimator::new(200_000)
            .with_seed(6)
            .with_sampling(SamplingModel::TwoState)
            .run(&g, &model);
        let v = SpeldeEstimator::new(8).expected_makespan(&g, &model);
        let rel = ((v - mc.mean) / mc.mean).abs();
        assert!(rel < 5e-3, "spelde {v} vs MC {} (rel {rel})", mc.mean);
    }

    #[test]
    fn name_and_accessors() {
        assert_eq!(SpeldeEstimator::default().name(), "Spelde");
        assert_eq!(SpeldeEstimator::new(4).paths(), 4);
        assert_eq!(SpeldeEstimator::critical_path_only().paths(), 1);
    }
}
