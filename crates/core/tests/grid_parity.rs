//! Grid/sequential parity: for every registered estimator family,
//! [`PreparedEstimator::estimate_grid`] must return the same `value`
//! bits as evaluating the models one by one through
//! [`PreparedEstimator::estimate_for`].
//!
//! This is the contract that lets the sweep engine mix the two paths
//! freely (a cached cell computed by a batched grid pass must replay
//! byte-identically against a freshly computed single cell), and it is
//! what keeps the batched structure-of-arrays overrides honest: they
//! may reorder *reads*, never the per-model floating-point operations.

use proptest::prelude::*;
use stochdag_core::{
    CorLcaEstimator, CovarianceNormalEstimator, DodinEstimator, Estimator, ExactEstimator,
    FailureModel, FirstOrderEstimator, MonteCarloEstimator, SculliEstimator, SecondOrderEstimator,
    SpeldeEstimator,
};
use stochdag_dag::{Dag, PreparedDag};

/// Every estimator family the engine registry exposes, constructed the
/// way `EstimatorRegistry::standard` builds them (small arguments so
/// the exhaustive/statistical members stay fast).
fn all_families() -> Vec<Box<dyn Estimator>> {
    vec![
        Box::new(FirstOrderEstimator::fast()),
        Box::new(FirstOrderEstimator::naive()),
        Box::new(SecondOrderEstimator),
        Box::new(SculliEstimator),
        Box::new(CorLcaEstimator),
        Box::new(CovarianceNormalEstimator),
        Box::new(DodinEstimator::scalable().with_max_atoms(32)),
        Box::new(DodinEstimator::new().with_max_atoms(32)),
        Box::new(SpeldeEstimator::new(4)),
        Box::new(ExactEstimator),
        Box::new(MonteCarloEstimator::new(200).with_seed(7)),
    ]
}

/// A random small layered DAG: weights on a coarse grid, edges only
/// from lower to higher ids (acyclic by construction). Small enough
/// for the exact oracle and the duplication engine.
fn arb_dag() -> impl Strategy<Value = Dag> {
    (
        proptest::collection::vec(1u32..16, 1..8),
        proptest::collection::vec(any::<bool>(), 64),
    )
        .prop_map(|(weights, edges)| {
            let mut g = Dag::new();
            let ids: Vec<_> = weights
                .iter()
                .map(|&w| g.add_node(w as f64 * 0.25))
                .collect();
            for i in 0..ids.len() {
                for j in (i + 1)..ids.len() {
                    if edges[(i * 8 + j) % 64] {
                        g.add_edge(ids[i], ids[j]);
                    }
                }
            }
            g
        })
}

/// A small grid of failure rates, always including the failure-free
/// corner (λ = 0 exercises the zero-skip branches of the batched
/// second-order pass).
fn arb_models() -> impl Strategy<Value = Vec<FailureModel>> {
    proptest::collection::vec(0u32..30, 1..4).prop_map(|ls| {
        let mut models = vec![FailureModel::failure_free()];
        models.extend(ls.iter().map(|&l| FailureModel::new(l as f64 / 100.0)));
        models
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn estimate_grid_is_bit_identical_to_sequential(dag in arb_dag(), models in arb_models()) {
        let prepared = PreparedDag::new(dag);
        for est in all_families() {
            // Two independent preparations of the same graph: one runs
            // the batched grid, the other the sequential loop.
            let mut grid_side = est.prepare(&prepared);
            let mut seq_side = est.prepare(&prepared);
            let grid = grid_side.estimate_grid(&models);
            prop_assert_eq!(grid.len(), models.len());
            for (m, g) in models.iter().zip(&grid) {
                let s = seq_side.estimate_for(m);
                prop_assert_eq!(
                    g.value.to_bits(),
                    s.value.to_bits(),
                    "{}: grid {} vs sequential {} under lambda {}",
                    est.name(), g.value, s.value, m.lambda
                );
                prop_assert_eq!(&g.name, &s.name, "{}: name mismatch", est.name());
            }
        }
    }

    #[test]
    fn repeated_evaluation_is_pure(dag in arb_dag()) {
        // The trait contract behind grid batching: evaluating the same
        // model twice (with other models in between) returns the same
        // bits — scratch reuse must not leak state across calls.
        let prepared = PreparedDag::new(dag);
        let probe = FailureModel::new(0.07);
        let other = FailureModel::new(0.21);
        for est in all_families() {
            let mut p = est.prepare(&prepared);
            let first = p.expected_makespan_for(&probe);
            let _ = p.expected_makespan_for(&other);
            let again = p.expected_makespan_for(&probe);
            prop_assert_eq!(
                first.to_bits(),
                again.to_bits(),
                "{}: {} then {} after interleaved model",
                est.name(), first, again
            );
        }
    }
}
