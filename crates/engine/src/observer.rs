//! Event subscription: the one seam through which campaign progress
//! flows.
//!
//! Every execution backend reports work as a stream of
//! [`CampaignEvent`]s, and everything that wants to watch a campaign —
//! a progress renderer, a metrics exporter, the distributed worker's
//! stdout pipe — subscribes by implementing [`CampaignObserver`].
//! Observers receive events in **completion order** (the order cells
//! actually finished, across threads and worker processes); consumers
//! that need deterministic row order attach a
//! [`ResultSink`](crate::ResultSink) instead, which the campaign feeds
//! through its re-sequencer.
//!
//! Built-in observers:
//!
//! * [`ProgressReporter`](crate::ProgressReporter) — live campaign
//!   progress (counters, throughput, cache-hit rate, ETA).
//! * [`WireObserver`](crate::WireObserver) — encodes each event as one
//!   line-delimited JSON protocol line; a `sweep-worker` process is
//!   exactly this observer writing to its stdout.

use crate::error::EngineError;
use crate::protocol::CampaignEvent;

/// A subscriber to a campaign's event stream (see the
/// crate docs).
///
/// `on_event` errors fail the campaign: the first error wins, event
/// dispatch to observers and sinks stops immediately, and the error is
/// returned once the backend's in-flight work drains (cells already
/// executing cannot be cancelled mid-flight; their results still land
/// in the shared cache). Purely advisory observers (progress
/// rendering) should swallow their own failures and always return
/// `Ok`.
pub trait CampaignObserver: Send {
    /// Called once per event, in completion order.
    fn on_event(&mut self, event: &CampaignEvent) -> Result<(), EngineError>;

    /// Called once after the event stream closes (even when the
    /// campaign is about to report a failure), so renderers can emit a
    /// final state.
    fn on_finish(&mut self) -> Result<(), EngineError> {
        Ok(())
    }
}

/// Adapter: any `FnMut(&CampaignEvent)` closure observes a campaign.
pub struct FnObserver<F: FnMut(&CampaignEvent) + Send>(pub F);

impl<F: FnMut(&CampaignEvent) + Send> CampaignObserver for FnObserver<F> {
    fn on_event(&mut self, event: &CampaignEvent) -> Result<(), EngineError> {
        (self.0)(event);
        Ok(())
    }
}
