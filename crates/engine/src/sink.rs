//! Streaming result sinks.
//!
//! Sinks receive rows **in deterministic cell order** while later cells
//! are still computing (the runner reorders completions through
//! [`Reorderer`]), so output files are byte-identical across runs of
//! the same spec — including cached re-runs, because every float in a
//! row (values, errors, even elapsed times) comes from the cached
//! payload rather than the current wall clock.

use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::Path;

/// One result cell: an estimator evaluated on one (DAG, model)
/// scenario, compared against that scenario's Monte-Carlo reference.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepRow {
    /// DAG instance id (e.g. `"lu:k=8"`).
    pub dag: String,
    /// Task count of the DAG.
    pub tasks: usize,
    /// Edge count of the DAG.
    pub edges: usize,
    /// Model label (`"pfail=0.01"` or `"lambda=0.05"`).
    pub model: String,
    /// Error rate λ of the concrete model.
    pub lambda: f64,
    /// Canonical estimator id (e.g. `"dodin:128"`).
    pub estimator: String,
    /// The estimate `E(G)`.
    pub value: f64,
    /// Monte-Carlo reference mean.
    pub reference: f64,
    /// Standard error of the reference mean.
    pub reference_std_error: f64,
    /// `(value − reference) / reference` (negative ⇒ underestimate).
    pub rel_error: f64,
    /// Wall-clock seconds of the estimation (from the producing run).
    pub elapsed_s: f64,
    /// Deterministic seed of the cell.
    pub seed: u64,
}

impl Serialize for SweepRow {
    fn serialize(&self) -> Value {
        Value::obj([
            ("dag", self.dag.serialize()),
            ("tasks", self.tasks.serialize()),
            ("edges", self.edges.serialize()),
            ("model", self.model.serialize()),
            ("lambda", self.lambda.serialize()),
            ("estimator", self.estimator.serialize()),
            ("value", self.value.serialize()),
            ("reference", self.reference.serialize()),
            ("reference_std_error", self.reference_std_error.serialize()),
            ("rel_error", self.rel_error.serialize()),
            ("elapsed_s", self.elapsed_s.serialize()),
            ("seed", self.seed.serialize()),
        ])
    }
}

impl Deserialize for SweepRow {
    fn deserialize(v: &Value) -> Result<SweepRow, serde::Error> {
        Ok(SweepRow {
            dag: String::deserialize(v.require("dag")?)?,
            tasks: usize::deserialize(v.require("tasks")?)?,
            edges: usize::deserialize(v.require("edges")?)?,
            model: String::deserialize(v.require("model")?)?,
            lambda: f64::deserialize(v.require("lambda")?)?,
            estimator: String::deserialize(v.require("estimator")?)?,
            value: f64::deserialize(v.require("value")?)?,
            reference: f64::deserialize(v.require("reference")?)?,
            reference_std_error: f64::deserialize(v.require("reference_std_error")?)?,
            rel_error: f64::deserialize(v.require("rel_error")?)?,
            elapsed_s: f64::deserialize(v.require("elapsed_s")?)?,
            seed: u64::deserialize(v.require("seed")?)?,
        })
    }
}

/// Per-estimator aggregate over a finished sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct SummaryRow {
    /// Canonical estimator id.
    pub estimator: String,
    /// Number of cells.
    pub cells: usize,
    /// Mean `|rel_error|` across cells.
    pub mean_abs_rel_error: f64,
    /// Largest `|rel_error|`.
    pub max_abs_rel_error: f64,
    /// Total estimation seconds across cells.
    pub total_elapsed_s: f64,
}

/// Compute the per-estimator summary of a row set (sorted by id).
pub fn summarize(rows: &[SweepRow]) -> Vec<SummaryRow> {
    let mut by_est: BTreeMap<&str, (usize, f64, f64, f64)> = BTreeMap::new();
    for r in rows {
        let e = by_est.entry(&r.estimator).or_insert((0, 0.0, 0.0, 0.0));
        e.0 += 1;
        e.1 += r.rel_error.abs();
        e.2 = e.2.max(r.rel_error.abs());
        e.3 += r.elapsed_s;
    }
    by_est
        .into_iter()
        .map(|(est, (n, sum, max, secs))| SummaryRow {
            estimator: est.to_string(),
            cells: n,
            mean_abs_rel_error: sum / n as f64,
            max_abs_rel_error: max,
            total_elapsed_s: secs,
        })
        .collect()
}

impl Serialize for SummaryRow {
    fn serialize(&self) -> Value {
        Value::obj([
            ("type", Value::Str("summary".into())),
            ("estimator", self.estimator.serialize()),
            ("cells", self.cells.serialize()),
            ("mean_abs_rel_error", self.mean_abs_rel_error.serialize()),
            ("max_abs_rel_error", self.max_abs_rel_error.serialize()),
            ("total_elapsed_s", self.total_elapsed_s.serialize()),
        ])
    }
}

/// A streaming consumer of sweep results.
pub trait ResultSink: Send {
    /// Called once before any row.
    fn begin(&mut self) -> io::Result<()>;
    /// Called once per cell, in deterministic cell order.
    fn row(&mut self, row: &SweepRow) -> io::Result<()>;
    /// Called once after all rows with the per-estimator aggregates.
    fn summary(&mut self, rows: &[SummaryRow]) -> io::Result<()>;
    /// Called last; flush buffers.
    fn finish(&mut self) -> io::Result<()>;
}

/// Deterministic float rendering (shortest round-trip form).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}") // keep a decimal point so columns stay typed
    } else {
        format!("{v}")
    }
}

/// RFC-4180 quoting for string cells (file-sourced DAG ids can carry
/// commas).
fn esc_csv(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Open a buffered file writer, creating parent directories; failures
/// name the offending path.
fn create_file_writer(path: &Path) -> io::Result<io::BufWriter<std::fs::File>> {
    let with_path = |e: io::Error| io::Error::new(e.kind(), format!("{}: {e}", path.display()));
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(with_path)?;
        }
    }
    Ok(io::BufWriter::new(
        std::fs::File::create(path).map_err(with_path)?,
    ))
}

/// CSV sink: one header, one line per cell, `#`-prefixed summary block.
pub struct CsvSink<W: Write + Send> {
    w: W,
}

impl CsvSink<io::BufWriter<std::fs::File>> {
    /// CSV sink writing to a file (parent directories created).
    /// Errors name the offending path.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(CsvSink {
            w: create_file_writer(path.as_ref())?,
        })
    }
}

impl<W: Write + Send> CsvSink<W> {
    /// CSV sink over any writer.
    pub fn new(w: W) -> Self {
        CsvSink { w }
    }

    /// Recover the underlying writer (e.g. a byte buffer in tests).
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write + Send> ResultSink for CsvSink<W> {
    fn begin(&mut self) -> io::Result<()> {
        writeln!(
            self.w,
            "dag,tasks,edges,model,lambda,estimator,value,reference,reference_std_error,rel_error,elapsed_s,seed"
        )
    }

    fn row(&mut self, r: &SweepRow) -> io::Result<()> {
        writeln!(
            self.w,
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            esc_csv(&r.dag),
            r.tasks,
            r.edges,
            esc_csv(&r.model),
            fmt_f64(r.lambda),
            esc_csv(&r.estimator),
            fmt_f64(r.value),
            fmt_f64(r.reference),
            fmt_f64(r.reference_std_error),
            fmt_f64(r.rel_error),
            fmt_f64(r.elapsed_s),
            r.seed
        )
    }

    fn summary(&mut self, rows: &[SummaryRow]) -> io::Result<()> {
        writeln!(
            self.w,
            "# summary: estimator,cells,mean_abs_rel_error,max_abs_rel_error,total_elapsed_s"
        )?;
        for s in rows {
            writeln!(
                self.w,
                "# summary: {},{},{},{},{}",
                esc_csv(&s.estimator),
                s.cells,
                fmt_f64(s.mean_abs_rel_error),
                fmt_f64(s.max_abs_rel_error),
                fmt_f64(s.total_elapsed_s)
            )?;
        }
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

/// JSON-lines sink: one object per cell, then one per summary row.
pub struct JsonlSink<W: Write + Send> {
    w: W,
}

impl JsonlSink<io::BufWriter<std::fs::File>> {
    /// JSONL sink writing to a file (parent directories created).
    /// Errors name the offending path.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink {
            w: create_file_writer(path.as_ref())?,
        })
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// JSONL sink over any writer.
    pub fn new(w: W) -> Self {
        JsonlSink { w }
    }

    /// Recover the underlying writer (e.g. a byte buffer in tests).
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: Write + Send> ResultSink for JsonlSink<W> {
    fn begin(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn row(&mut self, r: &SweepRow) -> io::Result<()> {
        writeln!(self.w, "{}", serde::json::to_string(r))
    }

    fn summary(&mut self, rows: &[SummaryRow]) -> io::Result<()> {
        for s in rows {
            writeln!(self.w, "{}", serde::json::to_string(s))?;
        }
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

/// Sink that only collects rows in memory (tests, embedding).
#[derive(Default)]
pub struct VecSink {
    /// Collected rows.
    pub rows: Vec<SweepRow>,
}

impl ResultSink for VecSink {
    fn begin(&mut self) -> io::Result<()> {
        Ok(())
    }
    fn row(&mut self, row: &SweepRow) -> io::Result<()> {
        self.rows.push(row.clone());
        Ok(())
    }
    fn summary(&mut self, _rows: &[SummaryRow]) -> io::Result<()> {
        Ok(())
    }
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Re-sequencer: accepts `(index, row)` completions in any order and
/// releases the in-order prefix.
pub struct Reorderer {
    next: usize,
    pending: BTreeMap<usize, SweepRow>,
}

impl Reorderer {
    /// Empty reorderer starting at index 0.
    pub fn new() -> Reorderer {
        Reorderer {
            next: 0,
            pending: BTreeMap::new(),
        }
    }

    /// Insert a completion; `emit` is called for every row that is now
    /// next in sequence.
    ///
    /// The sequence always advances past a released row even when its
    /// `emit` fails (the first error is returned, later releases are
    /// still attempted), so one sink error cannot stall the stream.
    pub fn push(
        &mut self,
        idx: usize,
        row: SweepRow,
        mut emit: impl FnMut(&SweepRow) -> io::Result<()>,
    ) -> io::Result<()> {
        self.pending.insert(idx, row);
        let mut first_err = None;
        while let Some(row) = self.pending.remove(&self.next) {
            self.next += 1;
            if let Err(e) = emit(&row) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Number of rows released so far.
    pub fn released(&self) -> usize {
        self.next
    }

    /// Rows still waiting for earlier indices.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }
}

impl Default for Reorderer {
    fn default() -> Self {
        Reorderer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(i: usize) -> SweepRow {
        SweepRow {
            dag: format!("lu:k={i}"),
            tasks: 10 * i,
            edges: 20 * i,
            model: "pfail=0.01".into(),
            lambda: 0.067,
            estimator: "first-order".into(),
            value: 1.5 + i as f64,
            reference: 1.49 + i as f64,
            reference_std_error: 0.001,
            rel_error: 0.0067,
            elapsed_s: 0.012,
            seed: 9,
        }
    }

    #[test]
    fn csv_output_shape() {
        let mut sink = CsvSink::new(Vec::new());
        sink.begin().unwrap();
        sink.row(&row(1)).unwrap();
        sink.row(&row(2)).unwrap();
        sink.summary(&summarize(&[row(1), row(2)])).unwrap();
        sink.finish().unwrap();
        let text = String::from_utf8(sink.w).unwrap();
        assert!(text.starts_with("dag,tasks,edges,model,lambda,"));
        assert_eq!(text.lines().count(), 1 + 2 + 2);
        assert!(text.contains("lu:k=1,10,20,pfail=0.01,0.067,first-order,2.5,"));
        assert!(text
            .lines()
            .last()
            .unwrap()
            .starts_with("# summary: first-order,2,"));
    }

    #[test]
    fn jsonl_rows_round_trip() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.begin().unwrap();
        sink.row(&row(3)).unwrap();
        sink.finish().unwrap();
        let text = String::from_utf8(sink.w).unwrap();
        let back: SweepRow = serde::json::from_str(text.trim()).unwrap();
        assert_eq!(back, row(3));
    }

    #[test]
    fn summarize_aggregates_per_estimator() {
        let mut a = row(1);
        a.rel_error = -0.02;
        let mut b = row(2);
        b.rel_error = 0.04;
        let mut c = row(3);
        c.estimator = "sculli".into();
        c.rel_error = 0.1;
        let s = summarize(&[a, b, c]);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].estimator, "first-order");
        assert_eq!(s[0].cells, 2);
        assert!((s[0].mean_abs_rel_error - 0.03).abs() < 1e-15);
        assert!((s[0].max_abs_rel_error - 0.04).abs() < 1e-15);
        assert_eq!(s[1].estimator, "sculli");
    }

    #[test]
    fn reorderer_releases_in_order() {
        let mut r = Reorderer::new();
        let seen = std::cell::RefCell::new(Vec::new());
        let emit = |row: &SweepRow| {
            seen.borrow_mut().push(row.tasks);
            Ok(())
        };
        r.push(2, row(2), emit).unwrap();
        assert_eq!(r.released(), 0);
        assert_eq!(r.pending(), 1);
        r.push(0, row(0), emit).unwrap();
        assert_eq!(*seen.borrow(), vec![0]);
        r.push(1, row(1), emit).unwrap();
        assert_eq!(*seen.borrow(), vec![0, 10, 20]);
        assert_eq!(r.released(), 3);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn deterministic_float_formatting() {
        assert_eq!(fmt_f64(2.0), "2.0");
        assert_eq!(fmt_f64(0.067), "0.067");
        assert_eq!(fmt_f64(1e-7), "0.0000001");
        assert_eq!(fmt_f64(-0.5), "-0.5");
    }
}
