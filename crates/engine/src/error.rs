//! Structured engine errors.
//!
//! Everything the engine can fail on, as a typed enum instead of bare
//! `String`s: spec/configuration problems, filesystem and stream I/O
//! (with the offending path), cache maintenance, worker processes, and
//! result sinks (with the owning cell when one is known). Every
//! [`Campaign`](crate::Campaign) method returns the typed error;
//! `From<EngineError> for String` keeps string-error embedders (the
//! CLI's command layer) compiling without a mapping dance.

use std::fmt;

/// A structured engine failure (see the crate docs).
#[derive(Debug)]
pub enum EngineError {
    /// The spec or configuration is invalid (unknown estimator, empty
    /// axes, malformed TOML/JSON, bad knob value, …).
    Spec {
        /// What was wrong.
        message: String,
    },
    /// Filesystem or stream I/O failed.
    Io {
        /// What was being done, naming the offending path when known
        /// (e.g. `"reading spec /tmp/campaign.toml"`).
        context: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// Result-cache maintenance failed (GC, scan).
    Cache {
        /// What was wrong.
        message: String,
    },
    /// A worker process or shard failed.
    Worker {
        /// Shard index, when the failure is attributable to one.
        worker: Option<usize>,
        /// What was wrong.
        message: String,
    },
    /// A result sink rejected output.
    Sink {
        /// The cell being written (`"dag / model / estimator"`), when
        /// the failure happened on a specific row.
        cell: Option<String>,
        /// What was wrong.
        message: String,
    },
    /// The run was cancelled via its
    /// [`CancelToken`](crate::CancelToken) before completing. Cells
    /// that finished before the stop are in the cache; re-running the
    /// same spec over the same cache resumes from them.
    Cancelled,
}

impl EngineError {
    /// Spec/configuration error.
    pub fn spec(message: impl Into<String>) -> EngineError {
        EngineError::Spec {
            message: message.into(),
        }
    }

    /// I/O error with a context line (name the path in `context`).
    pub fn io(context: impl Into<String>, source: std::io::Error) -> EngineError {
        EngineError::Io {
            context: context.into(),
            source,
        }
    }

    /// Cache-maintenance error.
    pub fn cache(message: impl Into<String>) -> EngineError {
        EngineError::Cache {
            message: message.into(),
        }
    }

    /// Worker/shard error, optionally attributed to one shard.
    pub fn worker(worker: impl Into<Option<usize>>, message: impl Into<String>) -> EngineError {
        EngineError::Worker {
            worker: worker.into(),
            message: message.into(),
        }
    }

    /// Sink error, optionally attributed to one cell.
    pub fn sink(cell: impl Into<Option<String>>, message: impl Into<String>) -> EngineError {
        EngineError::Sink {
            cell: cell.into(),
            message: message.into(),
        }
    }

    /// Cancellation error (see [`CancelToken`](crate::CancelToken)).
    pub fn cancelled() -> EngineError {
        EngineError::Cancelled
    }

    /// Stable machine-readable kind of this error — the value carried
    /// in the wire `error` event's `kind` field and the key of the
    /// metrics report's failure tallies (`errors_by_kind`).
    pub fn kind(&self) -> &'static str {
        match self {
            EngineError::Spec { .. } => "spec",
            EngineError::Io { .. } => "io",
            EngineError::Cache { .. } => "cache",
            EngineError::Worker { .. } => "worker",
            EngineError::Sink { .. } => "sink",
            EngineError::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Spec { message } => f.write_str(message),
            EngineError::Io { context, source } => write!(f, "{context}: {source}"),
            EngineError::Cache { message } => write!(f, "cache: {message}"),
            EngineError::Worker { worker, message } => match worker {
                Some(w) => write!(f, "worker {w}: {message}"),
                None => f.write_str(message),
            },
            EngineError::Sink { cell, message } => match cell {
                Some(cell) => write!(f, "sink ({cell}): {message}"),
                None => write!(f, "sink: {message}"),
            },
            EngineError::Cancelled => f.write_str("campaign cancelled"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Legacy bridge: the old `Result<_, String>` entry points (and the
/// CLI's error plumbing) keep working via `?` on engine results.
impl From<EngineError> for String {
    fn from(e: EngineError) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = EngineError::io(
            "reading spec /tmp/x.toml",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        let s = e.to_string();
        assert!(s.contains("/tmp/x.toml") && s.contains("gone"), "{s}");

        let e = EngineError::worker(3, "exploded");
        assert_eq!(e.to_string(), "worker 3: exploded");
        let e = EngineError::worker(None, "exploded");
        assert_eq!(e.to_string(), "exploded");

        let e = EngineError::sink("lu:k=2 / pfail=0.01 / sculli".to_string(), "disk full");
        assert!(e.to_string().contains("lu:k=2"), "{e}");

        let s: String = EngineError::spec("bad axis").into();
        assert_eq!(s, "bad axis");
    }

    #[test]
    fn kinds_are_stable_names() {
        assert_eq!(EngineError::spec("x").kind(), "spec");
        assert_eq!(
            EngineError::io("x", std::io::Error::other("boom")).kind(),
            "io"
        );
        assert_eq!(EngineError::cache("x").kind(), "cache");
        assert_eq!(EngineError::worker(1, "x").kind(), "worker");
        assert_eq!(EngineError::sink(None, "x").kind(), "sink");
        assert_eq!(EngineError::cancelled().kind(), "cancelled");
        assert_eq!(EngineError::cancelled().to_string(), "campaign cancelled");
    }

    #[test]
    fn io_errors_expose_their_source() {
        use std::error::Error;
        let e = EngineError::io("x", std::io::Error::other("boom"));
        assert!(e.source().is_some());
        assert!(EngineError::spec("y").source().is_none());
    }
}
