//! The coordinator ↔ worker wire protocol of distributed sweeps.
//!
//! A campaign distributed over N processes needs no network and no
//! shared memory: the coordinator spawns N `sweep-worker` processes,
//! each worker executes its shard (see [`crate::shard`]) and streams
//! **line-delimited JSON events** on stdout, and the coordinator merges
//! the streams. One event per line, one JSON object per event, tagged
//! by an `"event"` field — trivially greppable, replayable from a log
//! file, and append-safe (a crashed worker leaves a readable prefix).
//!
//! The event vocabulary is small by design:
//!
//! | event | direction | meaning |
//! |-------|-----------|---------|
//! | `plan` | coordinator → observers | campaign totals + lease count |
//! | `hello` | worker → coordinator | worker accepted; sizes follow |
//! | `lease_start` | worker → coordinator | a work lease began executing |
//! | `reference` | worker → coordinator | one MC reference scenario done |
//! | `cell` | worker → coordinator | one estimator cell done (full row) |
//! | `lease_done` | worker → coordinator | lease complete; batch cache totals |
//! | `done` | worker → coordinator | worker finished; cache totals |
//! | `error` | worker → coordinator | worker aborted with a message |
//! | `telemetry` | worker → coordinator | worker's metrics snapshot |
//!
//! The vocabulary is **additively extensible**: a decoder maps an
//! unrecognised `"event"` tag to [`CampaignEvent::Unknown`] instead of
//! failing, so a coordinator built before `telemetry` existed replays
//! newer streams unharmed (malformed JSON and missing fields of known
//! events are still hard errors). New optional fields on existing
//! events (`cell.tier`, `error.kind`, `hello.version`, `hello.jobs`,
//! `reference.scenario`) decode as `None` when absent — which is also
//! how the leasing protocol of `ExecBackend` v2 coexists with v1
//! streams: a v1 stream simply never carries the lease events.
//!
//! `cell` events carry the complete [`SweepRow`], so the coordinator
//! can re-sequence rows into deterministic cell order and write the
//! exact same CSV/JSONL a single-process run would — workers never
//! touch the sink files.

use crate::cache::CacheTier;
use crate::error::EngineError;
use crate::observer::CampaignObserver;
use crate::sink::SweepRow;
use crate::telemetry::MetricsSnapshot;
use serde::{Deserialize, Serialize, Value};

/// One campaign progress event (see module docs).
///
/// This is the **single event vocabulary** of the engine: every
/// execution backend ([`ExecBackend`](crate::ExecBackend)) reports its
/// work through these events, every
/// [`CampaignObserver`](crate::CampaignObserver) subscribes to them,
/// and the distributed wire protocol is nothing but their
/// line-delimited JSON encoding ([`encode_event`]/[`decode_event`]) —
/// a worker process is an observer whose subscription happens to cross
/// a pipe (see [`WireObserver`]).
#[derive(Clone, Debug, PartialEq)]
pub enum CampaignEvent {
    /// First event of a leased (`ExecBackend` v2) campaign, emitted by
    /// the **coordinator** before any worker starts: the authoritative
    /// totals of the campaign plan. Under work leasing a worker cannot
    /// announce its share up front (it does not know how many leases it
    /// will win), so totals come from the plan instead of from `hello`
    /// events.
    Plan {
        /// Total estimator cells the campaign will produce.
        cells: usize,
        /// Total Monte-Carlo reference scenarios.
        references: usize,
        /// Number of work leases in the coordinator's ready queue.
        leases: usize,
    },
    /// First event of a worker: it validated the spec and reports how
    /// much work it owns (v1 sharding) or that it is ready to lease
    /// (v2, with `cells`/`references` zero and `version: Some(2)`).
    Hello {
        /// Shard index (v1) or worker slot (v2), 0-based.
        shard: usize,
        /// Total shard count of the campaign (v1); `0` when the worker
        /// leases work dynamically and peer count is unknown.
        shard_count: usize,
        /// Estimator cells assigned to this shard (v1; `0` under
        /// leasing, where totals come from [`CampaignEvent::Plan`]).
        cells: usize,
        /// Monte-Carlo reference scenarios this shard needs (v1; `0`
        /// under leasing).
        references: usize,
        /// Protocol version the worker speaks (`None` from v1 workers,
        /// `Some(2)` from lease-consuming workers).
        version: Option<u32>,
        /// The worker-thread cap this worker applied, from the
        /// coordinator's `--jobs` handshake (`None` from v1 workers,
        /// which derived `cores / worker_count` locally).
        jobs: Option<usize>,
    },
    /// A worker started executing a leased cell batch.
    LeaseStart {
        /// Lease id (stable across re-queued attempts).
        lease_id: usize,
        /// Number of cells in the batch.
        cells: usize,
    },
    /// One reference scenario finished (cached or computed).
    Reference {
        /// Whether the result came from the shared cache.
        cached: bool,
        /// Global scenario index (instance-major), the coordinator's
        /// cross-worker dedup key under leasing. `None` from v1
        /// workers, which are deduplicated per-shard by announced
        /// count instead.
        scenario: Option<usize>,
    },
    /// One estimator cell finished; carries the complete result row.
    Cell {
        /// Global deterministic cell index (scenario-major order) —
        /// the coordinator's re-sequencing key.
        index: usize,
        /// Whether the result came from the shared cache.
        cached: bool,
        /// Which cache tier served the hit (`None` when computed
        /// fresh, or when the event predates tier reporting).
        tier: Option<CacheTier>,
        /// The full result row, ready for the sinks.
        row: SweepRow,
    },
    /// A leased cell batch finished. The cache totals cover exactly the
    /// probes this attempt performed (cells plus any reference
    /// scenarios it resolved first); the coordinator deduplicates by
    /// `lease_id`, so a re-queued lease's totals count once.
    LeaseDone {
        /// Lease id.
        lease_id: usize,
        /// Number of cells in the batch.
        cells: usize,
        /// Cache hits across the batch's probes.
        hits: usize,
        /// Cache misses (computed fresh).
        misses: usize,
    },
    /// Last event of a successful shard.
    Done {
        /// Cache hits across this shard's references + cells.
        hits: usize,
        /// Cache misses (computed fresh).
        misses: usize,
        /// Worker wall-clock seconds for the shard.
        wall_s: f64,
    },
    /// The shard failed; the coordinator aborts the campaign.
    Error {
        /// Human-readable failure description.
        message: String,
        /// Structured [`EngineError::kind`](crate::EngineError::kind)
        /// of the failure (`None` from pre-telemetry workers), so the
        /// coordinator can tally failures by kind.
        kind: Option<String>,
    },
    /// A shard's telemetry aggregate, emitted just before `done` when
    /// the campaign runs with an enabled
    /// [`Telemetry`](crate::Telemetry) collector.
    Telemetry {
        /// Shard index (0-based), the coordinator's dedup key across
        /// retried shards.
        shard: usize,
        /// The shard collector's final aggregates.
        snapshot: MetricsSnapshot,
    },
    /// An event this build does not understand — a newer writer's
    /// vocabulary. Merges and observers skip it; re-encoding preserves
    /// only the tag.
    Unknown {
        /// The unrecognised `"event"` tag.
        tag: String,
    },
}

impl Serialize for CampaignEvent {
    fn serialize(&self) -> Value {
        match self {
            CampaignEvent::Plan {
                cells,
                references,
                leases,
            } => Value::obj([
                ("event", Value::Str("plan".into())),
                ("cells", cells.serialize()),
                ("references", references.serialize()),
                ("leases", leases.serialize()),
            ]),
            CampaignEvent::Hello {
                shard,
                shard_count,
                cells,
                references,
                version,
                jobs,
            } => {
                let mut fields = vec![
                    ("event", Value::Str("hello".into())),
                    ("shard", shard.serialize()),
                    ("shard_count", shard_count.serialize()),
                    ("cells", cells.serialize()),
                    ("references", references.serialize()),
                ];
                if let Some(version) = version {
                    fields.push(("version", version.serialize()));
                }
                if let Some(jobs) = jobs {
                    fields.push(("jobs", jobs.serialize()));
                }
                Value::obj(fields)
            }
            CampaignEvent::LeaseStart { lease_id, cells } => Value::obj([
                ("event", Value::Str("lease_start".into())),
                ("lease_id", lease_id.serialize()),
                ("cells", cells.serialize()),
            ]),
            CampaignEvent::Reference { cached, scenario } => {
                let mut fields = vec![
                    ("event", Value::Str("reference".into())),
                    ("cached", cached.serialize()),
                ];
                if let Some(scenario) = scenario {
                    fields.push(("scenario", scenario.serialize()));
                }
                Value::obj(fields)
            }
            CampaignEvent::Cell {
                index,
                cached,
                tier,
                row,
            } => {
                let mut fields = vec![
                    ("event", Value::Str("cell".into())),
                    ("index", index.serialize()),
                    ("cached", cached.serialize()),
                ];
                if let Some(tier) = tier {
                    fields.push(("tier", Value::Str(tier.as_str().into())));
                }
                fields.push(("row", row.serialize()));
                Value::obj(fields)
            }
            CampaignEvent::LeaseDone {
                lease_id,
                cells,
                hits,
                misses,
            } => Value::obj([
                ("event", Value::Str("lease_done".into())),
                ("lease_id", lease_id.serialize()),
                ("cells", cells.serialize()),
                ("hits", hits.serialize()),
                ("misses", misses.serialize()),
            ]),
            CampaignEvent::Done {
                hits,
                misses,
                wall_s,
            } => Value::obj([
                ("event", Value::Str("done".into())),
                ("hits", hits.serialize()),
                ("misses", misses.serialize()),
                ("wall_s", wall_s.serialize()),
            ]),
            CampaignEvent::Error { message, kind } => {
                let mut fields = vec![
                    ("event", Value::Str("error".into())),
                    ("message", message.serialize()),
                ];
                if let Some(kind) = kind {
                    fields.push(("kind", kind.serialize()));
                }
                Value::obj(fields)
            }
            CampaignEvent::Telemetry { shard, snapshot } => Value::obj([
                ("event", Value::Str("telemetry".into())),
                ("shard", shard.serialize()),
                ("snapshot", snapshot.serialize()),
            ]),
            CampaignEvent::Unknown { tag } => Value::obj([("event", Value::Str(tag.clone()))]),
        }
    }
}

impl Deserialize for CampaignEvent {
    fn deserialize(v: &Value) -> Result<CampaignEvent, serde::Error> {
        let tag = String::deserialize(v.require("event")?)?;
        match tag.as_str() {
            "plan" => Ok(CampaignEvent::Plan {
                cells: usize::deserialize(v.require("cells")?)?,
                references: usize::deserialize(v.require("references")?)?,
                leases: usize::deserialize(v.require("leases")?)?,
            }),
            "hello" => Ok(CampaignEvent::Hello {
                shard: usize::deserialize(v.require("shard")?)?,
                shard_count: usize::deserialize(v.require("shard_count")?)?,
                cells: usize::deserialize(v.require("cells")?)?,
                references: usize::deserialize(v.require("references")?)?,
                version: match v.get("version") {
                    None | Some(Value::Null) => None,
                    Some(n) => Some(u32::deserialize(n)?),
                },
                jobs: match v.get("jobs") {
                    None | Some(Value::Null) => None,
                    Some(n) => Some(usize::deserialize(n)?),
                },
            }),
            "lease_start" => Ok(CampaignEvent::LeaseStart {
                lease_id: usize::deserialize(v.require("lease_id")?)?,
                cells: usize::deserialize(v.require("cells")?)?,
            }),
            "reference" => Ok(CampaignEvent::Reference {
                cached: bool::deserialize(v.require("cached")?)?,
                scenario: match v.get("scenario") {
                    None | Some(Value::Null) => None,
                    Some(n) => Some(usize::deserialize(n)?),
                },
            }),
            "cell" => Ok(CampaignEvent::Cell {
                index: usize::deserialize(v.require("index")?)?,
                cached: bool::deserialize(v.require("cached")?)?,
                tier: match v.get("tier") {
                    None | Some(Value::Null) => None,
                    Some(t) => {
                        let name = String::deserialize(t)?;
                        Some(CacheTier::parse(&name).ok_or_else(|| {
                            serde::Error::new(format!("unknown cache tier {name:?}"))
                        })?)
                    }
                },
                row: SweepRow::deserialize(v.require("row")?)?,
            }),
            "lease_done" => Ok(CampaignEvent::LeaseDone {
                lease_id: usize::deserialize(v.require("lease_id")?)?,
                cells: usize::deserialize(v.require("cells")?)?,
                hits: usize::deserialize(v.require("hits")?)?,
                misses: usize::deserialize(v.require("misses")?)?,
            }),
            "done" => Ok(CampaignEvent::Done {
                hits: usize::deserialize(v.require("hits")?)?,
                misses: usize::deserialize(v.require("misses")?)?,
                wall_s: f64::deserialize(v.require("wall_s")?)?,
            }),
            "error" => Ok(CampaignEvent::Error {
                message: String::deserialize(v.require("message")?)?,
                kind: match v.get("kind") {
                    None | Some(Value::Null) => None,
                    Some(k) => Some(String::deserialize(k)?),
                },
            }),
            "telemetry" => Ok(CampaignEvent::Telemetry {
                shard: usize::deserialize(v.require("shard")?)?,
                snapshot: MetricsSnapshot::deserialize(v.require("snapshot")?)?,
            }),
            // Forward compatibility: a tag this build has never heard
            // of is a newer writer's event, not corruption — surface it
            // as `Unknown` so replays of future streams keep working.
            _ => Ok(CampaignEvent::Unknown { tag }),
        }
    }
}

/// Encode an event as one protocol line (no trailing newline).
pub fn encode_event(ev: &CampaignEvent) -> String {
    serde::json::to_string(ev)
}

/// Decode one protocol line. Empty lines are a protocol violation (the
/// writer never emits them), reported as an error with the offending
/// text so a truncated or interleaved stream is diagnosable.
pub fn decode_event(line: &str) -> Result<CampaignEvent, String> {
    serde::json::from_str::<CampaignEvent>(line.trim_end())
        .map_err(|e| format!("bad worker event {line:?}: {e}"))
}

/// A [`CampaignObserver`] that forwards every event as one encoded
/// protocol line — the worker half of a distributed campaign. Each
/// event is written and flushed immediately, so a coordinator reading
/// the other end of the pipe can render live progress.
pub struct WireObserver<W: std::io::Write + Send> {
    w: W,
}

impl<W: std::io::Write + Send> WireObserver<W> {
    /// Observer writing protocol lines to `w` (a worker passes its
    /// locked stdout).
    pub fn new(w: W) -> Self {
        WireObserver { w }
    }
}

impl<W: std::io::Write + Send> CampaignObserver for WireObserver<W> {
    fn on_event(&mut self, event: &CampaignEvent) -> Result<(), EngineError> {
        writeln!(self.w, "{}", encode_event(event))
            .and_then(|()| self.w.flush())
            .map_err(|e| EngineError::io("writing event to coordinator", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> SweepRow {
        SweepRow {
            dag: "lu:k=4".into(),
            tasks: 30,
            edges: 55,
            model: "pfail=0.01".into(),
            lambda: 0.0021,
            estimator: "first-order".into(),
            value: 102.5,
            reference: 101.9,
            reference_std_error: 0.04,
            rel_error: 0.0058,
            elapsed_s: 0.003,
            seed: 717,
        }
    }

    #[test]
    fn every_event_round_trips() {
        let events = [
            CampaignEvent::Plan {
                cells: 24,
                references: 12,
                leases: 12,
            },
            CampaignEvent::Hello {
                shard: 1,
                shard_count: 4,
                cells: 6,
                references: 3,
                version: None,
                jobs: None,
            },
            CampaignEvent::Hello {
                shard: 0,
                shard_count: 0,
                cells: 0,
                references: 0,
                version: Some(2),
                jobs: Some(4),
            },
            CampaignEvent::LeaseStart {
                lease_id: 7,
                cells: 2,
            },
            CampaignEvent::Reference {
                cached: true,
                scenario: None,
            },
            CampaignEvent::Reference {
                cached: false,
                scenario: Some(5),
            },
            CampaignEvent::LeaseDone {
                lease_id: 7,
                cells: 2,
                hits: 1,
                misses: 2,
            },
            CampaignEvent::Cell {
                index: 17,
                cached: false,
                tier: None,
                row: sample_row(),
            },
            CampaignEvent::Cell {
                index: 18,
                cached: true,
                tier: Some(CacheTier::Disk),
                row: sample_row(),
            },
            CampaignEvent::Done {
                hits: 5,
                misses: 4,
                wall_s: 1.25,
            },
            CampaignEvent::Error {
                message: "disk on fire".into(),
                kind: None,
            },
            CampaignEvent::Error {
                message: "spec exploded".into(),
                kind: Some("spec".into()),
            },
            CampaignEvent::Telemetry {
                shard: 2,
                snapshot: {
                    let t = crate::telemetry::Telemetry::enabled();
                    t.count("references_computed", 3);
                    t.record_span_duration("estimate_cell", std::time::Duration::from_nanos(99));
                    t.snapshot()
                },
            },
            CampaignEvent::Unknown {
                tag: "hyperdrive".into(),
            },
        ];
        for ev in &events {
            let line = encode_event(ev);
            assert!(!line.contains('\n'), "one event per line: {line:?}");
            assert_eq!(&decode_event(&line).unwrap(), ev, "{line}");
        }
    }

    #[test]
    fn decode_rejects_garbage_but_tolerates_unknown_tags() {
        assert!(decode_event("").is_err());
        assert!(decode_event("{not json").is_err());
        assert!(decode_event("{\"event\":\"cell\",\"index\":0}").is_err());
        // A future writer's event tag decodes as Unknown, not an error:
        // replaying a newer stream must not abort (see module docs).
        assert_eq!(
            decode_event("{\"event\":\"warp\",\"factor\":9}").unwrap(),
            CampaignEvent::Unknown { tag: "warp".into() }
        );
    }

    #[test]
    fn optional_fields_default_when_absent() {
        // A pre-telemetry writer's cell/error lines (no tier, no kind)
        // still decode; a bad tier name is corruption, not tolerance.
        let old_cell = format!(
            "{{\"event\":\"cell\",\"index\":3,\"cached\":true,\"row\":{}}}",
            serde::json::to_string(&sample_row())
        );
        match decode_event(&old_cell).unwrap() {
            CampaignEvent::Cell { cached, tier, .. } => {
                assert!(cached);
                assert_eq!(tier, None);
            }
            other => panic!("expected cell, got {other:?}"),
        }
        assert!(decode_event(
            "{\"event\":\"cell\",\"index\":3,\"cached\":true,\"tier\":\"l9\",\"row\":{}}"
        )
        .is_err());
        assert_eq!(
            decode_event("{\"event\":\"error\",\"message\":\"boom\"}").unwrap(),
            CampaignEvent::Error {
                message: "boom".into(),
                kind: None
            }
        );
        // A v1 hello (no version, no jobs) and a v1 reference (no
        // scenario) decode with the new optional fields defaulted.
        assert_eq!(
            decode_event(
                "{\"event\":\"hello\",\"shard\":2,\"shard_count\":3,\
                 \"cells\":8,\"references\":4}"
            )
            .unwrap(),
            CampaignEvent::Hello {
                shard: 2,
                shard_count: 3,
                cells: 8,
                references: 4,
                version: None,
                jobs: None,
            }
        );
        assert_eq!(
            decode_event("{\"event\":\"reference\",\"cached\":false}").unwrap(),
            CampaignEvent::Reference {
                cached: false,
                scenario: None,
            }
        );
    }

    #[test]
    fn lease_events_require_their_fields() {
        assert!(decode_event("{\"event\":\"plan\",\"cells\":4}").is_err());
        assert!(decode_event("{\"event\":\"lease_start\",\"cells\":2}").is_err());
        assert!(decode_event("{\"event\":\"lease_done\",\"lease_id\":1,\"cells\":2}").is_err());
        assert_eq!(
            decode_event("{\"event\":\"plan\",\"cells\":4,\"references\":2,\"leases\":2}").unwrap(),
            CampaignEvent::Plan {
                cells: 4,
                references: 2,
                leases: 2,
            }
        );
    }
}
