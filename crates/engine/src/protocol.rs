//! The coordinator ↔ worker wire protocol of distributed sweeps.
//!
//! A campaign distributed over N processes needs no network and no
//! shared memory: the coordinator spawns N `sweep-worker` processes,
//! each worker executes its shard (see [`crate::shard`]) and streams
//! **line-delimited JSON events** on stdout, and the coordinator merges
//! the streams. One event per line, one JSON object per event, tagged
//! by an `"event"` field — trivially greppable, replayable from a log
//! file, and append-safe (a crashed worker leaves a readable prefix).
//!
//! The event vocabulary is small by design:
//!
//! | event | direction | meaning |
//! |-------|-----------|---------|
//! | `hello` | worker → coordinator | shard accepted; sizes follow |
//! | `reference` | worker → coordinator | one MC reference scenario done |
//! | `cell` | worker → coordinator | one estimator cell done (full row) |
//! | `done` | worker → coordinator | shard complete; cache totals |
//! | `error` | worker → coordinator | shard aborted with a message |
//!
//! `cell` events carry the complete [`SweepRow`], so the coordinator
//! can re-sequence rows into deterministic cell order and write the
//! exact same CSV/JSONL a single-process run would — workers never
//! touch the sink files.

use crate::error::EngineError;
use crate::observer::CampaignObserver;
use crate::sink::SweepRow;
use serde::{Deserialize, Serialize, Value};

/// Legacy name of [`CampaignEvent`], from when the type described only
/// the distributed wire protocol.
#[deprecated(since = "0.2.0", note = "renamed to CampaignEvent")]
pub type WorkerEvent = CampaignEvent;

/// One campaign progress event (see module docs).
///
/// This is the **single event vocabulary** of the engine: every
/// execution backend ([`ExecBackend`](crate::ExecBackend)) reports its
/// work through these events, every
/// [`CampaignObserver`](crate::CampaignObserver) subscribes to them,
/// and the distributed wire protocol is nothing but their
/// line-delimited JSON encoding ([`encode_event`]/[`decode_event`]) —
/// a worker process is an observer whose subscription happens to cross
/// a pipe (see [`WireObserver`]).
#[derive(Clone, Debug, PartialEq)]
pub enum CampaignEvent {
    /// First event of a shard: the worker validated the spec and
    /// reports how much work it owns.
    Hello {
        /// Shard index (0-based).
        shard: usize,
        /// Total shard count of the campaign.
        shard_count: usize,
        /// Estimator cells assigned to this shard.
        cells: usize,
        /// Monte-Carlo reference scenarios this shard needs (scenarios
        /// touched by at least one assigned cell; scenarios shared with
        /// other shards are counted by each of them).
        references: usize,
    },
    /// One reference scenario finished (cached or computed).
    Reference {
        /// Whether the result came from the shared cache.
        cached: bool,
    },
    /// One estimator cell finished; carries the complete result row.
    Cell {
        /// Global deterministic cell index (scenario-major order) —
        /// the coordinator's re-sequencing key.
        index: usize,
        /// Whether the result came from the shared cache.
        cached: bool,
        /// The full result row, ready for the sinks.
        row: SweepRow,
    },
    /// Last event of a successful shard.
    Done {
        /// Cache hits across this shard's references + cells.
        hits: usize,
        /// Cache misses (computed fresh).
        misses: usize,
        /// Worker wall-clock seconds for the shard.
        wall_s: f64,
    },
    /// The shard failed; the coordinator aborts the campaign.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

impl Serialize for CampaignEvent {
    fn serialize(&self) -> Value {
        match self {
            CampaignEvent::Hello {
                shard,
                shard_count,
                cells,
                references,
            } => Value::obj([
                ("event", Value::Str("hello".into())),
                ("shard", shard.serialize()),
                ("shard_count", shard_count.serialize()),
                ("cells", cells.serialize()),
                ("references", references.serialize()),
            ]),
            CampaignEvent::Reference { cached } => Value::obj([
                ("event", Value::Str("reference".into())),
                ("cached", cached.serialize()),
            ]),
            CampaignEvent::Cell { index, cached, row } => Value::obj([
                ("event", Value::Str("cell".into())),
                ("index", index.serialize()),
                ("cached", cached.serialize()),
                ("row", row.serialize()),
            ]),
            CampaignEvent::Done {
                hits,
                misses,
                wall_s,
            } => Value::obj([
                ("event", Value::Str("done".into())),
                ("hits", hits.serialize()),
                ("misses", misses.serialize()),
                ("wall_s", wall_s.serialize()),
            ]),
            CampaignEvent::Error { message } => Value::obj([
                ("event", Value::Str("error".into())),
                ("message", message.serialize()),
            ]),
        }
    }
}

impl Deserialize for CampaignEvent {
    fn deserialize(v: &Value) -> Result<CampaignEvent, serde::Error> {
        let tag = String::deserialize(v.require("event")?)?;
        match tag.as_str() {
            "hello" => Ok(CampaignEvent::Hello {
                shard: usize::deserialize(v.require("shard")?)?,
                shard_count: usize::deserialize(v.require("shard_count")?)?,
                cells: usize::deserialize(v.require("cells")?)?,
                references: usize::deserialize(v.require("references")?)?,
            }),
            "reference" => Ok(CampaignEvent::Reference {
                cached: bool::deserialize(v.require("cached")?)?,
            }),
            "cell" => Ok(CampaignEvent::Cell {
                index: usize::deserialize(v.require("index")?)?,
                cached: bool::deserialize(v.require("cached")?)?,
                row: SweepRow::deserialize(v.require("row")?)?,
            }),
            "done" => Ok(CampaignEvent::Done {
                hits: usize::deserialize(v.require("hits")?)?,
                misses: usize::deserialize(v.require("misses")?)?,
                wall_s: f64::deserialize(v.require("wall_s")?)?,
            }),
            "error" => Ok(CampaignEvent::Error {
                message: String::deserialize(v.require("message")?)?,
            }),
            other => Err(serde::Error::new(format!("unknown worker event {other:?}"))),
        }
    }
}

/// Encode an event as one protocol line (no trailing newline).
pub fn encode_event(ev: &CampaignEvent) -> String {
    serde::json::to_string(ev)
}

/// Decode one protocol line. Empty lines are a protocol violation (the
/// writer never emits them), reported as an error with the offending
/// text so a truncated or interleaved stream is diagnosable.
pub fn decode_event(line: &str) -> Result<CampaignEvent, String> {
    serde::json::from_str::<CampaignEvent>(line.trim_end())
        .map_err(|e| format!("bad worker event {line:?}: {e}"))
}

/// A [`CampaignObserver`] that forwards every event as one encoded
/// protocol line — the worker half of a distributed campaign. Each
/// event is written and flushed immediately, so a coordinator reading
/// the other end of the pipe can render live progress.
pub struct WireObserver<W: std::io::Write + Send> {
    w: W,
}

impl<W: std::io::Write + Send> WireObserver<W> {
    /// Observer writing protocol lines to `w` (a worker passes its
    /// locked stdout).
    pub fn new(w: W) -> Self {
        WireObserver { w }
    }
}

impl<W: std::io::Write + Send> CampaignObserver for WireObserver<W> {
    fn on_event(&mut self, event: &CampaignEvent) -> Result<(), EngineError> {
        writeln!(self.w, "{}", encode_event(event))
            .and_then(|()| self.w.flush())
            .map_err(|e| EngineError::io("writing event to coordinator", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> SweepRow {
        SweepRow {
            dag: "lu:k=4".into(),
            tasks: 30,
            edges: 55,
            model: "pfail=0.01".into(),
            lambda: 0.0021,
            estimator: "first-order".into(),
            value: 102.5,
            reference: 101.9,
            reference_std_error: 0.04,
            rel_error: 0.0058,
            elapsed_s: 0.003,
            seed: 717,
        }
    }

    #[test]
    fn every_event_round_trips() {
        let events = [
            CampaignEvent::Hello {
                shard: 1,
                shard_count: 4,
                cells: 6,
                references: 3,
            },
            CampaignEvent::Reference { cached: true },
            CampaignEvent::Cell {
                index: 17,
                cached: false,
                row: sample_row(),
            },
            CampaignEvent::Done {
                hits: 5,
                misses: 4,
                wall_s: 1.25,
            },
            CampaignEvent::Error {
                message: "disk on fire".into(),
            },
        ];
        for ev in &events {
            let line = encode_event(ev);
            assert!(!line.contains('\n'), "one event per line: {line:?}");
            assert_eq!(&decode_event(&line).unwrap(), ev, "{line}");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_event("").is_err());
        assert!(decode_event("{not json").is_err());
        assert!(decode_event("{\"event\":\"warp\"}").is_err());
        assert!(decode_event("{\"event\":\"cell\",\"index\":0}").is_err());
    }
}
