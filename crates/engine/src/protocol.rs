//! The coordinator ↔ worker wire protocol of distributed sweeps.
//!
//! A campaign distributed over N processes needs no network and no
//! shared memory: the coordinator spawns N `sweep-worker` processes,
//! each worker executes its shard (see [`crate::shard`]) and streams
//! **line-delimited JSON events** on stdout, and the coordinator merges
//! the streams. One event per line, one JSON object per event, tagged
//! by an `"event"` field — trivially greppable, replayable from a log
//! file, and append-safe (a crashed worker leaves a readable prefix).
//!
//! The event vocabulary is small by design:
//!
//! | event | direction | meaning |
//! |-------|-----------|---------|
//! | `hello` | worker → coordinator | shard accepted; sizes follow |
//! | `reference` | worker → coordinator | one MC reference scenario done |
//! | `cell` | worker → coordinator | one estimator cell done (full row) |
//! | `done` | worker → coordinator | shard complete; cache totals |
//! | `error` | worker → coordinator | shard aborted with a message |
//!
//! `cell` events carry the complete [`SweepRow`], so the coordinator
//! can re-sequence rows into deterministic cell order and write the
//! exact same CSV/JSONL a single-process run would — workers never
//! touch the sink files.

use crate::sink::SweepRow;
use serde::{Deserialize, Serialize, Value};

/// One protocol event sent by a sweep worker (see module docs).
#[derive(Clone, Debug, PartialEq)]
pub enum WorkerEvent {
    /// First event of a shard: the worker validated the spec and
    /// reports how much work it owns.
    Hello {
        /// Shard index (0-based).
        shard: usize,
        /// Total shard count of the campaign.
        shard_count: usize,
        /// Estimator cells assigned to this shard.
        cells: usize,
        /// Monte-Carlo reference scenarios this shard needs (scenarios
        /// touched by at least one assigned cell; scenarios shared with
        /// other shards are counted by each of them).
        references: usize,
    },
    /// One reference scenario finished (cached or computed).
    Reference {
        /// Whether the result came from the shared cache.
        cached: bool,
    },
    /// One estimator cell finished; carries the complete result row.
    Cell {
        /// Global deterministic cell index (scenario-major order) —
        /// the coordinator's re-sequencing key.
        index: usize,
        /// Whether the result came from the shared cache.
        cached: bool,
        /// The full result row, ready for the sinks.
        row: SweepRow,
    },
    /// Last event of a successful shard.
    Done {
        /// Cache hits across this shard's references + cells.
        hits: usize,
        /// Cache misses (computed fresh).
        misses: usize,
        /// Worker wall-clock seconds for the shard.
        wall_s: f64,
    },
    /// The shard failed; the coordinator aborts the campaign.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

impl Serialize for WorkerEvent {
    fn serialize(&self) -> Value {
        match self {
            WorkerEvent::Hello {
                shard,
                shard_count,
                cells,
                references,
            } => Value::obj([
                ("event", Value::Str("hello".into())),
                ("shard", shard.serialize()),
                ("shard_count", shard_count.serialize()),
                ("cells", cells.serialize()),
                ("references", references.serialize()),
            ]),
            WorkerEvent::Reference { cached } => Value::obj([
                ("event", Value::Str("reference".into())),
                ("cached", cached.serialize()),
            ]),
            WorkerEvent::Cell { index, cached, row } => Value::obj([
                ("event", Value::Str("cell".into())),
                ("index", index.serialize()),
                ("cached", cached.serialize()),
                ("row", row.serialize()),
            ]),
            WorkerEvent::Done {
                hits,
                misses,
                wall_s,
            } => Value::obj([
                ("event", Value::Str("done".into())),
                ("hits", hits.serialize()),
                ("misses", misses.serialize()),
                ("wall_s", wall_s.serialize()),
            ]),
            WorkerEvent::Error { message } => Value::obj([
                ("event", Value::Str("error".into())),
                ("message", message.serialize()),
            ]),
        }
    }
}

impl Deserialize for WorkerEvent {
    fn deserialize(v: &Value) -> Result<WorkerEvent, serde::Error> {
        let tag = String::deserialize(v.require("event")?)?;
        match tag.as_str() {
            "hello" => Ok(WorkerEvent::Hello {
                shard: usize::deserialize(v.require("shard")?)?,
                shard_count: usize::deserialize(v.require("shard_count")?)?,
                cells: usize::deserialize(v.require("cells")?)?,
                references: usize::deserialize(v.require("references")?)?,
            }),
            "reference" => Ok(WorkerEvent::Reference {
                cached: bool::deserialize(v.require("cached")?)?,
            }),
            "cell" => Ok(WorkerEvent::Cell {
                index: usize::deserialize(v.require("index")?)?,
                cached: bool::deserialize(v.require("cached")?)?,
                row: SweepRow::deserialize(v.require("row")?)?,
            }),
            "done" => Ok(WorkerEvent::Done {
                hits: usize::deserialize(v.require("hits")?)?,
                misses: usize::deserialize(v.require("misses")?)?,
                wall_s: f64::deserialize(v.require("wall_s")?)?,
            }),
            "error" => Ok(WorkerEvent::Error {
                message: String::deserialize(v.require("message")?)?,
            }),
            other => Err(serde::Error::new(format!("unknown worker event {other:?}"))),
        }
    }
}

/// Encode an event as one protocol line (no trailing newline).
pub fn encode_event(ev: &WorkerEvent) -> String {
    serde::json::to_string(ev)
}

/// Decode one protocol line. Empty lines are a protocol violation (the
/// writer never emits them), reported as an error with the offending
/// text so a truncated or interleaved stream is diagnosable.
pub fn decode_event(line: &str) -> Result<WorkerEvent, String> {
    serde::json::from_str::<WorkerEvent>(line.trim_end())
        .map_err(|e| format!("bad worker event {line:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> SweepRow {
        SweepRow {
            dag: "lu:k=4".into(),
            tasks: 30,
            edges: 55,
            model: "pfail=0.01".into(),
            lambda: 0.0021,
            estimator: "first-order".into(),
            value: 102.5,
            reference: 101.9,
            reference_std_error: 0.04,
            rel_error: 0.0058,
            elapsed_s: 0.003,
            seed: 717,
        }
    }

    #[test]
    fn every_event_round_trips() {
        let events = [
            WorkerEvent::Hello {
                shard: 1,
                shard_count: 4,
                cells: 6,
                references: 3,
            },
            WorkerEvent::Reference { cached: true },
            WorkerEvent::Cell {
                index: 17,
                cached: false,
                row: sample_row(),
            },
            WorkerEvent::Done {
                hits: 5,
                misses: 4,
                wall_s: 1.25,
            },
            WorkerEvent::Error {
                message: "disk on fire".into(),
            },
        ];
        for ev in &events {
            let line = encode_event(ev);
            assert!(!line.contains('\n'), "one event per line: {line:?}");
            assert_eq!(&decode_event(&line).unwrap(), ev, "{line}");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_event("").is_err());
        assert!(decode_event("{not json").is_err());
        assert!(decode_event("{\"event\":\"warp\"}").is_err());
        assert!(decode_event("{\"event\":\"cell\",\"index\":0}").is_err());
    }
}
